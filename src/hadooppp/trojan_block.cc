#include "hadooppp/trojan_block.h"

#include <cstring>
#include <numeric>

#include "hdfs/packet.h"
#include "layout/column_vector.h"
#include "schema/row_parser.h"
#include "util/io.h"

namespace hail {
namespace hadooppp {

Status TrojanReplicaTransformer::BeginBlock(std::string_view text_block) {
  // Parse rows straight into typed columns (bad rows are dropped by
  // Hadoop++'s converter — they would fail its binary serialiser).
  std::vector<ColumnVector> columns;
  columns.reserve(static_cast<size_t>(params_.schema.num_fields()));
  for (int i = 0; i < params_.schema.num_fields(); ++i) {
    columns.emplace_back(params_.schema.field(i).type);
  }
  ColumnarAppender appender(params_.schema, &columns);
  for (std::string_view row : SplitRows(text_block)) {
    if (row.empty()) continue;
    (void)appender.AppendRow(row);
  }
  num_rows_ =
      columns.empty() ? 0 : static_cast<uint32_t>(columns[0].size());

  RowBinaryBlockBuilder builder(params_.schema);
  int sort_column = -1;
  if (params_.index_column >= 0) {
    // Sort rows by the index key (typed argsort, no Value comparisons)
    // and build the trojan directory over the sorted key column.
    const int col = params_.index_column;
    const std::vector<uint32_t> perm =
        ArgSortColumn(columns[static_cast<size_t>(col)]);
    const ColumnVector keys =
        columns[static_cast<size_t>(col)].PermutedCopy(perm);
    for (uint32_t row : perm) {
      builder.AddRowFromColumns(columns, row);
    }
    const std::vector<uint64_t> offsets = builder.row_offsets();
    const uint64_t data_bytes = builder.data_bytes();
    const TrojanIndex index =
        TrojanIndex::Build(keys, offsets, data_bytes, params_.rows_per_entry);
    block_bytes_ = BuildTrojanBlock(builder.Finish(), &index, col);
    sort_column = col;
  } else {
    for (uint32_t row = 0; row < num_rows_; ++row) {
      builder.AddRowFromColumns(columns, row);
    }
    block_bytes_ = BuildTrojanBlock(builder.Finish(), nullptr, -1);
  }

  chunk_crcs_ = hdfs::ComputeChunkChecksums(block_bytes_, params_.chunk_bytes);
  info_ = hdfs::HailBlockReplicaInfo();
  info_.layout = hdfs::ReplicaLayout::kRowBinary;
  info_.sort_column = sort_column;
  info_.index_kind = sort_column >= 0 ? "trojan" : "";
  info_.replica_bytes = block_bytes_.size();
  return Status::OK();
}

Result<hdfs::ReplicaBlock> TrojanReplicaTransformer::BuildReplica(
    size_t replica_index, const hdfs::ReplicaWorkContext& ctx) {
  (void)replica_index;
  (void)ctx;
  // Every replica stores identical bytes (the defining limitation);
  // CPU cost is billed at MapReduce phase level by the caller.
  hdfs::ReplicaBlock out;
  out.bytes = block_bytes_;
  out.chunk_crcs = chunk_crcs_;
  out.info = info_;
  return out;
}

std::string BuildTrojanBlock(std::string row_block, const TrojanIndex* index,
                             int sort_column) {
  ByteWriter w;
  w.PutU32(kTrojanBlockMagic);
  w.PutI32(index != nullptr ? sort_column : -1);
  const std::string index_bytes = index != nullptr ? index->Serialize() : "";
  const size_t layout_pos = w.size();
  w.PutU64(0);  // index offset
  w.PutU64(0);  // index bytes
  w.PutU64(0);  // rows offset
  const uint64_t index_offset = w.size();
  w.PutBytes(index_bytes);
  const uint64_t rows_offset = w.size();
  w.PutBytes(row_block);

  std::string out = w.Take();
  const uint64_t index_len = index_bytes.size();
  std::memcpy(out.data() + layout_pos, &index_offset, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 8, &index_len, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 16, &rows_offset, sizeof(uint64_t));
  return out;
}

Result<TrojanBlockView> TrojanBlockView::Open(std::string_view data) {
  TrojanBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kTrojanBlockMagic) {
    return Status::Corruption("not a trojan block");
  }
  HAIL_ASSIGN_OR_RETURN(view.sort_column_, r.GetI32());
  HAIL_ASSIGN_OR_RETURN(view.index_offset_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.index_bytes_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.rows_offset_, r.GetU64());
  if (view.index_offset_ + view.index_bytes_ > data.size() ||
      view.rows_offset_ > data.size()) {
    return Status::Corruption("trojan block sections out of bounds");
  }
  return view;
}

Result<TrojanIndex> TrojanBlockView::ReadIndex() const {
  if (!has_index()) {
    return Status::FailedPrecondition("trojan block has no index");
  }
  return TrojanIndex::Deserialize(data_.substr(index_offset_, index_bytes_));
}

Result<RowBinaryBlockView> TrojanBlockView::OpenRows() const {
  return RowBinaryBlockView::Open(data_.substr(rows_offset_));
}

}  // namespace hadooppp
}  // namespace hail
