#include "hadooppp/trojan_block.h"

#include <cstring>

#include "util/io.h"

namespace hail {
namespace hadooppp {

std::string BuildTrojanBlock(std::string row_block, const TrojanIndex* index,
                             int sort_column) {
  ByteWriter w;
  w.PutU32(kTrojanBlockMagic);
  w.PutI32(index != nullptr ? sort_column : -1);
  const std::string index_bytes = index != nullptr ? index->Serialize() : "";
  const size_t layout_pos = w.size();
  w.PutU64(0);  // index offset
  w.PutU64(0);  // index bytes
  w.PutU64(0);  // rows offset
  const uint64_t index_offset = w.size();
  w.PutBytes(index_bytes);
  const uint64_t rows_offset = w.size();
  w.PutBytes(row_block);

  std::string out = w.Take();
  const uint64_t index_len = index_bytes.size();
  std::memcpy(out.data() + layout_pos, &index_offset, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 8, &index_len, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 16, &rows_offset, sizeof(uint64_t));
  return out;
}

Result<TrojanBlockView> TrojanBlockView::Open(std::string_view data) {
  TrojanBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kTrojanBlockMagic) {
    return Status::Corruption("not a trojan block");
  }
  HAIL_ASSIGN_OR_RETURN(view.sort_column_, r.GetI32());
  HAIL_ASSIGN_OR_RETURN(view.index_offset_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.index_bytes_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.rows_offset_, r.GetU64());
  if (view.index_offset_ + view.index_bytes_ > data.size() ||
      view.rows_offset_ > data.size()) {
    return Status::Corruption("trojan block sections out of bounds");
  }
  return view;
}

Result<TrojanIndex> TrojanBlockView::ReadIndex() const {
  if (!has_index()) {
    return Status::FailedPrecondition("trojan block has no index");
  }
  return TrojanIndex::Deserialize(data_.substr(index_offset_, index_bytes_));
}

Result<RowBinaryBlockView> TrojanBlockView::OpenRows() const {
  return RowBinaryBlockView::Open(data_.substr(rows_offset_));
}

}  // namespace hadooppp
}  // namespace hail
