/// \file trojan_block.h
/// \brief Hadoop++'s physical block: trojan index + binary rows (paper §5).
///
/// Hadoop++ [12] converts text blocks to a binary row layout and appends a
/// trojan index per *logical* block — every replica stores identical
/// bytes, so only one attribute can ever be indexed. The block header must
/// be read by the JobClient during the split phase (unlike HAIL, which
/// keeps replica metadata in the namenode).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "index/trojan_index.h"
#include "layout/row_binary.h"
#include "util/result.h"

namespace hail {
namespace hadooppp {

inline constexpr uint32_t kTrojanBlockMagic = 0x42505048;  // "HPPB"

/// \brief Serialises header + trojan index + binary rows.
/// \param row_block serialised RowBinaryBlock (rows sorted by the index
///        key when \p index is non-null).
std::string BuildTrojanBlock(std::string row_block, const TrojanIndex* index,
                             int sort_column);

/// \brief Zero-copy reader for a trojan block.
class TrojanBlockView {
 public:
  static Result<TrojanBlockView> Open(std::string_view data);

  bool has_index() const { return index_bytes_ > 0; }
  int sort_column() const { return sort_column_; }
  uint64_t index_bytes() const { return index_bytes_; }
  uint64_t data_bytes() const { return data_.size() - rows_offset_; }
  uint64_t total_bytes() const { return data_.size(); }

  Result<TrojanIndex> ReadIndex() const;
  Result<RowBinaryBlockView> OpenRows() const;
  /// Offset of the row data section within the block (the trojan index's
  /// byte ranges are relative to this).
  uint64_t rows_offset() const { return rows_offset_; }

 private:
  std::string_view data_;
  int sort_column_ = -1;
  uint64_t index_offset_ = 0;
  uint64_t index_bytes_ = 0;
  uint64_t rows_offset_ = 0;
};

}  // namespace hadooppp
}  // namespace hail
