/// \file trojan_block.h
/// \brief Hadoop++'s physical block: trojan index + binary rows (paper §5).
///
/// Hadoop++ [12] converts text blocks to a binary row layout and appends a
/// trojan index per *logical* block — every replica stores identical
/// bytes, so only one attribute can ever be indexed. The block header must
/// be read by the JobClient during the split phase (unlike HAIL, which
/// keeps replica metadata in the namenode).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hdfs/replica_transform.h"
#include "index/trojan_index.h"
#include "layout/row_binary.h"
#include "schema/schema.h"
#include "util/result.h"

namespace hail {
namespace hadooppp {

inline constexpr uint32_t kTrojanBlockMagic = 0x42505048;  // "HPPB"

/// \brief Serialises header + trojan index + binary rows.
/// \param row_block serialised RowBinaryBlock (rows sorted by the index
///        key when \p index is non-null).
std::string BuildTrojanBlock(std::string row_block, const TrojanIndex* index,
                             int sort_column);

/// \brief Configuration of the Hadoop++ conversion policy.
struct TrojanTransformParams {
  Schema schema;
  /// Attribute the trojan index is built on; -1 converts to binary only.
  int index_column = -1;
  /// Real rows per trojan directory entry.
  uint32_t rows_per_entry = 8;
  /// Real chunk size for the block's checksums.
  uint32_t chunk_bytes = 512;
};

/// \brief The Hadoop++ per-replica layout policy (paper §5).
///
/// BeginBlock converts one text block to the trojan layout exactly once:
/// rows parse straight into typed columns (bad rows are dropped — the
/// Hadoop++ converter has no bad-record section), the key column is
/// argsorted without Value boxing, and rows are emitted in sorted order
/// from the columns. Every BuildReplica returns the same bytes — Hadoop++
/// cannot give different replicas different indexes, which is HAIL's key
/// advantage. Distributed through hdfs::StoreTransformedReplicas since
/// its cost is billed at MapReduce phase level, not through the chain.
class TrojanReplicaTransformer : public hdfs::ReplicaTransformer {
 public:
  /// \p params must outlive the transformer (one params struct typically
  /// serves a whole upload; the transformer is per block). The rvalue
  /// overload is deleted so a temporary cannot silently dangle.
  explicit TrojanReplicaTransformer(const TrojanTransformParams& params)
      : params_(params) {}
  explicit TrojanReplicaTransformer(TrojanTransformParams&&) = delete;

  Status BeginBlock(std::string_view text_block) override;
  Result<hdfs::ReplicaBlock> BuildReplica(
      size_t replica_index, const hdfs::ReplicaWorkContext& ctx) override;

  /// Size of the converted block (phase-level billing input).
  uint64_t binary_bytes() const { return block_bytes_.size(); }
  /// Rows that survived conversion.
  uint32_t num_rows() const { return num_rows_; }

 private:
  const TrojanTransformParams& params_;
  std::string block_bytes_;
  std::vector<uint32_t> chunk_crcs_;
  hdfs::HailBlockReplicaInfo info_;
  uint32_t num_rows_ = 0;
};

/// \brief Zero-copy reader for a trojan block.
class TrojanBlockView {
 public:
  static Result<TrojanBlockView> Open(std::string_view data);

  bool has_index() const { return index_bytes_ > 0; }
  int sort_column() const { return sort_column_; }
  uint64_t index_bytes() const { return index_bytes_; }
  uint64_t data_bytes() const { return data_.size() - rows_offset_; }
  uint64_t total_bytes() const { return data_.size(); }

  Result<TrojanIndex> ReadIndex() const;
  Result<RowBinaryBlockView> OpenRows() const;
  /// Offset of the row data section within the block (the trojan index's
  /// byte ranges are relative to this).
  uint64_t rows_offset() const { return rows_offset_; }

 private:
  std::string_view data_;
  int sort_column_ = -1;
  uint64_t index_offset_ = 0;
  uint64_t index_bytes_ = 0;
  uint64_t rows_offset_ = 0;
};

}  // namespace hadooppp
}  // namespace hail
