#include "hadooppp/hadooppp_upload.h"

#include <algorithm>

#include "hadooppp/trojan_block.h"
#include "hail/hail_client.h"  // CutRowAlignedBlocks
#include "hdfs/replica_transform.h"

namespace hail {
namespace hadooppp {

namespace {

/// Totals used by the phase-level MapReduce cost model.
struct PhaseTotals {
  uint64_t logical_input_bytes = 0;    // bytes each map task reads
  uint64_t logical_output_bytes = 0;   // bytes written once (pre-replication)
  uint64_t logical_records = 0;
  uint32_t map_tasks = 0;
  bool parse_text = false;  // conversion job parses text; index job does not
  bool sort_records = false;
};

/// Phase duration for one MapReduce pass over the dataset: the per-node
/// bottleneck of disk, network, CPU and task dispatch, plus job overheads.
/// The paper's Hadoop++ numbers (Fig. 4a) calibrate the inflation factors.
double PhaseSeconds(hdfs::MiniDfs* dfs, const PhaseTotals& t,
                    double io_inflation) {
  sim::SimCluster& cluster = dfs->cluster();
  const int nodes = cluster.num_nodes();
  const sim::CostConstants& c = cluster.constants();
  // All nodes share the load evenly (the paper generates data per node).
  const auto per_node = [&](uint64_t total) {
    return total / static_cast<uint64_t>(std::max(1, nodes));
  };
  const sim::CostModel& cost = cluster.node(0).cost();
  const int replication = dfs->config().replication;

  // Disk: input read + shuffle/merge spills + replicated output writes.
  const uint64_t spill_bytes =
      static_cast<uint64_t>(c.hpp_merge_passes) * 2ull *
      per_node(t.logical_output_bytes);
  const uint64_t disk_bytes =
      per_node(t.logical_input_bytes) + spill_bytes +
      static_cast<uint64_t>(replication) * per_node(t.logical_output_bytes);
  const double disk_s = cost.DiskTransfer(disk_bytes) * io_inflation;

  // Network: shuffle (send + receive) plus replication pipeline traffic.
  const uint64_t net_bytes =
      2ull * per_node(t.logical_output_bytes) +
      static_cast<uint64_t>(replication - 1) *
          per_node(t.logical_output_bytes);
  const double net_s = cost.NetTransfer(net_bytes);

  // CPU: parse/deserialise + sort + checksums, spread over the cores.
  double cpu_s = 0.0;
  if (t.parse_text) cpu_s += cost.TextParse(per_node(t.logical_input_bytes));
  if (t.sort_records) {
    cpu_s += cost.SortBlock(per_node(t.logical_records), 0,
                            per_node(t.logical_output_bytes),
                            /*string_key=*/false);
  }
  cpu_s += cost.Crc(per_node(t.logical_output_bytes) *
                    static_cast<uint64_t>(replication));
  cpu_s /= std::max(1, cluster.node(0).profile().cores);

  // Dispatch floor: Hadoop 0.20 hands each TaskTracker one map task per
  // heartbeat.
  const double dispatch_s = static_cast<double>(t.map_tasks) /
                            std::max(1, nodes) * c.heartbeat_interval_s /
                            std::max(1, c.tasks_per_heartbeat);

  return c.job_startup_s + std::max({disk_s, net_s, cpu_s, dispatch_s}) +
         c.job_cleanup_s;
}

}  // namespace

Result<HadoopPPUploadReport> HadoopPPUpload(
    hdfs::MiniDfs* dfs, const HadoopPPUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time) {
  HadoopPPUploadReport report;
  report.started = start_time;
  const hdfs::DfsConfig& cfg = dfs->config();
  const sim::CostConstants& c = dfs->cluster().constants();

  // ---- phase 0: stock HDFS upload of the raw text ----
  // Temp files live under a root-level staging prefix so they can never
  // shadow the converted dataset directory in directory listings.
  std::vector<hdfs::ParallelUploadSpec> temp_specs = specs;
  for (auto& spec : temp_specs) spec.dfs_path = "/.hpp_staging" + spec.dfs_path;
  HAIL_ASSIGN_OR_RETURN(hdfs::UploadReport text_report,
                        hdfs::ParallelUploadText(dfs, temp_specs, start_time));
  report.hdfs_upload_seconds = text_report.duration();
  report.text_real_bytes = text_report.real_bytes;

  // ---- phase 1: conversion MapReduce job (text -> binary rows) ----
  // Functional: build the binary (and optionally indexed) blocks for real
  // via the shared replica-layout policy (columnar parse, typed sort, one
  // conversion per block). The conversion and index jobs are billed as
  // phase-level passes below, so the blocks are distributed with
  // StoreTransformedReplicas instead of the chain pipeline.
  PhaseTotals conv;
  conv.parse_text = true;
  uint64_t binary_logical_bytes = 0;

  TrojanTransformParams tparams;
  tparams.schema = config.schema;
  tparams.index_column = config.index_column;
  tparams.rows_per_entry = config.rows_per_entry;
  tparams.chunk_bytes = cfg.chunk_bytes;
  const std::vector<hdfs::Datanode*> datanodes = dfs->datanode_ptrs();

  for (const hdfs::ParallelUploadSpec& spec : specs) {
    const std::vector<std::string_view> blocks =
        CutRowAlignedBlocks(spec.text, cfg.block_size);
    for (std::string_view text_block : blocks) {
      TrojanReplicaTransformer transformer(tparams);

      // Store identical bytes on every replica (the defining limitation).
      HAIL_ASSIGN_OR_RETURN(
          hdfs::BlockAllocation alloc,
          dfs->namenode().AllocateBlock(spec.dfs_path, spec.client_node,
                                        cfg.replication));
      HAIL_RETURN_NOT_OK(transformer.BeginBlock(text_block));
      const uint64_t logical_bytes = static_cast<uint64_t>(
          static_cast<double>(transformer.binary_bytes()) * cfg.scale_factor);
      HAIL_ASSIGN_OR_RETURN(
          uint64_t stored,
          hdfs::StoreTransformedReplicas(&dfs->namenode(), datanodes, alloc,
                                         logical_bytes, &transformer));
      (void)stored;

      binary_logical_bytes += logical_bytes;
      conv.logical_records += static_cast<uint64_t>(
          static_cast<double>(transformer.num_rows()) * cfg.scale_factor);
      conv.map_tasks += 1;
      report.blocks += 1;
      report.binary_real_bytes += transformer.binary_bytes();
    }
  }
  conv.logical_input_bytes = text_report.logical_bytes;
  conv.logical_output_bytes = binary_logical_bytes;
  report.conversion_seconds =
      PhaseSeconds(dfs, conv, c.hpp_conversion_inflation);

  // The staged text replicas are consumed by the conversion job; drop
  // them (frees simulated disk and real memory).
  for (const auto& spec : temp_specs) {
    HAIL_ASSIGN_OR_RETURN(std::vector<uint64_t> dropped,
                          dfs->namenode().DeleteFile(spec.dfs_path));
    for (uint64_t block_id : dropped) {
      for (int dn = 0; dn < dfs->num_datanodes(); ++dn) {
        if (dfs->datanode(dn).HasBlock(block_id)) {
          (void)dfs->datanode(dn).DeleteBlock(block_id);
        }
      }
    }
  }

  // ---- phase 2 billing: the trojan-index MapReduce job ----
  if (config.index_column >= 0) {
    PhaseTotals idx;
    idx.logical_input_bytes = binary_logical_bytes;
    idx.logical_output_bytes = binary_logical_bytes;
    idx.logical_records = conv.logical_records;
    idx.map_tasks = conv.map_tasks;
    idx.sort_records = true;
    report.index_seconds = PhaseSeconds(dfs, idx, c.hpp_index_inflation);
  }

  report.completed = text_report.completed + report.conversion_seconds +
                     report.index_seconds;
  return report;
}

}  // namespace hadooppp
}  // namespace hail
