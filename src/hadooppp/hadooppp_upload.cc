#include "hadooppp/hadooppp_upload.h"

#include <algorithm>

#include "hadooppp/trojan_block.h"
#include "hail/hail_client.h"  // CutRowAlignedBlocks
#include "hdfs/packet.h"
#include "layout/column_vector.h"
#include "schema/row_parser.h"

namespace hail {
namespace hadooppp {

namespace {

/// Totals used by the phase-level MapReduce cost model.
struct PhaseTotals {
  uint64_t logical_input_bytes = 0;    // bytes each map task reads
  uint64_t logical_output_bytes = 0;   // bytes written once (pre-replication)
  uint64_t logical_records = 0;
  uint32_t map_tasks = 0;
  bool parse_text = false;  // conversion job parses text; index job does not
  bool sort_records = false;
};

/// Phase duration for one MapReduce pass over the dataset: the per-node
/// bottleneck of disk, network, CPU and task dispatch, plus job overheads.
/// The paper's Hadoop++ numbers (Fig. 4a) calibrate the inflation factors.
double PhaseSeconds(hdfs::MiniDfs* dfs, const PhaseTotals& t,
                    double io_inflation) {
  sim::SimCluster& cluster = dfs->cluster();
  const int nodes = cluster.num_nodes();
  const sim::CostConstants& c = cluster.constants();
  // All nodes share the load evenly (the paper generates data per node).
  const auto per_node = [&](uint64_t total) {
    return total / static_cast<uint64_t>(std::max(1, nodes));
  };
  const sim::CostModel& cost = cluster.node(0).cost();
  const int replication = dfs->config().replication;

  // Disk: input read + shuffle/merge spills + replicated output writes.
  const uint64_t spill_bytes =
      static_cast<uint64_t>(c.hpp_merge_passes) * 2ull *
      per_node(t.logical_output_bytes);
  const uint64_t disk_bytes =
      per_node(t.logical_input_bytes) + spill_bytes +
      static_cast<uint64_t>(replication) * per_node(t.logical_output_bytes);
  const double disk_s = cost.DiskTransfer(disk_bytes) * io_inflation;

  // Network: shuffle (send + receive) plus replication pipeline traffic.
  const uint64_t net_bytes =
      2ull * per_node(t.logical_output_bytes) +
      static_cast<uint64_t>(replication - 1) *
          per_node(t.logical_output_bytes);
  const double net_s = cost.NetTransfer(net_bytes);

  // CPU: parse/deserialise + sort + checksums, spread over the cores.
  double cpu_s = 0.0;
  if (t.parse_text) cpu_s += cost.TextParse(per_node(t.logical_input_bytes));
  if (t.sort_records) {
    cpu_s += cost.SortBlock(per_node(t.logical_records), 0,
                            per_node(t.logical_output_bytes),
                            /*string_key=*/false);
  }
  cpu_s += cost.Crc(per_node(t.logical_output_bytes) *
                    static_cast<uint64_t>(replication));
  cpu_s /= std::max(1, cluster.node(0).profile().cores);

  // Dispatch floor: Hadoop 0.20 hands each TaskTracker one map task per
  // heartbeat.
  const double dispatch_s = static_cast<double>(t.map_tasks) /
                            std::max(1, nodes) * c.heartbeat_interval_s /
                            std::max(1, c.tasks_per_heartbeat);

  return c.job_startup_s + std::max({disk_s, net_s, cpu_s, dispatch_s}) +
         c.job_cleanup_s;
}

}  // namespace

Result<HadoopPPUploadReport> HadoopPPUpload(
    hdfs::MiniDfs* dfs, const HadoopPPUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time) {
  HadoopPPUploadReport report;
  report.started = start_time;
  const hdfs::DfsConfig& cfg = dfs->config();
  const sim::CostConstants& c = dfs->cluster().constants();

  // ---- phase 0: stock HDFS upload of the raw text ----
  // Temp files live under a root-level staging prefix so they can never
  // shadow the converted dataset directory in directory listings.
  std::vector<hdfs::ParallelUploadSpec> temp_specs = specs;
  for (auto& spec : temp_specs) spec.dfs_path = "/.hpp_staging" + spec.dfs_path;
  HAIL_ASSIGN_OR_RETURN(hdfs::UploadReport text_report,
                        hdfs::ParallelUploadText(dfs, temp_specs, start_time));
  report.hdfs_upload_seconds = text_report.duration();
  report.text_real_bytes = text_report.real_bytes;

  // ---- phase 1: conversion MapReduce job (text -> binary rows) ----
  // Functional: build the binary (and optionally indexed) blocks for real.
  // The conversion and index jobs are billed as phase-level passes below.
  RowParser parser(config.schema);
  PhaseTotals conv;
  conv.parse_text = true;
  uint64_t binary_logical_bytes = 0;

  for (const hdfs::ParallelUploadSpec& spec : specs) {
    const std::vector<std::string_view> blocks =
        CutRowAlignedBlocks(spec.text, cfg.block_size);
    for (std::string_view text_block : blocks) {
      // Parse rows (bad rows are dropped by Hadoop++'s converter — it has
      // no bad-record section; they would fail its binary serialiser).
      RowBinaryBlockBuilder builder(config.schema);
      ColumnVector keys(config.index_column >= 0
                            ? config.schema.field(config.index_column).type
                            : FieldType::kInt32);
      std::vector<std::vector<Value>> rows;
      for (std::string_view row : SplitRows(text_block)) {
        if (row.empty()) continue;
        ParsedRow parsed = parser.Parse(row);
        if (!parsed.ok) continue;
        rows.push_back(std::move(parsed.values));
      }

      std::string block_bytes;
      int sort_column = -1;
      if (config.index_column >= 0) {
        // Phase 2 work, done in place: sort rows by the index key and
        // build the trojan directory.
        const int col = config.index_column;
        std::stable_sort(rows.begin(), rows.end(),
                         [col](const std::vector<Value>& a,
                               const std::vector<Value>& b) {
                           return a[static_cast<size_t>(col)] <
                                  b[static_cast<size_t>(col)];
                         });
        for (const auto& row : rows) {
          keys.Append(row[static_cast<size_t>(col)]);
          builder.AddRow(row);
        }
        const std::vector<uint64_t> offsets = builder.row_offsets();
        const uint64_t data_bytes = builder.data_bytes();
        const TrojanIndex index = TrojanIndex::Build(
            keys, offsets, data_bytes, config.rows_per_entry);
        block_bytes =
            BuildTrojanBlock(builder.Finish(), &index, config.index_column);
        sort_column = config.index_column;
      } else {
        for (const auto& row : rows) builder.AddRow(row);
        block_bytes = BuildTrojanBlock(builder.Finish(), nullptr, -1);
      }

      const uint64_t logical_bytes = static_cast<uint64_t>(
          static_cast<double>(block_bytes.size()) * cfg.scale_factor);
      binary_logical_bytes += logical_bytes;
      conv.logical_records += static_cast<uint64_t>(
          static_cast<double>(rows.size()) * cfg.scale_factor);
      conv.map_tasks += 1;
      report.blocks += 1;
      report.binary_real_bytes += block_bytes.size();

      // Store identical bytes on every replica (the defining limitation).
      HAIL_ASSIGN_OR_RETURN(
          hdfs::BlockAllocation alloc,
          dfs->namenode().AllocateBlock(spec.dfs_path, spec.client_node,
                                        cfg.replication));
      const std::vector<uint32_t> crcs =
          hdfs::ComputeChunkChecksums(block_bytes, cfg.chunk_bytes);
      hdfs::HailBlockReplicaInfo info;
      info.layout = hdfs::ReplicaLayout::kRowBinary;
      info.sort_column = sort_column;
      info.index_kind = sort_column >= 0 ? "trojan" : "";
      info.replica_bytes = block_bytes.size();
      for (int dn : alloc.datanodes) {
        dfs->datanode(dn).StoreBlock(alloc.block_id, block_bytes, crcs);
        HAIL_RETURN_NOT_OK(
            dfs->namenode().RegisterReplica(alloc.block_id, dn, info));
      }
      dfs->namenode().SetBlockLogicalBytes(alloc.block_id, logical_bytes);
    }
  }
  conv.logical_input_bytes = text_report.logical_bytes;
  conv.logical_output_bytes = binary_logical_bytes;
  report.conversion_seconds =
      PhaseSeconds(dfs, conv, c.hpp_conversion_inflation);

  // The staged text replicas are consumed by the conversion job; drop
  // them (frees simulated disk and real memory).
  for (const auto& spec : temp_specs) {
    HAIL_ASSIGN_OR_RETURN(std::vector<uint64_t> dropped,
                          dfs->namenode().DeleteFile(spec.dfs_path));
    for (uint64_t block_id : dropped) {
      for (int dn = 0; dn < dfs->num_datanodes(); ++dn) {
        if (dfs->datanode(dn).HasBlock(block_id)) {
          (void)dfs->datanode(dn).DeleteBlock(block_id);
        }
      }
    }
  }

  // ---- phase 2 billing: the trojan-index MapReduce job ----
  if (config.index_column >= 0) {
    PhaseTotals idx;
    idx.logical_input_bytes = binary_logical_bytes;
    idx.logical_output_bytes = binary_logical_bytes;
    idx.logical_records = conv.logical_records;
    idx.map_tasks = conv.map_tasks;
    idx.sort_records = true;
    report.index_seconds = PhaseSeconds(dfs, idx, c.hpp_index_inflation);
  }

  report.completed = text_report.completed + report.conversion_seconds +
                     report.index_seconds;
  return report;
}

}  // namespace hadooppp
}  // namespace hail
