/// \file hadooppp_upload.h
/// \brief The Hadoop++ ingestion path: HDFS upload + two MapReduce jobs.
///
/// "Index creation in Hadoop++ is very expensive, as after uploading the
/// input file to HDFS, Hadoop++ uses an additional MapReduce job to
/// convert the data to binary format and to create the trojan index" (§5).
/// This module reproduces that cost structure:
///   phase 0 — stock HDFS text upload (reused from src/hdfs);
///   phase 1 — conversion job: text -> binary rows, re-replicated;
///   phase 2 — index job (only when an index is requested): sort + trojan
///             index per logical block, re-replicated again.
/// All replicas of a block end up byte-identical — Hadoop++ cannot give
/// different replicas different indexes, which is HAIL's key advantage.

#pragma once

#include <string>
#include <vector>

#include "hdfs/dfs_client.h"
#include "schema/schema.h"

namespace hail {
namespace hadooppp {

struct HadoopPPUploadConfig {
  Schema schema;
  /// Attribute to build the trojan index on; -1 converts to binary only
  /// (the paper's "0 indexes" Hadoop++ configuration).
  int index_column = -1;
  /// Real rows per trojan directory entry (logical density is billed from
  /// CostConstants::trojan_rows_per_entry_logical).
  uint32_t rows_per_entry = 8;
};

struct HadoopPPUploadReport {
  sim::SimTime started = 0.0;
  sim::SimTime completed = 0.0;
  double hdfs_upload_seconds = 0.0;
  double conversion_seconds = 0.0;
  double index_seconds = 0.0;
  uint32_t blocks = 0;
  uint64_t text_real_bytes = 0;
  uint64_t binary_real_bytes = 0;
  double duration() const { return completed - started; }
};

/// Runs the full Hadoop++ ingestion for one file per client node.
/// Data becomes queryable under each spec's dfs_path with
/// ReplicaLayout::kRowBinary replicas.
Result<HadoopPPUploadReport> HadoopPPUpload(
    hdfs::MiniDfs* dfs, const HadoopPPUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time = 0.0);

}  // namespace hadooppp
}  // namespace hail
