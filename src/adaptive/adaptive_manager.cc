#include "adaptive/adaptive_manager.h"

#include <algorithm>

#include "obs/metrics.h"

namespace hail {
namespace adaptive {

AdaptiveManager::AdaptiveManager(hdfs::MiniDfs* dfs, Schema schema,
                                 std::string file, AdaptiveConfig config)
    : dfs_(dfs),
      schema_(std::move(schema)),
      file_(std::move(file)),
      observer_(config.observer),
      planner_(config.planner) {}

std::vector<MaintenanceTask> AdaptiveManager::TakeTasks() {
  std::vector<MaintenanceTask> out(pending_.begin(), pending_.end());
  pending_.clear();
  return out;
}

bool AdaptiveManager::IsPending(const MaintenanceTask& task) const {
  return std::find(pending_.begin(), pending_.end(), task) != pending_.end();
}

size_t AdaptiveManager::Enqueue(std::vector<MaintenanceTask> tasks,
                                bool front) {
  // An arriving re-sort supersedes a still-queued lazy install for the
  // same (block, column): once the replica is going to be sorted anyway,
  // the dense index would be a wasted rewrite plus permanent bloat.
  for (const MaintenanceTask& task : tasks) {
    if (task.kind != MaintenanceTask::Kind::kResortReplica) continue;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->kind == MaintenanceTask::Kind::kInstallUnclustered &&
          it->block_id == task.block_id && it->column == task.column) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  size_t added = 0;
  if (front) {
    for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
      if (!IsPending(*it)) {
        pending_.push_front(*it);
        ++added;
      }
    }
  } else {
    for (MaintenanceTask& task : tasks) {
      if (!IsPending(task)) {
        pending_.push_back(task);
        ++added;
      }
    }
  }
  return added;
}

void AdaptiveManager::ReturnUnfinished(std::vector<MaintenanceTask> tasks) {
  Enqueue(std::move(tasks), /*front=*/true);
}

size_t AdaptiveManager::RequestStatsBackfill() {
  const size_t added =
      Enqueue(PlanStatsBackfill(*dfs_, file_), /*front=*/false);
  planned_total_ += added;
  return added;
}

void AdaptiveManager::PruneConverged() {
  std::deque<MaintenanceTask> kept;
  for (const MaintenanceTask& task : pending_) {
    // A queued stats backfill converges once the block's sidecar is fresh
    // (another task or an upload beat it there).
    if (task.kind == MaintenanceTask::Kind::kBuildStats) {
      if (!dfs_->namenode().BlockStatsFresh(task.block_id)) {
        kept.push_back(task);
      }
      continue;
    }
    // Only index-building rewrites converge by "some host has the index";
    // replication adds/evictions stay queued (an extra copy is wanted on
    // its *specific* target even once an indexed replica exists).
    const bool index_task =
        task.kind == MaintenanceTask::Kind::kInstallUnclustered ||
        task.kind == MaintenanceTask::Kind::kResortReplica;
    if (!index_task || dfs_->namenode()
                           .GetHostsWithIndex(task.block_id, task.column)
                           .empty()) {
      kept.push_back(task);
    }
  }
  pending_ = std::move(kept);
}

void AdaptiveManager::ObserveJob(const mapreduce::JobSpec& spec,
                                 const mapreduce::JobResult& result) {
  if (spec.input_file != file_ || !spec.annotation.has_value()) return;
  observer_.Observe(*spec.annotation, result);
  PruneConverged();
  std::vector<MaintenanceTask> tasks =
      planner_.Plan(*dfs_, schema_, file_, observer_, &last_plan_);
  const size_t planned = Enqueue(std::move(tasks), /*front=*/false);
  planned_total_ += planned;
  obs::MetricsRegistry& m = dfs_->metrics();
  m.counter("adaptive.queries_observed")->Inc();
  m.counter("adaptive.tasks_planned")->Add(planned);
  m.gauge("adaptive.tasks_pending")
      ->Set(static_cast<double>(pending_.size()));
}

}  // namespace adaptive
}  // namespace hail
