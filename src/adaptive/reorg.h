/// \file reorg.h
/// \brief Per-block replica rewrites: the adaptive loop's hands.
///
/// A MaintenanceTask names one replica and what to make of it:
///  - kInstallUnclustered: splice a dense per-block UnclusteredIndex on
///    the hot column into the existing replica (LIAH-style lazy
///    adaptivity) — sort order, clustered index and PAX payload are copied
///    verbatim, so the rewrite costs one read + key sort + write;
///  - kResortReplica: fully re-sort the replica to the hot column and
///    rebuild its clustered index via the same PermutedCopy machinery the
///    upload-time HailReplicaTransformer uses.
///
/// Execution is split so the JobRunner can bill it like any other
/// simulated work: PrepareReorg (at task assignment, read-only) computes
/// the new replica bytes and the simulated duration; CommitReorg (at the
/// completion event) atomically stores the bytes — bumping the datanode's
/// block generation, which invalidates every BlockCache entry for the old
/// bytes — and re-registers the replica in the namenode's Dir_rep so
/// getHostsWithIndex immediately routes queries to the new index.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/dfs_client.h"

namespace hail {
namespace adaptive {

/// \brief One background replica rewrite.
struct MaintenanceTask {
  enum class Kind : uint8_t {
    /// Add a dense unclustered index on `column`, keep everything else.
    kInstallUnclustered,
    /// Re-sort the replica by `column` + rebuild the clustered index.
    kResortReplica,
    /// Aggressive replication: copy the block's best replica for `column`
    /// onto `datanode` (which must not hold one), registering an extra
    /// replica *beyond* the replication factor. Byte copy, no transform.
    kAddReplica,
    /// Drop the extra replica on `datanode` (storage-budget eviction).
    /// Refused when it would leave fewer than `replication` alive copies.
    kEvictReplica,
    /// Build the planner's per-column block-statistics sidecar from the
    /// replica on `datanode` and register it with the namenode (backfill
    /// for blocks loaded before stats existed, or whose stats went stale
    /// after a repair/reorg). Metadata-only commit: the replica bytes and
    /// its generation are untouched. `column` is -1.
    kBuildStats,
  };

  uint64_t block_id = 0;
  /// Datanode whose replica is rewritten (the rewrite runs there). For
  /// kAddReplica the *target* of the copy; for kEvictReplica the evictee.
  int datanode = -1;
  /// The hot column the rewrite serves.
  int column = -1;
  Kind kind = Kind::kInstallUnclustered;

  bool operator==(const MaintenanceTask& o) const {
    return block_id == o.block_id && datanode == o.datanode &&
           column == o.column && kind == o.kind;
  }
};

/// \brief A rewrite ready to commit, plus its simulated price.
struct PreparedReorg {
  std::string bytes;                     // new replica bytes
  std::vector<uint32_t> chunk_crcs;      // recomputed checksums
  hdfs::HailBlockReplicaInfo info;       // new Dir_rep record
  /// kBuildStats only: the serialized planner::BlockStats sidecar to
  /// register at commit (replica bytes stay untouched).
  std::string stats;
  /// Simulated seconds the rewrite occupies its slot (read + CPU + write),
  /// billed on the owning datanode's cost model.
  double seconds = 0.0;
};

/// Computes the rewrite without mutating anything. Fails when the replica
/// is missing, not PAX, or the column is out of range. Deterministic for a
/// given DFS state.
Result<PreparedReorg> PrepareReorg(const hdfs::MiniDfs& dfs,
                                   const MaintenanceTask& task);

/// Applies a prepared rewrite: StoreBlock (generation bump + cache
/// invalidation) and Dir_rep re-registration. Refuses when the node died
/// since preparation (the task is requeued by the caller and survives the
/// kill/revive cycle).
Status CommitReorg(hdfs::MiniDfs* dfs, const MaintenanceTask& task,
                   PreparedReorg prepared);

}  // namespace adaptive
}  // namespace hail
