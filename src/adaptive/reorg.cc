#include "adaptive/reorg.h"

#include <algorithm>
#include <utility>

#include "hail/hail_block.h"
#include "hdfs/packet.h"
#include "index/unclustered_index.h"
#include "layout/column_vector.h"
#include "planner/block_stats.h"

namespace hail {
namespace adaptive {

namespace {

/// Aggressive replication (kAddReplica): a plain byte copy of the block's
/// best replica for the hot column onto `task.datanode`. Prefers a source
/// whose replica carries a clustered index on the column (lowest datanode
/// id), so the extra copy is the *useful* layout; falls back to the
/// lowest-id alive PAX holder. Billed like a re-replication repair: source
/// read + network transfer + checksum + target write.
Result<PreparedReorg> PrepareAddReplica(const hdfs::MiniDfs& dfs,
                                        const MaintenanceTask& task) {
  const hdfs::Namenode& nn = dfs.namenode();
  if (nn.GetReplicaInfo(task.block_id, task.datanode).ok()) {
    return Status::AlreadyExists("target already holds a replica of block " +
                                 std::to_string(task.block_id));
  }
  int source = -1;
  const std::vector<int> indexed =
      nn.GetHostsWithIndex(task.block_id, task.column);
  if (!indexed.empty()) {
    source = *std::min_element(indexed.begin(), indexed.end());
  } else {
    HAIL_ASSIGN_OR_RETURN(std::vector<int> holders,
                          nn.GetBlockDatanodes(task.block_id));
    std::sort(holders.begin(), holders.end());
    for (int dn : holders) {
      auto info = nn.GetReplicaInfo(task.block_id, dn);
      if (info.ok() && info->layout == hdfs::ReplicaLayout::kPax) {
        source = dn;
        break;
      }
    }
  }
  if (source < 0) {
    return Status::Unavailable("no live PAX source replica for block " +
                               std::to_string(task.block_id));
  }
  HAIL_ASSIGN_OR_RETURN(hdfs::HailBlockReplicaInfo info,
                        nn.GetReplicaInfo(task.block_id, source));
  HAIL_ASSIGN_OR_RETURN(std::string_view raw,
                        dfs.datanode(source).ReadBlockRaw(task.block_id));

  PreparedReorg out;
  out.bytes = std::string(raw);
  out.info = info;
  out.info.replica_bytes = out.bytes.size();
  out.chunk_crcs = hdfs::ComputeChunkChecksums(
      out.bytes, static_cast<uint32_t>(dfs.config().chunk_bytes));
  const double scale = dfs.config().scale_factor;
  const uint64_t logical = static_cast<uint64_t>(
      static_cast<double>(out.bytes.size()) * scale);
  const sim::CostModel& src_cost = dfs.cluster().node(source).cost();
  const sim::CostModel& dst_cost = dfs.cluster().node(task.datanode).cost();
  out.seconds = src_cost.DiskAccess(logical);
  if (source != task.datanode) out.seconds += dst_cost.NetTransfer(logical);
  out.seconds += dst_cost.Crc(logical) + dst_cost.DiskAccess(logical);
  return out;
}

}  // namespace

Result<PreparedReorg> PrepareReorg(const hdfs::MiniDfs& dfs,
                                   const MaintenanceTask& task) {
  if (task.datanode < 0 || task.datanode >= dfs.num_datanodes()) {
    return Status::InvalidArgument("maintenance task names no datanode");
  }
  if (task.kind == MaintenanceTask::Kind::kAddReplica) {
    return PrepareAddReplica(dfs, task);
  }
  if (task.kind == MaintenanceTask::Kind::kEvictReplica) {
    // Dropping a replica is a metadata operation plus an unlink: bill one
    // seek on the evictee; the actual drop happens at commit.
    HAIL_RETURN_NOT_OK(
        dfs.namenode().GetReplicaInfo(task.block_id, task.datanode).status());
    PreparedReorg out;
    out.seconds = dfs.cluster().node(task.datanode).cost().DiskAccess(0);
    return out;
  }
  HAIL_ASSIGN_OR_RETURN(
      hdfs::HailBlockReplicaInfo old_info,
      dfs.namenode().GetReplicaInfo(task.block_id, task.datanode));
  if (old_info.layout != hdfs::ReplicaLayout::kPax) {
    return Status::InvalidArgument(
        "adaptive reorg requires a PAX (HAIL) replica");
  }
  const hdfs::Datanode& node = dfs.datanode(task.datanode);
  HAIL_ASSIGN_OR_RETURN(std::string_view raw,
                        node.ReadBlockRaw(task.block_id));
  HAIL_ASSIGN_OR_RETURN(HailBlockView view, HailBlockView::Open(raw));
  HAIL_ASSIGN_OR_RETURN(PaxBlock base,
                        PaxBlock::Deserialize(view.pax_section()));
  if (task.kind == MaintenanceTask::Kind::kBuildStats) {
    // Stats backfill: read the replica, summarize every column, hand the
    // sidecar to CommitReorg. Metadata-only — no bytes are written back.
    PreparedReorg out;
    out.info = old_info;
    out.stats = planner::BlockStats::Build(base).Serialize();
    const double s = dfs.config().scale_factor;
    const sim::CostModel& node_cost = dfs.cluster().node(task.datanode).cost();
    const uint64_t logical_rows = static_cast<uint64_t>(
        static_cast<double>(base.num_records()) * s);
    const uint64_t logical_payload = static_cast<uint64_t>(
        static_cast<double>(base.PayloadBytes()) * s);
    out.seconds =
        node_cost.DiskAccess(logical_payload) +
        node_cost.StatsBuild(logical_rows * base.schema().num_fields());
    return out;
  }
  if (task.column < 0 || task.column >= base.schema().num_fields()) {
    return Status::InvalidArgument("reorg column outside the schema");
  }

  // Logical (paper-scale) quantities for billing, derived exactly like the
  // upload path's HailTransformParams.
  const double scale = dfs.config().scale_factor;
  const sim::CostModel& cost = dfs.cluster().node(task.datanode).cost();
  const sim::CostConstants& c = dfs.cluster().constants();
  const uint64_t logical_records = static_cast<uint64_t>(
      static_cast<double>(base.num_records()) * scale);
  const uint64_t logical_data = static_cast<uint64_t>(
      static_cast<double>(base.PayloadBytes()) * scale);
  const FieldType key_type = base.schema().field(task.column).type;

  PreparedReorg out;
  out.info = old_info;
  out.info.layout = hdfs::ReplicaLayout::kPax;

  double cpu = 0.0;
  uint64_t logical_index_delta = 0;  // index bytes written on top of data
  if (task.kind == MaintenanceTask::Kind::kInstallUnclustered) {
    // Lazy path: sort only (key, rowid) pairs; data + clustered index are
    // spliced through untouched.
    const UnclusteredIndex uc = UnclusteredIndex::Build(base.column(task.column));
    out.bytes = BuildHailBlockParts(view.sort_column(), view.index_section(),
                                    view.pax_section(), task.column,
                                    uc.Serialize());
    out.info.unclustered_column = task.column;
    out.info.unclustered_index_bytes = uc.SerializedBytes();
    cpu += cost.UnclusteredBuild(logical_records);
    // Dense: one (key, rowid) entry per logical record (§3.5) — the same
    // size the reader bills when it later loads this index.
    logical_index_delta = LogicalDenseIndexBytes(logical_records, key_type);
  } else {
    // Full re-sort via the upload-time machinery: raw typed argsort of the
    // key column, PermutedCopy of the shared columns, sparse index.
    const std::vector<uint32_t> perm = ArgSortColumn(base.column(task.column));
    const PaxBlock sorted = base.PermutedCopy(perm);
    const ClusteredIndex index = ClusteredIndex::Build(
        sorted.column(task.column),
        dfs.config().format.varlen_partition_size);
    out.bytes = BuildHailBlock(sorted, &index, task.column);
    out.info.sort_column = task.column;
    out.info.index_kind = "clustered";
    out.info.index_bytes = index.SerializedBytes();
    // The re-sort consumes any previously installed unclustered index
    // (rows moved; its rowids would be stale).
    out.info.unclustered_column = -1;
    out.info.unclustered_index_bytes = 0;
    cpu += cost.SortBlock(
        logical_records,
        static_cast<uint64_t>(static_cast<double>(base.FixedPayloadBytes()) *
                              scale),
        static_cast<uint64_t>(static_cast<double>(base.VarlenPayloadBytes()) *
                              scale),
        key_type == FieldType::kString);
    cpu += cost.IndexBuild(logical_records);
    // Paper-scale sparse root: one entry per 1024 logical values — again
    // exactly what the reader bills for loading it.
    logical_index_delta = LogicalSparseIndexBytes(
        logical_records, c.index_partition_logical, key_type,
        /*pointer_bytes=*/4);
  }
  out.info.replica_bytes = out.bytes.size();
  out.chunk_crcs = hdfs::ComputeChunkChecksums(
      out.bytes, static_cast<uint32_t>(dfs.config().chunk_bytes));

  // Simulated duration on the owning datanode: read the replica, do the
  // CPU work, recompute checksums, write data + index back.
  const uint64_t logical_out = logical_data + logical_index_delta;
  out.seconds = cost.DiskAccess(logical_data)   // read
                + cpu + cost.Crc(logical_out)   // transform + checksums
                + cost.DiskAccess(logical_out); // write
  return out;
}

Status CommitReorg(hdfs::MiniDfs* dfs, const MaintenanceTask& task,
                   PreparedReorg prepared) {
  if (!dfs->cluster().node(task.datanode).alive()) {
    return Status::FailedPrecondition("datanode died mid-reorg");
  }
  if (task.kind == MaintenanceTask::Kind::kEvictReplica) {
    // Never below the configured replication factor: a baseline replica
    // may have died since planning, making this extra copy load-bearing.
    HAIL_RETURN_NOT_OK(dfs->namenode().DropReplica(
        task.block_id, task.datanode, dfs->config().replication));
    hdfs::Datanode& dn = dfs->datanode(task.datanode);
    if (dn.HasBlock(task.block_id)) {
      HAIL_RETURN_NOT_OK(dn.DeleteBlock(task.block_id));
    }
    return Status::OK();
  }
  if (task.kind == MaintenanceTask::Kind::kBuildStats) {
    // Metadata-only: register the sidecar (bumps the directory generation,
    // so cached plans built without these stats are invalidated). The
    // replica bytes and its datanode generation are untouched.
    dfs->namenode().RegisterBlockStats(task.block_id,
                                       std::move(prepared.stats));
    return Status::OK();
  }
  // StoreBlock bumps the replica's generation, which drops every
  // BlockCache entry describing the old bytes.
  dfs->datanode(task.datanode)
      .StoreBlock(task.block_id, std::move(prepared.bytes),
                  prepared.chunk_crcs);
  return dfs->namenode().RegisterReplica(task.block_id, task.datanode,
                                         prepared.info);
}

}  // namespace adaptive
}  // namespace hail
