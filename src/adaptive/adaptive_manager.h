/// \file adaptive_manager.h
/// \brief The closed adaptive-indexing loop, one instance per managed file.
///
/// Wiring (see README "The adaptive path"):
///
///   JobRunner --ObserveJob--> WorkloadObserver --ToWorkload/regret-->
///   ReorgPlanner --MaintenanceTasks--> pending queue --TakeTasks-->
///   JobRunner (low-priority slots) --Prepare/CommitReorg--> datanode
///   StoreBlock (generation bump -> BlockCache invalidation) + namenode
///   Dir_rep update --> next query's getHostsWithIndex finds the new index.
///
/// The manager is deliberately passive: it never runs work itself. The
/// JobRunner drains the pending queue into idle map slots while a
/// foreground job executes, and returns whatever did not finish (node
/// died, job ended first) — those tasks simply wait for the next job, so
/// a reorganization interrupted by a node kill resumes after the revive.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "adaptive/reorg_planner.h"
#include "adaptive/workload_observer.h"

namespace hail {
namespace adaptive {

struct AdaptiveConfig {
  WorkloadObserver::Options observer;
  PlannerOptions planner;
};

/// \brief Observer + planner + pending maintenance queue for one file.
class AdaptiveManager {
 public:
  AdaptiveManager(hdfs::MiniDfs* dfs, Schema schema, std::string file,
                  AdaptiveConfig config = AdaptiveConfig());

  // ---- JobRunner hooks ----

  /// Called at job start: hands every pending maintenance task to the
  /// runner (they execute on idle slots of that job).
  std::vector<MaintenanceTask> TakeTasks();

  /// Called at job end with the tasks that did not run to completion;
  /// they are requeued ahead of newly planned work.
  void ReturnUnfinished(std::vector<MaintenanceTask> tasks);

  /// Called at job end (after ReturnUnfinished): records the query in the
  /// observer and runs one planning round against the *post-reorg*
  /// directory state. Ignores jobs over other files or without an
  /// annotation.
  void ObserveJob(const mapreduce::JobSpec& spec,
                  const mapreduce::JobResult& result);

  /// Queues a kBuildStats task for every block of the file whose stats
  /// sidecar is missing or stale (see PlanStatsBackfill). The tasks ride
  /// the same idle-slot maintenance queue as reorgs. Returns how many
  /// were newly queued (already-pending duplicates are dropped).
  size_t RequestStatsBackfill();

  /// Completion bookkeeping (counters only; the runner already committed).
  void NoteCompleted(uint32_t completed, uint32_t failed) {
    completed_total_ += completed;
    failed_total_ += failed;
  }

  // ---- introspection (tests, bench, demos) ----
  const WorkloadObserver& observer() const { return observer_; }
  const PlanSummary& last_plan() const { return last_plan_; }
  size_t pending_tasks() const { return pending_.size(); }
  uint64_t planned_total() const { return planned_total_; }
  uint64_t completed_total() const { return completed_total_; }
  uint64_t failed_total() const { return failed_total_; }
  const std::string& file() const { return file_; }
  const Schema& schema() const { return schema_; }

 private:
  /// Returns how many tasks were actually added (duplicates are dropped).
  size_t Enqueue(std::vector<MaintenanceTask> tasks, bool front);
  bool IsPending(const MaintenanceTask& task) const;
  /// Drops queued tasks whose block meanwhile gained an alive clustered
  /// replica on the task's column (e.g. a queued unclustered install made
  /// redundant by an escalated re-sort).
  void PruneConverged();

  hdfs::MiniDfs* dfs_;
  Schema schema_;
  std::string file_;
  WorkloadObserver observer_;
  ReorgPlanner planner_;
  std::deque<MaintenanceTask> pending_;
  PlanSummary last_plan_;
  uint64_t planned_total_ = 0;
  uint64_t completed_total_ = 0;
  uint64_t failed_total_ = 0;
};

}  // namespace adaptive
}  // namespace hail
