/// \file workload_observer.h
/// \brief The adaptive loop's eyes: a bounded, decayed log of executed
/// queries and how they were served.
///
/// The paper's aggressive upload-time indexing assumes Bob knows his
/// workload up front; §3.4 defers "which attributes to index?" to future
/// work. The static advisor (hail/index_advisor.h) answers it offline.
/// This observer closes the loop online: the JobTracker records every
/// executed query's annotation, its per-task access path (clustered index
/// scan / unclustered probe / full-scan fallback) and its billed simulated
/// cost. The log is bounded (oldest entries drop) and exponentially
/// decayed (every new observation multiplies existing weights by `decay`),
/// so the derived workload tracks *recent* traffic — a shifted filter
/// column overtakes the old hot set within a handful of queries.
///
/// Two signals feed the planner:
///  - ToWorkload(): decayed WorkloadEntries for index_advisor::ScoreColumns
///    / SuggestSortColumns — "the current best per-replica assignment";
///  - FullScanRegret() / UnclusteredShare(): the fraction of workload
///    weight currently served by full scans (resp. by lazy unclustered
///    probes) — when regret crosses the planner's threshold, replicas get
///    reorganized.

#pragma once

#include <cstdint>
#include <deque>

#include "hail/index_advisor.h"
#include "mapreduce/job.h"
#include "query/predicate.h"

namespace hail {
namespace adaptive {

/// \brief One executed query, as the observer remembers it.
struct QueryObservation {
  QueryAnnotation annotation;
  /// Decayed weight (1.0 when observed, multiplied by `decay` per newer
  /// observed query — including unfiltered full scans, which age the log
  /// without joining it).
  double weight = 1.0;
  uint32_t map_tasks = 0;
  uint32_t fallback_tasks = 0;     // full scans (no index of any kind)
  uint32_t unclustered_tasks = 0;  // served by a lazy unclustered index
  uint32_t index_scan_tasks = 0;   // served by a clustered index
  /// Billed simulated RecordReader cost of the whole job, seconds.
  double billed_seconds = 0.0;
  /// Access-path planner's cost prediction for the job, seconds (0 when
  /// the job ran unplanned). billed vs predicted is the planner's
  /// feedback signal — see PredictionError().
  double predicted_seconds = 0.0;
};

/// \brief Bounded, decayed query log (the JobTracker's workload memory).
class WorkloadObserver {
 public:
  struct Options {
    /// Log entries kept; the oldest falls off.
    size_t capacity = 64;
    /// Weight multiplier applied to all existing entries per observation.
    double decay = 0.9;
  };

  WorkloadObserver() = default;
  explicit WorkloadObserver(Options options) : options_(options) {}

  /// Records one executed query. Unfiltered queries (full scans) are not
  /// logged — there is no filter column to learn — but they still decay
  /// every existing entry and count toward observed_total(): a workload
  /// that shifts to full scans ages the stale per-column weight out.
  void Observe(const QueryAnnotation& annotation,
               const mapreduce::JobResult& result);

  /// The decayed workload, ready for index_advisor scoring.
  std::vector<WorkloadEntry> ToWorkload() const;

  /// Sum of all decayed log weights. Tends to 1/(1-decay) under a steady
  /// filtered workload and decays geometrically toward 0 once the workload
  /// shifts to unfiltered scans — the planner's "is there still a filtered
  /// workload worth serving?" signal.
  double TotalWeight() const;

  /// Weight fraction of the logged workload served by full scans.
  /// 0 when the log is empty.
  double FullScanRegret() const;

  /// Weight fraction served by lazy unclustered probes (cheap, but still
  /// paying random I/O — the planner's escalation signal).
  double UnclusteredShare() const;

  /// Weighted mean relative error |billed - predicted| / billed over the
  /// logged queries that ran planned (predicted > 0, billed > 0). 0 when
  /// none did — the planner's calibration health signal.
  double PredictionError() const;

  size_t size() const { return log_.size(); }
  bool empty() const { return log_.empty(); }
  uint64_t observed_total() const { return observed_total_; }
  const std::deque<QueryObservation>& log() const { return log_; }

 private:
  Options options_;
  std::deque<QueryObservation> log_;  // oldest first
  uint64_t observed_total_ = 0;
};

}  // namespace adaptive
}  // namespace hail
