#include "adaptive/reorg_planner.h"

#include <algorithm>

namespace hail {
namespace adaptive {

std::vector<MaintenanceTask> PlanStatsBackfill(const hdfs::MiniDfs& dfs,
                                               const std::string& file) {
  std::vector<MaintenanceTask> out;
  Result<std::vector<hdfs::BlockLocation>> blocks =
      dfs.namenode().GetFileBlocks(file);
  if (!blocks.ok()) return out;
  for (const hdfs::BlockLocation& loc : *blocks) {
    if (dfs.namenode().BlockStatsFresh(loc.block_id)) continue;
    std::vector<int> holders = loc.datanodes;
    std::sort(holders.begin(), holders.end());
    int source = -1;
    for (int dn : holders) {
      auto info = dfs.namenode().GetReplicaInfo(loc.block_id, dn);
      if (info.ok() && info->layout == hdfs::ReplicaLayout::kPax) {
        source = dn;
        break;
      }
    }
    if (source < 0) continue;  // no alive PAX source; retry after repair
    MaintenanceTask t;
    t.block_id = loc.block_id;
    t.datanode = source;
    t.column = -1;
    t.kind = MaintenanceTask::Kind::kBuildStats;
    out.push_back(t);
  }
  return out;
}

std::vector<MaintenanceTask> ReorgPlanner::Plan(const hdfs::MiniDfs& dfs,
                                                const Schema& schema,
                                                const std::string& file,
                                                const WorkloadObserver& observer,
                                                PlanSummary* summary) {
  PlanSummary sum;
  std::vector<MaintenanceTask> tasks;
  const auto finish = [&]() {
    sum.tasks_emitted = tasks.size();
    if (summary != nullptr) *summary = sum;
    return tasks;
  };

  sum.full_scan_regret = observer.FullScanRegret();
  sum.unclustered_share = observer.UnclusteredShare();
  // Regret counts everything not served by a clustered index: full scans
  // always, unclustered probes as the escalation signal.
  const double unserved = sum.full_scan_regret + sum.unclustered_share;
  if (observer.empty() || unserved < options_.regret_threshold ||
      observer.TotalWeight() < options_.min_workload_weight) {
    // Below threshold the streak is broken: a column that heats up again
    // later must restart at the cheap incremental stage.
    hot_rounds_.clear();
    return finish();
  }

  const std::vector<WorkloadEntry> workload = observer.ToWorkload();
  const std::vector<IndexRecommendation> scores =
      ScoreColumns(schema, workload);
  const std::vector<int> desired =
      SuggestSortColumns(schema, workload, dfs.config().replication);
  if (desired.empty()) return finish();

  Result<std::vector<hdfs::BlockLocation>> blocks =
      dfs.namenode().GetFileBlocks(file);
  if (!blocks.ok() || blocks->empty()) return finish();

  std::vector<double> benefit(static_cast<size_t>(schema.num_fields()), 0.0);
  for (const IndexRecommendation& rec : scores) {
    if (rec.column >= 0 && rec.column < schema.num_fields()) {
      benefit[static_cast<size_t>(rec.column)] = rec.benefit;
    }
  }
  const auto is_desired = [&](int c) {
    return std::find(desired.begin(), desired.end(), c) != desired.end();
  };

  // One Dir_rep sweep per round: every loop below works off this
  // snapshot instead of re-asking the namenode per (block, replica).
  struct ReplicaState {
    int dn;
    hdfs::HailBlockReplicaInfo info;
  };
  std::vector<std::vector<ReplicaState>> replicas(blocks->size());
  for (size_t b = 0; b < blocks->size(); ++b) {
    const hdfs::BlockLocation& loc = (*blocks)[b];
    replicas[b].reserve(loc.datanodes.size());
    for (int dn : loc.datanodes) {
      Result<hdfs::HailBlockReplicaInfo> info =
          dfs.namenode().GetReplicaInfo(loc.block_id, dn);
      if (!info.ok() || info->layout != hdfs::ReplicaLayout::kPax) continue;
      replicas[b].push_back(ReplicaState{dn, std::move(*info)});
    }
  }
  const auto block_has_clustered = [&](size_t b, int col) {
    for (const ReplicaState& rep : replicas[b]) {
      if (rep.info.has_index() && rep.info.sort_column == col) return true;
    }
    return false;
  };

  // The hottest desired column whose clustered coverage is incomplete.
  int hot = -1;
  for (int col : desired) {
    size_t covered = 0;
    for (size_t b = 0; b < blocks->size(); ++b) {
      if (block_has_clustered(b, col)) ++covered;
    }
    if (covered < blocks->size()) {
      hot = col;
      break;
    }
  }
  if (hot < 0) {
    hot_rounds_.clear();  // fully covered; any later heat-up starts fresh
    return finish();
  }

  // `hot_rounds_` counts *consecutive* rounds (the header's contract):
  // only the currently hot column keeps its streak.
  const int streak = hot_rounds_[hot];
  hot_rounds_.clear();
  hot_rounds_[hot] = streak;
  int& rounds = hot_rounds_[hot];
  ++rounds;
  const bool escalate =
      !options_.incremental_first || rounds > options_.escalate_after_rounds;
  sum.hot_column = hot;
  sum.escalated = escalate;

  for (size_t b = 0; b < blocks->size(); ++b) {
    const hdfs::BlockLocation& loc = (*blocks)[b];
    // What each alive holder currently is.
    bool unclustered_hot = false;
    int unclustered_dn = -1;
    for (const ReplicaState& rep : replicas[b]) {
      if (rep.info.unclustered_column == hot && unclustered_dn < 0) {
        unclustered_hot = true;
        unclustered_dn = rep.dn;
      }
    }
    if (block_has_clustered(b, hot)) continue;   // block already converged
    if (!escalate && unclustered_hot) continue;  // lazy index in place

    // Victim: when escalating, prefer the replica already carrying the
    // lazy unclustered copy (its job is done); otherwise the replica whose
    // current index earns the least decayed benefit — unindexed replicas
    // first, replicas serving a still-desired column last. Ties break on
    // datanode id for determinism.
    int victim = -1;
    if (escalate && unclustered_hot) {
      victim = unclustered_dn;
    } else {
      double best_rank = 0.0;
      for (const ReplicaState& rep : replicas[b]) {
        const bool indexed = rep.info.has_index();
        const double rank =
            (indexed && is_desired(rep.info.sort_column) ? 1e9 : 0.0) +
            (indexed ? benefit[static_cast<size_t>(rep.info.sort_column)]
                     : -1.0);
        if (victim < 0 || rank < best_rank) {
          victim = rep.dn;
          best_rank = rank;
        }
      }
    }
    if (victim < 0) continue;

    MaintenanceTask task;
    task.block_id = loc.block_id;
    task.datanode = victim;
    task.column = hot;
    task.kind = escalate ? MaintenanceTask::Kind::kResortReplica
                         : MaintenanceTask::Kind::kInstallUnclustered;
    tasks.push_back(task);
    if (options_.max_tasks_per_round > 0 &&
        tasks.size() >= options_.max_tasks_per_round) {
      break;
    }
  }

  // Aggressive replication: extra copies of the hot column's blocks beyond
  // the replication factor, under the storage budget; extras whose column
  // went cold are evicted first (freeing budget for the new hot set).
  if (options_.aggressive_replication &&
      options_.replication_budget_bytes > 0) {
    const uint64_t block_bytes = dfs.config().block_size;
    const auto cap_reached = [&]() {
      return options_.max_tasks_per_round > 0 &&
             tasks.size() >= options_.max_tasks_per_round;
    };
    for (auto it = extras_.begin(); it != extras_.end();) {
      if (it->second == hot) {
        ++it;
        continue;
      }
      if (!dfs.namenode()
               .GetReplicaInfo(it->first.first, it->first.second)
               .ok()) {
        // Never registered (commit failed) or superseded: just forget it.
        it = extras_.erase(it);
        continue;
      }
      if (cap_reached()) break;
      MaintenanceTask evict;
      evict.block_id = it->first.first;
      evict.datanode = it->first.second;
      evict.column = it->second;
      evict.kind = MaintenanceTask::Kind::kEvictReplica;
      tasks.push_back(evict);
      ++sum.evictions_planned;
      it = extras_.erase(it);
    }
    // Optimistic budget: queued-but-uncommitted adds count too, so one
    // planning round never over-commits the budget it just spent.
    uint64_t used = block_bytes * extras_.size();
    const int n = dfs.num_datanodes();
    for (size_t b = 0; b < blocks->size() && !cap_reached(); ++b) {
      if (used + block_bytes > options_.replication_budget_bytes) break;
      const hdfs::BlockLocation& loc = (*blocks)[b];
      int extras_here = 0;
      for (const auto& [key, col] : extras_) {
        if (key.first == loc.block_id) ++extras_here;
      }
      if (extras_here >= options_.max_extra_replicas_per_block) continue;
      // Round-robin from the block index so extras spread over the
      // cluster instead of piling onto the lowest node ids.
      int target = -1;
      for (int off = 0; off < n; ++off) {
        const int cand = (static_cast<int>(b) + off) % n;
        if (!dfs.namenode().IsDatanodeAlive(cand)) continue;
        if (dfs.namenode().GetReplicaInfo(loc.block_id, cand).ok()) continue;
        if (extras_.count({loc.block_id, cand}) > 0) continue;
        target = cand;
        break;
      }
      if (target < 0) continue;
      MaintenanceTask add;
      add.block_id = loc.block_id;
      add.datanode = target;
      add.column = hot;
      add.kind = MaintenanceTask::Kind::kAddReplica;
      tasks.push_back(add);
      extras_[{loc.block_id, target}] = hot;
      used += block_bytes;
      ++sum.replicas_planned;
    }
    sum.budget_used_bytes = used;
  }
  return finish();
}

}  // namespace adaptive
}  // namespace hail
