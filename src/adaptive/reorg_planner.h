/// \file reorg_planner.h
/// \brief Decides *when* and *how* to reorganize replicas online.
///
/// Policy (mirroring LIAH's lazy adaptivity on top of the paper's
/// aggressive upload-time indexing):
///  1. Nothing happens while the observed workload's regret — the weight
///     fraction served without any index — stays under `regret_threshold`.
///  2. When it crosses, the planner computes the current best per-replica
///     sort-column assignment (index_advisor::SuggestSortColumns over the
///     decayed log) and picks the hottest desired column with incomplete
///     clustered coverage.
///  3. First response is *incremental*: install a cheap per-block
///     UnclusteredIndex on the hot column (one read + key sort + write per
///     block, no data movement). Queries immediately leave the full-scan
///     path.
///  4. If the column stays hot — the unclustered share keeps paying random
///     I/O for `escalate_after_rounds` more planning rounds — the planner
///     pays for the real thing: per-block re-sorts of a victim replica
///     (the one whose current index earns the least decayed benefit) to
///     the hot column, with a fresh clustered index.
///
/// Planning is deterministic: victim choice ties break on datanode id,
/// block order follows the namenode's file listing.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "adaptive/reorg.h"
#include "adaptive/workload_observer.h"
#include "schema/schema.h"

namespace hail {
namespace adaptive {

struct PlannerOptions {
  /// Regret (weight share served by full scans) that triggers action.
  double regret_threshold = 0.25;
  /// Install unclustered indexes before paying for re-sorts.
  bool incremental_first = true;
  /// Planning rounds a column must stay hot (served unclustered or
  /// scanned) before escalating from unclustered install to full re-sort.
  int escalate_after_rounds = 2;
  /// Cap on emitted tasks per planning round; 0 = unlimited.
  size_t max_tasks_per_round = 0;
  /// Idle when the log's total decayed weight falls below this: once a
  /// workload shifts to unfiltered full scans, the stale filtered entries
  /// decay toward zero and stop justifying reorganization (regret is a
  /// weight *ratio*, so it alone never ages out).
  double min_workload_weight = 0.05;
  /// Aggressive replication (paper §7 "aggressive elephants"): once a hot
  /// column is identified, add extra replicas of its blocks *beyond* the
  /// replication factor — copied from the best (clustered) source onto
  /// nodes not yet holding the block — and evict extras whose column went
  /// cold, all under `replication_budget_bytes` of extra storage. The
  /// planner only ever evicts replicas it added itself; baseline replicas
  /// are untouched (and the commit path refuses to drop below the
  /// replication factor regardless).
  bool aggressive_replication = false;
  /// Total extra storage for added replicas, in *real* (in-process) bytes,
  /// accounted at the DFS block size. 0 disables adds.
  uint64_t replication_budget_bytes = 0;
  /// Cap of extra replicas per block (beyond the replication factor).
  int max_extra_replicas_per_block = 1;
};

/// \brief What one planning round decided (introspection + tests/bench).
struct PlanSummary {
  double full_scan_regret = 0.0;
  double unclustered_share = 0.0;
  /// Hot column this round acted on; -1 when idle.
  int hot_column = -1;
  bool escalated = false;  // true = re-sort stage, false = unclustered
  size_t tasks_emitted = 0;
  /// Aggressive-replication decisions this round.
  size_t replicas_planned = 0;
  size_t evictions_planned = 0;
  /// Budget consumed by still-registered extras after this round.
  uint64_t budget_used_bytes = 0;
};

/// Emits one kBuildStats maintenance task per block of \p file whose
/// planner stats sidecar is missing or stale (upload predates stats, or a
/// repair/reorg commit bumped the block's mutation count). The task reads
/// the lowest-id alive PAX replica; blocks without one are left for a
/// later round (a repair will restore a source). Deterministic: follows
/// the namenode's file listing, datanode ids ascending.
std::vector<MaintenanceTask> PlanStatsBackfill(const hdfs::MiniDfs& dfs,
                                               const std::string& file);

/// \brief Stateful planner: one instance per adaptively managed file.
class ReorgPlanner {
 public:
  explicit ReorgPlanner(PlannerOptions options = {}) : options_(options) {}

  /// Runs one planning round against the current namenode state and the
  /// observer's decayed workload. Returns the maintenance tasks to
  /// enqueue (empty when below threshold or already converged).
  std::vector<MaintenanceTask> Plan(const hdfs::MiniDfs& dfs,
                                    const Schema& schema,
                                    const std::string& file,
                                    const WorkloadObserver& observer,
                                    PlanSummary* summary = nullptr);

  /// Rounds the column has been hot in a row (escalation bookkeeping).
  int hot_rounds(int column) const {
    auto it = hot_rounds_.find(column);
    return it == hot_rounds_.end() ? 0 : it->second;
  }

 private:
  PlannerOptions options_;
  std::map<int, int> hot_rounds_;
  /// Extra replicas this planner added: (block, datanode) -> hot column at
  /// add time. Budget is recomputed each round against what is still
  /// registered in the namenode (commits can fail, repairs can supersede),
  /// and only these entries are ever eviction candidates.
  std::map<std::pair<uint64_t, int>, int> extras_;
};

}  // namespace adaptive
}  // namespace hail
