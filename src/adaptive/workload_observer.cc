#include "adaptive/workload_observer.h"

namespace hail {
namespace adaptive {

void WorkloadObserver::Observe(const QueryAnnotation& annotation,
                               const mapreduce::JobResult& result) {
  // Every observed query ages the log, filtered or not: a workload that
  // shifts to unfiltered full scans adds no per-column signal, but it must
  // still decay the stale per-column weight (otherwise the planner keeps
  // reorganizing for columns nobody filters on anymore).
  for (QueryObservation& old : log_) {
    old.weight *= options_.decay;
  }
  ++observed_total_;
  if (!annotation.has_filter()) return;  // no filter column to log
  QueryObservation obs;
  obs.annotation = annotation;
  obs.weight = 1.0;
  obs.map_tasks = result.map_tasks;
  obs.fallback_tasks = result.fallback_scans;
  obs.unclustered_tasks = result.unclustered_scan_tasks;
  obs.index_scan_tasks = result.index_scan_tasks;
  obs.billed_seconds = result.avg_record_reader_seconds *
                       static_cast<double>(result.map_tasks);
  if (result.planned) obs.predicted_seconds = result.predicted_cost_seconds;
  log_.push_back(std::move(obs));
  while (log_.size() > options_.capacity) {
    log_.pop_front();
  }
}

double WorkloadObserver::TotalWeight() const {
  double total = 0.0;
  for (const QueryObservation& obs : log_) total += obs.weight;
  return total;
}

std::vector<WorkloadEntry> WorkloadObserver::ToWorkload() const {
  std::vector<WorkloadEntry> out;
  out.reserve(log_.size());
  for (const QueryObservation& obs : log_) {
    WorkloadEntry entry;
    entry.annotation = obs.annotation;
    entry.weight = obs.weight;
    out.push_back(std::move(entry));
  }
  return out;
}

namespace {

/// Weight-averaged fraction of each query's tasks matching `pick`.
/// Queries that ran zero map tasks (pruned/empty input) still count their
/// weight in the denominator with a zero hit — dropping them entirely
/// would silently inflate the share attributed to the rest of the log.
template <typename PickFn>
double WeightedTaskShare(const std::deque<QueryObservation>& log,
                         const PickFn& pick) {
  double total = 0.0;
  double hit = 0.0;
  for (const QueryObservation& obs : log) {
    total += obs.weight;
    if (obs.map_tasks == 0) continue;
    hit += obs.weight * static_cast<double>(pick(obs)) /
           static_cast<double>(obs.map_tasks);
  }
  return total > 0.0 ? hit / total : 0.0;
}

}  // namespace

double WorkloadObserver::FullScanRegret() const {
  return WeightedTaskShare(
      log_, [](const QueryObservation& o) { return o.fallback_tasks; });
}

double WorkloadObserver::UnclusteredShare() const {
  return WeightedTaskShare(
      log_, [](const QueryObservation& o) { return o.unclustered_tasks; });
}

double WorkloadObserver::PredictionError() const {
  double total = 0.0;
  double err = 0.0;
  for (const QueryObservation& obs : log_) {
    if (obs.predicted_seconds <= 0.0 || obs.billed_seconds <= 0.0) continue;
    total += obs.weight;
    err += obs.weight *
           (obs.billed_seconds > obs.predicted_seconds
                ? (obs.billed_seconds - obs.predicted_seconds) /
                      obs.billed_seconds
                : (obs.predicted_seconds - obs.billed_seconds) /
                      obs.billed_seconds);
  }
  return total > 0.0 ? err / total : 0.0;
}

}  // namespace adaptive
}  // namespace hail
