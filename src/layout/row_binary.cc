#include "layout/row_binary.h"

namespace hail {

RowBinaryBlockBuilder::RowBinaryBlockBuilder(Schema schema)
    : schema_(std::move(schema)) {}

void RowBinaryBlockBuilder::AddRow(const std::vector<Value>& values) {
  row_offsets_.push_back(rows_.size());
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const Value& v = values[static_cast<size_t>(i)];
    switch (schema_.field(i).type) {
      case FieldType::kInt32:
      case FieldType::kDate:
        rows_.PutI32(v.as_int32());
        break;
      case FieldType::kInt64:
        rows_.PutI64(v.as_int64());
        break;
      case FieldType::kDouble:
        rows_.PutF64(v.as_double());
        break;
      case FieldType::kString:
        rows_.PutLengthPrefixed(v.as_string());
        break;
    }
  }
}

void RowBinaryBlockBuilder::AddRowFromColumns(
    const std::vector<ColumnVector>& columns, uint32_t row) {
  row_offsets_.push_back(rows_.size());
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const ColumnVector& col = columns[static_cast<size_t>(i)];
    switch (schema_.field(i).type) {
      case FieldType::kInt32:
      case FieldType::kDate:
        rows_.PutI32(col.i32()[row]);
        break;
      case FieldType::kInt64:
        rows_.PutI64(col.i64()[row]);
        break;
      case FieldType::kDouble:
        rows_.PutF64(col.f64()[row]);
        break;
      case FieldType::kString:
        rows_.PutLengthPrefixed(col.str()[row]);
        break;
    }
  }
}

std::string RowBinaryBlockBuilder::Finish() {
  ByteWriter w;
  w.PutU32(kRowBinaryMagic);
  w.PutLengthPrefixed(schema_.ToString());
  w.PutU32(num_records());
  w.PutBytes(rows_.buffer());
  rows_ = ByteWriter();
  row_offsets_.clear();
  return w.Take();
}

Result<RowBinaryBlockView> RowBinaryBlockView::Open(std::string_view data) {
  RowBinaryBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kRowBinaryMagic) {
    return Status::Corruption("not a binary-row block");
  }
  HAIL_ASSIGN_OR_RETURN(std::string_view schema_text, r.GetLengthPrefixed());
  HAIL_ASSIGN_OR_RETURN(view.schema_, Schema::Parse(schema_text));
  HAIL_ASSIGN_OR_RETURN(view.num_records_, r.GetU32());
  view.data_start_ = r.position();
  return view;
}

Result<std::vector<Value>> RowBinaryBlockView::DecodeRowAt(uint64_t* pos) const {
  ByteReader r(data_);
  HAIL_RETURN_NOT_OK(r.SeekTo(*pos));
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    switch (schema_.field(i).type) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(int32_t v, r.GetI32());
        out.emplace_back(v);
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
        out.emplace_back(v);
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(double v, r.GetF64());
        out.emplace_back(v);
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(std::string_view s, r.GetLengthPrefixed());
        out.emplace_back(std::string(s));
        break;
      }
    }
  }
  *pos = r.position();
  return out;
}

Result<std::vector<std::vector<Value>>> RowBinaryBlockView::DecodeAll() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(num_records_);
  uint64_t pos = data_start_;
  for (uint32_t i = 0; i < num_records_; ++i) {
    HAIL_ASSIGN_OR_RETURN(std::vector<Value> row, DecodeRowAt(&pos));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hail
