/// \file minipage_encoding.h
/// \brief Per-minipage light-weight compression for PAX block format v3.
///
/// Format v3 (BlockFormatOptions::enable_encoding) stores each minipage
/// under one of four encodings, chosen independently per column at
/// serialisation time by comparing encoded sizes (layout/pax_block.cc):
///
///   - kPlain: the v1 representation (raw fixed-width array, or sparse-
///     offset varlen layout) behind a one-byte tag.
///   - kFor (frame of reference, integer columns): an i64 frame (the
///     column minimum) plus unsigned offsets of 1/2/4 bytes each;
///     value = frame + code.
///   - kRle (run length, any fixed-size column): strictly increasing
///     u32 run start rows plus one stored value per run; random access
///     is a binary search over the run starts.
///   - kDict (dictionary, string columns): a *sorted*, distinct,
///     NUL-terminated dictionary plus per-row codes of 1/2/4 bytes.
///     Sorting the dictionary makes the code order the string order, so
///     range predicates rewrite to integer compares over the codes.
///
/// The span classes below are zero-copy readers over these layouts, the
/// encoded analogues of ColumnSpan<T>: the scan engine filters codes and
/// runs directly and decodes only qualifying rows. All loads go through
/// memcpy (well-defined for any alignment); every pointer/extent is
/// bounds-checked once by PaxBlockView::Open, never per access.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hail {

/// Physical encoding of one serialised minipage (format v3 tag byte).
enum class MiniPageEncoding : uint8_t {
  kPlain = 0,
  kDict = 1,
  kRle = 2,
  kFor = 3,
};

inline const char* MiniPageEncodingName(MiniPageEncoding e) {
  switch (e) {
    case MiniPageEncoding::kPlain: return "plain";
    case MiniPageEncoding::kDict: return "dict";
    case MiniPageEncoding::kRle: return "rle";
    case MiniPageEncoding::kFor: return "for";
  }
  return "?";
}

/// Loads one unsigned code of \p width bytes (1, 2 or 4) at index \p i.
inline uint64_t LoadCode(const char* base, uint32_t i, uint8_t width) {
  switch (width) {
    case 1: {
      uint8_t v;
      std::memcpy(&v, base + static_cast<size_t>(i), 1);
      return v;
    }
    case 2: {
      uint16_t v;
      std::memcpy(&v, base + static_cast<size_t>(i) * 2, 2);
      return v;
    }
    default: {
      uint32_t v;
      std::memcpy(&v, base + static_cast<size_t>(i) * 4, 4);
      return v;
    }
  }
}

/// \brief Zero-copy view over a frame-of-reference minipage.
///
/// value(i) = frame + code(i), computed in uint64 so the addition is
/// well-defined even when the frame is negative (codes never exceed the
/// original max − min range, so the result is always the exact value).
class ForSpan {
 public:
  ForSpan() = default;
  ForSpan(const char* codes, uint32_t size, uint8_t code_width, int64_t frame)
      : codes_(codes), size_(size), code_width_(code_width), frame_(frame) {}

  uint32_t size() const { return size_; }
  uint8_t code_width() const { return code_width_; }
  int64_t frame() const { return frame_; }
  const char* codes() const { return codes_; }

  uint64_t Code(uint32_t i) const { return LoadCode(codes_, i, code_width_); }
  int64_t Value(uint32_t i) const {
    return static_cast<int64_t>(static_cast<uint64_t>(frame_) + Code(i));
  }

 private:
  const char* codes_ = nullptr;
  uint32_t size_ = 0;
  uint8_t code_width_ = 0;
  int64_t frame_ = 0;
};

/// \brief Zero-copy view over a run-length-encoded minipage.
///
/// Runs partition [0, num_records): run j covers
/// [run_start(j), run_end(j)) and every row in it holds run_value(j).
/// Open() validated run_start(0) == 0 and strict monotonicity, so
/// RunContaining always terminates and every row is covered.
template <typename T>
class RleSpan {
 public:
  RleSpan() = default;
  RleSpan(const char* starts, const char* values, uint32_t num_runs,
          uint32_t num_records)
      : starts_(starts),
        values_(values),
        num_runs_(num_runs),
        num_records_(num_records) {}

  uint32_t num_runs() const { return num_runs_; }
  uint32_t num_records() const { return num_records_; }

  uint32_t run_start(uint32_t j) const {
    uint32_t v;
    std::memcpy(&v, starts_ + static_cast<size_t>(j) * 4, 4);
    return v;
  }
  uint32_t run_end(uint32_t j) const {
    return j + 1 < num_runs_ ? run_start(j + 1) : num_records_;
  }
  T run_value(uint32_t j) const {
    T v;
    std::memcpy(&v, values_ + static_cast<size_t>(j) * sizeof(T), sizeof(T));
    return v;
  }

  /// Index of the run containing \p row (row < num_records()); branchless
  /// binary search over the run starts.
  uint32_t RunContaining(uint32_t row) const {
    uint32_t lo = 0;
    uint32_t n = num_runs_;
    while (n > 1) {
      const uint32_t half = n / 2;
      lo = run_start(lo + half) <= row ? lo + half : lo;
      n -= half;
    }
    return lo;
  }

  T Value(uint32_t row) const { return run_value(RunContaining(row)); }

 private:
  const char* starts_ = nullptr;  // u32[num_runs]
  const char* values_ = nullptr;  // T[num_runs]
  uint32_t num_runs_ = 0;
  uint32_t num_records_ = 0;
};

/// \brief Zero-copy view over a dictionary-encoded string minipage.
///
/// The dictionary is sorted and distinct, so LowerBound/UpperBound over
/// the entries map a string literal into code space once per block; the
/// per-row codes then compare as plain integers.
class DictSpan {
 public:
  DictSpan() = default;
  DictSpan(const char* codes, uint8_t code_width, uint32_t num_records,
           const char* offsets, const char* values, uint64_t values_bytes,
           uint32_t dict_size)
      : codes_(codes),
        code_width_(code_width),
        num_records_(num_records),
        offsets_(offsets),
        values_(values),
        values_bytes_(values_bytes),
        dict_size_(dict_size) {}

  uint32_t num_records() const { return num_records_; }
  uint32_t dict_size() const { return dict_size_; }
  uint8_t code_width() const { return code_width_; }
  const char* codes() const { return codes_; }

  uint32_t Code(uint32_t row) const {
    return static_cast<uint32_t>(LoadCode(codes_, row, code_width_));
  }

  /// Dictionary entry for \p code (code < dict_size()); O(1), no scan.
  std::string_view DictEntry(uint32_t code) const {
    uint32_t begin;
    std::memcpy(&begin, offsets_ + static_cast<size_t>(code) * 4, 4);
    uint32_t end;  // position of this entry's NUL terminator
    if (code + 1 < dict_size_) {
      std::memcpy(&end, offsets_ + (static_cast<size_t>(code) + 1) * 4, 4);
      --end;
    } else {
      end = static_cast<uint32_t>(values_bytes_ - 1);
    }
    return std::string_view(values_ + begin, end - begin);
  }

  std::string_view Value(uint32_t row) const { return DictEntry(Code(row)); }

  /// First code whose entry is >= \p s (== dict_size() when none).
  uint32_t LowerBound(std::string_view s) const {
    uint32_t lo = 0, hi = dict_size_;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (DictEntry(mid) < s) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First code whose entry is > \p s.
  uint32_t UpperBound(std::string_view s) const {
    uint32_t lo = 0, hi = dict_size_;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (s < DictEntry(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

 private:
  const char* codes_ = nullptr;
  uint8_t code_width_ = 0;
  uint32_t num_records_ = 0;
  const char* offsets_ = nullptr;  // u32[dict_size]
  const char* values_ = nullptr;   // NUL-terminated entries, sorted
  uint64_t values_bytes_ = 0;
  uint32_t dict_size_ = 0;
};

}  // namespace hail
