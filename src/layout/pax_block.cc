#include "layout/pax_block.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>

namespace hail {

namespace {

constexpr uint64_t Align8(uint64_t pos) { return (pos + 7) & ~uint64_t{7}; }

void PadTo8(ByteWriter& w) {
  while (w.size() % 8 != 0) w.PutU8(0);
}

/// Narrowest unsigned code width covering [0, range]; 0 when > 4 bytes.
uint8_t CodeWidthForRange(uint64_t range) {
  if (range <= 0xFF) return 1;
  if (range <= 0xFFFF) return 2;
  if (range <= 0xFFFFFFFFull) return 4;
  return 0;
}

void PutCode(ByteWriter& w, uint64_t code, uint8_t width) {
  switch (width) {
    case 1:
      w.PutU8(static_cast<uint8_t>(code));
      break;
    case 2:
      w.PutU8(static_cast<uint8_t>(code & 0xFF));
      w.PutU8(static_cast<uint8_t>((code >> 8) & 0xFF));
      break;
    default:
      w.PutU32(static_cast<uint32_t>(code));
      break;
  }
}

/// Serialises one integer minipage (format v3), choosing the encoding by
/// comparing estimated stored sizes: NONE beats an encoding on ties, FOR
/// beats RLE (cheaper random access).
template <typename T>
void WriteEncodedIntMiniPage(ByteWriter& w, const std::vector<T>& vals) {
  const uint32_t n = static_cast<uint32_t>(vals.size());
  if (n == 0) {
    w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kPlain));
    PadTo8(w);
    return;
  }
  // One sampling pass: min, max, run count.
  T mn = vals[0], mx = vals[0];
  uint32_t runs = 1;
  for (uint32_t i = 1; i < n; ++i) {
    mn = std::min(mn, vals[i]);
    mx = std::max(mx, vals[i]);
    runs += vals[i] != vals[i - 1] ? 1u : 0u;
  }
  const uint64_t range = static_cast<uint64_t>(static_cast<int64_t>(mx)) -
                         static_cast<uint64_t>(static_cast<int64_t>(mn));
  uint8_t for_width = CodeWidthForRange(range);
  if (for_width >= sizeof(T)) for_width = 0;  // no win over plain
  const uint64_t plain_est = 8 + uint64_t{n} * sizeof(T);
  const uint64_t for_est =
      for_width ? 16 + uint64_t{n} * for_width
                : std::numeric_limits<uint64_t>::max();
  const uint64_t rle_est = 16 + uint64_t{runs} * (4 + sizeof(T));
  if (plain_est <= for_est && plain_est <= rle_est) {
    w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kPlain));
    PadTo8(w);
    w.PutBytes(std::string_view(reinterpret_cast<const char*>(vals.data()),
                                uint64_t{n} * sizeof(T)));
    return;
  }
  if (for_est <= rle_est) {
    w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kFor));
    w.PutU8(for_width);
    PadTo8(w);
    w.PutU64(static_cast<uint64_t>(static_cast<int64_t>(mn)));
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t code = static_cast<uint64_t>(static_cast<int64_t>(vals[i])) -
                            static_cast<uint64_t>(static_cast<int64_t>(mn));
      PutCode(w, code, for_width);
    }
    return;
  }
  w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kRle));
  w.PutU32(runs);
  PadTo8(w);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == 0 || vals[i] != vals[i - 1]) w.PutU32(i);
  }
  PadTo8(w);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == 0 || vals[i] != vals[i - 1]) {
      T v = vals[i];
      w.PutBytes(std::string_view(reinterpret_cast<const char*>(&v), sizeof(T)));
    }
  }
}

/// Doubles only get RLE, and run detection is *bitwise* so -0.0 / 0.0 and
/// NaN payloads survive a round trip exactly (value equality would merge
/// -0.0 into a 0.0 run and re-materialise the wrong bits).
void WriteEncodedDoubleMiniPage(ByteWriter& w, const std::vector<double>& vals) {
  const uint32_t n = static_cast<uint32_t>(vals.size());
  auto same_bits = [](double a, double b) {
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
  };
  uint32_t runs = n > 0 ? 1 : 0;
  for (uint32_t i = 1; i < n; ++i) {
    runs += same_bits(vals[i], vals[i - 1]) ? 0u : 1u;
  }
  const uint64_t plain_est = 8 + uint64_t{n} * sizeof(double);
  const uint64_t rle_est = 16 + uint64_t{runs} * (4 + sizeof(double));
  if (n == 0 || plain_est <= rle_est) {
    w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kPlain));
    PadTo8(w);
    w.PutBytes(std::string_view(reinterpret_cast<const char*>(vals.data()),
                                uint64_t{n} * sizeof(double)));
    return;
  }
  w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kRle));
  w.PutU32(runs);
  PadTo8(w);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == 0 || !same_bits(vals[i], vals[i - 1])) w.PutU32(i);
  }
  PadTo8(w);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == 0 || !same_bits(vals[i], vals[i - 1])) {
      double v = vals[i];
      w.PutBytes(std::string_view(reinterpret_cast<const char*>(&v), sizeof(v)));
    }
  }
}

/// Writes the v1 sparse-offset varlen body (sans tag) — shared between the
/// v1 string path and the v3 plain-string fallback.
void WriteVarlenBody(ByteWriter& w, const std::vector<std::string>& strs,
                     uint32_t n, uint32_t part) {
  const uint32_t num_offsets = n == 0 ? 0 : (n + part - 1) / part;
  w.PutU32(num_offsets);
  std::vector<uint64_t> offsets(num_offsets);
  uint64_t pos = 0;
  for (uint32_t r = 0; r < n; ++r) {
    if (r % part == 0) offsets[r / part] = pos;
    pos += strs[r].size() + 1;
  }
  for (uint64_t off : offsets) w.PutU64(off);
  w.PutU64(pos);  // total value bytes
  for (uint32_t r = 0; r < n; ++r) {
    w.PutBytes(strs[r]);
    w.PutU8(0);
  }
}

/// String minipage (format v3): sorted-dictionary encoding when it stores
/// fewer bytes than the plain sparse-offset layout, else plain.
void WriteEncodedStringMiniPage(ByteWriter& w,
                                const std::vector<std::string>& strs,
                                uint32_t n, uint32_t part) {
  std::vector<std::string_view> dict;
  uint64_t plain_values = 0;
  if (n > 0) {
    dict.reserve(n);
    for (uint32_t r = 0; r < n; ++r) {
      dict.push_back(strs[r]);
      plain_values += strs[r].size() + 1;
    }
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  }
  uint64_t dict_bytes = 0;
  for (std::string_view s : dict) dict_bytes += s.size() + 1;
  const uint8_t width = dict.size() <= 256 ? 1 : (dict.size() <= 65536 ? 2 : 4);
  const uint32_t num_offsets = n == 0 ? 0 : (n + part - 1) / part;
  const uint64_t plain_est = 1 + 4 + 8ull * num_offsets + 8 + plain_values;
  const uint64_t dict_est = 14 + 8 /* pads */ + 4ull * dict.size() +
                            dict_bytes + uint64_t{n} * width;
  if (n == 0 || dict_bytes > std::numeric_limits<uint32_t>::max() ||
      dict_est >= plain_est) {
    w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kPlain));
    WriteVarlenBody(w, strs, n, part);
    return;
  }
  w.PutU8(static_cast<uint8_t>(MiniPageEncoding::kDict));
  w.PutU8(width);
  w.PutU32(static_cast<uint32_t>(dict.size()));
  w.PutU64(dict_bytes);
  PadTo8(w);
  uint32_t off = 0;
  for (std::string_view s : dict) {
    w.PutU32(off);
    off += static_cast<uint32_t>(s.size()) + 1;
  }
  for (std::string_view s : dict) {
    w.PutBytes(s);
    w.PutU8(0);
  }
  PadTo8(w);
  for (uint32_t r = 0; r < n; ++r) {
    const auto it = std::lower_bound(dict.begin(), dict.end(),
                                     std::string_view(strs[r]));
    PutCode(w, static_cast<uint64_t>(it - dict.begin()), width);
  }
}

}  // namespace

PaxBlock::PaxBlock(Schema schema, BlockFormatOptions options)
    : schema_(std::move(schema)), options_(options) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

void PaxBlock::AppendRow(const std::vector<Value>& values) {
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Append(values[i]);
  }
}

void PaxBlock::AppendBadRecord(std::string_view raw) {
  bad_records_.emplace_back(raw);
}

std::vector<Value> PaxBlock::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    out.push_back(col.GetValue(row));
  }
  return out;
}

std::vector<uint32_t> PaxBlock::SortByColumn(int key_column) {
  std::vector<uint32_t> perm =
      ArgSortColumn(columns_[static_cast<size_t>(key_column)]);
  for (ColumnVector& col : columns_) {
    col.ApplyPermutation(perm);
  }
  return perm;
}

PaxBlock PaxBlock::PermutedCopy(const std::vector<uint32_t>& perm) const {
  PaxBlock out(schema_, options_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.columns_[i] = columns_[i].PermutedCopy(perm);
  }
  out.bad_records_ = bad_records_;
  return out;
}

uint64_t PaxBlock::PayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    bytes += col.SerializedValueBytes();
  }
  for (const std::string& bad : bad_records_) {
    bytes += bad.size();
  }
  return bytes;
}

uint64_t PaxBlock::FixedPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

uint64_t PaxBlock::VarlenPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (!IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

std::string PaxBlock::Serialize() const {
  ByteWriter w;
  const uint32_t n = num_records();
  const int ncols = num_columns();

  w.PutU32(kPaxMagic);
  // Layout kind: plain PAX (v1) or encoded minipages (v3). The header and
  // directory are identical; only the minipage bodies differ.
  w.PutU8(options_.enable_encoding ? kPaxLayoutEncoded : kPaxLayoutPlain);
  w.PutLengthPrefixed(schema_.ToString());
  w.PutU32(n);
  w.PutU32(options_.varlen_partition_size);
  w.PutU32(static_cast<uint32_t>(bad_records_.size()));
  w.PutU32(static_cast<uint32_t>(ncols));
  // Back-patched directory: per column (type, offset, bytes); then the
  // bad-section offset.
  const size_t dir_pos = w.size();
  for (int i = 0; i < ncols; ++i) {
    w.PutU8(static_cast<uint8_t>(schema_.field(i).type));
    w.PutU64(0);  // minipage offset
    w.PutU64(0);  // minipage bytes
  }
  const size_t bad_off_pos = w.size();
  w.PutU64(0);

  std::vector<uint64_t> col_offsets(static_cast<size_t>(ncols));
  std::vector<uint64_t> col_bytes(static_cast<size_t>(ncols));

  const uint32_t part = options_.varlen_partition_size;
  for (int i = 0; i < ncols; ++i) {
    const ColumnVector& col = columns_[static_cast<size_t>(i)];
    // Align each minipage to 8 bytes so typed batch accessors read aligned
    // values whenever the enclosing buffer is itself aligned. The pad lives
    // between the recorded extents of adjacent minipages, so per-column
    // byte accounting is unchanged.
    while (w.size() % 8 != 0) w.PutU8(0);
    col_offsets[static_cast<size_t>(i)] = w.size();
    if (options_.enable_encoding) {
      switch (col.type()) {
        case FieldType::kInt32:
        case FieldType::kDate:
          WriteEncodedIntMiniPage(w, col.i32());
          break;
        case FieldType::kInt64:
          WriteEncodedIntMiniPage(w, col.i64());
          break;
        case FieldType::kDouble:
          WriteEncodedDoubleMiniPage(w, col.f64());
          break;
        case FieldType::kString:
          WriteEncodedStringMiniPage(w, col.str(), n, part);
          break;
      }
    } else {
      switch (col.type()) {
        case FieldType::kInt32:
        case FieldType::kDate:
          w.PutBytes(std::string_view(
              reinterpret_cast<const char*>(col.i32().data()),
              col.i32().size() * sizeof(int32_t)));
          break;
        case FieldType::kInt64:
          w.PutBytes(std::string_view(
              reinterpret_cast<const char*>(col.i64().data()),
              col.i64().size() * sizeof(int64_t)));
          break;
        case FieldType::kDouble:
          w.PutBytes(std::string_view(
              reinterpret_cast<const char*>(col.f64().data()),
              col.f64().size() * sizeof(double)));
          break;
        case FieldType::kString:
          // Sparse offsets: one per partition of `part` values, relative
          // to the start of the value bytes ("we only store every n-th
          // offset", §3.5).
          WriteVarlenBody(w, col.str(), n, part);
          break;
      }
    }
    col_bytes[static_cast<size_t>(i)] =
        w.size() - col_offsets[static_cast<size_t>(i)];
  }

  const uint64_t bad_offset = w.size();
  for (const std::string& bad : bad_records_) {
    w.PutLengthPrefixed(bad);
  }

  // Patch the directory.
  size_t cursor = dir_pos;
  for (int i = 0; i < ncols; ++i) {
    cursor += 1;  // type byte
    std::memcpy(w.buffer().data() + cursor, &col_offsets[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
    std::memcpy(w.buffer().data() + cursor, &col_bytes[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
  }
  std::memcpy(w.buffer().data() + bad_off_pos, &bad_offset, sizeof(uint64_t));

  return w.Take();
}

namespace {
std::atomic<uint64_t> g_pax_deserialize_count{0};
}  // namespace

uint64_t PaxBlock::deserialize_count() {
  return g_pax_deserialize_count.load(std::memory_order_relaxed);
}

Result<PaxBlock> PaxBlock::Deserialize(std::string_view data) {
  g_pax_deserialize_count.fetch_add(1, std::memory_order_relaxed);
  HAIL_ASSIGN_OR_RETURN(PaxBlockView view, PaxBlockView::Open(data));
  BlockFormatOptions options;
  options.varlen_partition_size = view.varlen_partition_size();
  // Carrying the flag means a deserialize → permute → serialize round trip
  // (the replica transformer, adaptive re-sorts) re-encodes the reordered
  // columns from scratch instead of losing the format — codes are never
  // copied across a permutation.
  options.enable_encoding = view.encoded_format();
  PaxBlock block(view.schema(), options);
  const uint32_t n = view.num_records();
  // Bulk per-column decode: fixed-size minipages are one memcpy each,
  // string minipages one sequential pass — no per-row Value round trip.
  // Encoded minipages expand runs / codes / dictionary references.
  for (int c = 0; c < view.num_columns(); ++c) {
    ColumnVector& col = block.columns_[static_cast<size_t>(c)];
    switch (view.column_encoding(c)) {
      case MiniPageEncoding::kPlain:
        break;
      case MiniPageEncoding::kFor: {
        HAIL_ASSIGN_OR_RETURN(ForSpan span, view.ForSpanOf(c));
        if (col.type() == FieldType::kInt64) {
          std::vector<int64_t>& out = col.mutable_i64();
          out.reserve(n);
          for (uint32_t r = 0; r < n; ++r) out.push_back(span.Value(r));
        } else {
          std::vector<int32_t>& out = col.mutable_i32();
          out.reserve(n);
          for (uint32_t r = 0; r < n; ++r) {
            out.push_back(static_cast<int32_t>(span.Value(r)));
          }
        }
        continue;
      }
      case MiniPageEncoding::kRle:
        switch (col.type()) {
          case FieldType::kInt32:
          case FieldType::kDate: {
            HAIL_ASSIGN_OR_RETURN(RleSpan<int32_t> span, view.RleInt32Span(c));
            std::vector<int32_t>& out = col.mutable_i32();
            out.resize(n);
            for (uint32_t j = 0; j < span.num_runs(); ++j) {
              std::fill(out.begin() + span.run_start(j),
                        out.begin() + span.run_end(j), span.run_value(j));
            }
            break;
          }
          case FieldType::kInt64: {
            HAIL_ASSIGN_OR_RETURN(RleSpan<int64_t> span, view.RleInt64Span(c));
            std::vector<int64_t>& out = col.mutable_i64();
            out.resize(n);
            for (uint32_t j = 0; j < span.num_runs(); ++j) {
              std::fill(out.begin() + span.run_start(j),
                        out.begin() + span.run_end(j), span.run_value(j));
            }
            break;
          }
          default: {
            HAIL_ASSIGN_OR_RETURN(RleSpan<double> span, view.RleDoubleSpan(c));
            std::vector<double>& out = col.mutable_f64();
            out.resize(n);
            for (uint32_t j = 0; j < span.num_runs(); ++j) {
              std::fill(out.begin() + span.run_start(j),
                        out.begin() + span.run_end(j), span.run_value(j));
            }
            break;
          }
        }
        continue;
      case MiniPageEncoding::kDict: {
        HAIL_ASSIGN_OR_RETURN(DictSpan span, view.DictSpanOf(c));
        std::vector<std::string>& out = col.mutable_str();
        out.reserve(n);
        for (uint32_t r = 0; r < n; ++r) out.emplace_back(span.Value(r));
        continue;
      }
    }
    switch (col.type()) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> span, view.Int32Span(c));
        std::vector<int32_t>& out = col.mutable_i32();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(int32_t));
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> span, view.Int64Span(c));
        std::vector<int64_t>& out = col.mutable_i64();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(int64_t));
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<double> span, view.DoubleSpan(c));
        std::vector<double>& out = col.mutable_f64();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(double));
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor, view.OpenVarlenCursor(c));
        std::vector<std::string>& out = col.mutable_str();
        out.reserve(n);
        for (uint32_t r = 0; r < n; ++r) {
          HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
          out.emplace_back(s);
        }
        break;
      }
    }
  }
  HAIL_ASSIGN_OR_RETURN(BadRecordCursor bad, view.OpenBadRecords());
  while (!bad.Done()) {
    HAIL_ASSIGN_OR_RETURN(std::string_view raw, bad.Next());
    block.AppendBadRecord(raw);
  }
  return block;
}

// ---------------------------------------------------------------------------
// PaxBlockView
// ---------------------------------------------------------------------------

Result<PaxBlockView> PaxBlockView::Open(std::string_view data) {
  PaxBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kPaxMagic) {
    return Status::Corruption("not a PAX block (bad magic)");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind != kPaxLayoutPlain && kind != kPaxLayoutEncoded) {
    return Status::Corruption("unsupported layout kind");
  }
  view.layout_kind_ = kind;
  HAIL_ASSIGN_OR_RETURN(std::string_view schema_text, r.GetLengthPrefixed());
  HAIL_ASSIGN_OR_RETURN(view.schema_, Schema::Parse(schema_text));
  HAIL_ASSIGN_OR_RETURN(view.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(view.varlen_partition_, r.GetU32());
  if (view.varlen_partition_ == 0) {
    return Status::Corruption("zero varlen partition size");
  }
  HAIL_ASSIGN_OR_RETURN(view.num_bad_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
  if (ncols != static_cast<uint32_t>(view.schema_.num_fields())) {
    return Status::Corruption("column count does not match schema");
  }
  view.cols_.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
    ci.type = static_cast<FieldType>(type_byte);
    HAIL_ASSIGN_OR_RETURN(ci.minipage_offset, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(ci.minipage_bytes, r.GetU64());
    // Overflow-safe form of offset + bytes > size: a crafted directory
    // must not wrap past the bulk-decode memcpy bounds.
    if (ci.minipage_bytes > data.size() ||
        ci.minipage_offset > data.size() - ci.minipage_bytes) {
      return Status::Corruption("minipage out of bounds");
    }
    // v1 fixed minipages are bare value arrays sized directly from the
    // directory; v3 minipages carry per-encoding headers and are checked
    // section by section in ResolveEncodedColumn below.
    if (kind == kPaxLayoutPlain && IsFixedSize(ci.type) &&
        ci.minipage_bytes < static_cast<uint64_t>(view.num_records_) *
                                FieldTypeWidth(ci.type)) {
      return Status::Corruption("fixed minipage truncated");
    }
    if (kind == kPaxLayoutPlain) ci.values_pos = ci.minipage_offset;
  }
  HAIL_ASSIGN_OR_RETURN(view.bad_section_offset_, r.GetU64());
  if (view.bad_section_offset_ > data.size()) {
    return Status::Corruption("bad-record section out of bounds");
  }
  // The bad-record tail is the final section and is written with no
  // trailing padding, so its length-prefixed entries must account for
  // every remaining byte. Walking it up front keeps a truncated buffer
  // from parsing as a shorter-but-valid block: the v1 HAIL container
  // derives the PAX extent from the buffer end, so without this check a
  // block missing its tail bytes would open (and scan) silently.
  ByteReader tail(data);
  HAIL_RETURN_NOT_OK(tail.SeekTo(view.bad_section_offset_));
  for (uint32_t i = 0; i < view.num_bad_records_; ++i) {
    HAIL_RETURN_NOT_OK(tail.GetLengthPrefixed().status());
  }
  if (tail.remaining() != 0) {
    return Status::Corruption("trailing bytes after bad-record section");
  }

  if (kind == kPaxLayoutEncoded) {
    for (uint32_t i = 0; i < ncols; ++i) {
      HAIL_RETURN_NOT_OK(view.ResolveEncodedColumn(&view.cols_[i]));
    }
    return view;
  }

  // Resolve varlen internals (v1).
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    if (ci.type != FieldType::kString) continue;
    ByteReader vr(data);
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.minipage_offset));
    HAIL_ASSIGN_OR_RETURN(ci.num_offsets, vr.GetU32());
    ci.offsets_pos = vr.position();
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.offsets_pos + 8ull * ci.num_offsets));
    HAIL_ASSIGN_OR_RETURN(ci.values_bytes, vr.GetU64());
    ci.values_pos = vr.position();  // <= data.size() by construction
    if (ci.values_bytes > data.size() - ci.values_pos) {
      return Status::Corruption("varlen values out of bounds");
    }
  }
  return view;
}

/// Parses and validates one format-v3 minipage. Every section's extent is
/// checked against the directory-declared minipage bounds (themselves
/// bounds-checked against the buffer above), and every structural
/// invariant the zero-copy spans rely on is verified here ONCE — RLE run
/// starts strictly increasing from 0, dictionary entries NUL-terminated,
/// sorted and distinct, every code inside the dictionary — so that no
/// truncation parses as a shorter-valid block and no bit flip can push a
/// span load out of bounds.
Status PaxBlockView::ResolveEncodedColumn(ColumnInfo* ci) {
  const uint64_t extent_end = ci->minipage_offset + ci->minipage_bytes;
  auto within = [&](uint64_t pos, uint64_t bytes) {
    return pos >= ci->minipage_offset && pos <= extent_end &&
           bytes <= extent_end - pos;
  };
  const uint32_t n = num_records_;
  ByteReader r(data_);
  HAIL_RETURN_NOT_OK(r.SeekTo(ci->minipage_offset));
  if (ci->minipage_bytes == 0) {
    return Status::Corruption("encoded minipage has no tag");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag > static_cast<uint8_t>(MiniPageEncoding::kFor)) {
    return Status::Corruption("unknown minipage encoding");
  }
  ci->encoding = static_cast<MiniPageEncoding>(tag);
  switch (ci->encoding) {
    case MiniPageEncoding::kPlain: {
      if (ci->type == FieldType::kString) {
        HAIL_ASSIGN_OR_RETURN(ci->num_offsets, r.GetU32());
        ci->offsets_pos = r.position();
        HAIL_RETURN_NOT_OK(r.SeekTo(ci->offsets_pos + 8ull * ci->num_offsets));
        HAIL_ASSIGN_OR_RETURN(ci->values_bytes, r.GetU64());
        ci->values_pos = r.position();
        if (!within(ci->values_pos, ci->values_bytes)) {
          return Status::Corruption("varlen values out of bounds");
        }
        return Status::OK();
      }
      ci->values_pos = Align8(r.position());
      if (!within(ci->values_pos, uint64_t{n} * FieldTypeWidth(ci->type))) {
        return Status::Corruption("fixed minipage truncated");
      }
      return Status::OK();
    }
    case MiniPageEncoding::kFor: {
      if (ci->type == FieldType::kDouble || ci->type == FieldType::kString) {
        return Status::Corruption("FOR encoding on non-integer column");
      }
      HAIL_ASSIGN_OR_RETURN(ci->code_width, r.GetU8());
      if (ci->code_width != 1 && ci->code_width != 2 && ci->code_width != 4) {
        return Status::Corruption("bad FOR code width");
      }
      if (ci->code_width >= FieldTypeWidth(ci->type)) {
        return Status::Corruption("FOR code width not narrower than type");
      }
      HAIL_RETURN_NOT_OK(r.SeekTo(Align8(r.position())));
      HAIL_ASSIGN_OR_RETURN(uint64_t frame_bits, r.GetU64());
      ci->frame = static_cast<int64_t>(frame_bits);
      ci->codes_pos = r.position();
      if (!within(ci->codes_pos, uint64_t{n} * ci->code_width)) {
        return Status::Corruption("FOR codes out of bounds");
      }
      return Status::OK();
    }
    case MiniPageEncoding::kRle: {
      if (ci->type == FieldType::kString) {
        return Status::Corruption("RLE encoding on string column");
      }
      HAIL_ASSIGN_OR_RETURN(ci->num_runs, r.GetU32());
      if (n == 0 ? ci->num_runs != 0 : (ci->num_runs == 0 || ci->num_runs > n)) {
        return Status::Corruption("bad RLE run count");
      }
      ci->run_starts_pos = Align8(r.position());
      if (!within(ci->run_starts_pos, 4ull * ci->num_runs)) {
        return Status::Corruption("RLE run starts out of bounds");
      }
      ci->run_values_pos = Align8(ci->run_starts_pos + 4ull * ci->num_runs);
      if (!within(ci->run_values_pos,
                  uint64_t{ci->num_runs} * FieldTypeWidth(ci->type))) {
        return Status::Corruption("RLE run values out of bounds");
      }
      uint32_t prev = 0;
      for (uint32_t j = 0; j < ci->num_runs; ++j) {
        uint32_t start;
        std::memcpy(&start, data_.data() + ci->run_starts_pos + 4ull * j, 4);
        if (j == 0 ? start != 0 : start <= prev) {
          return Status::Corruption("RLE run starts not strictly increasing");
        }
        if (start >= n) return Status::Corruption("RLE run start out of range");
        prev = start;
      }
      return Status::OK();
    }
    case MiniPageEncoding::kDict: {
      if (ci->type != FieldType::kString) {
        return Status::Corruption("dictionary encoding on fixed-size column");
      }
      HAIL_ASSIGN_OR_RETURN(ci->code_width, r.GetU8());
      if (ci->code_width != 1 && ci->code_width != 2 && ci->code_width != 4) {
        return Status::Corruption("bad dictionary code width");
      }
      HAIL_ASSIGN_OR_RETURN(ci->dict_size, r.GetU32());
      HAIL_ASSIGN_OR_RETURN(ci->dict_values_bytes, r.GetU64());
      if (n == 0 || ci->dict_size == 0 || ci->dict_size > n ||
          ci->dict_values_bytes < ci->dict_size) {
        return Status::Corruption("bad dictionary shape");
      }
      ci->dict_offsets_pos = Align8(r.position());
      if (!within(ci->dict_offsets_pos, 4ull * ci->dict_size)) {
        return Status::Corruption("dictionary offsets out of bounds");
      }
      ci->dict_values_pos = ci->dict_offsets_pos + 4ull * ci->dict_size;
      if (!within(ci->dict_values_pos, ci->dict_values_bytes)) {
        return Status::Corruption("dictionary values out of bounds");
      }
      ci->codes_pos = Align8(ci->dict_values_pos + ci->dict_values_bytes);
      if (!within(ci->codes_pos, uint64_t{n} * ci->code_width)) {
        return Status::Corruption("dictionary codes out of bounds");
      }
      const char* dict_vals = data_.data() + ci->dict_values_pos;
      if (dict_vals[ci->dict_values_bytes - 1] != '\0') {
        return Status::Corruption("dictionary not NUL-terminated");
      }
      uint32_t prev_off = 0;
      for (uint32_t j = 0; j < ci->dict_size; ++j) {
        uint32_t off;
        std::memcpy(&off, data_.data() + ci->dict_offsets_pos + 4ull * j, 4);
        if (j == 0 ? off != 0 : off <= prev_off) {
          return Status::Corruption("dictionary offsets not increasing");
        }
        if (off >= ci->dict_values_bytes) {
          return Status::Corruption("dictionary offset out of bounds");
        }
        if (j > 0 && dict_vals[off - 1] != '\0') {
          return Status::Corruption("dictionary entry not NUL-terminated");
        }
        prev_off = off;
      }
      // The scan engine's predicate rewrite binary-searches the entries,
      // so order (and distinctness) is a structural invariant, not a hint.
      DictSpan span(data_.data() + ci->codes_pos, ci->code_width, n,
                    data_.data() + ci->dict_offsets_pos, dict_vals,
                    ci->dict_values_bytes, ci->dict_size);
      for (uint32_t j = 1; j < ci->dict_size; ++j) {
        if (!(span.DictEntry(j - 1) < span.DictEntry(j))) {
          return Status::Corruption("dictionary entries not sorted");
        }
      }
      for (uint32_t row = 0; row < n; ++row) {
        if (span.Code(row) >= ci->dict_size) {
          return Status::Corruption("dictionary code out of range");
        }
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown minipage encoding");
}

namespace {

template <typename T>
Result<ColumnSpan<T>> MakeFixedSpan(std::string_view data, uint64_t values_pos,
                                    MiniPageEncoding enc, uint32_t num_records,
                                    bool type_matches) {
  if (!type_matches) {
    return Status::InvalidArgument("typed span does not match column type");
  }
  if (enc != MiniPageEncoding::kPlain) {
    return Status::FailedPrecondition(
        "minipage is encoded; use the encoded spans");
  }
  return ColumnSpan<T>(data.data() + values_pos, num_records);
}

}  // namespace

Result<ColumnSpan<int32_t>> PaxBlockView::Int32Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<int32_t>(
      data_, ci.values_pos, ci.encoding, num_records_,
      ci.type == FieldType::kInt32 || ci.type == FieldType::kDate);
}

Result<ColumnSpan<int64_t>> PaxBlockView::Int64Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<int64_t>(data_, ci.values_pos, ci.encoding,
                                num_records_, ci.type == FieldType::kInt64);
}

Result<ColumnSpan<double>> PaxBlockView::DoubleSpan(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<double>(data_, ci.values_pos, ci.encoding,
                               num_records_, ci.type == FieldType::kDouble);
}

Result<ForSpan> PaxBlockView::ForSpanOf(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.encoding != MiniPageEncoding::kFor) {
    return Status::FailedPrecondition("column is not FOR-encoded");
  }
  return ForSpan(data_.data() + ci.codes_pos, num_records_, ci.code_width,
                 ci.frame);
}

namespace {

template <typename T>
Result<RleSpan<T>> MakeRleSpan(std::string_view data, uint64_t starts_pos,
                               uint64_t values_pos, uint32_t num_runs,
                               MiniPageEncoding enc, uint32_t num_records,
                               bool type_matches) {
  if (!type_matches) {
    return Status::InvalidArgument("typed span does not match column type");
  }
  if (enc != MiniPageEncoding::kRle) {
    return Status::FailedPrecondition("column is not RLE-encoded");
  }
  return RleSpan<T>(data.data() + starts_pos, data.data() + values_pos,
                    num_runs, num_records);
}

}  // namespace

Result<RleSpan<int32_t>> PaxBlockView::RleInt32Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeRleSpan<int32_t>(
      data_, ci.run_starts_pos, ci.run_values_pos, ci.num_runs, ci.encoding,
      num_records_, ci.type == FieldType::kInt32 || ci.type == FieldType::kDate);
}

Result<RleSpan<int64_t>> PaxBlockView::RleInt64Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeRleSpan<int64_t>(data_, ci.run_starts_pos, ci.run_values_pos,
                              ci.num_runs, ci.encoding, num_records_,
                              ci.type == FieldType::kInt64);
}

Result<RleSpan<double>> PaxBlockView::RleDoubleSpan(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeRleSpan<double>(data_, ci.run_starts_pos, ci.run_values_pos,
                             ci.num_runs, ci.encoding, num_records_,
                             ci.type == FieldType::kDouble);
}

Result<DictSpan> PaxBlockView::DictSpanOf(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.encoding != MiniPageEncoding::kDict) {
    return Status::FailedPrecondition("column is not dictionary-encoded");
  }
  return DictSpan(data_.data() + ci.codes_pos, ci.code_width, num_records_,
                  data_.data() + ci.dict_offsets_pos,
                  data_.data() + ci.dict_values_pos, ci.dict_values_bytes,
                  ci.dict_size);
}

int PaxBlockView::num_encoded_columns() const {
  int count = 0;
  for (const ColumnInfo& ci : cols_) {
    count += ci.encoding != MiniPageEncoding::kPlain ? 1 : 0;
  }
  return count;
}

uint64_t PaxBlockView::stored_payload_bytes() const {
  uint64_t bytes = data_.size() - bad_section_offset_;
  for (int i = 0; i < num_columns(); ++i) bytes += column_value_bytes(i);
  return bytes;
}

Result<VarlenCursor> PaxBlockView::OpenVarlenCursor(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type != FieldType::kString) {
    return Status::InvalidArgument("OpenVarlenCursor on fixed-size column");
  }
  if (ci.encoding != MiniPageEncoding::kPlain) {
    return Status::FailedPrecondition(
        "string minipage is dictionary-encoded; use DictSpanOf");
  }
  VarlenCursor cursor;
  cursor.values_ = data_.data() + ci.values_pos;
  cursor.end_ = cursor.values_ + ci.values_bytes;
  cursor.offsets_ = data_.data() + ci.offsets_pos;
  cursor.num_offsets_ = ci.num_offsets;
  cursor.partition_size_ = varlen_partition_;
  cursor.num_records_ = num_records_;
  cursor.cursor_ = cursor.values_;
  return cursor;
}

Result<std::string_view> VarlenCursor::Get(uint32_t row) {
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  const uint32_t partition = row / partition_size_;
  if (row < current_row_ || partition != current_row_ / partition_size_) {
    // Backward or cross-partition jump: re-seek via the sparse offset.
    if (partition >= num_offsets_) {
      return Status::Corruption("varlen partition offset missing");
    }
    uint64_t offset;
    std::memcpy(&offset, offsets_ + 8ull * partition, sizeof(offset));
    if (offset > static_cast<uint64_t>(end_ - values_)) {
      return Status::Corruption("varlen partition offset out of bounds");
    }
    cursor_ = values_ + offset;
    current_row_ = partition * partition_size_;
    ++partition_seeks_;
  }
  while (current_row_ < row) {
    // Skip one zero-terminated value.
    while (cursor_ < end_ && *cursor_ != '\0') ++cursor_;
    if (cursor_ >= end_) return Status::Corruption("varlen scan out of bounds");
    ++cursor_;  // NUL
    ++current_row_;
    ++decode_steps_;
  }
  const char* value_start = cursor_;
  while (cursor_ < end_ && *cursor_ != '\0') ++cursor_;
  if (cursor_ >= end_) {
    // Well-formed minipages NUL-terminate every value, including the last;
    // running off the end is corruption, same as in the skip loop above.
    return Status::Corruption("varlen value not terminated");
  }
  std::string_view out(value_start,
                       static_cast<size_t>(cursor_ - value_start));
  ++cursor_;  // NUL
  ++current_row_;
  ++decode_steps_;
  return out;
}

Result<BadRecordCursor> PaxBlockView::OpenBadRecords() const {
  // bad_section_offset_ was bounds-checked in Open().
  return BadRecordCursor(data_.substr(bad_section_offset_), num_bad_records_);
}

Result<std::string_view> BadRecordCursor::Next() {
  if (remaining_ == 0) return Status::OutOfRange("no bad records left");
  --remaining_;
  return reader_.GetLengthPrefixed();
}

Result<Value> PaxBlockView::GetFixedValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  if (ci.type == FieldType::kString) {
    return Status::InvalidArgument("GetFixedValue on string column");
  }
  switch (ci.encoding) {
    case MiniPageEncoding::kPlain:
      break;
    case MiniPageEncoding::kFor: {
      const ForSpan span(data_.data() + ci.codes_pos, num_records_,
                         ci.code_width, ci.frame);
      const int64_t v = span.Value(row);
      return ci.type == FieldType::kInt64
                 ? Value(v)
                 : Value(static_cast<int32_t>(v));
    }
    case MiniPageEncoding::kRle:
      switch (ci.type) {
        case FieldType::kInt32:
        case FieldType::kDate:
          return Value(RleSpan<int32_t>(data_.data() + ci.run_starts_pos,
                                        data_.data() + ci.run_values_pos,
                                        ci.num_runs, num_records_)
                           .Value(row));
        case FieldType::kInt64:
          return Value(RleSpan<int64_t>(data_.data() + ci.run_starts_pos,
                                        data_.data() + ci.run_values_pos,
                                        ci.num_runs, num_records_)
                           .Value(row));
        default:
          return Value(RleSpan<double>(data_.data() + ci.run_starts_pos,
                                       data_.data() + ci.run_values_pos,
                                       ci.num_runs, num_records_)
                           .Value(row));
      }
    case MiniPageEncoding::kDict:
      return Status::Corruption("dictionary encoding on fixed-size column");
  }
  const char* base = data_.data() + ci.values_pos;
  switch (ci.type) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      int32_t v;
      std::memcpy(&v, base + row * sizeof(int32_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kInt64: {
      int64_t v;
      std::memcpy(&v, base + row * sizeof(int64_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kDouble: {
      double v;
      std::memcpy(&v, base + row * sizeof(double), sizeof(v));
      return Value(v);
    }
    case FieldType::kString:
      return Status::InvalidArgument("GetFixedValue on string column");
  }
  return Status::Corruption("unknown column type");
}

Result<std::string_view> PaxBlockView::GetString(int column,
                                                 uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.encoding == MiniPageEncoding::kDict) {
    // Dictionary access is O(1): one code load, one offset lookup — the
    // partition scan below only exists for plain varlen minipages.
    if (row >= num_records_) return Status::OutOfRange("row out of range");
    HAIL_ASSIGN_OR_RETURN(DictSpan span, DictSpanOf(column));
    return span.Value(row);
  }
  // §3.5: "we scan the partition floor(rowID / n) entirely from disk...
  // then, in main memory we post-filter the partition". A throwaway
  // cursor performs exactly that — one partition-offset seek plus a
  // forward scan — so the varlen decode exists in one place.
  HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor, OpenVarlenCursor(column));
  return cursor.Get(row);
}

Result<Value> PaxBlockView::GetAnyValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type == FieldType::kString) {
    HAIL_ASSIGN_OR_RETURN(std::string_view s, GetString(column, row));
    return Value(std::string(s));
  }
  return GetFixedValue(column, row);
}

Result<std::vector<Value>> PaxBlockView::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(cols_.size());
  for (int i = 0; i < num_columns(); ++i) {
    HAIL_ASSIGN_OR_RETURN(Value v, GetAnyValue(i, row));
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::string_view> PaxBlockView::GetBadRecord(uint32_t i) const {
  if (i >= num_bad_records_) return Status::OutOfRange("bad record index");
  ByteReader r(data_);
  HAIL_RETURN_NOT_OK(r.SeekTo(bad_section_offset_));
  for (uint32_t k = 0; k < i; ++k) {
    HAIL_ASSIGN_OR_RETURN(std::string_view skip, r.GetLengthPrefixed());
    (void)skip;
  }
  return r.GetLengthPrefixed();
}

uint64_t PaxBlockView::EstimateColumnReadBytes(int column,
                                               uint64_t rows_touched) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (num_records_ == 0 || rows_touched == 0) return 0;
  if (rows_touched >= num_records_) return ci.minipage_bytes;
  // Partition-granular: assume each touched row costs one partition read,
  // capped at the full minipage.
  const uint32_t partitions =
      (num_records_ + varlen_partition_ - 1) / varlen_partition_;
  const uint64_t partition_bytes = ci.minipage_bytes / partitions;
  const uint64_t cost = rows_touched * partition_bytes;
  return cost > ci.minipage_bytes ? ci.minipage_bytes : cost;
}

PaxBlock BuildPaxBlockFromText(const Schema& schema, std::string_view text,
                               BlockFormatOptions options) {
  PaxBlock block(schema, options);
  // Size the typed columns once from the average row width instead of
  // growing them row by row.
  const size_t estimated_rows =
      text.size() / std::max<size_t>(1, schema.EstimatedRowWidth());
  for (ColumnVector& col : block.mutable_columns()) {
    col.Reserve(estimated_rows);
  }
  ColumnarAppender appender(block.schema(), &block.mutable_columns());
  // Walk newline-terminated rows in place (same row semantics as
  // SplitRows, without materialising the row list).
  size_t start = 0;
  while (start < text.size()) {
    size_t pos = text.find('\n', start);
    if (pos == std::string_view::npos) pos = text.size();
    const std::string_view row = text.substr(start, pos - start);
    start = pos + 1;
    if (row.empty()) continue;
    if (!appender.AppendRow(row)) {
      block.AppendBadRecord(row);
    }
  }
  return block;
}

}  // namespace hail
