#include "layout/pax_block.h"

#include <atomic>
#include <cassert>
#include <cstring>

namespace hail {

PaxBlock::PaxBlock(Schema schema, BlockFormatOptions options)
    : schema_(std::move(schema)), options_(options) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

void PaxBlock::AppendRow(const std::vector<Value>& values) {
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Append(values[i]);
  }
}

void PaxBlock::AppendBadRecord(std::string_view raw) {
  bad_records_.emplace_back(raw);
}

std::vector<Value> PaxBlock::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    out.push_back(col.GetValue(row));
  }
  return out;
}

std::vector<uint32_t> PaxBlock::SortByColumn(int key_column) {
  std::vector<uint32_t> perm =
      ArgSortColumn(columns_[static_cast<size_t>(key_column)]);
  for (ColumnVector& col : columns_) {
    col.ApplyPermutation(perm);
  }
  return perm;
}

PaxBlock PaxBlock::PermutedCopy(const std::vector<uint32_t>& perm) const {
  PaxBlock out(schema_, options_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.columns_[i] = columns_[i].PermutedCopy(perm);
  }
  out.bad_records_ = bad_records_;
  return out;
}

uint64_t PaxBlock::PayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    bytes += col.SerializedValueBytes();
  }
  for (const std::string& bad : bad_records_) {
    bytes += bad.size();
  }
  return bytes;
}

uint64_t PaxBlock::FixedPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

uint64_t PaxBlock::VarlenPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (!IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

std::string PaxBlock::Serialize() const {
  ByteWriter w;
  const uint32_t n = num_records();
  const int ncols = num_columns();

  w.PutU32(kPaxMagic);
  w.PutU8(0);  // layout kind: PAX
  w.PutLengthPrefixed(schema_.ToString());
  w.PutU32(n);
  w.PutU32(options_.varlen_partition_size);
  w.PutU32(static_cast<uint32_t>(bad_records_.size()));
  w.PutU32(static_cast<uint32_t>(ncols));
  // Back-patched directory: per column (type, offset, bytes); then the
  // bad-section offset.
  const size_t dir_pos = w.size();
  for (int i = 0; i < ncols; ++i) {
    w.PutU8(static_cast<uint8_t>(schema_.field(i).type));
    w.PutU64(0);  // minipage offset
    w.PutU64(0);  // minipage bytes
  }
  const size_t bad_off_pos = w.size();
  w.PutU64(0);

  std::vector<uint64_t> col_offsets(static_cast<size_t>(ncols));
  std::vector<uint64_t> col_bytes(static_cast<size_t>(ncols));

  const uint32_t part = options_.varlen_partition_size;
  for (int i = 0; i < ncols; ++i) {
    const ColumnVector& col = columns_[static_cast<size_t>(i)];
    // Align each minipage to 8 bytes so typed batch accessors read aligned
    // values whenever the enclosing buffer is itself aligned. The pad lives
    // between the recorded extents of adjacent minipages, so per-column
    // byte accounting is unchanged.
    while (w.size() % 8 != 0) w.PutU8(0);
    col_offsets[static_cast<size_t>(i)] = w.size();
    switch (col.type()) {
      case FieldType::kInt32:
      case FieldType::kDate:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.i32().data()),
            col.i32().size() * sizeof(int32_t)));
        break;
      case FieldType::kInt64:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.i64().data()),
            col.i64().size() * sizeof(int64_t)));
        break;
      case FieldType::kDouble:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.f64().data()),
            col.f64().size() * sizeof(double)));
        break;
      case FieldType::kString: {
        // Sparse offsets: one per partition of `part` values, relative to
        // the start of the value bytes ("we only store every n-th offset",
        // §3.5).
        const auto& strs = col.str();
        const uint32_t num_offsets =
            n == 0 ? 0 : (n + part - 1) / part;
        w.PutU32(num_offsets);
        std::vector<uint64_t> offsets(num_offsets);
        uint64_t pos = 0;
        for (uint32_t r = 0; r < n; ++r) {
          if (r % part == 0) offsets[r / part] = pos;
          pos += strs[r].size() + 1;
        }
        for (uint64_t off : offsets) w.PutU64(off);
        w.PutU64(pos);  // total value bytes
        for (uint32_t r = 0; r < n; ++r) {
          w.PutBytes(strs[r]);
          w.PutU8(0);
        }
        break;
      }
    }
    col_bytes[static_cast<size_t>(i)] =
        w.size() - col_offsets[static_cast<size_t>(i)];
  }

  const uint64_t bad_offset = w.size();
  for (const std::string& bad : bad_records_) {
    w.PutLengthPrefixed(bad);
  }

  // Patch the directory.
  size_t cursor = dir_pos;
  for (int i = 0; i < ncols; ++i) {
    cursor += 1;  // type byte
    std::memcpy(w.buffer().data() + cursor, &col_offsets[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
    std::memcpy(w.buffer().data() + cursor, &col_bytes[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
  }
  std::memcpy(w.buffer().data() + bad_off_pos, &bad_offset, sizeof(uint64_t));

  return w.Take();
}

namespace {
std::atomic<uint64_t> g_pax_deserialize_count{0};
}  // namespace

uint64_t PaxBlock::deserialize_count() {
  return g_pax_deserialize_count.load(std::memory_order_relaxed);
}

Result<PaxBlock> PaxBlock::Deserialize(std::string_view data) {
  g_pax_deserialize_count.fetch_add(1, std::memory_order_relaxed);
  HAIL_ASSIGN_OR_RETURN(PaxBlockView view, PaxBlockView::Open(data));
  BlockFormatOptions options;
  options.varlen_partition_size = view.varlen_partition_size();
  PaxBlock block(view.schema(), options);
  const uint32_t n = view.num_records();
  // Bulk per-column decode: fixed-size minipages are one memcpy each,
  // string minipages one sequential pass — no per-row Value round trip.
  for (int c = 0; c < view.num_columns(); ++c) {
    ColumnVector& col = block.columns_[static_cast<size_t>(c)];
    switch (col.type()) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> span, view.Int32Span(c));
        std::vector<int32_t>& out = col.mutable_i32();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(int32_t));
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> span, view.Int64Span(c));
        std::vector<int64_t>& out = col.mutable_i64();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(int64_t));
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(ColumnSpan<double> span, view.DoubleSpan(c));
        std::vector<double>& out = col.mutable_f64();
        out.resize(n);
        if (n > 0) std::memcpy(out.data(), span.raw_bytes(), n * sizeof(double));
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor, view.OpenVarlenCursor(c));
        std::vector<std::string>& out = col.mutable_str();
        out.reserve(n);
        for (uint32_t r = 0; r < n; ++r) {
          HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
          out.emplace_back(s);
        }
        break;
      }
    }
  }
  HAIL_ASSIGN_OR_RETURN(BadRecordCursor bad, view.OpenBadRecords());
  while (!bad.Done()) {
    HAIL_ASSIGN_OR_RETURN(std::string_view raw, bad.Next());
    block.AppendBadRecord(raw);
  }
  return block;
}

// ---------------------------------------------------------------------------
// PaxBlockView
// ---------------------------------------------------------------------------

Result<PaxBlockView> PaxBlockView::Open(std::string_view data) {
  PaxBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kPaxMagic) {
    return Status::Corruption("not a PAX block (bad magic)");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind != 0) {
    return Status::Corruption("unsupported layout kind");
  }
  HAIL_ASSIGN_OR_RETURN(std::string_view schema_text, r.GetLengthPrefixed());
  HAIL_ASSIGN_OR_RETURN(view.schema_, Schema::Parse(schema_text));
  HAIL_ASSIGN_OR_RETURN(view.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(view.varlen_partition_, r.GetU32());
  if (view.varlen_partition_ == 0) {
    return Status::Corruption("zero varlen partition size");
  }
  HAIL_ASSIGN_OR_RETURN(view.num_bad_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
  if (ncols != static_cast<uint32_t>(view.schema_.num_fields())) {
    return Status::Corruption("column count does not match schema");
  }
  view.cols_.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
    ci.type = static_cast<FieldType>(type_byte);
    HAIL_ASSIGN_OR_RETURN(ci.minipage_offset, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(ci.minipage_bytes, r.GetU64());
    // Overflow-safe form of offset + bytes > size: a crafted directory
    // must not wrap past the bulk-decode memcpy bounds.
    if (ci.minipage_bytes > data.size() ||
        ci.minipage_offset > data.size() - ci.minipage_bytes) {
      return Status::Corruption("minipage out of bounds");
    }
    if (IsFixedSize(ci.type) &&
        ci.minipage_bytes < static_cast<uint64_t>(view.num_records_) *
                                FieldTypeWidth(ci.type)) {
      return Status::Corruption("fixed minipage truncated");
    }
  }
  HAIL_ASSIGN_OR_RETURN(view.bad_section_offset_, r.GetU64());
  if (view.bad_section_offset_ > data.size()) {
    return Status::Corruption("bad-record section out of bounds");
  }
  // The bad-record tail is the final section and is written with no
  // trailing padding, so its length-prefixed entries must account for
  // every remaining byte. Walking it up front keeps a truncated buffer
  // from parsing as a shorter-but-valid block: the v1 HAIL container
  // derives the PAX extent from the buffer end, so without this check a
  // block missing its tail bytes would open (and scan) silently.
  ByteReader tail(data);
  HAIL_RETURN_NOT_OK(tail.SeekTo(view.bad_section_offset_));
  for (uint32_t i = 0; i < view.num_bad_records_; ++i) {
    HAIL_RETURN_NOT_OK(tail.GetLengthPrefixed().status());
  }
  if (tail.remaining() != 0) {
    return Status::Corruption("trailing bytes after bad-record section");
  }

  // Resolve varlen internals.
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    if (ci.type != FieldType::kString) continue;
    ByteReader vr(data);
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.minipage_offset));
    HAIL_ASSIGN_OR_RETURN(ci.num_offsets, vr.GetU32());
    ci.offsets_pos = vr.position();
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.offsets_pos + 8ull * ci.num_offsets));
    HAIL_ASSIGN_OR_RETURN(ci.values_bytes, vr.GetU64());
    ci.values_pos = vr.position();  // <= data.size() by construction
    if (ci.values_bytes > data.size() - ci.values_pos) {
      return Status::Corruption("varlen values out of bounds");
    }
  }
  return view;
}

namespace {

template <typename T>
Result<ColumnSpan<T>> MakeFixedSpan(std::string_view data,
                                    uint64_t minipage_offset,
                                    uint32_t num_records, bool type_matches) {
  if (!type_matches) {
    return Status::InvalidArgument("typed span does not match column type");
  }
  return ColumnSpan<T>(data.data() + minipage_offset, num_records);
}

}  // namespace

Result<ColumnSpan<int32_t>> PaxBlockView::Int32Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<int32_t>(
      data_, ci.minipage_offset, num_records_,
      ci.type == FieldType::kInt32 || ci.type == FieldType::kDate);
}

Result<ColumnSpan<int64_t>> PaxBlockView::Int64Span(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<int64_t>(data_, ci.minipage_offset, num_records_,
                                ci.type == FieldType::kInt64);
}

Result<ColumnSpan<double>> PaxBlockView::DoubleSpan(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  return MakeFixedSpan<double>(data_, ci.minipage_offset, num_records_,
                               ci.type == FieldType::kDouble);
}

Result<VarlenCursor> PaxBlockView::OpenVarlenCursor(int column) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type != FieldType::kString) {
    return Status::InvalidArgument("OpenVarlenCursor on fixed-size column");
  }
  VarlenCursor cursor;
  cursor.values_ = data_.data() + ci.values_pos;
  cursor.end_ = cursor.values_ + ci.values_bytes;
  cursor.offsets_ = data_.data() + ci.offsets_pos;
  cursor.num_offsets_ = ci.num_offsets;
  cursor.partition_size_ = varlen_partition_;
  cursor.num_records_ = num_records_;
  cursor.cursor_ = cursor.values_;
  return cursor;
}

Result<std::string_view> VarlenCursor::Get(uint32_t row) {
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  const uint32_t partition = row / partition_size_;
  if (row < current_row_ || partition != current_row_ / partition_size_) {
    // Backward or cross-partition jump: re-seek via the sparse offset.
    if (partition >= num_offsets_) {
      return Status::Corruption("varlen partition offset missing");
    }
    uint64_t offset;
    std::memcpy(&offset, offsets_ + 8ull * partition, sizeof(offset));
    if (offset > static_cast<uint64_t>(end_ - values_)) {
      return Status::Corruption("varlen partition offset out of bounds");
    }
    cursor_ = values_ + offset;
    current_row_ = partition * partition_size_;
    ++partition_seeks_;
  }
  while (current_row_ < row) {
    // Skip one zero-terminated value.
    while (cursor_ < end_ && *cursor_ != '\0') ++cursor_;
    if (cursor_ >= end_) return Status::Corruption("varlen scan out of bounds");
    ++cursor_;  // NUL
    ++current_row_;
    ++decode_steps_;
  }
  const char* value_start = cursor_;
  while (cursor_ < end_ && *cursor_ != '\0') ++cursor_;
  if (cursor_ >= end_) {
    // Well-formed minipages NUL-terminate every value, including the last;
    // running off the end is corruption, same as in the skip loop above.
    return Status::Corruption("varlen value not terminated");
  }
  std::string_view out(value_start,
                       static_cast<size_t>(cursor_ - value_start));
  ++cursor_;  // NUL
  ++current_row_;
  ++decode_steps_;
  return out;
}

Result<BadRecordCursor> PaxBlockView::OpenBadRecords() const {
  // bad_section_offset_ was bounds-checked in Open().
  return BadRecordCursor(data_.substr(bad_section_offset_), num_bad_records_);
}

Result<std::string_view> BadRecordCursor::Next() {
  if (remaining_ == 0) return Status::OutOfRange("no bad records left");
  --remaining_;
  return reader_.GetLengthPrefixed();
}

Result<Value> PaxBlockView::GetFixedValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  const char* base = data_.data() + ci.minipage_offset;
  switch (ci.type) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      int32_t v;
      std::memcpy(&v, base + row * sizeof(int32_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kInt64: {
      int64_t v;
      std::memcpy(&v, base + row * sizeof(int64_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kDouble: {
      double v;
      std::memcpy(&v, base + row * sizeof(double), sizeof(v));
      return Value(v);
    }
    case FieldType::kString:
      return Status::InvalidArgument("GetFixedValue on string column");
  }
  return Status::Corruption("unknown column type");
}

Result<std::string_view> PaxBlockView::GetString(int column,
                                                 uint32_t row) const {
  // §3.5: "we scan the partition floor(rowID / n) entirely from disk...
  // then, in main memory we post-filter the partition". A throwaway
  // cursor performs exactly that — one partition-offset seek plus a
  // forward scan — so the varlen decode exists in one place.
  HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor, OpenVarlenCursor(column));
  return cursor.Get(row);
}

Result<Value> PaxBlockView::GetAnyValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type == FieldType::kString) {
    HAIL_ASSIGN_OR_RETURN(std::string_view s, GetString(column, row));
    return Value(std::string(s));
  }
  return GetFixedValue(column, row);
}

Result<std::vector<Value>> PaxBlockView::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(cols_.size());
  for (int i = 0; i < num_columns(); ++i) {
    HAIL_ASSIGN_OR_RETURN(Value v, GetAnyValue(i, row));
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::string_view> PaxBlockView::GetBadRecord(uint32_t i) const {
  if (i >= num_bad_records_) return Status::OutOfRange("bad record index");
  ByteReader r(data_);
  HAIL_RETURN_NOT_OK(r.SeekTo(bad_section_offset_));
  for (uint32_t k = 0; k < i; ++k) {
    HAIL_ASSIGN_OR_RETURN(std::string_view skip, r.GetLengthPrefixed());
    (void)skip;
  }
  return r.GetLengthPrefixed();
}

uint64_t PaxBlockView::EstimateColumnReadBytes(int column,
                                               uint64_t rows_touched) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (num_records_ == 0 || rows_touched == 0) return 0;
  if (rows_touched >= num_records_) return ci.minipage_bytes;
  // Partition-granular: assume each touched row costs one partition read,
  // capped at the full minipage.
  const uint32_t partitions =
      (num_records_ + varlen_partition_ - 1) / varlen_partition_;
  const uint64_t partition_bytes = ci.minipage_bytes / partitions;
  const uint64_t cost = rows_touched * partition_bytes;
  return cost > ci.minipage_bytes ? ci.minipage_bytes : cost;
}

PaxBlock BuildPaxBlockFromText(const Schema& schema, std::string_view text,
                               BlockFormatOptions options) {
  PaxBlock block(schema, options);
  // Size the typed columns once from the average row width instead of
  // growing them row by row.
  const size_t estimated_rows =
      text.size() / std::max<size_t>(1, schema.EstimatedRowWidth());
  for (ColumnVector& col : block.mutable_columns()) {
    col.Reserve(estimated_rows);
  }
  ColumnarAppender appender(block.schema(), &block.mutable_columns());
  // Walk newline-terminated rows in place (same row semantics as
  // SplitRows, without materialising the row list).
  size_t start = 0;
  while (start < text.size()) {
    size_t pos = text.find('\n', start);
    if (pos == std::string_view::npos) pos = text.size();
    const std::string_view row = text.substr(start, pos - start);
    start = pos + 1;
    if (row.empty()) continue;
    if (!appender.AppendRow(row)) {
      block.AppendBadRecord(row);
    }
  }
  return block;
}

}  // namespace hail
