#include "layout/pax_block.h"

#include <cassert>
#include <cstring>

namespace hail {

PaxBlock::PaxBlock(Schema schema, BlockFormatOptions options)
    : schema_(std::move(schema)), options_(options) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

void PaxBlock::AppendRow(const std::vector<Value>& values) {
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Append(values[i]);
  }
}

void PaxBlock::AppendBadRecord(std::string_view raw) {
  bad_records_.emplace_back(raw);
}

std::vector<Value> PaxBlock::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    out.push_back(col.GetValue(row));
  }
  return out;
}

std::vector<uint32_t> PaxBlock::SortByColumn(int key_column) {
  std::vector<uint32_t> perm =
      ArgSortColumn(columns_[static_cast<size_t>(key_column)]);
  for (ColumnVector& col : columns_) {
    col.ApplyPermutation(perm);
  }
  return perm;
}

uint64_t PaxBlock::PayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    bytes += col.SerializedValueBytes();
  }
  for (const std::string& bad : bad_records_) {
    bytes += bad.size();
  }
  return bytes;
}

uint64_t PaxBlock::FixedPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

uint64_t PaxBlock::VarlenPayloadBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    if (!IsFixedSize(col.type())) bytes += col.SerializedValueBytes();
  }
  return bytes;
}

std::string PaxBlock::Serialize() const {
  ByteWriter w;
  const uint32_t n = num_records();
  const int ncols = num_columns();

  w.PutU32(kPaxMagic);
  w.PutU8(0);  // layout kind: PAX
  w.PutLengthPrefixed(schema_.ToString());
  w.PutU32(n);
  w.PutU32(options_.varlen_partition_size);
  w.PutU32(static_cast<uint32_t>(bad_records_.size()));
  w.PutU32(static_cast<uint32_t>(ncols));
  // Back-patched directory: per column (type, offset, bytes); then the
  // bad-section offset.
  const size_t dir_pos = w.size();
  for (int i = 0; i < ncols; ++i) {
    w.PutU8(static_cast<uint8_t>(schema_.field(i).type));
    w.PutU64(0);  // minipage offset
    w.PutU64(0);  // minipage bytes
  }
  const size_t bad_off_pos = w.size();
  w.PutU64(0);

  std::vector<uint64_t> col_offsets(static_cast<size_t>(ncols));
  std::vector<uint64_t> col_bytes(static_cast<size_t>(ncols));

  const uint32_t part = options_.varlen_partition_size;
  for (int i = 0; i < ncols; ++i) {
    const ColumnVector& col = columns_[static_cast<size_t>(i)];
    col_offsets[static_cast<size_t>(i)] = w.size();
    switch (col.type()) {
      case FieldType::kInt32:
      case FieldType::kDate:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.i32().data()),
            col.i32().size() * sizeof(int32_t)));
        break;
      case FieldType::kInt64:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.i64().data()),
            col.i64().size() * sizeof(int64_t)));
        break;
      case FieldType::kDouble:
        w.PutBytes(std::string_view(
            reinterpret_cast<const char*>(col.f64().data()),
            col.f64().size() * sizeof(double)));
        break;
      case FieldType::kString: {
        // Sparse offsets: one per partition of `part` values, relative to
        // the start of the value bytes ("we only store every n-th offset",
        // §3.5).
        const auto& strs = col.str();
        const uint32_t num_offsets =
            n == 0 ? 0 : (n + part - 1) / part;
        w.PutU32(num_offsets);
        std::vector<uint64_t> offsets(num_offsets);
        uint64_t pos = 0;
        for (uint32_t r = 0; r < n; ++r) {
          if (r % part == 0) offsets[r / part] = pos;
          pos += strs[r].size() + 1;
        }
        for (uint64_t off : offsets) w.PutU64(off);
        w.PutU64(pos);  // total value bytes
        for (uint32_t r = 0; r < n; ++r) {
          w.PutBytes(strs[r]);
          w.PutU8(0);
        }
        break;
      }
    }
    col_bytes[static_cast<size_t>(i)] =
        w.size() - col_offsets[static_cast<size_t>(i)];
  }

  const uint64_t bad_offset = w.size();
  for (const std::string& bad : bad_records_) {
    w.PutLengthPrefixed(bad);
  }

  // Patch the directory.
  size_t cursor = dir_pos;
  for (int i = 0; i < ncols; ++i) {
    cursor += 1;  // type byte
    std::memcpy(w.buffer().data() + cursor, &col_offsets[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
    std::memcpy(w.buffer().data() + cursor, &col_bytes[static_cast<size_t>(i)],
                sizeof(uint64_t));
    cursor += 8;
  }
  std::memcpy(w.buffer().data() + bad_off_pos, &bad_offset, sizeof(uint64_t));

  return w.Take();
}

Result<PaxBlock> PaxBlock::Deserialize(std::string_view data) {
  HAIL_ASSIGN_OR_RETURN(PaxBlockView view, PaxBlockView::Open(data));
  BlockFormatOptions options;
  options.varlen_partition_size = view.varlen_partition_size();
  PaxBlock block(view.schema(), options);
  for (uint32_t r = 0; r < view.num_records(); ++r) {
    HAIL_ASSIGN_OR_RETURN(std::vector<Value> row, view.GetRow(r));
    block.AppendRow(row);
  }
  for (uint32_t b = 0; b < view.num_bad_records(); ++b) {
    HAIL_ASSIGN_OR_RETURN(std::string_view raw, view.GetBadRecord(b));
    block.AppendBadRecord(raw);
  }
  return block;
}

// ---------------------------------------------------------------------------
// PaxBlockView
// ---------------------------------------------------------------------------

Result<PaxBlockView> PaxBlockView::Open(std::string_view data) {
  PaxBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kPaxMagic) {
    return Status::Corruption("not a PAX block (bad magic)");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind != 0) {
    return Status::Corruption("unsupported layout kind");
  }
  HAIL_ASSIGN_OR_RETURN(std::string_view schema_text, r.GetLengthPrefixed());
  HAIL_ASSIGN_OR_RETURN(view.schema_, Schema::Parse(schema_text));
  HAIL_ASSIGN_OR_RETURN(view.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(view.varlen_partition_, r.GetU32());
  if (view.varlen_partition_ == 0) {
    return Status::Corruption("zero varlen partition size");
  }
  HAIL_ASSIGN_OR_RETURN(view.num_bad_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
  if (ncols != static_cast<uint32_t>(view.schema_.num_fields())) {
    return Status::Corruption("column count does not match schema");
  }
  view.cols_.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
    ci.type = static_cast<FieldType>(type_byte);
    HAIL_ASSIGN_OR_RETURN(ci.minipage_offset, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(ci.minipage_bytes, r.GetU64());
    if (ci.minipage_offset + ci.minipage_bytes > data.size()) {
      return Status::Corruption("minipage out of bounds");
    }
  }
  HAIL_ASSIGN_OR_RETURN(view.bad_section_offset_, r.GetU64());
  if (view.bad_section_offset_ > data.size()) {
    return Status::Corruption("bad-record section out of bounds");
  }

  // Resolve varlen internals.
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo& ci = view.cols_[i];
    if (ci.type != FieldType::kString) continue;
    ByteReader vr(data);
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.minipage_offset));
    HAIL_ASSIGN_OR_RETURN(ci.num_offsets, vr.GetU32());
    ci.offsets_pos = vr.position();
    HAIL_RETURN_NOT_OK(vr.SeekTo(ci.offsets_pos + 8ull * ci.num_offsets));
    HAIL_ASSIGN_OR_RETURN(ci.values_bytes, vr.GetU64());
    ci.values_pos = vr.position();
    if (ci.values_pos + ci.values_bytes > data.size()) {
      return Status::Corruption("varlen values out of bounds");
    }
  }
  return view;
}

Result<Value> PaxBlockView::GetFixedValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  const char* base = data_.data() + ci.minipage_offset;
  switch (ci.type) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      int32_t v;
      std::memcpy(&v, base + row * sizeof(int32_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kInt64: {
      int64_t v;
      std::memcpy(&v, base + row * sizeof(int64_t), sizeof(v));
      return Value(v);
    }
    case FieldType::kDouble: {
      double v;
      std::memcpy(&v, base + row * sizeof(double), sizeof(v));
      return Value(v);
    }
    case FieldType::kString:
      return Status::InvalidArgument("GetFixedValue on string column");
  }
  return Status::Corruption("unknown column type");
}

Result<std::string_view> PaxBlockView::GetString(int column,
                                                 uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type != FieldType::kString) {
    return Status::InvalidArgument("GetString on fixed-size column");
  }
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  // §3.5: "we scan the partition floor(rowID / n) entirely from disk...
  // then, in main memory we post-filter the partition".
  const uint32_t partition = row / varlen_partition_;
  uint64_t offset;
  std::memcpy(&offset, data_.data() + ci.offsets_pos + 8ull * partition,
              sizeof(offset));
  const char* cursor = data_.data() + ci.values_pos + offset;
  const char* end = data_.data() + ci.values_pos + ci.values_bytes;
  uint32_t current = partition * varlen_partition_;
  while (current < row) {
    // Skip one zero-terminated value.
    while (cursor < end && *cursor != '\0') ++cursor;
    if (cursor >= end) return Status::Corruption("varlen scan out of bounds");
    ++cursor;  // NUL
    ++current;
  }
  const char* value_start = cursor;
  while (cursor < end && *cursor != '\0') ++cursor;
  if (cursor > end) return Status::Corruption("varlen value out of bounds");
  return std::string_view(value_start,
                          static_cast<size_t>(cursor - value_start));
}

Result<Value> PaxBlockView::GetAnyValue(int column, uint32_t row) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (ci.type == FieldType::kString) {
    HAIL_ASSIGN_OR_RETURN(std::string_view s, GetString(column, row));
    return Value(std::string(s));
  }
  return GetFixedValue(column, row);
}

Result<std::vector<Value>> PaxBlockView::GetRow(uint32_t row) const {
  std::vector<Value> out;
  out.reserve(cols_.size());
  for (int i = 0; i < num_columns(); ++i) {
    HAIL_ASSIGN_OR_RETURN(Value v, GetAnyValue(i, row));
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::string_view> PaxBlockView::GetBadRecord(uint32_t i) const {
  if (i >= num_bad_records_) return Status::OutOfRange("bad record index");
  ByteReader r(data_);
  HAIL_RETURN_NOT_OK(r.SeekTo(bad_section_offset_));
  for (uint32_t k = 0; k < i; ++k) {
    HAIL_ASSIGN_OR_RETURN(std::string_view skip, r.GetLengthPrefixed());
    (void)skip;
  }
  return r.GetLengthPrefixed();
}

uint64_t PaxBlockView::EstimateColumnReadBytes(int column,
                                               uint64_t rows_touched) const {
  const ColumnInfo& ci = cols_[static_cast<size_t>(column)];
  if (num_records_ == 0 || rows_touched == 0) return 0;
  if (rows_touched >= num_records_) return ci.minipage_bytes;
  // Partition-granular: assume each touched row costs one partition read,
  // capped at the full minipage.
  const uint32_t partitions =
      (num_records_ + varlen_partition_ - 1) / varlen_partition_;
  const uint64_t partition_bytes = ci.minipage_bytes / partitions;
  const uint64_t cost = rows_touched * partition_bytes;
  return cost > ci.minipage_bytes ? ci.minipage_bytes : cost;
}

PaxBlock BuildPaxBlockFromText(const Schema& schema, std::string_view text,
                               BlockFormatOptions options) {
  PaxBlock block(schema, options);
  RowParser parser(schema);
  for (std::string_view row : SplitRows(text)) {
    if (row.empty()) continue;
    ParsedRow parsed = parser.Parse(row);
    if (parsed.ok) {
      block.AppendRow(parsed.values);
    } else {
      block.AppendBadRecord(row);
    }
  }
  return block;
}

}  // namespace hail
