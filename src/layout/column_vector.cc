#include "layout/column_vector.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace hail {

size_t ColumnVector::size() const {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      return i32_.size();
    case FieldType::kInt64:
      return i64_.size();
    case FieldType::kDouble:
      return f64_.size();
    case FieldType::kString:
      return str_.size();
  }
  return 0;
}

void ColumnVector::Append(const Value& v) {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      i32_.push_back(v.as_int32());
      break;
    case FieldType::kInt64:
      i64_.push_back(v.as_int64());
      break;
    case FieldType::kDouble:
      f64_.push_back(v.as_double());
      break;
    case FieldType::kString:
      str_.push_back(v.as_string());
      break;
  }
}

Value ColumnVector::GetValue(size_t row) const {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      return Value(i32_[row]);
    case FieldType::kInt64:
      return Value(i64_[row]);
    case FieldType::kDouble:
      return Value(f64_[row]);
    case FieldType::kString:
      return Value(str_[row]);
  }
  return Value();
}

void ColumnVector::Truncate(size_t n) {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      if (n < i32_.size()) i32_.resize(n);
      break;
    case FieldType::kInt64:
      if (n < i64_.size()) i64_.resize(n);
      break;
    case FieldType::kDouble:
      if (n < f64_.size()) f64_.resize(n);
      break;
    case FieldType::kString:
      if (n < str_.size()) str_.resize(n);
      break;
  }
}

namespace {
template <typename T>
void Permute(std::vector<T>* data, const std::vector<uint32_t>& perm) {
  std::vector<T> out;
  out.reserve(data->size());
  for (uint32_t src : perm) {
    out.push_back(std::move((*data)[src]));
  }
  *data = std::move(out);
}
}  // namespace

void ColumnVector::ApplyPermutation(const std::vector<uint32_t>& perm) {
  assert(perm.size() == size());
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      Permute(&i32_, perm);
      break;
    case FieldType::kInt64:
      Permute(&i64_, perm);
      break;
    case FieldType::kDouble:
      Permute(&f64_, perm);
      break;
    case FieldType::kString:
      Permute(&str_, perm);
      break;
  }
}

namespace {
template <typename T>
std::vector<T> PermutedVector(const std::vector<T>& data,
                              const std::vector<uint32_t>& perm) {
  std::vector<T> out;
  out.reserve(data.size());
  for (uint32_t src : perm) out.push_back(data[src]);
  return out;
}
}  // namespace

ColumnVector ColumnVector::PermutedCopy(
    const std::vector<uint32_t>& perm) const {
  assert(perm.size() == size());
  ColumnVector out(type_);
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      out.i32_ = PermutedVector(i32_, perm);
      break;
    case FieldType::kInt64:
      out.i64_ = PermutedVector(i64_, perm);
      break;
    case FieldType::kDouble:
      out.f64_ = PermutedVector(f64_, perm);
      break;
    case FieldType::kString:
      out.str_ = PermutedVector(str_, perm);
      break;
  }
  return out;
}

uint64_t ColumnVector::SerializedValueBytes() const {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      return i32_.size() * sizeof(int32_t);
    case FieldType::kInt64:
      return i64_.size() * sizeof(int64_t);
    case FieldType::kDouble:
      return f64_.size() * sizeof(double);
    case FieldType::kString: {
      uint64_t bytes = 0;
      for (const std::string& s : str_) bytes += s.size() + 1;  // NUL
      return bytes;
    }
  }
  return 0;
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case FieldType::kInt32:
    case FieldType::kDate:
      i32_.reserve(n);
      break;
    case FieldType::kInt64:
      i64_.reserve(n);
      break;
    case FieldType::kDouble:
      f64_.reserve(n);
      break;
    case FieldType::kString:
      str_.reserve(n);
      break;
  }
}

std::vector<uint32_t> ArgSortColumn(const ColumnVector& column) {
  std::vector<uint32_t> perm(column.size());
  std::iota(perm.begin(), perm.end(), 0u);
  switch (column.type()) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      const auto& v = column.i32();
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case FieldType::kInt64: {
      const auto& v = column.i64();
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case FieldType::kDouble: {
      const auto& v = column.f64();
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case FieldType::kString: {
      const auto& v = column.str();
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
  }
  return perm;
}

}  // namespace hail
