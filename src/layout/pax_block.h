/// \file pax_block.h
/// \brief The PAX block format HAIL stores on datanodes (paper §3.1, §3.5).
///
/// A PAX block keeps all records of one HDFS block, column-major: one
/// "minipage" per attribute, preceded by a Block Metadata header (schema,
/// record counts, minipage directory) and followed by the bad-record
/// section. Variable-size attributes are stored as zero-terminated values
/// with a *sparse* offset list — one offset per logical partition of n
/// values — enabling the partition-scan access path of §3.5.
///
/// Two representations exist:
///   - PaxBlock: mutable in-memory columns (build, sort, reorganise);
///   - PaxBlockView: zero-copy reader over the serialised bytes that tracks
///     which byte ranges were touched, so the simulator can bill exactly
///     the I/O a column scan performs.

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "layout/column_vector.h"
#include "layout/minipage_encoding.h"
#include "schema/row_parser.h"
#include "schema/schema.h"
#include "util/io.h"
#include "util/result.h"

namespace hail {

/// Serialisation constants.
inline constexpr uint32_t kPaxMagic = 0x4C494148;  // "HAIL" little-endian
inline constexpr uint32_t kDefaultVarlenPartition = 64;
/// Layout-kind byte: 0 = plain PAX (v1), 3 = encoded minipages (v3).
inline constexpr uint8_t kPaxLayoutPlain = 0;
inline constexpr uint8_t kPaxLayoutEncoded = 3;

/// \brief Options controlling the physical block format.
struct BlockFormatOptions {
  /// Values per logical partition for sparse varlen offsets (and for the
  /// clustered index built on top). The paper uses 1024 at 64 MB blocks;
  /// scaled-down tests use smaller partitions to keep granularity.
  uint32_t varlen_partition_size = kDefaultVarlenPartition;
  /// Write format v3: Serialize() picks NONE / dictionary / RLE /
  /// frame-of-reference per minipage by comparing encoded sizes. Off by
  /// default, so existing v1 bytes (and every golden digest over them)
  /// are unchanged. Deserialize() preserves the flag, so re-sorted
  /// replica copies re-encode rather than carrying stale codes.
  bool enable_encoding = false;
};

/// \brief Mutable, in-memory PAX block (one column vector per attribute).
class PaxBlock {
 public:
  PaxBlock(Schema schema, BlockFormatOptions options = {});

  const Schema& schema() const { return schema_; }
  const BlockFormatOptions& options() const { return options_; }
  uint32_t num_records() const {
    return columns_.empty() ? 0
                            : static_cast<uint32_t>(columns_[0].size());
  }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnVector& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<std::string>& bad_records() const { return bad_records_; }

  /// Appends a successfully parsed row.
  void AppendRow(const std::vector<Value>& values);
  /// Appends a row that failed schema validation (raw text preserved).
  void AppendBadRecord(std::string_view raw);

  /// Reconstructs row \p row as values in schema order.
  std::vector<Value> GetRow(uint32_t row) const;

  /// Sorts all columns by the given key column (stable). Returns the
  /// permutation that was applied (new[i] = old[perm[i]]).
  std::vector<uint32_t> SortByColumn(int key_column);

  /// Non-destructive reorder: returns a block whose row i is this block's
  /// row perm[i] (bad records carried over unchanged). The HAIL replica
  /// transformer decodes a block once and derives every replica's sort
  /// order from the shared columns via this.
  PaxBlock PermutedCopy(const std::vector<uint32_t>& perm) const;

  /// Direct access to the typed columns for bulk ingest paths
  /// (ColumnarAppender); callers must keep all columns at equal length.
  std::vector<ColumnVector>& mutable_columns() { return columns_; }

  /// Serialises header + minipages + bad section.
  std::string Serialize() const;

  /// Parses a serialised block back into mutable columns.
  static Result<PaxBlock> Deserialize(std::string_view data);

  /// Process-wide count of Deserialize calls. Upload tests assert the
  /// multi-replica build decodes each reassembled block exactly once,
  /// regardless of replication factor (the PR-1 decode_steps() idea at
  /// block granularity).
  static uint64_t deserialize_count();

  /// Bytes of the values-only payload (no header); used to size blocks.
  uint64_t PayloadBytes() const;
  /// Values-only bytes of the fixed-width columns.
  uint64_t FixedPayloadBytes() const;
  /// Values-only bytes of the variable-size (string) columns.
  uint64_t VarlenPayloadBytes() const;

 private:
  Schema schema_;
  BlockFormatOptions options_;
  std::vector<ColumnVector> columns_;
  std::vector<std::string> bad_records_;
};

/// \brief Zero-copy typed view over one fixed-size minipage.
///
/// Wraps the serialised value bytes directly — no decode, no copy. Loads
/// go through memcpy so they stay well-defined even when the block buffer
/// is not aligned for T (the serialiser pads minipages to 8 bytes, but a
/// view may sit inside a larger HAIL-block buffer); GCC/Clang compile the
/// 4/8-byte memcpy to a single unaligned load, so the filter kernels in
/// query/vectorized.cc auto-vectorise over these spans.
///
/// Alignment contract: the serialiser starts every value array at an
/// 8-byte offset *within the block* (v1 minipages and v3 plain/encoded
/// arrays alike), so whenever the enclosing buffer is 8-byte aligned the
/// memcpy loads hit naturally aligned addresses and compile to aligned
/// vector loads. The static_asserts below pin the widths that contract
/// serves; 8 must remain a multiple of every span element size.
template <typename T>
class ColumnSpan {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                "ColumnSpan serves 4/8-byte fixed-width minipage values; "
                "the 8-byte serialisation alignment must cover sizeof(T)");
  static_assert(8 % sizeof(T) == 0,
                "minipage 8-byte alignment would not align element loads");
  static_assert(std::is_trivially_copyable_v<T>,
                "ColumnSpan loads values with memcpy");

 public:
  ColumnSpan() = default;
  ColumnSpan(const char* base, uint32_t size) : base_(base), size_(size) {}

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T operator[](uint32_t i) const {
    T v;
    std::memcpy(&v, base_ + static_cast<size_t>(i) * sizeof(T), sizeof(T));
    return v;
  }

  /// Start of the serialised values (for bulk memcpy decode).
  const char* raw_bytes() const { return base_; }

 private:
  const char* base_ = nullptr;
  uint32_t size_ = 0;
};

/// \brief Sequential decoder for one varlen (string) minipage.
///
/// GetString() on the view re-scans the partition from its sparse offset
/// on *every* call — O(partition) per access, O(n * partition) for a full
/// column scan. The cursor instead remembers where the last decode ended:
/// monotonically non-decreasing row accesses (the scan engine's selection
/// vectors are always ascending) decode each value at most once, O(n)
/// total. Random jumps re-seek via the sparse partition offsets, so worst
/// case still matches the §3.5 path. `decode_steps()` counts values
/// walked, which the property tests and bench_scan_micro use to verify
/// the O(n) claim.
class VarlenCursor {
 public:
  VarlenCursor() = default;

  bool valid() const { return values_ != nullptr; }
  uint32_t num_records() const { return num_records_; }

  /// Returns the value of \p row; the view's buffer must stay alive.
  Result<std::string_view> Get(uint32_t row);

  /// Total zero-terminated values walked (skips + reads) since creation.
  uint64_t decode_steps() const { return decode_steps_; }
  /// Times the cursor had to jump via a sparse partition offset.
  uint64_t partition_seeks() const { return partition_seeks_; }

 private:
  friend class PaxBlockView;

  const char* values_ = nullptr;   // start of the value bytes
  const char* end_ = nullptr;      // one past the value bytes
  const char* offsets_ = nullptr;  // sparse u64 offset array
  uint32_t num_offsets_ = 0;
  uint32_t partition_size_ = 1;
  uint32_t num_records_ = 0;

  const char* cursor_ = nullptr;   // start of value `current_row_`
  uint32_t current_row_ = 0;
  uint64_t decode_steps_ = 0;
  uint64_t partition_seeks_ = 0;
};

/// \brief Sequential reader over the bad-record section.
///
/// GetBadRecord(i) re-skips records 0..i-1 on every call — O(i) each,
/// O(n^2) for the "hand every bad record to the map function" loop. The
/// cursor walks the section once.
class BadRecordCursor {
 public:
  BadRecordCursor() = default;

  uint32_t remaining() const { return remaining_; }
  bool Done() const { return remaining_ == 0; }

  /// Raw text of the next bad record; Done() must be false.
  Result<std::string_view> Next();

 private:
  friend class PaxBlockView;
  BadRecordCursor(std::string_view section, uint32_t count)
      : reader_(section), remaining_(count) {}

  ByteReader reader_{std::string_view()};
  uint32_t remaining_ = 0;
};

/// \brief Zero-copy reader over a serialised PAX block.
///
/// Random access to fixed-size values is O(1); string access follows the
/// paper's §3.5 path: jump to the partition's stored offset and scan the
/// zero-terminated values to the requested row. `bytes_touched` accumulates
/// the byte ranges a caller read (header, index partitions, minipage
/// slices) for I/O billing.
class PaxBlockView {
 public:
  /// Parses the header; data must outlive the view.
  static Result<PaxBlockView> Open(std::string_view data);

  const Schema& schema() const { return schema_; }
  uint32_t num_records() const { return num_records_; }
  uint32_t num_bad_records() const { return num_bad_records_; }
  uint32_t varlen_partition_size() const { return varlen_partition_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }

  /// Total serialised size of the block.
  uint64_t total_bytes() const { return data_.size(); }
  /// Bytes of column \p i's minipage (values + offset list).
  uint64_t column_bytes(int i) const {
    return cols_[static_cast<size_t>(i)].minipage_bytes;
  }
  /// Values-only bytes of column \p i — what the column occupies at paper
  /// scale, where the sparse offset side-car is negligible. Cost billing
  /// uses this; the real (scaled-down) offset lists are denser and must
  /// not be scaled up (DESIGN.md §2). For an *encoded* minipage this is
  /// the stored (compressed) extent — codes, runs, dictionary — so the
  /// datanode transfer terms automatically bill compressed bytes.
  uint64_t column_value_bytes(int i) const {
    const ColumnInfo& ci = cols_[static_cast<size_t>(i)];
    return ci.type == FieldType::kString && ci.encoding == MiniPageEncoding::kPlain
               ? ci.values_bytes
               : ci.minipage_bytes;
  }

  /// True when the block was serialised as format v3 (encoded minipages).
  bool encoded_format() const { return layout_kind_ == kPaxLayoutEncoded; }
  /// Physical encoding of column \p i's minipage (kPlain for v1 blocks).
  MiniPageEncoding column_encoding(int i) const {
    return cols_[static_cast<size_t>(i)].encoding;
  }
  /// Number of columns stored under a non-plain encoding.
  int num_encoded_columns() const;
  /// Stored payload bytes: sum of column_value_bytes over all columns plus
  /// the bad-record tail. With encoding on this is the compressed size the
  /// cost model bills for transfer (PaxBlock::PayloadBytes() stays the
  /// uncompressed logical payload).
  uint64_t stored_payload_bytes() const;

  // -- Batch accessors (the vectorized scan engine's read path) --

  /// Zero-copy typed view over a fixed-size minipage. Type must match:
  /// Int32Span serves kInt32 and kDate columns. Plain-encoded minipages
  /// only; encoded columns are served by the spans below
  /// (FailedPrecondition otherwise — callers dispatch on
  /// column_encoding()).
  Result<ColumnSpan<int32_t>> Int32Span(int column) const;
  Result<ColumnSpan<int64_t>> Int64Span(int column) const;
  Result<ColumnSpan<double>> DoubleSpan(int column) const;

  /// Zero-copy views over encoded minipages (format v3). Each requires
  /// the matching encoding/type pair.
  Result<ForSpan> ForSpanOf(int column) const;
  Result<RleSpan<int32_t>> RleInt32Span(int column) const;
  Result<RleSpan<int64_t>> RleInt64Span(int column) const;
  Result<RleSpan<double>> RleDoubleSpan(int column) const;
  Result<DictSpan> DictSpanOf(int column) const;

  /// Sequential decoder for a string column (O(n) full-column access).
  /// Plain varlen minipages only; dictionary columns use DictSpanOf.
  Result<VarlenCursor> OpenVarlenCursor(int column) const;

  /// Sequential reader over the bad-record section (O(n) total).
  Result<BadRecordCursor> OpenBadRecords() const;

  // -- Row-at-a-time accessors (parse/reconstruct boundary, tests) --

  /// Reads one fixed-size value.
  Result<Value> GetFixedValue(int column, uint32_t row) const;
  /// Reads one string value via the partition-scan path (§3.5).
  Result<std::string_view> GetString(int column, uint32_t row) const;
  /// Reads any value (dispatches on type).
  Result<Value> GetAnyValue(int column, uint32_t row) const;

  /// Reconstructs a full row (all columns).
  Result<std::vector<Value>> GetRow(uint32_t row) const;

  /// Raw text of bad record \p i (0 <= i < num_bad_records()).
  Result<std::string_view> GetBadRecord(uint32_t i) const;

  /// I/O accounting: adds the byte cost of touching `rows` arbitrary rows
  /// of column \p i, assuming partition-granular reads. Reading a column
  /// fully costs column_bytes(i).
  uint64_t EstimateColumnReadBytes(int column, uint64_t rows_touched) const;

 private:
  struct ColumnInfo {
    FieldType type;
    MiniPageEncoding encoding = MiniPageEncoding::kPlain;
    uint64_t minipage_offset = 0;  // absolute in data_
    uint64_t minipage_bytes = 0;
    // Plain minipages: absolute position of the raw value array (equal to
    // minipage_offset in v1; past the tag byte + pad in v3).
    uint64_t values_pos = 0;
    // For plain varlen columns:
    uint64_t offsets_pos = 0;      // absolute position of offset array
    uint32_t num_offsets = 0;
    uint64_t values_bytes = 0;
    // For encoded minipages (format v3):
    uint8_t code_width = 0;        // FOR/DICT code bytes (1/2/4)
    int64_t frame = 0;             // FOR frame (column minimum)
    uint64_t codes_pos = 0;        // FOR/DICT per-row code array
    uint32_t num_runs = 0;         // RLE
    uint64_t run_starts_pos = 0;   // RLE u32 start-row array
    uint64_t run_values_pos = 0;   // RLE value array
    uint32_t dict_size = 0;        // DICT entry count
    uint64_t dict_offsets_pos = 0; // DICT u32 entry offsets
    uint64_t dict_values_pos = 0;  // DICT NUL-terminated entries
    uint64_t dict_values_bytes = 0;
  };

  Status ResolveEncodedColumn(ColumnInfo* ci);

  std::string_view data_;
  Schema schema_;
  uint8_t layout_kind_ = kPaxLayoutPlain;
  uint32_t num_records_ = 0;
  uint32_t num_bad_records_ = 0;
  uint32_t varlen_partition_ = kDefaultVarlenPartition;
  uint64_t bad_section_offset_ = 0;
  std::vector<ColumnInfo> cols_;
};

/// \brief Parses text rows into a PAX block (the HAIL client's conversion
/// step 2 in Figure 1). Rows failing the schema go to the bad section.
PaxBlock BuildPaxBlockFromText(const Schema& schema, std::string_view text,
                               BlockFormatOptions options = {});

}  // namespace hail
