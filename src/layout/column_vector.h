/// \file column_vector.h
/// \brief In-memory typed column storage used while building/sorting blocks.
///
/// A PAX block under construction holds one ColumnVector per attribute.
/// Sorting a block (upload pipeline, §3.5) argsorts the key column and then
/// applies the permutation to every ColumnVector ("we build a sort index to
/// reorganize all other columns").

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "schema/value.h"

namespace hail {

/// \brief One attribute's values for all records of a block.
class ColumnVector {
 public:
  explicit ColumnVector(FieldType type) : type_(type) {}

  FieldType type() const { return type_; }
  size_t size() const;

  void Append(const Value& v);
  Value GetValue(size_t row) const;

  /// Direct typed appends (callers must match type()). These are the
  /// ingest hot path: text parsing writes straight into the typed storage
  /// with no Value boxing in between.
  void AppendInt32(int32_t v) { i32_.push_back(v); }
  void AppendInt64(int64_t v) { i64_.push_back(v); }
  void AppendDouble(double v) { f64_.push_back(v); }
  void AppendString(std::string_view v) { str_.emplace_back(v); }

  /// Drops values past the first \p n (rollback of a partially appended
  /// row when a later field fails to parse).
  void Truncate(size_t n);

  /// Direct typed access (callers must match type()).
  const std::vector<int32_t>& i32() const { return i32_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<std::string>& str() const { return str_; }

  /// Mutable typed access for bulk decode paths (block deserialisation
  /// memcpys whole minipages instead of appending row by row).
  std::vector<int32_t>& mutable_i32() { return i32_; }
  std::vector<int64_t>& mutable_i64() { return i64_; }
  std::vector<double>& mutable_f64() { return f64_; }
  std::vector<std::string>& mutable_str() { return str_; }

  /// Reorders values so new[i] = old[perm[i]].
  void ApplyPermutation(const std::vector<uint32_t>& perm);

  /// Non-destructive counterpart of ApplyPermutation: returns a column
  /// with out[i] = this[perm[i]], leaving this column untouched. The
  /// multi-replica upload path permutes one shared decoded block into
  /// each replica's sort order without re-decoding it.
  ColumnVector PermutedCopy(const std::vector<uint32_t>& perm) const;

  /// Total bytes this column occupies when serialised (values only).
  uint64_t SerializedValueBytes() const;

  void Reserve(size_t n);

 private:
  FieldType type_;
  std::vector<int32_t> i32_;    // kInt32 and kDate
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

/// \brief Stable argsort of a column: returns perm with
/// column[perm[0]] <= column[perm[1]] <= ...
std::vector<uint32_t> ArgSortColumn(const ColumnVector& column);

}  // namespace hail
