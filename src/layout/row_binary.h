/// \file row_binary.h
/// \brief Binary row layout used by the Hadoop++ baseline (paper §5, [12]).
///
/// Hadoop++'s conversion MapReduce job rewrites text blocks into binary
/// rows; its trojan index then points into this layout by byte offset.
/// Unlike PAX, reading any attribute drags the whole row from disk, which
/// is why Hadoop++ only narrowly wins on very selective queries (Fig. 7b).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "layout/column_vector.h"
#include "schema/schema.h"
#include "schema/value.h"
#include "util/io.h"
#include "util/result.h"

namespace hail {

inline constexpr uint32_t kRowBinaryMagic = 0x50505248;  // "HRPP"

/// \brief Streaming builder for a binary-row block.
class RowBinaryBlockBuilder {
 public:
  explicit RowBinaryBlockBuilder(Schema schema);

  /// Appends one row; records its byte offset (relative to the data
  /// section) for index construction.
  void AddRow(const std::vector<Value>& values);

  /// Appends row \p row of columnar storage (one ColumnVector per schema
  /// field) without boxing the values — the Hadoop++ conversion path
  /// emits sorted rows straight from typed columns through this.
  void AddRowFromColumns(const std::vector<ColumnVector>& columns,
                         uint32_t row);

  uint32_t num_records() const {
    return static_cast<uint32_t>(row_offsets_.size());
  }
  const std::vector<uint64_t>& row_offsets() const { return row_offsets_; }

  /// Bytes of encoded row data so far (excluding header).
  uint64_t data_bytes() const { return rows_.size(); }

  /// Serialises header + row data. The builder is left empty.
  std::string Finish();

 private:
  Schema schema_;
  ByteWriter rows_;
  std::vector<uint64_t> row_offsets_;
};

/// \brief Zero-copy reader for a binary-row block.
class RowBinaryBlockView {
 public:
  static Result<RowBinaryBlockView> Open(std::string_view data);

  const Schema& schema() const { return schema_; }
  uint32_t num_records() const { return num_records_; }
  uint64_t total_bytes() const { return data_.size(); }
  /// Offset (absolute) of the first row.
  uint64_t data_start() const { return data_start_; }

  /// Decodes the row starting at absolute offset \p pos; advances \p pos
  /// past the row.
  Result<std::vector<Value>> DecodeRowAt(uint64_t* pos) const;

  /// Decodes all rows (test/reference path).
  Result<std::vector<std::vector<Value>>> DecodeAll() const;

 private:
  std::string_view data_;
  Schema schema_;
  uint32_t num_records_ = 0;
  uint64_t data_start_ = 0;
};

}  // namespace hail
