#include "index/unclustered_index.h"

#include "index/key_search.h"
#include "util/io.h"

namespace hail {

namespace {
constexpr uint32_t kUnclusteredMagic = 0x43554948;  // "HIUC"
}  // namespace

UnclusteredIndex UnclusteredIndex::Build(const ColumnVector& keys) {
  UnclusteredIndex index(keys.type());
  index.num_records_ = static_cast<uint32_t>(keys.size());
  const std::vector<uint32_t> perm = ArgSortColumn(keys);
  index.row_ids_ = perm;
  for (uint32_t src : perm) {
    index.sorted_keys_.Append(keys.GetValue(src));
  }
  return index;
}

std::vector<uint32_t> UnclusteredIndex::Lookup(const KeyRange& range) const {
  std::vector<uint32_t> out;
  if (num_records_ == 0) return out;
  size_t begin = 0;
  size_t end = sorted_keys_.size();
  if (range.lo.has_value()) {
    begin = key_search::LowerBoundIndex(sorted_keys_, *range.lo);
  }
  if (range.hi.has_value()) {
    end = key_search::UpperBoundIndex(sorted_keys_, *range.hi);
  }
  for (size_t i = begin; i < end; ++i) {
    out.push_back(row_ids_[i]);
  }
  return out;
}

std::string UnclusteredIndex::Serialize() const {
  ByteWriter w;
  w.PutU32(kUnclusteredMagic);
  w.PutU8(static_cast<uint8_t>(sorted_keys_.type()));
  w.PutU32(num_records_);
  for (uint32_t i = 0; i < num_records_; ++i) {
    switch (sorted_keys_.type()) {
      case FieldType::kInt32:
      case FieldType::kDate:
        w.PutI32(sorted_keys_.i32()[i]);
        break;
      case FieldType::kInt64:
        w.PutI64(sorted_keys_.i64()[i]);
        break;
      case FieldType::kDouble:
        w.PutF64(sorted_keys_.f64()[i]);
        break;
      case FieldType::kString:
        w.PutLengthPrefixed(sorted_keys_.str()[i]);
        break;
    }
    w.PutU32(row_ids_[i]);
  }
  return w.Take();
}

Result<UnclusteredIndex> UnclusteredIndex::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kUnclusteredMagic) {
    return Status::Corruption("not an unclustered index");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
  const FieldType type = static_cast<FieldType>(type_byte);
  UnclusteredIndex index(type);
  HAIL_ASSIGN_OR_RETURN(index.num_records_, r.GetU32());
  index.row_ids_.reserve(index.num_records_);
  for (uint32_t i = 0; i < index.num_records_; ++i) {
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(int32_t v, r.GetI32());
        index.sorted_keys_.Append(Value(v));
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
        index.sorted_keys_.Append(Value(v));
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(double v, r.GetF64());
        index.sorted_keys_.Append(Value(v));
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(std::string_view s, r.GetLengthPrefixed());
        index.sorted_keys_.Append(Value(std::string(s)));
        break;
      }
    }
    HAIL_ASSIGN_OR_RETURN(uint32_t row, r.GetU32());
    index.row_ids_.push_back(row);
  }
  return index;
}

uint64_t UnclusteredIndex::SerializedBytes() const {
  uint64_t bytes = 4 + 1 + 4;
  bytes += sorted_keys_.SerializedValueBytes();
  if (sorted_keys_.type() == FieldType::kString) {
    // Serialize() writes length-prefixed strings (4 bytes each), while
    // SerializedValueBytes counts the PAX convention's NUL terminator
    // (1 byte each): swap the difference so this matches Serialize().
    bytes += 3ull * num_records_;
  }
  bytes += 4ull * num_records_;
  return bytes;
}

}  // namespace hail
