/// \file unclustered_index.h
/// \brief Dense unclustered index — the §3.5 ablation, not used by HAIL.
///
/// The paper explains why HAIL rejects unclustered indexes: they are dense
/// by definition (one entry per record, ~10-20% of the block size), cost
/// more write I/O at upload, and trigger random I/O per qualifying record
/// at query time, so they only pay off for very selective queries.
/// bench_index_micro quantifies all three claims against the clustered
/// index.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/clustered_index.h"
#include "layout/column_vector.h"
#include "util/result.h"

namespace hail {

/// \brief Dense (key, rowid) index over an *unsorted* block.
class UnclusteredIndex {
 public:
  /// Builds over the key column of a block in its original (unsorted) order.
  static UnclusteredIndex Build(const ColumnVector& keys);

  uint32_t num_records() const { return num_records_; }

  /// Row ids (in block order) whose key lies in \p range. Rows come back
  /// sorted by key, i.e. in *random* block order — each hit is a separate
  /// random access, which is exactly the §3.5 problem.
  std::vector<uint32_t> Lookup(const KeyRange& range) const;

  std::string Serialize() const;
  static Result<UnclusteredIndex> Deserialize(std::string_view data);
  uint64_t SerializedBytes() const;

 private:
  explicit UnclusteredIndex(FieldType type) : sorted_keys_(type) {}

  ColumnVector sorted_keys_;        // all keys, sorted
  std::vector<uint32_t> row_ids_;   // row id of each sorted key
  uint32_t num_records_ = 0;
};

}  // namespace hail
