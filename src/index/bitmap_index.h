/// \file bitmap_index.h
/// \brief Bitmap index for low-cardinality attributes (paper §3.5's
/// future-work extension).
///
/// "An interesting direction for future work would be to extend HAIL to
/// support additional indexes ... including bitmap indexes for low
/// cardinality domains." One bitset per distinct value over the block's
/// rows; equality and IN-set lookups return row ids by scanning set bits.
/// Compact for domains like countryCode (tens of values over hundreds of
/// thousands of rows: cardinality x rows / 8 bytes), and unlike the
/// clustered index it does not require the block to be sorted by the
/// attribute — it can ride along on any replica.
///
/// Keys are stored *typed*: numeric domains map through an ordered
/// int64/double map and string domains through a transparent
/// (string_view-keyed) map, so neither Build nor Lookup ever renders a
/// value to text — the old text-keyed design paid a formatting plus a
/// heap allocation per row built and per probe (bench_index_micro
/// measures and asserts the typed path).

#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "layout/column_vector.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {

/// \brief One bitset per distinct value of an (unsorted) column.
class BitmapIndex {
 public:
  /// Builds over a column in block order. Intended for low-cardinality
  /// domains; building is O(rows), size is O(cardinality * rows / 64).
  static BitmapIndex Build(const ColumnVector& values);

  uint32_t num_records() const { return num_records_; }
  size_t cardinality() const {
    return int_bitmaps_.size() + double_bitmaps_.size() +
           string_bitmaps_.size();
  }

  /// Row ids holding exactly \p v (ascending order).
  std::vector<uint32_t> Lookup(const Value& v) const;

  /// Row ids holding any of \p values (ascending, deduplicated).
  std::vector<uint32_t> LookupAny(const std::vector<Value>& values) const;

  /// Number of rows holding \p v — free from the bitmap's popcount.
  uint64_t Count(const Value& v) const;

  std::string Serialize() const;
  static Result<BitmapIndex> Deserialize(std::string_view data);
  uint64_t SerializedBytes() const;

 private:
  using Bits = std::vector<uint64_t>;

  /// Total order over doubles for map keying: IEEE `<` would make NaN
  /// incomparable (a strict-weak-ordering violation, i.e. UB in std::map
  /// — text rows can parse to NaN). All NaNs form one equivalence class
  /// sorted after every number; -0.0 and 0.0 stay one class, as under
  /// IEEE equality.
  struct DoubleKeyLess {
    bool operator()(double a, double b) const {
      if (std::isnan(a)) return false;  // NaN is never less
      if (std::isnan(b)) return true;   // every number < NaN
      return a < b;
    }
  };

  /// The bitset for \p v, or nullptr when the value never occurs. A
  /// lookup is one typed map probe: no formatting, no allocation (string
  /// probes go through the transparent comparator).
  const Bits* Find(const Value& v) const;

  uint32_t num_records_ = 0;
  FieldType type_ = FieldType::kInt32;
  // Exactly one of these is populated, chosen by the column type:
  // int32/date/int64 widen to int64, double stays double, strings own
  // their key bytes (probed via string_view).
  std::map<int64_t, Bits> int_bitmaps_;
  std::map<double, Bits, DoubleKeyLess> double_bitmaps_;
  std::map<std::string, Bits, std::less<>> string_bitmaps_;
};

}  // namespace hail
