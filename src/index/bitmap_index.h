/// \file bitmap_index.h
/// \brief Bitmap index for low-cardinality attributes (paper §3.5's
/// future-work extension).
///
/// "An interesting direction for future work would be to extend HAIL to
/// support additional indexes ... including bitmap indexes for low
/// cardinality domains." One bitset per distinct value over the block's
/// rows; equality and IN-set lookups return row ids by scanning set bits.
/// Compact for domains like countryCode (tens of values over hundreds of
/// thousands of rows: cardinality x rows / 8 bytes), and unlike the
/// clustered index it does not require the block to be sorted by the
/// attribute — it can ride along on any replica.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "layout/column_vector.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {

/// \brief One bitset per distinct value of an (unsorted) column.
class BitmapIndex {
 public:
  /// Builds over a column in block order. Intended for low-cardinality
  /// domains; building is O(rows), size is O(cardinality * rows / 64).
  static BitmapIndex Build(const ColumnVector& values);

  uint32_t num_records() const { return num_records_; }
  size_t cardinality() const { return bitmaps_.size(); }

  /// Row ids holding exactly \p v (ascending order).
  std::vector<uint32_t> Lookup(const Value& v) const;

  /// Row ids holding any of \p values (ascending, deduplicated).
  std::vector<uint32_t> LookupAny(const std::vector<Value>& values) const;

  /// Number of rows holding \p v — free from the bitmap's popcount.
  uint64_t Count(const Value& v) const;

  std::string Serialize() const;
  static Result<BitmapIndex> Deserialize(std::string_view data);
  uint64_t SerializedBytes() const;

 private:
  /// Values are keyed by their text rendering (types are homogeneous per
  /// column, so the rendering is a total order-preserving key).
  static std::string KeyOf(const Value& v);

  uint32_t num_records_ = 0;
  FieldType type_ = FieldType::kInt32;
  std::map<std::string, std::vector<uint64_t>> bitmaps_;  // key -> bitset
};

}  // namespace hail
