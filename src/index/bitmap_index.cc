#include "index/bitmap_index.h"

#include <algorithm>

#include "util/io.h"

namespace hail {

namespace {
constexpr uint32_t kBitmapMagic = 0x504D4248;  // "HBMP"

void SetBit(std::vector<uint64_t>* words, uint32_t row) {
  const size_t word = row / 64;
  if (words->size() <= word) words->resize(word + 1, 0);
  (*words)[word] |= (1ull << (row % 64));
}

void AppendSetBits(const std::vector<uint64_t>& words, uint32_t num_records,
                   std::vector<uint32_t>* out) {
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      const uint32_t row = static_cast<uint32_t>(w * 64 + bit);
      if (row < num_records) out->push_back(row);
      bits &= bits - 1;
    }
  }
}
}  // namespace

std::string BitmapIndex::KeyOf(const Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_double()) return v.ToText(FieldType::kDouble);
  if (v.is_int64()) return v.ToText(FieldType::kInt64);
  return v.ToText(FieldType::kInt32);
}

BitmapIndex BitmapIndex::Build(const ColumnVector& values) {
  BitmapIndex index;
  index.num_records_ = static_cast<uint32_t>(values.size());
  index.type_ = values.type();
  for (uint32_t r = 0; r < index.num_records_; ++r) {
    SetBit(&index.bitmaps_[KeyOf(values.GetValue(r))], r);
  }
  return index;
}

std::vector<uint32_t> BitmapIndex::Lookup(const Value& v) const {
  std::vector<uint32_t> out;
  auto it = bitmaps_.find(KeyOf(v));
  if (it == bitmaps_.end()) return out;
  AppendSetBits(it->second, num_records_, &out);
  return out;
}

std::vector<uint32_t> BitmapIndex::LookupAny(
    const std::vector<Value>& values) const {
  // OR the bitsets, then enumerate once (the classic bitmap win).
  std::vector<uint64_t> merged;
  for (const Value& v : values) {
    auto it = bitmaps_.find(KeyOf(v));
    if (it == bitmaps_.end()) continue;
    if (merged.size() < it->second.size()) merged.resize(it->second.size(), 0);
    for (size_t w = 0; w < it->second.size(); ++w) merged[w] |= it->second[w];
  }
  std::vector<uint32_t> out;
  AppendSetBits(merged, num_records_, &out);
  return out;
}

uint64_t BitmapIndex::Count(const Value& v) const {
  auto it = bitmaps_.find(KeyOf(v));
  if (it == bitmaps_.end()) return 0;
  uint64_t count = 0;
  for (uint64_t word : it->second) count += __builtin_popcountll(word);
  return count;
}

std::string BitmapIndex::Serialize() const {
  ByteWriter w;
  w.PutU32(kBitmapMagic);
  w.PutU8(static_cast<uint8_t>(type_));
  w.PutU32(num_records_);
  w.PutU32(static_cast<uint32_t>(bitmaps_.size()));
  for (const auto& [key, words] : bitmaps_) {
    w.PutLengthPrefixed(key);
    w.PutU32(static_cast<uint32_t>(words.size()));
    for (uint64_t word : words) w.PutU64(word);
  }
  return w.Take();
}

Result<BitmapIndex> BitmapIndex::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kBitmapMagic) return Status::Corruption("not a bitmap index");
  BitmapIndex index;
  HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
  index.type_ = static_cast<FieldType>(type_byte);
  HAIL_ASSIGN_OR_RETURN(index.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t cardinality, r.GetU32());
  for (uint32_t i = 0; i < cardinality; ++i) {
    HAIL_ASSIGN_OR_RETURN(std::string_view key, r.GetLengthPrefixed());
    HAIL_ASSIGN_OR_RETURN(uint32_t num_words, r.GetU32());
    std::vector<uint64_t> words;
    words.reserve(num_words);
    for (uint32_t w = 0; w < num_words; ++w) {
      HAIL_ASSIGN_OR_RETURN(uint64_t word, r.GetU64());
      words.push_back(word);
    }
    index.bitmaps_[std::string(key)] = std::move(words);
  }
  return index;
}

uint64_t BitmapIndex::SerializedBytes() const {
  uint64_t bytes = 4 + 1 + 4 + 4;
  for (const auto& [key, words] : bitmaps_) {
    bytes += 4 + key.size() + 4 + 8ull * words.size();
  }
  return bytes;
}

}  // namespace hail
