#include "index/bitmap_index.h"

#include <algorithm>
#include <cstring>

#include "util/io.h"

namespace hail {

namespace {
constexpr uint32_t kBitmapMagic = 0x504D4248;  // "HBMP"

void SetBit(std::vector<uint64_t>* words, uint32_t row) {
  const size_t word = row / 64;
  if (words->size() <= word) words->resize(word + 1, 0);
  (*words)[word] |= (1ull << (row % 64));
}

void AppendSetBits(const std::vector<uint64_t>& words, uint32_t num_records,
                   std::vector<uint32_t>* out) {
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      const uint32_t row = static_cast<uint32_t>(w * 64 + bit);
      if (row < num_records) out->push_back(row);
      bits &= bits - 1;
    }
  }
}

uint64_t DoubleKeyBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
}  // namespace

const BitmapIndex::Bits* BitmapIndex::Find(const Value& v) const {
  if (v.is_string()) {
    auto it = string_bitmaps_.find(std::string_view(v.as_string()));
    return it == string_bitmaps_.end() ? nullptr : &it->second;
  }
  if (v.is_double()) {
    auto it = double_bitmaps_.find(v.as_double());
    return it == double_bitmaps_.end() ? nullptr : &it->second;
  }
  const int64_t key = v.is_int64() ? v.as_int64() : v.as_int32();
  auto it = int_bitmaps_.find(key);
  return it == int_bitmaps_.end() ? nullptr : &it->second;
}

BitmapIndex BitmapIndex::Build(const ColumnVector& values) {
  BitmapIndex index;
  index.num_records_ = static_cast<uint32_t>(values.size());
  index.type_ = values.type();
  // Typed build: iterate the column's native storage, no Value boxing and
  // no per-row text rendering.
  switch (values.type()) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      const auto& v = values.i32();
      for (uint32_t r = 0; r < index.num_records_; ++r) {
        SetBit(&index.int_bitmaps_[v[r]], r);
      }
      break;
    }
    case FieldType::kInt64: {
      const auto& v = values.i64();
      for (uint32_t r = 0; r < index.num_records_; ++r) {
        SetBit(&index.int_bitmaps_[v[r]], r);
      }
      break;
    }
    case FieldType::kDouble: {
      const auto& v = values.f64();
      for (uint32_t r = 0; r < index.num_records_; ++r) {
        SetBit(&index.double_bitmaps_[v[r]], r);
      }
      break;
    }
    case FieldType::kString: {
      const auto& v = values.str();
      for (uint32_t r = 0; r < index.num_records_; ++r) {
        SetBit(&index.string_bitmaps_[v[r]], r);
      }
      break;
    }
  }
  return index;
}

std::vector<uint32_t> BitmapIndex::Lookup(const Value& v) const {
  std::vector<uint32_t> out;
  const Bits* bits = Find(v);
  if (bits != nullptr) AppendSetBits(*bits, num_records_, &out);
  return out;
}

std::vector<uint32_t> BitmapIndex::LookupAny(
    const std::vector<Value>& values) const {
  // OR the bitsets, then enumerate once (the classic bitmap win).
  std::vector<uint64_t> merged;
  for (const Value& v : values) {
    const Bits* bits = Find(v);
    if (bits == nullptr) continue;
    if (merged.size() < bits->size()) merged.resize(bits->size(), 0);
    for (size_t w = 0; w < bits->size(); ++w) merged[w] |= (*bits)[w];
  }
  std::vector<uint32_t> out;
  AppendSetBits(merged, num_records_, &out);
  return out;
}

uint64_t BitmapIndex::Count(const Value& v) const {
  const Bits* bits = Find(v);
  if (bits == nullptr) return 0;
  uint64_t count = 0;
  for (uint64_t word : *bits) count += __builtin_popcountll(word);
  return count;
}

std::string BitmapIndex::Serialize() const {
  // Typed wire format (v2): int64 and double keys as fixed 8-byte values,
  // string keys length-prefixed — mirroring the in-memory keying.
  ByteWriter w;
  w.PutU32(kBitmapMagic);
  w.PutU8(static_cast<uint8_t>(type_));
  w.PutU32(num_records_);
  w.PutU32(static_cast<uint32_t>(cardinality()));
  auto put_words = [&w](const Bits& words) {
    w.PutU32(static_cast<uint32_t>(words.size()));
    for (uint64_t word : words) w.PutU64(word);
  };
  for (const auto& [key, words] : int_bitmaps_) {
    w.PutU64(static_cast<uint64_t>(key));
    put_words(words);
  }
  for (const auto& [key, words] : double_bitmaps_) {
    w.PutU64(DoubleKeyBits(key));
    put_words(words);
  }
  for (const auto& [key, words] : string_bitmaps_) {
    w.PutLengthPrefixed(key);
    put_words(words);
  }
  return w.Take();
}

Result<BitmapIndex> BitmapIndex::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kBitmapMagic) return Status::Corruption("not a bitmap index");
  BitmapIndex index;
  HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
  index.type_ = static_cast<FieldType>(type_byte);
  HAIL_ASSIGN_OR_RETURN(index.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t cardinality, r.GetU32());
  for (uint32_t i = 0; i < cardinality; ++i) {
    Bits* slot = nullptr;
    switch (index.type_) {
      case FieldType::kInt32:
      case FieldType::kDate:
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(uint64_t key, r.GetU64());
        slot = &index.int_bitmaps_[static_cast<int64_t>(key)];
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(uint64_t key, r.GetU64());
        slot = &index.double_bitmaps_[DoubleFromBits(key)];
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(std::string_view key, r.GetLengthPrefixed());
        slot = &index.string_bitmaps_[std::string(key)];
        break;
      }
    }
    if (slot == nullptr) return Status::Corruption("bad bitmap key type");
    HAIL_ASSIGN_OR_RETURN(uint32_t num_words, r.GetU32());
    Bits words;
    words.reserve(num_words);
    for (uint32_t w = 0; w < num_words; ++w) {
      HAIL_ASSIGN_OR_RETURN(uint64_t word, r.GetU64());
      words.push_back(word);
    }
    *slot = std::move(words);
  }
  return index;
}

uint64_t BitmapIndex::SerializedBytes() const {
  uint64_t bytes = 4 + 1 + 4 + 4;
  for (const auto& [key, words] : int_bitmaps_) {
    (void)key;
    bytes += 8 + 4 + 8ull * words.size();
  }
  for (const auto& [key, words] : double_bitmaps_) {
    (void)key;
    bytes += 8 + 4 + 8ull * words.size();
  }
  for (const auto& [key, words] : string_bitmaps_) {
    bytes += 4 + key.size() + 4 + 8ull * words.size();
  }
  return bytes;
}

}  // namespace hail
