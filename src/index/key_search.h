/// \file key_search.h
/// \brief Typed binary search over sorted key columns (shared by indexes).

#pragma once

#include <cstddef>

#include "layout/column_vector.h"
#include "schema/value.h"

namespace hail {
namespace key_search {

/// True when the value should compare as an exact integer (no widening to
/// double, which loses precision above 2^53).
inline bool IsIntegral(const Value& v) { return v.is_int32() || v.is_int64(); }

inline int64_t AsInt64(const Value& v) {
  return v.is_int32() ? v.as_int32() : v.as_int64();
}

/// keys[i] < v, with numeric widening so int literals match any numeric
/// column type.
inline bool KeyLessThanValue(const ColumnVector& keys, size_t i,
                             const Value& v) {
  switch (keys.type()) {
    case FieldType::kInt32:
    case FieldType::kDate:
      if (IsIntegral(v)) return keys.i32()[i] < AsInt64(v);
      return static_cast<double>(keys.i32()[i]) < v.AsNumeric();
    case FieldType::kInt64:
      if (IsIntegral(v)) return keys.i64()[i] < AsInt64(v);
      return static_cast<double>(keys.i64()[i]) < v.AsNumeric();
    case FieldType::kDouble:
      return keys.f64()[i] < v.AsNumeric();
    case FieldType::kString:
      return keys.str()[i] < v.as_string();
  }
  return false;
}

inline bool ValueLessThanKey(const Value& v, const ColumnVector& keys,
                             size_t i) {
  switch (keys.type()) {
    case FieldType::kInt32:
    case FieldType::kDate:
      if (IsIntegral(v)) return AsInt64(v) < keys.i32()[i];
      return v.AsNumeric() < static_cast<double>(keys.i32()[i]);
    case FieldType::kInt64:
      if (IsIntegral(v)) return AsInt64(v) < keys.i64()[i];
      return v.AsNumeric() < static_cast<double>(keys.i64()[i]);
    case FieldType::kDouble:
      return v.AsNumeric() < keys.f64()[i];
    case FieldType::kString:
      return v.as_string() < keys.str()[i];
  }
  return false;
}

/// First index whose key is >= v.
inline size_t LowerBoundIndex(const ColumnVector& keys, const Value& v) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (KeyLessThanValue(keys, mid, v)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index whose key is > v.
inline size_t UpperBoundIndex(const ColumnVector& keys, const Value& v) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ValueLessThanKey(v, keys, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// \brief First/last qualifying partition for a key range over partition
/// start keys, following Figure 2's in-memory determination. Returns false
/// when nothing qualifies.
inline bool QualifyingPartitions(const ColumnVector& first_keys,
                                 const std::optional<Value>& lo,
                                 const std::optional<Value>& hi,
                                 size_t* first_partition,
                                 size_t* last_partition) {
  if (first_keys.size() == 0) return false;
  size_t first = 0;
  if (lo.has_value()) {
    const size_t lb = LowerBoundIndex(first_keys, *lo);
    first = (lb == 0) ? 0 : lb - 1;
  }
  size_t last = first_keys.size() - 1;
  if (hi.has_value()) {
    const size_t ub = UpperBoundIndex(first_keys, *hi);
    if (ub == 0) return false;
    last = ub - 1;
  }
  if (first > last) return false;
  *first_partition = first;
  *last_partition = last;
  return true;
}

}  // namespace key_search
}  // namespace hail
