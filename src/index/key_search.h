/// \file key_search.h
/// \brief Typed binary search over sorted key columns (shared by indexes).
///
/// The probe entry points (LowerBoundIndex / UpperBoundIndex) resolve the
/// key-column type and the literal's numeric kind ONCE, then run a tight
/// binary search over the raw typed vector — no Value boxing and no
/// per-iteration variant dispatch in the inner loop.

#pragma once

#include <algorithm>
#include <cstddef>

#include "layout/column_vector.h"
#include "schema/value.h"

namespace hail {
namespace key_search {

/// True when the value should compare as an exact integer (no widening to
/// double, which loses precision above 2^53).
inline bool IsIntegral(const Value& v) { return v.is_int32() || v.is_int64(); }

inline int64_t AsInt64(const Value& v) {
  return v.is_int32() ? v.as_int32() : v.as_int64();
}

#if defined(__GNUC__) || defined(__clang__)
#define HAIL_KEYSEARCH_EXPECT(x) __builtin_expect(!!(x), 1)
#else
#define HAIL_KEYSEARCH_EXPECT(x) (x)
#endif

/// Raw typed binary searches. T is the key storage type, L the widened
/// comparison type (int64_t or double) the caller resolved from the
/// literal; each iteration is one cast + one compare.
///
/// The loop is *branchless*: instead of a taken/not-taken branch per
/// probe (mispredicted ~50% of the time on random keys), each step
/// shrinks the window by a fixed half and advances the base with a
/// conditional move, so the only control dependency is the predictable
/// `n > 1` counter — the data-dependent compare feeds a cmov. The short
/// pragma-unrolled body keeps the halving steps in flight, and
/// __builtin_expect marks the loop as the hot path. Semantics are
/// identical to std::lower_bound / std::upper_bound (asserted in
/// tests/index_test.cc against the std versions).
template <typename T, typename L>
inline size_t LowerBoundRaw(const std::vector<T>& keys, L v) {
  const T* base = keys.data();
  size_t n = keys.size();
#if defined(__clang__)
#pragma unroll 4
#elif defined(__GNUC__)
#pragma GCC unroll 4
#endif
  while (HAIL_KEYSEARCH_EXPECT(n > 1)) {
    const size_t half = n / 2;
    base += (static_cast<L>(base[half - 1]) < v) ? half : 0;  // cmov
    n -= half;
  }
  return static_cast<size_t>(base - keys.data()) +
         ((n == 1 && static_cast<L>(base[0]) < v) ? 1 : 0);
}

template <typename T, typename L>
inline size_t UpperBoundRaw(const std::vector<T>& keys, L v) {
  const T* base = keys.data();
  size_t n = keys.size();
#if defined(__clang__)
#pragma unroll 4
#elif defined(__GNUC__)
#pragma GCC unroll 4
#endif
  while (HAIL_KEYSEARCH_EXPECT(n > 1)) {
    const size_t half = n / 2;
    base += !(v < static_cast<L>(base[half - 1])) ? half : 0;  // cmov
    n -= half;
  }
  return static_cast<size_t>(base - keys.data()) +
         ((n == 1 && !(v < static_cast<L>(base[0]))) ? 1 : 0);
}

/// First index whose key is >= v. Numeric widening matches
/// query/predicate.cc's CompareValues: int-vs-int compares as int64,
/// anything involving a double compares as double.
inline size_t LowerBoundIndex(const ColumnVector& keys, const Value& v) {
  switch (keys.type()) {
    case FieldType::kInt32:
    case FieldType::kDate:
      if (IsIntegral(v)) return LowerBoundRaw<int32_t, int64_t>(keys.i32(), AsInt64(v));
      return LowerBoundRaw<int32_t, double>(keys.i32(), v.AsNumeric());
    case FieldType::kInt64:
      if (IsIntegral(v)) return LowerBoundRaw<int64_t, int64_t>(keys.i64(), AsInt64(v));
      return LowerBoundRaw<int64_t, double>(keys.i64(), v.AsNumeric());
    case FieldType::kDouble:
      return LowerBoundRaw<double, double>(keys.f64(), v.AsNumeric());
    case FieldType::kString: {
      const std::vector<std::string>& s = keys.str();
      return static_cast<size_t>(
          std::lower_bound(s.begin(), s.end(), v.as_string()) - s.begin());
    }
  }
  return 0;
}

/// First index whose key is > v.
inline size_t UpperBoundIndex(const ColumnVector& keys, const Value& v) {
  switch (keys.type()) {
    case FieldType::kInt32:
    case FieldType::kDate:
      if (IsIntegral(v)) return UpperBoundRaw<int32_t, int64_t>(keys.i32(), AsInt64(v));
      return UpperBoundRaw<int32_t, double>(keys.i32(), v.AsNumeric());
    case FieldType::kInt64:
      if (IsIntegral(v)) return UpperBoundRaw<int64_t, int64_t>(keys.i64(), AsInt64(v));
      return UpperBoundRaw<int64_t, double>(keys.i64(), v.AsNumeric());
    case FieldType::kDouble:
      return UpperBoundRaw<double, double>(keys.f64(), v.AsNumeric());
    case FieldType::kString: {
      const std::vector<std::string>& s = keys.str();
      return static_cast<size_t>(
          std::upper_bound(s.begin(), s.end(), v.as_string()) - s.begin());
    }
  }
  return 0;
}

/// \brief First/last qualifying partition for a key range over partition
/// start keys, following Figure 2's in-memory determination. Returns false
/// when nothing qualifies.
inline bool QualifyingPartitions(const ColumnVector& first_keys,
                                 const std::optional<Value>& lo,
                                 const std::optional<Value>& hi,
                                 size_t* first_partition,
                                 size_t* last_partition) {
  if (first_keys.size() == 0) return false;
  size_t first = 0;
  if (lo.has_value()) {
    const size_t lb = LowerBoundIndex(first_keys, *lo);
    first = (lb == 0) ? 0 : lb - 1;
  }
  size_t last = first_keys.size() - 1;
  if (hi.has_value()) {
    const size_t ub = UpperBoundIndex(first_keys, *hi);
    if (ub == 0) return false;
    last = ub - 1;
  }
  if (first > last) return false;
  *first_partition = first;
  *last_partition = last;
  return true;
}

}  // namespace key_search
}  // namespace hail
