#include "index/clustered_index.h"

#include <algorithm>
#include <cassert>

#include "index/key_search.h"

namespace hail {

namespace {
constexpr uint32_t kClusteredIndexMagic = 0x58444948;  // "HIDX"
}  // namespace

ClusteredIndex ClusteredIndex::Build(const ColumnVector& sorted_keys,
                                     uint32_t partition_size) {
  assert(partition_size > 0);
  ClusteredIndex index(sorted_keys.type(), partition_size);
  index.num_records_ = static_cast<uint32_t>(sorted_keys.size());
  for (uint32_t r = 0; r < index.num_records_; r += partition_size) {
    index.first_keys_.Append(sorted_keys.GetValue(r));
  }
  return index;
}

RowRange ClusteredIndex::Lookup(const KeyRange& range) const {
  if (num_records_ == 0 || num_partitions() == 0) return RowRange{};

  // Steps 1 & 2 of Figure 2: determine first and last qualifying partition
  // in main memory. The partition *before* the first start key >= lo may
  // still hold keys equal to lo in its tail, so QualifyingPartitions steps
  // one back (conservative; the reader post-filters).
  size_t first_partition = 0, last_partition = 0;
  if (!key_search::QualifyingPartitions(first_keys_, range.lo, range.hi,
                                        &first_partition, &last_partition)) {
    return RowRange{};
  }

  RowRange out;
  out.begin = static_cast<uint32_t>(first_partition) * partition_size_;
  const uint64_t end =
      (static_cast<uint64_t>(last_partition) + 1) * partition_size_;
  out.end = static_cast<uint32_t>(std::min<uint64_t>(end, num_records_));
  return out;
}

std::string ClusteredIndex::Serialize() const {
  ByteWriter w;
  w.PutU32(kClusteredIndexMagic);
  w.PutU8(static_cast<uint8_t>(key_type()));
  w.PutU32(partition_size_);
  w.PutU32(num_records_);
  w.PutU32(num_partitions());
  const uint32_t n = num_partitions();
  switch (key_type()) {
    case FieldType::kInt32:
    case FieldType::kDate:
      for (uint32_t i = 0; i < n; ++i) w.PutI32(first_keys_.i32()[i]);
      break;
    case FieldType::kInt64:
      for (uint32_t i = 0; i < n; ++i) w.PutI64(first_keys_.i64()[i]);
      break;
    case FieldType::kDouble:
      for (uint32_t i = 0; i < n; ++i) w.PutF64(first_keys_.f64()[i]);
      break;
    case FieldType::kString:
      for (uint32_t i = 0; i < n; ++i) w.PutLengthPrefixed(first_keys_.str()[i]);
      break;
  }
  return w.Take();
}

Result<ClusteredIndex> ClusteredIndex::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kClusteredIndexMagic) {
    return Status::Corruption("not a clustered index");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
  const FieldType type = static_cast<FieldType>(type_byte);
  HAIL_ASSIGN_OR_RETURN(uint32_t partition_size, r.GetU32());
  if (partition_size == 0) return Status::Corruption("zero partition size");
  ClusteredIndex index(type, partition_size);
  HAIL_ASSIGN_OR_RETURN(index.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(int32_t v, r.GetI32());
        index.first_keys_.Append(Value(v));
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
        index.first_keys_.Append(Value(v));
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(double v, r.GetF64());
        index.first_keys_.Append(Value(v));
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(std::string_view s, r.GetLengthPrefixed());
        index.first_keys_.Append(Value(std::string(s)));
        break;
      }
    }
  }
  return index;
}

uint64_t ClusteredIndex::SerializedBytes() const {
  uint64_t bytes = 4 + 1 + 4 + 4 + 4;  // header
  bytes += first_keys_.SerializedValueBytes();
  if (key_type() == FieldType::kString) {
    bytes += 4ull * num_partitions();  // length prefixes replace NULs
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// TwoLevelIndex
// ---------------------------------------------------------------------------

TwoLevelIndex TwoLevelIndex::Build(const ColumnVector& sorted_keys,
                                   uint32_t partition_size, uint32_t fanout) {
  assert(fanout > 0);
  ClusteredIndex leaf = ClusteredIndex::Build(sorted_keys, partition_size);
  ColumnVector root(sorted_keys.type());
  for (uint32_t r = 0; r < sorted_keys.size();
       r += static_cast<uint64_t>(partition_size) * fanout) {
    root.Append(sorted_keys.GetValue(r));
  }
  return TwoLevelIndex(std::move(leaf), std::move(root), fanout);
}

RowRange TwoLevelIndex::Lookup(const KeyRange& range) const {
  // Functionally identical result to the single-level index; the root is
  // consulted first (narrowing the directory range), then the directory.
  // The extra cost is the second page access, charged by the cost model.
  return leaf_.Lookup(range);
}

}  // namespace hail
