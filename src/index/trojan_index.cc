#include "index/trojan_index.h"

#include <algorithm>
#include <cassert>

#include "index/key_search.h"

namespace hail {

namespace {
constexpr uint32_t kTrojanMagic = 0x4A525448;  // "HTRJ"
}  // namespace

TrojanIndex TrojanIndex::Build(const ColumnVector& sorted_keys,
                               const std::vector<uint64_t>& row_offsets,
                               uint64_t data_bytes, uint32_t rows_per_entry) {
  assert(rows_per_entry > 0);
  assert(sorted_keys.size() == row_offsets.size());
  TrojanIndex index(sorted_keys.type(), rows_per_entry);
  index.num_records_ = static_cast<uint32_t>(sorted_keys.size());
  index.data_bytes_ = data_bytes;
  for (uint32_t r = 0; r < index.num_records_; r += rows_per_entry) {
    index.entry_keys_.Append(sorted_keys.GetValue(r));
    index.entry_offsets_.push_back(row_offsets[r]);
  }
  return index;
}

TrojanIndex::LookupResult TrojanIndex::Lookup(const KeyRange& range) const {
  LookupResult out;
  if (num_records_ == 0) return out;

  // A directory entry plays the role of a partition of rows_per_entry_ rows.
  size_t first = 0, last = 0;
  if (!key_search::QualifyingPartitions(entry_keys_, range.lo, range.hi,
                                        &first, &last)) {
    return out;
  }
  const uint32_t first_entry = static_cast<uint32_t>(first);
  const uint32_t last_entry = static_cast<uint32_t>(last);  // inclusive
  out.first_row = first_entry * rows_per_entry_;
  out.end_row = std::min<uint32_t>((last_entry + 1) * rows_per_entry_,
                                   num_records_);
  out.bytes.begin = entry_offsets_[first_entry];
  out.bytes.end = (last_entry + 1 < entry_offsets_.size())
                      ? entry_offsets_[last_entry + 1]
                      : data_bytes_;
  return out;
}

std::string TrojanIndex::Serialize() const {
  ByteWriter w;
  w.PutU32(kTrojanMagic);
  w.PutU8(static_cast<uint8_t>(entry_keys_.type()));
  w.PutU32(rows_per_entry_);
  w.PutU32(num_records_);
  w.PutU64(data_bytes_);
  w.PutU32(num_entries());
  for (uint32_t i = 0; i < num_entries(); ++i) {
    switch (entry_keys_.type()) {
      case FieldType::kInt32:
      case FieldType::kDate:
        w.PutI32(entry_keys_.i32()[i]);
        break;
      case FieldType::kInt64:
        w.PutI64(entry_keys_.i64()[i]);
        break;
      case FieldType::kDouble:
        w.PutF64(entry_keys_.f64()[i]);
        break;
      case FieldType::kString:
        w.PutLengthPrefixed(entry_keys_.str()[i]);
        break;
    }
    w.PutU64(entry_offsets_[i]);
  }
  return w.Take();
}

Result<TrojanIndex> TrojanIndex::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kTrojanMagic) return Status::Corruption("not a trojan index");
  HAIL_ASSIGN_OR_RETURN(uint8_t type_byte, r.GetU8());
  const FieldType type = static_cast<FieldType>(type_byte);
  HAIL_ASSIGN_OR_RETURN(uint32_t rows_per_entry, r.GetU32());
  if (rows_per_entry == 0) return Status::Corruption("zero rows per entry");
  TrojanIndex index(type, rows_per_entry);
  HAIL_ASSIGN_OR_RETURN(index.num_records_, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(index.data_bytes_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  index.entry_offsets_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kDate: {
        HAIL_ASSIGN_OR_RETURN(int32_t v, r.GetI32());
        index.entry_keys_.Append(Value(v));
        break;
      }
      case FieldType::kInt64: {
        HAIL_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
        index.entry_keys_.Append(Value(v));
        break;
      }
      case FieldType::kDouble: {
        HAIL_ASSIGN_OR_RETURN(double v, r.GetF64());
        index.entry_keys_.Append(Value(v));
        break;
      }
      case FieldType::kString: {
        HAIL_ASSIGN_OR_RETURN(std::string_view s, r.GetLengthPrefixed());
        index.entry_keys_.Append(Value(std::string(s)));
        break;
      }
    }
    HAIL_ASSIGN_OR_RETURN(uint64_t off, r.GetU64());
    index.entry_offsets_.push_back(off);
  }
  return index;
}

uint64_t TrojanIndex::SerializedBytes() const {
  uint64_t bytes = 4 + 1 + 4 + 4 + 8 + 4;
  bytes += entry_keys_.SerializedValueBytes();
  if (entry_keys_.type() == FieldType::kString) {
    bytes += 4ull * num_entries();
  }
  bytes += 8ull * num_entries();
  return bytes;
}

}  // namespace hail
