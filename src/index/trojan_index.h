/// \file trojan_index.h
/// \brief Hadoop++-style trojan index over binary row blocks (paper §5, [12]).
///
/// Hadoop++ sorts a *logical* block's rows by one key and appends a sparse
/// directory mapping keys to byte offsets in the row data. Differences from
/// HAIL's clustered index that matter for the evaluation:
///  - one index per logical block: all three replicas are byte-identical,
///    so only one filter attribute can ever be served;
///  - the directory is much denser (paper: 304 KB vs HAIL's 2 KB for a
///    64 MB block), so reading it costs noticeably more;
///  - a block header must be read during the split phase (HAIL keeps that
///    information in the namenode's replica directory instead).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/clustered_index.h"
#include "schema/value.h"
#include "util/io.h"
#include "util/result.h"

namespace hail {

/// \brief Offset range into a binary-row block's data section.
struct ByteRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  bool empty() const { return begin >= end; }
};

/// \brief Sparse key -> byte-offset directory over sorted binary rows.
class TrojanIndex {
 public:
  /// \param sorted_keys key values in row order (already sorted).
  /// \param row_offsets byte offset of each row in the data section.
  /// \param data_bytes total bytes of the data section.
  /// \param rows_per_entry directory granularity; Hadoop++ uses a dense
  ///        footer (default 8 rows/entry reproduces its ~150x larger
  ///        directory relative to HAIL's 1024).
  static TrojanIndex Build(const ColumnVector& sorted_keys,
                           const std::vector<uint64_t>& row_offsets,
                           uint64_t data_bytes, uint32_t rows_per_entry = 8);

  uint32_t num_records() const { return num_records_; }
  uint32_t rows_per_entry() const { return rows_per_entry_; }
  uint32_t num_entries() const {
    return static_cast<uint32_t>(entry_keys_.size());
  }

  /// Returns the conservative byte range of rows whose key may lie in
  /// \p range, plus the row id of the range start (for row accounting).
  struct LookupResult {
    ByteRange bytes;
    uint32_t first_row = 0;
    uint32_t end_row = 0;
  };
  LookupResult Lookup(const KeyRange& range) const;

  std::string Serialize() const;
  static Result<TrojanIndex> Deserialize(std::string_view data);
  uint64_t SerializedBytes() const;

 private:
  TrojanIndex(FieldType type, uint32_t rows_per_entry)
      : entry_keys_(type), rows_per_entry_(rows_per_entry) {}

  ColumnVector entry_keys_;            // first key of each directory entry
  std::vector<uint64_t> entry_offsets_;  // byte offset of each entry's rows
  uint32_t rows_per_entry_;
  uint32_t num_records_ = 0;
  uint64_t data_bytes_ = 0;
};

}  // namespace hail
