/// \file clustered_index.h
/// \brief HAIL's sparse clustered index (paper §3.5, Figure 2).
///
/// Built over a block whose records are *sorted* by the key attribute.
/// The index is a single root directory: the first key of every partition
/// of `partition_size` values. All but the first child pointer are implicit
/// because partitions are contiguous on disk (leaf offset = leaf id × leaf
/// size). A range lookup determines the first and last qualifying partition
/// entirely in main memory, so the reader scans exactly the qualifying
/// partitions and post-filters — never the whole range.
///
/// The paper motivates the single-level design: for block sizes below
/// ~5 GB the root directory is so small (KBs) that a second level would
/// only add an extra disk seek (see bench_index_micro for the ablation).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "layout/column_vector.h"
#include "schema/value.h"
#include "util/io.h"
#include "util/result.h"

namespace hail {

/// Width of one index key for logical (paper-scale) size billing: fixed
/// types bill their storage width, strings an average key. Shared by the
/// readers, the upload transformer and the adaptive reorganizer so the
/// billed size of an index is priced identically wherever it appears.
inline uint64_t IndexKeyWidth(FieldType type) {
  return IsFixedSize(type) ? FieldTypeWidth(type) : 16;
}

/// Paper-scale bytes of a sparse index root: one (key, pointer) entry per
/// `records_per_entry` logical records (+1 for the trailing partial
/// partition). HAIL's clustered root uses 4-byte pointers at 1024
/// records/entry (§3.5); the trojan directory 8-byte offsets at ~8
/// rows/entry (§6.4.2).
inline uint64_t LogicalSparseIndexBytes(uint64_t logical_records,
                                        uint32_t records_per_entry,
                                        FieldType key_type,
                                        uint64_t pointer_bytes) {
  return (logical_records / records_per_entry + 1) *
         (IndexKeyWidth(key_type) + pointer_bytes);
}

/// Paper-scale bytes of a dense index: one (key, rowid) entry per logical
/// record (§3.5 footnote 4 — the unclustered case).
inline uint64_t LogicalDenseIndexBytes(uint64_t logical_records,
                                       FieldType key_type) {
  return logical_records * (IndexKeyWidth(key_type) + 4);
}

/// \brief Half-open, partition-aligned row range returned by index lookups.
struct RowRange {
  uint32_t begin = 0;
  uint32_t end = 0;  // exclusive
  bool empty() const { return begin >= end; }
  uint32_t size() const { return empty() ? 0 : end - begin; }
};

/// \brief Inclusive key-range query against an index.
struct KeyRange {
  std::optional<Value> lo;  // nullopt = unbounded below
  std::optional<Value> hi;  // nullopt = unbounded above

  static KeyRange Equal(Value v) { return KeyRange{v, v}; }
  static KeyRange Between(Value lo, Value hi) {
    return KeyRange{std::move(lo), std::move(hi)};
  }
  static KeyRange AtLeast(Value lo) {
    return KeyRange{std::move(lo), std::nullopt};
  }
  static KeyRange AtMost(Value hi) {
    return KeyRange{std::nullopt, std::move(hi)};
  }
  static KeyRange All() { return KeyRange{}; }
};

/// \brief The sparse single-root clustered index of Figure 2.
class ClusteredIndex {
 public:
  /// Builds over \p sorted_keys (must already be sorted ascending).
  /// \p partition_size is the number of values per partition (paper: 1024).
  static ClusteredIndex Build(const ColumnVector& sorted_keys,
                              uint32_t partition_size);

  FieldType key_type() const { return first_keys_.type(); }
  uint32_t partition_size() const { return partition_size_; }
  uint32_t num_records() const { return num_records_; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(first_keys_.size());
  }

  /// In-memory first/last partition determination (steps 1 & 2 in Fig. 2).
  /// Returns a conservative partition-aligned row range containing every
  /// record whose key lies in \p range; the caller post-filters.
  RowRange Lookup(const KeyRange& range) const;

  /// Serialises the root directory ("Index" + "Index Metadata" in Fig. 1).
  std::string Serialize() const;
  static Result<ClusteredIndex> Deserialize(std::string_view data);

  /// Size of the serialised root directory in bytes.
  uint64_t SerializedBytes() const;

 private:
  ClusteredIndex(FieldType type, uint32_t partition_size)
      : first_keys_(type), partition_size_(partition_size) {}

  ColumnVector first_keys_;  // first key of each partition
  uint32_t partition_size_ = 0;
  uint32_t num_records_ = 0;
};

/// \brief Two-level variant used only for the §3.5 multi-level ablation.
///
/// The root holds every `fanout`-th directory key; a lookup first searches
/// the root, then one directory page — costing one extra seek when the
/// directory does not fit in memory. HAIL never uses this in its pipeline;
/// bench_index_micro shows the crossover block size (~5 GB).
class TwoLevelIndex {
 public:
  static TwoLevelIndex Build(const ColumnVector& sorted_keys,
                             uint32_t partition_size, uint32_t fanout);

  RowRange Lookup(const KeyRange& range) const;
  uint32_t num_partitions() const { return leaf_.num_partitions(); }
  uint32_t fanout() const { return fanout_; }
  /// Directory pages that a lookup touches (1 root page is cached; each
  /// additional page would cost one seek on disk).
  int directory_pages_touched() const { return 2; }

 private:
  TwoLevelIndex(ClusteredIndex leaf, ColumnVector root_keys, uint32_t fanout)
      : leaf_(std::move(leaf)), root_keys_(std::move(root_keys)),
        fanout_(fanout) {}

  ClusteredIndex leaf_;
  ColumnVector root_keys_;
  uint32_t fanout_;
};

}  // namespace hail
