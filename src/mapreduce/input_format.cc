#include "mapreduce/input_format.h"

#include <algorithm>
#include <map>

#include "planner/access_planner.h"

namespace hail {
namespace mapreduce {

namespace {

/// Default Hadoop splitting: one split per block, located at its holders.
void DefaultSplits(const std::vector<hdfs::BlockLocation>& blocks,
                   JobPlan* plan) {
  plan->splits.reserve(blocks.size());
  for (uint32_t i = 0; i < blocks.size(); ++i) {
    InputSplit split;
    split.blocks.push_back(blocks[i].block_id);
    split.block_indexes.push_back(i);
    split.preferred_nodes = blocks[i].datanodes;
    split.logical_bytes = blocks[i].logical_bytes;
    plan->splits.push_back(std::move(split));
  }
}

/// HailSplitting (§4.3): cluster blocks by the node holding the matching
/// index replica, then cut each node's collection into `map_slots` splits.
void HailSplits(hdfs::MiniDfs* dfs,
                const std::vector<hdfs::BlockLocation>& blocks,
                int index_column, JobPlan* plan) {
  // "HailSplitting first clusters the blocks of the input ... by locality.
  // As a result it produces as many collections of blocks as there are
  // datanodes storing at least one block of the given input."
  std::map<int, std::vector<uint32_t>> by_node;  // node -> block positions
  for (uint32_t i = 0; i < blocks.size(); ++i) {
    const std::vector<int> hosts =
        dfs->namenode().GetHostsWithIndex(blocks[i].block_id, index_column);
    int home;
    if (!hosts.empty()) {
      home = hosts.front();
    } else if (!blocks[i].datanodes.empty()) {
      // No matching index (e.g. the indexed replica's node died): fall
      // back to any holder; the reader will scan.
      home = blocks[i].datanodes.front();
    } else {
      continue;  // unreadable block; surfaced by the reader as an error
    }
    by_node[home].push_back(i);
  }

  // "For each collection of blocks, HailSplitting creates as many input
  // splits as map slots each TaskTracker has."
  for (const auto& [node, members] : by_node) {
    const int slots =
        std::max(1, dfs->cluster().node(node).profile().map_slots);
    const size_t per_split =
        (members.size() + static_cast<size_t>(slots) - 1) /
        static_cast<size_t>(slots);
    for (size_t begin = 0; begin < members.size(); begin += per_split) {
      InputSplit split;
      const size_t end = std::min(members.size(), begin + per_split);
      for (size_t k = begin; k < end; ++k) {
        const uint32_t pos = members[k];
        split.blocks.push_back(blocks[pos].block_id);
        split.block_indexes.push_back(pos);
        split.logical_bytes += blocks[pos].logical_bytes;
      }
      split.preferred_nodes.push_back(node);
      plan->splits.push_back(std::move(split));
    }
  }
}

}  // namespace

Result<JobPlan> ComputeJobPlan(hdfs::MiniDfs* dfs, const JobSpec& spec) {
  JobPlan plan;
  HAIL_ASSIGN_OR_RETURN(plan.file_blocks,
                        dfs->namenode().GetFileBlocks(spec.input_file));
  if (spec.annotation.has_value()) {
    plan.index_column = spec.annotation->preferred_index_column();
  }

  const bool index_scan =
      plan.index_column >= 0 && spec.system != System::kHadoop;

  // Cost-based planning (opt-in): only HAIL uploads produce the stats
  // sidecars, and only a filtered query gives zone maps anything to
  // prune. The per-block planning CPU is recorded separately so a
  // plan-cache hit does not re-pay it.
  if (spec.use_planner && spec.system == System::kHail &&
      spec.annotation.has_value() && spec.annotation->has_filter()) {
    planner::FilePlan fp =
        planner::PlanAccessPaths(*dfs, spec.schema, *spec.annotation,
                                 plan.index_column, plan.file_blocks);
    plan.planned = true;
    plan.decisions = std::move(fp.decisions);
    plan.predicted_cost_seconds = fp.predicted_cost_seconds;
    plan.planner_blocks_skipped = fp.blocks_skipped;
    plan.planner_fresh_stats_blocks = fp.blocks_with_fresh_stats;
    plan.planner_seconds =
        static_cast<double>(plan.file_blocks.size()) *
        dfs->cluster().constants().planner_block_plan_us / 1e6;
  }

  if (spec.system == System::kHail && spec.hail_splitting && index_scan) {
    HailSplits(dfs, plan.file_blocks, plan.index_column, &plan);
  } else {
    // "For those MapReduce jobs performing a full scan, HailSplitting
    // still uses the default Hadoop splitting" — and §6.4 disables
    // HailSplitting entirely.
    DefaultSplits(plan.file_blocks, &plan);
  }

  // Hadoop++ must read each block's header to compute its splits; HAIL
  // keeps that metadata in the namenode ("HAIL does not have to read any
  // block header to compute input splits while Hadoop++ does", §6.4.1).
  if (spec.system == System::kHadoopPP) {
    plan.split_phase_seconds =
        static_cast<double>(plan.file_blocks.size()) *
        dfs->cluster().constants().trojan_split_header_ms / 1000.0;
  }
  return plan;
}

}  // namespace mapreduce
}  // namespace hail
