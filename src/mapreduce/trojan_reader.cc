#include <algorithm>

#include "hadooppp/trojan_block.h"
#include "mapreduce/cached_block.h"
#include "mapreduce/record_reader.h"

namespace hail {
namespace mapreduce {

namespace {

/// \brief Once-per-block-version decode state shared via the BlockCache:
/// parsed trojan layout + row view, and the lazily decoded trojan index
/// (the dense directory the paper sizes at ~304 KB per 64 MB block —
/// worth decoding once, not once per task).
struct CachedTrojanBlock
    : CachedIndexedBlock<hadooppp::TrojanBlockView, TrojanIndex> {
  RowBinaryBlockView rows;
};

Result<std::shared_ptr<const CachedTrojanBlock>> OpenCachedTrojanBlock(
    const ReadContext& ctx, int dn, uint64_t block_id,
    std::string_view bytes) {
  return OpenCachedArtifact<CachedTrojanBlock>(
      ctx, dn, block_id,
      [&]() -> Result<std::shared_ptr<const hdfs::BlockArtifact>> {
        auto cached = std::make_shared<CachedTrojanBlock>();
        HAIL_ASSIGN_OR_RETURN(cached->view,
                              hadooppp::TrojanBlockView::Open(bytes));
        HAIL_ASSIGN_OR_RETURN(cached->rows, cached->view.OpenRows());
        return std::shared_ptr<const hdfs::BlockArtifact>(std::move(cached));
      });
}

/// \brief Hadoop++ RecordReader: trojan-index scan over binary rows.
///
/// All replicas are identical, so replica choice is locality-only. An
/// index scan reads the (dense) trojan directory plus a contiguous byte
/// range of *full rows* — reading any attribute drags the whole row, the
/// structural disadvantage vs HAIL's PAX minipages.
class TrojanRecordReader : public RecordReader {
 public:
  Result<TaskCost> ReadSplit(const InputSplit& split,
                             ReadContext* ctx) override {
    TaskCost cost;
    // Compile the annotation filter once per split (it depends only on
    // the job spec); a filter that cannot be compiled against the schema
    // fails the split, same as the HAIL reader.
    const Predicate* filter = ctx->spec->annotation.has_value()
                                  ? &ctx->spec->annotation->filter
                                  : nullptr;
    CompiledPredicate compiled;
    const bool has_filter = filter != nullptr && !filter->empty();
    if (has_filter) {
      HAIL_ASSIGN_OR_RETURN(compiled,
                            CompiledPredicate::Compile(*filter,
                                                       ctx->spec->schema));
    }
    for (size_t b = 0; b < split.blocks.size(); ++b) {
      HAIL_RETURN_NOT_OK(ReadOneBlock(split.block_indexes[b],
                                      has_filter ? &compiled : nullptr, ctx,
                                      &cost));
    }
    return cost;
  }

 private:
  Status ReadOneBlock(uint32_t block_index, const CompiledPredicate* filter,
                      ReadContext* ctx, TaskCost* cost) {
    const hdfs::BlockLocation& loc = ctx->plan->file_blocks[block_index];
    // Binding zone-map skip from the cost-based planner (currently only
    // HAIL jobs are planned, but the decision surface is generic).
    if (block_index < ctx->plan->decisions.size() &&
        ctx->plan->decisions[block_index].path ==
            planner::AccessPath::kSkipZoneMap) {
      ++ctx->blocks_skipped;
      ++ctx->zone_skipped_blocks;
      ctx->rows_skipped += ctx->plan->decisions[block_index].block_records;
      return Status::OK();
    }
    const size_t bspan =
        ctx->trace != nullptr
            ? ctx->trace->Open("block_read", "read", cost->total())
            : 0;
    // All replicas are identical: the failover order is locality-only.
    std::vector<int> candidates;
    for (int h : loc.datanodes) {
      if (h == ctx->task_node) candidates.push_back(h);
    }
    for (int h : loc.datanodes) {
      if (h != ctx->task_node) candidates.push_back(h);
    }
    const hdfs::DfsConfig& cfg = ctx->dfs->config();
    std::string_view bytes;
    HAIL_ASSIGN_OR_RETURN(
        size_t winner,
        ReadReplicaWithFailover(ctx, loc.block_id, loc.logical_bytes,
                                candidates, cost, &bytes));
    const int dn = candidates[winner];
    HAIL_ASSIGN_OR_RETURN(
        std::shared_ptr<const CachedTrojanBlock> cached,
        OpenCachedTrojanBlock(*ctx, dn, loc.block_id, bytes));
    const hadooppp::TrojanBlockView& view = cached->view;
    const RowBinaryBlockView& rows = cached->rows;

    const double scale = cfg.scale_factor;
    const uint64_t logical_records = static_cast<uint64_t>(
        static_cast<double>(rows.num_records()) * scale);
    const sim::CostModel& node_cost =
        ctx->dfs->cluster().node(ctx->task_node).cost();
    const sim::CostModel& disk_cost = ctx->dfs->cluster().node(dn).cost();
    const sim::CostConstants& c = ctx->dfs->cluster().constants();
    const int index_column = ctx->plan->index_column;

    // Index scan only when the (single) trojan index matches the filter.
    uint32_t first_row = 0;
    uint32_t end_row = rows.num_records();
    uint64_t range_bytes_real = rows.total_bytes() - rows.data_start();
    uint64_t range_start_offset = 0;
    bool index_scan = false;
    if (index_column >= 0 && view.has_index() &&
        view.sort_column() == index_column &&
        ctx->spec->annotation.has_value()) {
      const auto key_range =
          ctx->spec->annotation->filter.KeyRangeFor(index_column);
      if (key_range.has_value()) {
        HAIL_ASSIGN_OR_RETURN(const TrojanIndex* index,
                              cached->Index(&ctx->dfs->block_cache()));
        const TrojanIndex::LookupResult hit = index->Lookup(*key_range);
        first_row = hit.first_row;
        end_row = hit.end_row;
        range_bytes_real = hit.bytes.empty() ? 0 : hit.bytes.end - hit.bytes.begin;
        range_start_offset = hit.bytes.begin;
        index_scan = true;
        ctx->index_scan = true;
        if (ctx->trace != nullptr) {
          const size_t probe =
              ctx->trace->Open("index_probe", "index", cost->total());
          ctx->trace->Attr(probe, "kind", "trojan");
          ctx->trace->Attr(probe, "column", index_column);
          ctx->trace->Attr(probe, "rows",
                           static_cast<uint64_t>(end_row - first_row));
          ctx->trace->Close(probe, cost->total());
        }
      }
    } else if (index_column >= 0) {
      ctx->fallback_scan = true;
    }

    // ---- functional: decode the row range, filter, map ----
    uint64_t qualifying = 0;
    // Skip to the range start via the index's byte offset.
    uint64_t pos = rows.data_start() + range_start_offset;
    for (uint32_t r = first_row; r < end_row; ++r) {
      HAIL_ASSIGN_OR_RETURN(std::vector<Value> row, rows.DecodeRowAt(&pos));
      if (filter != nullptr && !filter->MatchesRow(row)) continue;
      ++qualifying;
      InvokeMap(*ctx, HailRecord::FullRow(std::move(row)),
                /*already_filtered=*/true);
    }
    ctx->records_seen += end_row - first_row;
    ctx->records_qualifying += qualifying;
    if (index_scan && end_row == first_row) {
      ++ctx->blocks_skipped;
    } else {
      ++ctx->blocks_scanned;
    }
    if (index_scan) {
      ctx->rows_skipped += rows.num_records() - (end_row - first_row);
    }

    // ---- cost ----
    const uint64_t logical_range_records = static_cast<uint64_t>(
        static_cast<double>(end_row - first_row) * scale);
    const uint64_t logical_qualifying =
        static_cast<uint64_t>(static_cast<double>(qualifying) * scale);
    uint64_t bytes_read = static_cast<uint64_t>(
        static_cast<double>(range_bytes_real) * scale);
    double disk_s = c.block_open_ms / 1000.0;
    // The block header is read before anything else (§6.4.1).
    disk_s += c.header_read_ms / 1000.0;
    if (index_scan) {
      // The trojan directory is dense: ~304 KB at 64 MB blocks vs HAIL's
      // 2 KB (§6.4.2) — noticeably slower to load.
      const uint64_t index_logical = LogicalSparseIndexBytes(
          logical_records, c.trojan_rows_per_entry_logical,
          ctx->spec->schema.field(index_column).type, /*pointer_bytes=*/8);
      bytes_read += index_logical;
      disk_s += 2 * disk_cost.DiskSeek();  // index + row range
    } else {
      disk_s += disk_cost.DiskSeek();
    }
    const double transfer_s = disk_cost.DiskTransfer(bytes_read);
    disk_s += transfer_s;
    cost->disk_seconds += disk_s;
    cost->ledger.Bill(obs::CostBucket::kSeek, disk_s - transfer_s);
    cost->ledger.Bill(obs::CostBucket::kTransfer, transfer_s);
    const double cpu_s = node_cost.Crc(bytes_read) +
                         node_cost.BinaryDeserialize(logical_range_records) +
                         node_cost.PredicateEval(logical_range_records) +
                         node_cost.MapCalls(logical_qualifying);
    cost->cpu_seconds += cpu_s;
    cost->ledger.Bill(obs::CostBucket::kCpu, cpu_s);
    if (dn != ctx->task_node) {
      const double net_s = node_cost.NetTransfer(bytes_read);
      cost->net_seconds += net_s;
      cost->ledger.Bill(obs::CostBucket::kNetwork, net_s);
    }
    cost->logical_bytes_read += bytes_read;
    if (ctx->trace != nullptr) {
      ctx->trace->Attr(bspan, "block", loc.block_id);
      ctx->trace->Attr(bspan, "datanode", dn);
      ctx->trace->Attr(bspan, "replica", index_scan ? "trojan" : "plain");
      ctx->trace->Attr(bspan, "bytes", bytes_read);
      ctx->trace->Attr(bspan, "rows",
                       static_cast<uint64_t>(end_row - first_row));
      ctx->trace->Attr(bspan, "qualifying", qualifying);
      ctx->trace->Close(bspan, cost->total());
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<RecordReader> MakeTrojanRecordReader() {
  return std::make_unique<TrojanRecordReader>();
}

}  // namespace mapreduce
}  // namespace hail
