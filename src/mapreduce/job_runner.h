/// \file job_runner.h
/// \brief Event-driven JobTracker/TaskTracker execution (paper §4.2, §6.4).
///
/// Faithful to Hadoop 0.20.203's scheduling behaviour, which the paper's
/// headline result depends on: the JobTracker hands each TaskTracker one
/// map task per heartbeat (3 s), plus an out-of-band heartbeat shortly
/// after a slot frees. For a 3200-block input this dispatch pattern — not
/// I/O — dominates short jobs (Fig. 6c), which is exactly what
/// HailSplitting removes by collapsing the input to #nodes x #slots
/// splits (Fig. 9).
///
/// Fault tolerance (§6.4.3): a node can be killed at a progress fraction;
/// the failure is detected after the expiry interval, running tasks on the
/// node are lost, completed map tasks on it are re-executed, and HAIL
/// tasks whose matching-index replica died fall back to scanning.
///
/// Execution engine: the *functional* side of each map task (replica
/// read, CRC verification, filtering, tuple reconstruction) is pure with
/// respect to the simulation — its result depends only on the split, the
/// assigned node and the DFS state at assignment time. The parallel
/// engine exploits this: AssignTask dispatches the read to a fixed-size
/// worker pool and the event loop joins the future no later than the
/// task's earliest possible completion instant, reserving the completion
/// event's FIFO slot at assignment time. Scheduling decisions, the
/// simulated clock and all TaskCost accounting stay on the event thread,
/// so every simulated number (durations, per-task stats, JobResults) is
/// bit-identical to serial execution — only wall-clock time changes.
///
/// Since the shared-cluster scheduler landed (mapreduce/scheduler.h),
/// JobRunner::Run is a one-job ClusterSession: the engine itself lives in
/// scheduler.cc and also admits multiple jobs (queries + uploads + the
/// adaptive manager's background maintenance) onto one simulated clock
/// under a FIFO or weighted-fair slot policy. The single-job event
/// schedule — and therefore every simulated output — is unchanged.

#pragma once

#include "hdfs/dfs_client.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job.h"
#include "mapreduce/record_reader.h"
#include "sim/fault_plan.h"

namespace hail {
namespace adaptive {
class AdaptiveManager;
}  // namespace adaptive
namespace planner {
class PlanCache;
}  // namespace planner
namespace mapreduce {

/// \brief How map-task reads execute under the simulated scheduler.
enum class ExecutionMode {
  /// HAIL_EXEC environment variable ("serial"/"parallel"), defaulting to
  /// parallel on multi-core machines and serial when only one worker
  /// thread is available (nothing to overlap).
  kDefault,
  /// Run every read inline on the event thread (the original engine).
  kSerial,
  /// Overlap reads on a worker pool; simulated results are bit-identical.
  kParallel,
};

/// \brief Per-run options (failure injection, execution engine).
struct RunOptions {
  /// Node to kill mid-job; -1 disables failure injection.
  int kill_node = -1;
  /// Kill once this fraction of map tasks has completed (paper: 50%).
  double kill_at_progress = 0.5;
  /// Deterministic fault schedule (kills with revives, replica
  /// corruption, slow nodes); merged with the kill_node knob above.
  sim::FaultPlan fault_plan;
  /// Re-replicate lost/corrupt replicas through the maintenance queue.
  bool self_heal = false;
  /// Duplicate straggler attempts, first completion wins.
  bool speculative_execution = false;
  /// Retry policy for retryable read failures (dead replica set, exhausted
  /// failover): capped exponential backoff, then a clean job failure. The
  /// defaults match Hadoop's task-attempt behaviour and are pinned by
  /// tests — simulated outputs at the defaults are bit-identical to the
  /// formerly hardcoded constants.
  int max_task_attempts = 4;
  double retry_backoff_s = 10.0;
  double retry_backoff_max_s = 60.0;
  /// Serial/parallel execution of the functional reads.
  ExecutionMode execution = ExecutionMode::kDefault;
  /// Adaptive-indexing loop (default off: the paper benches run the
  /// static configuration). When set, the run (1) executes the manager's
  /// pending replica-reorganization tasks on map slots that have no
  /// foreground work — strictly low priority, foreground tasks are never
  /// starved — and (2) reports the executed query back to the manager's
  /// workload observer, which may plan further reorganization.
  adaptive::AdaptiveManager* adaptive = nullptr;
  /// Span tracing on the simulated clock (obs/trace.h). Observational
  /// only: billed costs are bit-identical with tracing on or off.
  obs::Tracer* tracer = nullptr;
  /// Attach an EXPLAIN-style QueryProfile (obs/explain.h) to the
  /// JobResult: access path, blocks scanned vs skipped, rows through the
  /// kernels, cache hits, and the per-bucket billed-cost breakdown.
  bool profile = false;
  /// Session plan cache consulted at admission (planner/plan_cache.h);
  /// nullptr = plans are recomputed per run, exactly as before.
  planner::PlanCache* plan_cache = nullptr;
  /// Feed admission control's overload projection from planner-predicted
  /// per-job cost instead of the historical mean (scheduler.h knob).
  bool admission_from_planner = false;
};

/// \brief Runs MapReduce jobs against a MiniDfs cluster.
class JobRunner {
 public:
  explicit JobRunner(hdfs::MiniDfs* dfs) : dfs_(dfs) {}

  /// Executes one job start-to-finish on a fresh simulated clock, as a
  /// single-job ClusterSession (mapreduce/scheduler.h). The session
  /// boundary resets node resources (queries are measured independently
  /// of the upload that preceded them) and revives dead nodes; failure
  /// injection then applies `options`.
  Result<JobResult> Run(const JobSpec& spec, const RunOptions& options = {});

 private:
  hdfs::MiniDfs* dfs_;
};

}  // namespace mapreduce
}  // namespace hail
