/// \file cached_block.h
/// \brief Shared plumbing for readers' once-per-block-version artifacts.
///
/// The HAIL and trojan readers cache the same shape of state in the
/// cluster BlockCache: a parsed layout view plus a lazily deserialised
/// index. This header holds the common protocol — mutex-guarded lazy
/// Index() memoisation (decode once, count once, cache the error too),
/// and the open-or-retrieve helper with the dead-node straggler bypass
/// (a dead node's replicas must never be cacheable) — so the two readers
/// only contribute their view/index types.

#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "hdfs/block_cache.h"
#include "mapreduce/record_reader.h"

namespace hail {
namespace mapreduce {

/// \brief Cached artifact base: a layout view + its lazily decoded index.
///
/// \tparam ViewT layout view with `Result<IndexT> ReadIndex() const`.
template <typename ViewT, typename IndexT>
struct CachedIndexedBlock : hdfs::BlockArtifact {
  ViewT view;

  /// Deserialises the index on first use; thread-safe, error-caching.
  /// \p cache only receives the decode-counter tick.
  Result<const IndexT*> Index(hdfs::BlockCache* cache) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!index_ready_) {
      index_ready_ = true;
      cache->NoteIndexDecode();
      Result<IndexT> decoded = view.ReadIndex();
      if (decoded.ok()) {
        index_.emplace(std::move(*decoded));
      } else {
        index_status_ = decoded.status();
      }
    }
    HAIL_RETURN_NOT_OK(index_status_);
    return &*index_;
  }

 private:
  mutable std::mutex mu_;
  mutable bool index_ready_ = false;
  mutable Status index_status_;
  mutable std::optional<IndexT> index_;
};

/// Opens (or retrieves) the decoded block state for one replica.
/// \p open builds a fresh artifact (invoked on miss, or directly —
/// bypassing the cache — when the replica's datanode is dead: straggler
/// reads racing the failure detector must leave no cached state).
template <typename ArtifactT, typename OpenFn>
Result<std::shared_ptr<const ArtifactT>> OpenCachedArtifact(
    const ReadContext& ctx, int dn, uint64_t block_id, const OpenFn& open) {
  const hdfs::Datanode& node = ctx.dfs->datanode(dn);
  std::shared_ptr<const hdfs::BlockArtifact> artifact;
  if (!node.sim().alive()) {
    HAIL_ASSIGN_OR_RETURN(artifact, open());
  } else {
    HAIL_ASSIGN_OR_RETURN(
        artifact, ctx.dfs->block_cache().ArtifactOnce(
                      dn, block_id, node.block_generation(block_id), open));
  }
  return std::static_pointer_cast<const ArtifactT>(artifact);
}

}  // namespace mapreduce
}  // namespace hail
