/// \file record_reader.h
/// \brief RecordReader UDF interface (paper §4.2/§4.3).
///
/// A record reader consumes one input split: it chooses a replica, reads
/// (part of) each block, produces HailRecords for the map function, and
/// returns the I/O + CPU cost the task incurred. The three concrete
/// readers mirror the paper's systems:
///  - TextRecordReader: stock Hadoop full scan over text blocks, with
///    LineRecordReader boundary semantics;
///  - HailRecordReader: index scan over HAIL blocks with post-filtering
///    and PAX->row reconstruction (full scan fallback when no suitable
///    index survives);
///  - TrojanRecordReader: Hadoop++ index scan over trojan blocks.

#pragma once

#include <memory>

#include "hdfs/dfs_client.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job.h"
#include "obs/cost_attribution.h"
#include "obs/trace.h"
#include "query/vectorized.h"

namespace hail {
namespace mapreduce {

/// \brief Simulated cost of one map task's data access.
///
/// The three double fields drive the simulated clock and are billed
/// exactly as before; `ledger` is side-band attribution bookkeeping —
/// every billing site also books the same seconds into one typed bucket,
/// so the per-query breakdown sums to the billed total without ever
/// perturbing the doubles (see obs/cost_attribution.h).
struct TaskCost {
  double disk_seconds = 0.0;
  double cpu_seconds = 0.0;
  double net_seconds = 0.0;
  uint64_t logical_bytes_read = 0;
  obs::CostLedger ledger;

  double total() const { return disk_seconds + cpu_seconds + net_seconds; }
  void Add(const TaskCost& other) {
    disk_seconds += other.disk_seconds;
    cpu_seconds += other.cpu_seconds;
    net_seconds += other.net_seconds;
    logical_bytes_read += other.logical_bytes_read;
    ledger.Add(other.ledger);
  }
};

/// \brief A CRC failure a reader observed on one replica.
///
/// Readers are const over the DFS, so they cannot revoke the replica
/// themselves; they record the sighting here and the engine reports it to
/// the namenode at the completion event (serialised against in-flight
/// reads, so serial and parallel execution observe identical directories).
struct BadReplicaReport {
  uint64_t block_id = 0;
  int datanode = -1;
};

/// \brief Everything a reader needs, plus per-task statistics it fills in.
///
/// Readers run concurrently on pool threads under the parallel execution
/// engine, so they see the DFS strictly const: replica stores, namenode
/// directories and cost models are read-only during a job (the only
/// mid-job mutation — failure injection — is serialised against in-flight
/// reads by the engine). All mutable per-task state lives here.
struct ReadContext {
  const hdfs::MiniDfs* dfs = nullptr;
  const JobSpec* spec = nullptr;
  const JobPlan* plan = nullptr;
  /// Node the map task runs on (locality decisions + cost model).
  int task_node = 0;
  MapOutput* out = nullptr;

  /// Optional pre-compiled annotation filter, installed by row-major
  /// readers for the duration of a split so InvokeMap evaluates the
  /// per-row filter without Predicate::Matches' per-term type dispatch.
  const CompiledPredicate* row_matcher = nullptr;

  // -- statistics the reader reports back --
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  /// True when any block of the split had to be scanned without an index.
  bool fallback_scan = false;
  /// True when any block was read through a clustered/trojan index scan.
  bool index_scan = false;
  /// True when any block was served by an adaptive unclustered index
  /// (no clustered replica matched, but a lazy index did).
  bool unclustered_scan = false;
  /// Replicas whose CRC verification failed during this task (each was
  /// skipped over by failover; the engine reports them afterwards).
  std::vector<BadReplicaReport> bad_replicas;

  // -- profile counters (EXPLAIN surface; cheap plain increments) --
  /// Blocks whose rows were actually touched.
  uint64_t blocks_scanned = 0;
  /// Blocks an index probe pruned entirely (empty qualifying range).
  uint64_t blocks_skipped = 0;
  /// Rows an index scan never had to touch (block rows minus the
  /// qualifying range the probe returned).
  uint64_t rows_skipped = 0;
  /// Blocks never opened because the plan's zone map proved them empty
  /// (binding kSkipZoneMap decisions; subset of blocks_skipped).
  uint64_t zone_skipped_blocks = 0;

  /// When non-null, readers record block-read / index-probe / failover
  /// spans here at billed-cost offsets; the engine splices them onto the
  /// simulated timeline at the completion event (see obs/trace.h).
  obs::TraceBuffer* trace = nullptr;
};

/// \brief Abstract reader: one call per map task.
class RecordReader {
 public:
  virtual ~RecordReader() = default;
  virtual Result<TaskCost> ReadSplit(const InputSplit& split,
                                     ReadContext* ctx) = 0;
};

/// Creates the reader matching the job's system.
std::unique_ptr<RecordReader> MakeRecordReader(System system);

/// Reads one block through an ordered list of candidate replicas,
/// failing over on Unavailable (dead node), NotFound (replica deleted
/// after a corruption report) and Corruption (CRC mismatch — recorded in
/// ctx->bad_replicas, and the wasted transfer + checksum work is billed
/// to \p cost before the next candidate is tried). Returns the index of
/// the winning candidate and sets \p bytes_out; Unavailable when every
/// candidate failed (retryable — a repair may restore a replica).
Result<size_t> ReadReplicaWithFailover(ReadContext* ctx, uint64_t block_id,
                                       uint64_t logical_bytes,
                                       const std::vector<int>& candidates,
                                       TaskCost* cost,
                                       std::string_view* bytes_out);

/// Invokes the job's map function (or the default projector) on a record,
/// applying the annotation filter first for text records (Bob's manual
/// filter in stock Hadoop). Returns true when the record qualified.
bool InvokeMap(const ReadContext& ctx, const HailRecord& record,
               bool already_filtered);

}  // namespace mapreduce
}  // namespace hail
