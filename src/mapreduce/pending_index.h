/// \file pending_index.h
/// \brief Locality-indexed pending-task queue for the JobTracker.
///
/// Hadoop 0.20's JobTracker picks, per assignment, the first pending task
/// that prefers the heartbeating node (falling back to the oldest pending
/// task). The naive implementation scans the whole pending list per
/// assignment — O(pending) per task, O(n^2) per job, which at 3200 map
/// tasks is millions of vector walks before the first wave even finishes.
///
/// PendingTaskIndex keeps one FIFO per preferred node plus a global FIFO,
/// with lazy invalidation: a popped or re-queued task's stale references
/// are skipped (stamp mismatch) the next time a queue front is inspected.
/// Every operation is amortised O(#preferred_nodes); the pick order is
/// *identical* to the reference scan (tests/parallel_determinism_test.cc
/// property-checks this against the naive implementation).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace hail {
namespace mapreduce {

/// \brief O(1)-amortised "first preferring, else oldest" task queue.
class PendingTaskIndex {
 public:
  explicit PendingTaskIndex(int num_nodes)
      : by_node_(static_cast<size_t>(num_nodes)) {}

  /// Enqueues a task (again). Re-pushing an already-live task is not
  /// supported — the scheduler only re-queues after a pop.
  void Push(size_t task_id, const std::vector<int>& preferred_nodes) {
    const uint64_t stamp = next_stamp_++;
    live_stamp_[task_id] = stamp;
    fifo_.push_back(Ref{stamp, task_id});
    for (int node : preferred_nodes) {
      if (node >= 0 && static_cast<size_t>(node) < by_node_.size()) {
        by_node_[static_cast<size_t>(node)].push_back(Ref{stamp, task_id});
      }
    }
  }

  /// Pops the earliest-enqueued task preferring \p node, else the
  /// earliest-enqueued task overall; nullopt when empty. Matches the
  /// reference linear scan pick-for-pick.
  std::optional<size_t> PopFor(int node) {
    if (live_stamp_.empty()) return std::nullopt;
    std::deque<Ref>& local = by_node_[static_cast<size_t>(node)];
    Prune(&local);
    if (!local.empty()) {
      const size_t task = local.front().task;
      local.pop_front();
      live_stamp_.erase(task);
      return task;
    }
    Prune(&fifo_);
    // live_stamp_ non-empty implies a live ref remains in the global FIFO.
    const size_t task = fifo_.front().task;
    fifo_.pop_front();
    live_stamp_.erase(task);
    return task;
  }

  size_t size() const { return live_stamp_.size(); }
  bool empty() const { return live_stamp_.empty(); }

 private:
  struct Ref {
    uint64_t stamp;
    size_t task;
  };

  bool Live(const Ref& ref) const {
    auto it = live_stamp_.find(ref.task);
    return it != live_stamp_.end() && it->second == ref.stamp;
  }

  void Prune(std::deque<Ref>* queue) {
    while (!queue->empty() && !Live(queue->front())) queue->pop_front();
  }

  std::vector<std::deque<Ref>> by_node_;
  std::deque<Ref> fifo_;
  std::unordered_map<size_t, uint64_t> live_stamp_;
  uint64_t next_stamp_ = 0;
};

}  // namespace mapreduce
}  // namespace hail
