#include "mapreduce/job_runner.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "util/logging.h"

namespace hail {
namespace mapreduce {

namespace {

enum class TaskStatus { kPending, kRunning, kDone };

struct TaskState {
  const InputSplit* split = nullptr;
  TaskStatus status = TaskStatus::kPending;
  int attempt = 0;
  int run_on = -1;
  double rr_seconds = 0.0;
  // Statistics and output of the last *successful* attempt.
  std::unique_ptr<MapOutput> output;
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  bool fallback_scan = false;
  int reschedules = 0;
};

/// The whole mutable state of one job execution (shared by the event
/// closures).
struct Engine {
  hdfs::MiniDfs* dfs;
  const JobSpec* spec;
  const RunOptions* options;
  JobPlan plan;
  std::unique_ptr<RecordReader> reader;

  sim::EventQueue events;
  std::vector<TaskState> tasks;
  std::deque<size_t> pending;  // task indexes awaiting a slot
  std::vector<int> free_slots;  // per node
  uint32_t completed = 0;
  bool killed = false;
  bool done = false;
  sim::SimTime finish_time = 0.0;

  const sim::CostConstants& constants() const {
    return dfs->cluster().constants();
  }

  void Heartbeat(int node);
  void OnTaskComplete(size_t task_id, int attempt, int node,
                      sim::SimTime started);
  void OnFailureDetected(int node);
  Status AssignTask(size_t task_id, int node);
  Status first_error;  // readers can fail; surfaced after the run
};

void Engine::Heartbeat(int node) {
  if (done || !dfs->cluster().node(node).alive()) return;
  int assigned = 0;
  while (free_slots[static_cast<size_t>(node)] > 0 &&
         assigned < constants().tasks_per_heartbeat && !pending.empty()) {
    // Locality first: scan the queue for a split preferring this node.
    size_t pick = pending.front();
    size_t pick_pos = 0;
    for (size_t i = 0; i < pending.size(); ++i) {
      const TaskState& t = tasks[pending[i]];
      const auto& pref = t.split->preferred_nodes;
      if (std::find(pref.begin(), pref.end(), node) != pref.end()) {
        pick = pending[i];
        pick_pos = i;
        break;
      }
    }
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick_pos));
    Status st = AssignTask(pick, node);
    if (!st.ok()) {
      // A reader failure is fatal for the run: stop scheduling so the
      // event loop drains instead of heartbeating forever.
      if (first_error.ok()) first_error = st;
      done = true;
      return;
    }
    ++assigned;
  }
}

Status Engine::AssignTask(size_t task_id, int node) {
  TaskState& task = tasks[task_id];
  task.status = TaskStatus::kRunning;
  task.attempt += 1;
  task.run_on = node;
  free_slots[static_cast<size_t>(node)] -= 1;

  // Functional read happens now; the simulated duration covers setup +
  // record reading + cleanup.
  auto output = std::make_unique<MapOutput>(spec->collect_output);
  ReadContext ctx;
  ctx.dfs = dfs;
  ctx.spec = spec;
  ctx.plan = &plan;
  ctx.task_node = node;
  ctx.out = output.get();
  Result<TaskCost> cost = reader->ReadSplit(*task.split, &ctx);
  if (!cost.ok()) return cost.status();

  task.output = std::move(output);
  task.records_seen = ctx.records_seen;
  task.records_qualifying = ctx.records_qualifying;
  task.bad_records = ctx.bad_records;
  task.fallback_scan = ctx.fallback_scan;
  // RecordReader time = one-time reader construction + the data access.
  task.rr_seconds =
      constants().task_rr_init_ms / 1000.0 + cost->total();

  const double duration = constants().task_setup_s + cost->total() +
                          constants().task_cleanup_s;
  const int attempt = task.attempt;
  const sim::SimTime started = events.Now();
  events.ScheduleAfter(duration, [this, task_id, attempt, node, started] {
    OnTaskComplete(task_id, attempt, node, started);
  });
  return Status::OK();
}

void Engine::OnTaskComplete(size_t task_id, int attempt, int node,
                            sim::SimTime started) {
  (void)started;
  if (done) return;
  TaskState& task = tasks[task_id];
  if (task.status != TaskStatus::kRunning || task.attempt != attempt) {
    return;  // stale completion of a superseded attempt
  }
  if (!dfs->cluster().node(node).alive()) {
    return;  // node died mid-run; the failure detector requeues it
  }
  task.status = TaskStatus::kDone;
  free_slots[static_cast<size_t>(node)] += 1;
  ++completed;

  // Failure injection: kill the victim once the job crosses the progress
  // threshold ("we kill all Java processes ... after 50% of work
  // progress", §6.4.3).
  if (options->kill_node >= 0 && !killed &&
      static_cast<double>(completed) >=
          options->kill_at_progress * static_cast<double>(tasks.size())) {
    killed = true;
    const int victim = options->kill_node;
    dfs->KillNode(victim, events.Now());
    events.ScheduleAfter(constants().expiry_interval_s,
                         [this, victim] { OnFailureDetected(victim); });
  }

  if (completed == tasks.size()) {
    done = true;
    finish_time = events.Now() + constants().job_cleanup_s;
    return;
  }
  // Out-of-band heartbeat: the freed slot asks for work shortly after
  // completion instead of waiting for the periodic beat.
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void Engine::OnFailureDetected(int node) {
  if (done) return;
  // Lost in-flight tasks and completed map outputs on the dead node are
  // re-executed elsewhere.
  for (size_t i = 0; i < tasks.size(); ++i) {
    TaskState& task = tasks[i];
    if (task.run_on != node) continue;
    if (task.status == TaskStatus::kRunning) {
      task.status = TaskStatus::kPending;
      task.reschedules += 1;
      pending.push_back(i);
    } else if (task.status == TaskStatus::kDone) {
      task.status = TaskStatus::kPending;
      task.reschedules += 1;
      task.output.reset();
      --completed;
      pending.push_back(i);
    }
  }
}

}  // namespace

Result<JobResult> JobRunner::Run(const JobSpec& spec,
                                 const RunOptions& options) {
  sim::SimCluster& cluster = dfs_->cluster();
  // Jobs are measured on a fresh clock: reset resources and revive nodes.
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    cluster.node(i).ResetResources();
    if (!cluster.node(i).alive()) {
      cluster.node(i).set_alive(true);
      dfs_->namenode().MarkDatanodeAlive(i);
    }
  }

  Engine eng;
  eng.dfs = dfs_;
  eng.spec = &spec;
  eng.options = &options;
  HAIL_ASSIGN_OR_RETURN(eng.plan, ComputeJobPlan(dfs_, spec));
  eng.reader = MakeRecordReader(spec.system);
  if (eng.plan.splits.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no input");
  }

  const sim::CostConstants& c = cluster.constants();
  eng.tasks.resize(eng.plan.splits.size());
  for (size_t i = 0; i < eng.plan.splits.size(); ++i) {
    eng.tasks[i].split = &eng.plan.splits[i];
    eng.pending.push_back(i);
  }
  eng.free_slots.resize(static_cast<size_t>(cluster.num_nodes()));
  int total_slots = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    eng.free_slots[static_cast<size_t>(i)] =
        cluster.node(i).alive() ? cluster.node(i).profile().map_slots : 0;
    total_slots += eng.free_slots[static_cast<size_t>(i)];
  }
  if (total_slots == 0) {
    return Status::FailedPrecondition("no alive TaskTrackers");
  }

  // Job submission: startup + split phase, then periodic heartbeats.
  const double t0 = c.job_startup_s + eng.plan.split_phase_seconds;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (!cluster.node(i).alive()) continue;
    const double stagger = c.heartbeat_interval_s *
                           (static_cast<double>(i) + 1.0) /
                           static_cast<double>(cluster.num_nodes());
    // Each TaskTracker re-schedules its own periodic heartbeat.
    struct Beat {
      Engine* eng;
      int node;
      double interval;
      void operator()() const {
        eng->Heartbeat(node);
        // Starvation guard: a job that cannot make progress (all replicas
        // of a pending block dead, or a logic error) must not heartbeat
        // forever.
        if (eng->events.executed() > 50'000'000 && eng->first_error.ok()) {
          eng->first_error = Status::Unknown("scheduler starved (event cap)");
          eng->done = true;
        }
        if (!eng->done) {
          Engine* e = eng;
          int n = node;
          double iv = interval;
          eng->events.ScheduleAfter(interval, Beat{e, n, iv});
        }
      }
    };
    eng.events.ScheduleAt(t0 + stagger, Beat{&eng, i, c.heartbeat_interval_s});
  }
  eng.events.RunUntilEmpty();
  HAIL_RETURN_NOT_OK(eng.first_error);
  if (!eng.done) {
    return Status::Unknown("job '" + spec.name +
                           "' did not complete (scheduler starved)");
  }

  // ---- assemble the result ----
  JobResult result;
  result.job_name = spec.name;
  result.end_to_end_seconds = eng.finish_time;
  result.map_tasks = static_cast<uint32_t>(eng.tasks.size());

  double rr_sum = 0.0;
  for (const TaskState& task : eng.tasks) {
    rr_sum += task.rr_seconds;
    result.records_seen += task.records_seen;
    result.records_qualifying += task.records_qualifying;
    result.bad_records_seen += task.bad_records;
    result.rescheduled_tasks += static_cast<uint32_t>(task.reschedules);
    if (task.fallback_scan) result.fallback_scans += 1;
    if (task.output != nullptr) {
      result.output_count += task.output->count();
      if (spec.collect_output) {
        for (std::string& row : task.output->rows()) {
          result.output_rows.push_back(std::move(row));
        }
      }
    }
  }
  result.avg_record_reader_seconds =
      rr_sum / static_cast<double>(eng.tasks.size());
  // T_ideal = #MapTasks / #ParallelMapTasks * Avg(T_RecordReader) (§6.4.1).
  result.ideal_seconds = static_cast<double>(eng.tasks.size()) /
                         static_cast<double>(total_slots) *
                         result.avg_record_reader_seconds;
  result.overhead_seconds = result.end_to_end_seconds - result.ideal_seconds;
  return result;
}

}  // namespace mapreduce
}  // namespace hail
