#include "mapreduce/job_runner.h"

#include <utility>

#include "mapreduce/scheduler.h"

namespace hail {
namespace mapreduce {

Result<JobResult> JobRunner::Run(const JobSpec& spec,
                                 const RunOptions& options) {
  // A single-job ClusterSession: the session boundary resets resources and
  // revives dead nodes (queries are measured independently of whatever ran
  // before), and the session engine reproduces the pre-session single-job
  // event schedule exactly — simulated outputs are byte-identical.
  SessionOptions session_options;
  session_options.execution = options.execution;
  session_options.adaptive = options.adaptive;
  session_options.kill_node = options.kill_node;
  session_options.kill_at_progress = options.kill_at_progress;
  session_options.fault_plan = options.fault_plan;
  session_options.self_heal = options.self_heal;
  session_options.speculative_execution = options.speculative_execution;
  session_options.max_task_attempts = options.max_task_attempts;
  session_options.retry_backoff_s = options.retry_backoff_s;
  session_options.retry_backoff_max_s = options.retry_backoff_max_s;
  ClusterSession session(dfs_, std::move(session_options));
  session.Submit(spec);
  HAIL_ASSIGN_OR_RETURN(SessionResult result, session.Run());
  return std::move(result.jobs[0]);
}

}  // namespace mapreduce
}  // namespace hail
