#include "mapreduce/job_runner.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "adaptive/adaptive_manager.h"
#include "adaptive/reorg.h"
#include "mapreduce/pending_index.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hail {
namespace mapreduce {

namespace {

enum class TaskStatus { kPending, kRunning, kDone };

struct TaskState {
  const InputSplit* split = nullptr;
  TaskStatus status = TaskStatus::kPending;
  int attempt = 0;
  int run_on = -1;
  double rr_seconds = 0.0;
  // Statistics and output of the last *successful* attempt.
  std::unique_ptr<MapOutput> output;
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  bool fallback_scan = false;
  bool index_scan = false;
  bool unclustered_scan = false;
  int reschedules = 0;
};

/// One background replica-reorganization task riding on this job's idle
/// slots (adaptive indexing; see adaptive/adaptive_manager.h).
struct MaintState {
  adaptive::MaintenanceTask task;
  enum class Status { kPending, kRunning, kCommitted, kFailed } status =
      Status::kPending;
  /// Rewrite computed at assignment (pre-mutation state), committed at the
  /// completion event.
  std::optional<adaptive::PreparedReorg> prepared;
};

/// Everything a functional read produces; computed inline (serial) or on a
/// pool thread (parallel), consumed on the event thread either way.
struct ReadOutcome {
  Result<TaskCost> cost = Status::Unknown("read not executed");
  std::unique_ptr<MapOutput> output;
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  bool fallback_scan = false;
  bool index_scan = false;
  bool unclustered_scan = false;
};

/// Process-wide worker pool for parallel map-task reads. Created lazily,
/// never destroyed (workers block on an empty queue between jobs); sized
/// by HAIL_THREADS or hardware_concurrency.
ThreadPool* SharedPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return pool;
}

ExecutionMode ResolveMode(const RunOptions& options) {
  if (options.execution != ExecutionMode::kDefault) return options.execution;
  if (const char* env = std::getenv("HAIL_EXEC")) {
    if (std::strcmp(env, "serial") == 0) return ExecutionMode::kSerial;
    if (std::strcmp(env, "parallel") == 0) return ExecutionMode::kParallel;
  }
  // With a single worker there is nothing to overlap — the ~µs/task
  // dispatch overhead would be pure loss, so default to the inline path.
  return ThreadPool::DefaultThreads() > 1 ? ExecutionMode::kParallel
                                          : ExecutionMode::kSerial;
}

/// The whole mutable state of one job execution (shared by the event
/// closures).
struct Engine {
  hdfs::MiniDfs* dfs;
  const JobSpec* spec;
  const RunOptions* options;
  JobPlan plan;
  std::unique_ptr<RecordReader> reader;  // serial mode reuses one reader

  sim::EventQueue events;
  std::vector<TaskState> tasks;
  PendingTaskIndex pending{0};  // re-initialised in Run with #nodes
  std::vector<int> free_slots;  // per node
  uint32_t completed = 0;
  bool killed = false;
  bool done = false;
  sim::SimTime finish_time = 0.0;
  Status first_error;  // readers can fail; surfaced after the run

  // ---- background maintenance (adaptive replica reorganization) ----
  std::vector<MaintState> maint;
  /// Per-node FIFO of maint indexes (a rewrite runs on the datanode that
  /// holds the replica).
  std::vector<std::deque<size_t>> maint_by_node;
  uint32_t maint_completed = 0;
  uint32_t maint_failed = 0;
  /// Parallel mode: commits requested by completion events, applied by the
  /// loop after every in-flight read has drained (reads assigned before
  /// the commit must observe — and may be concurrently reading — the
  /// pre-rewrite bytes).
  std::vector<size_t> pending_commits;

  // ---- parallel engine state (unused in serial mode) ----
  bool parallel = false;
  ThreadPool* pool = nullptr;
  /// One dispatched-but-not-joined functional read. `seq` is the
  /// completion event's reserved FIFO slot; `earliest_completion` the
  /// soonest simulated instant the task can complete (cost >= 0), which
  /// bounds how far the event loop may run before joining.
  struct InFlight {
    size_t task_id = 0;
    int attempt = 0;
    int node = -1;
    sim::SimTime assign_time = 0.0;
    sim::SimTime earliest_completion = 0.0;
    uint64_t seq = 0;
    std::future<ReadOutcome> future;
  };
  std::deque<InFlight> inflight;  // assignment (= reserved seq) order
  /// Failure injection is requested by OnTaskComplete but applied by the
  /// loop *after* the event returns and every in-flight read has joined:
  /// reads assigned before the kill must observe pre-kill DFS state, both
  /// for serial-equivalence and because KillNode mutates shared
  /// namenode/cluster state the pool threads read.
  bool kill_requested = false;
  int kill_victim = -1;
  uint64_t kill_seq = 0;

  const sim::CostConstants& constants() const {
    return dfs->cluster().constants();
  }

  void Heartbeat(int node);
  void MaintenanceBeat(int node, int assigned);
  void OnTaskComplete(size_t task_id, int attempt, int node,
                      sim::SimTime started);
  void OnFailureDetected(int node);
  Status AssignTask(size_t task_id, int node);
  void AssignMaintenance(size_t mid, int node);
  void OnMaintenanceComplete(size_t mid, int node);
  void CommitMaintenance(size_t mid);
  ReadOutcome ExecuteRead(RecordReader* rdr, const InputSplit& split,
                          int node) const;
  Status FinishRead(size_t task_id, int attempt, int node,
                    sim::SimTime assign_time, ReadOutcome outcome,
                    const uint64_t* reserved_seq);
  Status JoinOldest();
  void RunParallelLoop();
};

void Engine::Heartbeat(int node) {
  if (!dfs->cluster().node(node).alive()) return;
  if (done) {
    // Foreground is finished (or aborted). Maintenance may still drain on
    // the idle cluster below — but never after an error.
    if (!first_error.ok()) return;
    MaintenanceBeat(node, /*assigned=*/0);
    return;
  }
  int assigned = 0;
  while (free_slots[static_cast<size_t>(node)] > 0 &&
         assigned < constants().tasks_per_heartbeat && !pending.empty()) {
    // Locality first: the earliest pending task preferring this node,
    // else the earliest pending task overall (indexed; pick-identical to
    // the former linear scan over the pending list).
    const std::optional<size_t> pick = pending.PopFor(node);
    if (!pick.has_value()) break;
    Status st = AssignTask(*pick, node);
    if (!st.ok()) {
      // A reader failure is fatal for the run: stop scheduling so the
      // event loop drains instead of heartbeating forever.
      if (first_error.ok()) first_error = st;
      done = true;
      return;
    }
    ++assigned;
  }
  // Background maintenance rides strictly behind foreground work: a
  // reorg task is assigned only while *no* foreground task is pending
  // anywhere (typically the job's tail, while the last map waves drain),
  // within the same per-heartbeat assignment quota, and only on the node
  // holding the replica. Foreground queries are never starved.
  MaintenanceBeat(node, assigned);
}

void Engine::MaintenanceBeat(int node, int assigned) {
  if (maint_by_node.empty() || !pending.empty()) return;
  std::deque<size_t>& queue = maint_by_node[static_cast<size_t>(node)];
  // Mid-job the TaskTracker's per-heartbeat quota applies; once the job is
  // done the cluster is idle and the queue drains as fast as slots allow.
  while (free_slots[static_cast<size_t>(node)] > 0 && !queue.empty() &&
         (done || assigned < constants().tasks_per_heartbeat)) {
    const size_t mid = queue.front();
    queue.pop_front();
    AssignMaintenance(mid, node);
    ++assigned;
  }
}

void Engine::AssignMaintenance(size_t mid, int node) {
  MaintState& m = maint[mid];
  // The rewrite is computed against the DFS state at assignment time (the
  // same instant serial execution would read it); the mutation waits for
  // the completion event.
  Result<adaptive::PreparedReorg> prep = adaptive::PrepareReorg(*dfs, m.task);
  if (!prep.ok()) {
    // A broken task (replica gone, wrong layout) is dropped, not retried;
    // it must not wedge the queue.
    m.status = MaintState::Status::kFailed;
    ++maint_failed;
    return;
  }
  m.status = MaintState::Status::kRunning;
  m.prepared.emplace(std::move(*prep));
  free_slots[static_cast<size_t>(node)] -= 1;
  const double duration = m.prepared->seconds;
  events.ScheduleAfter(duration,
                       [this, mid, node] { OnMaintenanceComplete(mid, node); });
}

void Engine::OnMaintenanceComplete(size_t mid, int node) {
  MaintState& m = maint[mid];
  if (m.status != MaintState::Status::kRunning) return;
  if (!first_error.ok()) {
    // The job failed; don't mutate DFS state while the queue drains.
    m.status = MaintState::Status::kPending;
    m.prepared.reset();
    return;
  }
  // Note: no `done` early-out. A rewrite whose simulated work finishes
  // after the last foreground task still commits — the job's numbers are
  // fixed at `done` (heartbeats stop, so nothing *new* starts), and the
  // datanode daemon has no reason to throw away a finished replica.
  if (!dfs->cluster().node(node).alive()) {
    // Node killed mid-reorg: the prepared bytes are gone with it. Requeue;
    // after a revive the next job's planner state still wants this block.
    m.status = MaintState::Status::kPending;
    m.prepared.reset();
    return;
  }
  free_slots[static_cast<size_t>(node)] += 1;
  if (parallel) {
    pending_commits.push_back(mid);
  } else {
    CommitMaintenance(mid);
  }
  // The freed slot asks for more work (maintenance or requeued foreground).
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void Engine::CommitMaintenance(size_t mid) {
  MaintState& m = maint[mid];
  Status st = adaptive::CommitReorg(dfs, m.task, std::move(*m.prepared));
  m.prepared.reset();
  if (st.ok()) {
    m.status = MaintState::Status::kCommitted;
    ++maint_completed;
  } else {
    m.status = MaintState::Status::kFailed;
    ++maint_failed;
  }
}

ReadOutcome Engine::ExecuteRead(RecordReader* rdr, const InputSplit& split,
                                int node) const {
  ReadOutcome out;
  out.output = std::make_unique<MapOutput>(spec->collect_output);
  ReadContext ctx;
  ctx.dfs = dfs;
  ctx.spec = spec;
  ctx.plan = &plan;
  ctx.task_node = node;
  ctx.out = out.output.get();
  out.cost = rdr->ReadSplit(split, &ctx);
  out.records_seen = ctx.records_seen;
  out.records_qualifying = ctx.records_qualifying;
  out.bad_records = ctx.bad_records;
  out.fallback_scan = ctx.fallback_scan;
  out.index_scan = ctx.index_scan;
  out.unclustered_scan = ctx.unclustered_scan;
  return out;
}

Status Engine::FinishRead(size_t task_id, int attempt, int node,
                          sim::SimTime assign_time, ReadOutcome outcome,
                          const uint64_t* reserved_seq) {
  HAIL_RETURN_NOT_OK(outcome.cost.status());
  TaskState& task = tasks[task_id];
  task.output = std::move(outcome.output);
  task.records_seen = outcome.records_seen;
  task.records_qualifying = outcome.records_qualifying;
  task.bad_records = outcome.bad_records;
  task.fallback_scan = outcome.fallback_scan;
  task.index_scan = outcome.index_scan;
  task.unclustered_scan = outcome.unclustered_scan;
  // RecordReader time = one-time reader construction + the data access.
  task.rr_seconds =
      constants().task_rr_init_ms / 1000.0 + outcome.cost->total();

  const double duration = constants().task_setup_s + outcome.cost->total() +
                          constants().task_cleanup_s;
  auto completion = [this, task_id, attempt, node, assign_time] {
    OnTaskComplete(task_id, attempt, node, assign_time);
  };
  if (reserved_seq != nullptr) {
    events.ScheduleAtReserved(*reserved_seq, assign_time + duration,
                              std::move(completion));
  } else {
    events.ScheduleAfter(duration, std::move(completion));
  }
  return Status::OK();
}

Status Engine::AssignTask(size_t task_id, int node) {
  TaskState& task = tasks[task_id];
  task.status = TaskStatus::kRunning;
  task.attempt += 1;
  task.run_on = node;
  free_slots[static_cast<size_t>(node)] -= 1;

  if (!parallel) {
    // Functional read happens now; the simulated duration covers setup +
    // record reading + cleanup.
    return FinishRead(task_id, task.attempt, node, events.Now(),
                      ExecuteRead(reader.get(), *task.split, node),
                      /*reserved_seq=*/nullptr);
  }

  // Parallel: reserve the completion event's FIFO slot here — exactly
  // where serial would allocate it — and dispatch the read to the pool.
  // The loop joins the future before the simulation can reach the task's
  // earliest possible completion instant.
  InFlight f;
  f.task_id = task_id;
  f.attempt = task.attempt;
  f.node = node;
  f.assign_time = events.Now();
  f.earliest_completion =
      f.assign_time + constants().task_setup_s + constants().task_cleanup_s;
  f.seq = events.ReserveSeq();
  const InputSplit* split = task.split;
  f.future = pool->Submit([this, split, node] {
    // Readers are cheap to construct; a private instance per read keeps
    // the pool threads free of any shared reader state.
    std::unique_ptr<RecordReader> rdr = MakeRecordReader(spec->system);
    return ExecuteRead(rdr.get(), *split, node);
  });
  inflight.push_back(std::move(f));
  return Status::OK();
}

Status Engine::JoinOldest() {
  InFlight f = std::move(inflight.front());
  inflight.pop_front();
  Status st = FinishRead(f.task_id, f.attempt, f.node, f.assign_time,
                         f.future.get(), &f.seq);
  if (!st.ok()) {
    if (first_error.ok()) first_error = st;
    done = true;
  }
  return st;
}

void Engine::OnTaskComplete(size_t task_id, int attempt, int node,
                            sim::SimTime started) {
  (void)started;
  if (done) return;
  TaskState& task = tasks[task_id];
  if (task.status != TaskStatus::kRunning || task.attempt != attempt) {
    return;  // stale completion of a superseded attempt
  }
  if (!dfs->cluster().node(node).alive()) {
    return;  // node died mid-run; the failure detector requeues it
  }
  task.status = TaskStatus::kDone;
  free_slots[static_cast<size_t>(node)] += 1;
  ++completed;

  // Failure injection: kill the victim once the job crosses the progress
  // threshold ("we kill all Java processes ... after 50% of work
  // progress", §6.4.3).
  if (options->kill_node >= 0 && !killed &&
      static_cast<double>(completed) >=
          options->kill_at_progress * static_cast<double>(tasks.size())) {
    killed = true;
    const int victim = options->kill_node;
    if (!parallel) {
      dfs->KillNode(victim, events.Now());
      events.ScheduleAfter(constants().expiry_interval_s,
                           [this, victim] { OnFailureDetected(victim); });
    } else {
      // Reserve the detection event's slot now (identical tie-break rank
      // to serial); the loop applies the kill once in-flight reads have
      // drained.
      kill_requested = true;
      kill_victim = victim;
      kill_seq = events.ReserveSeq();
    }
  }

  if (completed == tasks.size()) {
    done = true;
    finish_time = events.Now() + constants().job_cleanup_s;
    // The cluster just went idle; remaining maintenance drains on the
    // freed slots (the job's reported numbers are fixed at this instant —
    // heartbeats below only ever assign background rewrites).
    for (size_t n = 0; n < maint_by_node.size(); ++n) {
      if (maint_by_node[n].empty()) continue;
      const int idle_node = static_cast<int>(n);
      events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                           [this, idle_node] { Heartbeat(idle_node); });
    }
    return;
  }
  // Out-of-band heartbeat: the freed slot asks for work shortly after
  // completion instead of waiting for the periodic beat.
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void Engine::OnFailureDetected(int node) {
  if (done) return;
  // Lost in-flight tasks and completed map outputs on the dead node are
  // re-executed elsewhere.
  for (size_t i = 0; i < tasks.size(); ++i) {
    TaskState& task = tasks[i];
    if (task.run_on != node) continue;
    if (task.status == TaskStatus::kRunning) {
      task.status = TaskStatus::kPending;
      task.reschedules += 1;
      pending.Push(i, task.split->preferred_nodes);
    } else if (task.status == TaskStatus::kDone) {
      task.status = TaskStatus::kPending;
      task.reschedules += 1;
      task.output.reset();
      --completed;
      pending.Push(i, task.split->preferred_nodes);
    }
  }
}

void Engine::RunParallelLoop() {
  for (;;) {
    // Join every in-flight read whose completion event could precede the
    // next queued event — (earliest_completion, reserved seq) is a strict
    // lower bound on the completion event's (time, seq) key, so the
    // simulation never runs past an unscheduled completion.
    while (!inflight.empty()) {
      bool join_now = true;
      if (events.pending() > 0) {
        const auto [when, seq] = events.NextKey();
        const InFlight& f = inflight.front();
        join_now = f.earliest_completion < when ||
                   (f.earliest_completion == when && f.seq < seq);
      }
      if (!join_now) break;
      if (!JoinOldest().ok()) break;  // error: drained below
    }
    if (!first_error.ok()) break;
    if (events.pending() == 0) {
      if (inflight.empty()) break;
      continue;  // only in-flight reads remain; join them next pass
    }
    events.RunOne();
    if (kill_requested || !pending_commits.empty()) {
      // Drain all in-flight reads before mutating shared DFS state (kill
      // or reorg commit): they were assigned pre-mutation and must observe
      // — and may be concurrently reading — the pre-mutation bytes.
      Status drained = Status::OK();
      while (!inflight.empty() && drained.ok()) drained = JoinOldest();
      if (drained.ok()) {
        for (size_t mid : pending_commits) CommitMaintenance(mid);
        pending_commits.clear();
        if (kill_requested) {
          kill_requested = false;
          dfs->KillNode(kill_victim, events.Now());
          const int victim = kill_victim;
          events.ScheduleAtReserved(
              kill_seq, events.Now() + constants().expiry_interval_s,
              [this, victim] { OnFailureDetected(victim); });
        }
      } else {
        pending_commits.clear();
        kill_requested = false;
      }
    }
  }
  // Error exit: wait out any stragglers so no pool thread touches this
  // engine after Run returns (their results are discarded, exactly as
  // serial never executed those reads' results).
  while (!inflight.empty()) {
    inflight.front().future.wait();
    inflight.pop_front();
  }
  // Serial drains every remaining (no-op) event after an error; mirror it
  // so executed-event accounting matches.
  events.RunUntilEmpty();
}

}  // namespace

Result<JobResult> JobRunner::Run(const JobSpec& spec,
                                 const RunOptions& options) {
  sim::SimCluster& cluster = dfs_->cluster();
  // Jobs are measured on a fresh clock: reset resources and revive nodes
  // (a revived node re-registers with a cold read cache).
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    cluster.node(i).ResetResources();
    if (!cluster.node(i).alive()) {
      dfs_->ReviveNode(i);
    }
  }

  Engine eng;
  eng.dfs = dfs_;
  eng.spec = &spec;
  eng.options = &options;
  eng.parallel = ResolveMode(options) == ExecutionMode::kParallel;
  if (eng.parallel) eng.pool = SharedPool();
  HAIL_ASSIGN_OR_RETURN(eng.plan, ComputeJobPlan(dfs_, spec));
  eng.reader = MakeRecordReader(spec.system);
  if (eng.plan.splits.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no input");
  }

  const sim::CostConstants& c = cluster.constants();
  eng.tasks.resize(eng.plan.splits.size());
  eng.pending = PendingTaskIndex(cluster.num_nodes());
  for (size_t i = 0; i < eng.plan.splits.size(); ++i) {
    eng.tasks[i].split = &eng.plan.splits[i];
    eng.pending.Push(i, eng.plan.splits[i].preferred_nodes);
  }
  eng.free_slots.resize(static_cast<size_t>(cluster.num_nodes()));
  int total_slots = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    eng.free_slots[static_cast<size_t>(i)] =
        cluster.node(i).alive() ? cluster.node(i).profile().map_slots : 0;
    total_slots += eng.free_slots[static_cast<size_t>(i)];
  }
  if (total_slots == 0) {
    return Status::FailedPrecondition("no alive TaskTrackers");
  }

  // Adaptive maintenance: take every pending replica rewrite; they run on
  // slots with no foreground work and whatever does not finish goes back.
  // Taken only after the last early-return above — an aborted run must
  // never swallow the manager's queue.
  eng.maint_by_node.resize(static_cast<size_t>(cluster.num_nodes()));
  if (options.adaptive != nullptr) {
    std::vector<adaptive::MaintenanceTask> taken = options.adaptive->TakeTasks();
    eng.maint.reserve(taken.size());
    for (const adaptive::MaintenanceTask& task : taken) {
      if (task.datanode < 0 || task.datanode >= cluster.num_nodes()) continue;
      eng.maint_by_node[static_cast<size_t>(task.datanode)].push_back(
          eng.maint.size());
      eng.maint.push_back(MaintState{task, MaintState::Status::kPending, {}});
    }
  }

  // Job submission: startup + split phase, then periodic heartbeats.
  const double t0 = c.job_startup_s + eng.plan.split_phase_seconds;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (!cluster.node(i).alive()) continue;
    const double stagger = c.heartbeat_interval_s *
                           (static_cast<double>(i) + 1.0) /
                           static_cast<double>(cluster.num_nodes());
    // Each TaskTracker re-schedules its own periodic heartbeat.
    struct Beat {
      Engine* eng;
      int node;
      double interval;
      void operator()() const {
        eng->Heartbeat(node);
        // Starvation guard: a job that cannot make progress (all replicas
        // of a pending block dead, or a logic error) must not heartbeat
        // forever.
        if (eng->events.executed() > 50'000'000 && eng->first_error.ok()) {
          eng->first_error = Status::Unknown("scheduler starved (event cap)");
          eng->done = true;
        }
        if (!eng->done) {
          Engine* e = eng;
          int n = node;
          double iv = interval;
          eng->events.ScheduleAfter(interval, Beat{e, n, iv});
        }
      }
    };
    eng.events.ScheduleAt(t0 + stagger, Beat{&eng, i, c.heartbeat_interval_s});
  }
  if (eng.parallel) {
    eng.RunParallelLoop();
  } else {
    eng.events.RunUntilEmpty();
  }
  // Unfinished maintenance goes back to the manager *before* any error
  // exit — a failed job must not lose queued reorganization work.
  if (options.adaptive != nullptr) {
    std::vector<adaptive::MaintenanceTask> unfinished;
    for (const MaintState& m : eng.maint) {
      if (m.status == MaintState::Status::kPending ||
          m.status == MaintState::Status::kRunning) {
        unfinished.push_back(m.task);
      }
    }
    options.adaptive->ReturnUnfinished(std::move(unfinished));
    options.adaptive->NoteCompleted(eng.maint_completed, eng.maint_failed);
  }
  HAIL_RETURN_NOT_OK(eng.first_error);
  if (!eng.done) {
    return Status::Unknown("job '" + spec.name +
                           "' did not complete (scheduler starved)");
  }

  // ---- assemble the result ----
  JobResult result;
  result.job_name = spec.name;
  result.end_to_end_seconds = eng.finish_time;
  result.map_tasks = static_cast<uint32_t>(eng.tasks.size());

  double rr_sum = 0.0;
  for (const TaskState& task : eng.tasks) {
    rr_sum += task.rr_seconds;
    result.records_seen += task.records_seen;
    result.records_qualifying += task.records_qualifying;
    result.bad_records_seen += task.bad_records;
    result.rescheduled_tasks += static_cast<uint32_t>(task.reschedules);
    if (task.fallback_scan) result.fallback_scans += 1;
    if (task.index_scan) result.index_scan_tasks += 1;
    if (task.unclustered_scan) result.unclustered_scan_tasks += 1;
    if (task.output != nullptr) {
      result.output_count += task.output->count();
      if (spec.collect_output) {
        for (std::string& row : task.output->rows()) {
          result.output_rows.push_back(std::move(row));
        }
      }
    }
  }
  result.avg_record_reader_seconds =
      rr_sum / static_cast<double>(eng.tasks.size());
  // T_ideal = #MapTasks / #ParallelMapTasks * Avg(T_RecordReader) (§6.4.1).
  result.ideal_seconds = static_cast<double>(eng.tasks.size()) /
                         static_cast<double>(total_slots) *
                         result.avg_record_reader_seconds;
  result.overhead_seconds = result.end_to_end_seconds - result.ideal_seconds;

  result.maintenance_scheduled = static_cast<uint32_t>(eng.maint.size());
  result.maintenance_completed = eng.maint_completed;
  result.maintenance_failed = eng.maint_failed;
  if (options.adaptive != nullptr) {
    // Close the loop: record the query (and its access paths) in the
    // workload observer; the planner may queue reorganization for the
    // next job against the now-current replica directory.
    options.adaptive->ObserveJob(spec, result);
  }
  return result;
}

}  // namespace mapreduce
}  // namespace hail
