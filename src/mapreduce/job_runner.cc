#include "mapreduce/job_runner.h"

#include <utility>

#include "mapreduce/scheduler.h"
#include "obs/explain.h"

namespace hail {
namespace mapreduce {

namespace {

/// Names the access path a finished job actually took, from its per-task
/// scan-class counts (the plan picks per replica; a mixed outcome means
/// failover crossed replica classes mid-job).
std::string AccessPathName(const JobResult& r) {
  const bool idx = r.index_scan_tasks > 0;
  const bool uc = r.unclustered_scan_tasks > 0;
  const bool full = r.fallback_scans > 0 ||
                    (!idx && !uc) ||
                    r.index_scan_tasks + r.unclustered_scan_tasks <
                        r.map_tasks;
  int kinds = (idx ? 1 : 0) + (uc ? 1 : 0) + (full ? 1 : 0);
  if (kinds > 1) return "mixed";
  if (idx) return "clustered-index";
  if (uc) return "unclustered-index";
  return "full-scan";
}

}  // namespace

Result<JobResult> JobRunner::Run(const JobSpec& spec,
                                 const RunOptions& options) {
  // A single-job ClusterSession: the session boundary resets resources and
  // revives dead nodes (queries are measured independently of whatever ran
  // before), and the session engine reproduces the pre-session single-job
  // event schedule exactly — simulated outputs are byte-identical.
  SessionOptions session_options;
  session_options.execution = options.execution;
  session_options.adaptive = options.adaptive;
  session_options.kill_node = options.kill_node;
  session_options.kill_at_progress = options.kill_at_progress;
  session_options.fault_plan = options.fault_plan;
  session_options.self_heal = options.self_heal;
  session_options.speculative_execution = options.speculative_execution;
  session_options.max_task_attempts = options.max_task_attempts;
  session_options.retry_backoff_s = options.retry_backoff_s;
  session_options.retry_backoff_max_s = options.retry_backoff_max_s;
  session_options.tracer = options.tracer;
  session_options.plan_cache = options.plan_cache;
  session_options.admission_from_planner = options.admission_from_planner;
  // Profile support: the block cache counters are cluster-global, so a
  // per-query view is the delta across this (single-job) session.
  const hdfs::BlockCacheStats cache_before =
      options.profile ? dfs_->block_cache().stats() : hdfs::BlockCacheStats{};
  ClusterSession session(dfs_, std::move(session_options));
  session.Submit(spec);
  HAIL_ASSIGN_OR_RETURN(SessionResult result, session.Run());
  Result<JobResult>& job = result.jobs[0];
  if (options.profile && job.ok()) {
    const hdfs::BlockCacheStats after = dfs_->block_cache().stats();
    obs::QueryProfile p;
    p.job_name = job->job_name;
    p.system = std::string(SystemName(spec.system));
    if (spec.annotation.has_value() && spec.annotation->has_filter()) {
      p.annotation = spec.annotation->filter.ToString(spec.schema);
    }
    p.access_path = AccessPathName(*job);
    p.index_column = job->index_column;
    p.map_tasks = job->map_tasks;
    p.index_scan_tasks = job->index_scan_tasks;
    p.unclustered_scan_tasks = job->unclustered_scan_tasks;
    p.fallback_scans = job->fallback_scans;
    p.blocks_scanned = job->blocks_scanned;
    p.blocks_skipped = job->blocks_skipped;
    p.planned = job->planned;
    p.predicted_seconds = job->predicted_cost_seconds;
    p.zone_skipped_blocks = job->zone_skipped_blocks;
    p.rows_skipped = job->rows_skipped;
    p.rows_in = job->records_seen;
    p.rows_out = job->records_qualifying;
    p.output_rows = job->output_count;
    p.cache_verify_hits = after.verify_hits - cache_before.verify_hits;
    p.cache_verify_misses = after.verify_misses - cache_before.verify_misses;
    p.cache_artifact_hits = after.artifact_hits - cache_before.artifact_hits;
    p.cache_artifact_misses =
        after.artifact_misses - cache_before.artifact_misses;
    p.cache_index_decodes = after.index_decodes - cache_before.index_decodes;
    p.cost = job->cost;
    p.billed_seconds = job->billed_cost_seconds;
    p.end_to_end_seconds = job->end_to_end_seconds;
    job->profile = std::move(p);
  }
  return std::move(job);
}

}  // namespace mapreduce
}  // namespace hail
