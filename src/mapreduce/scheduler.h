/// \file scheduler.h
/// \brief Shared-cluster multi-job scheduling on one simulated clock.
///
/// JobRunner::Run executes exactly one job per session; the paper's
/// scheduling results (§4.2, Fig. 6c/9) and the adaptive loop's "never
/// starve foreground" guarantee only become meaningful when several
/// tenants contend for the same map slots. A ClusterSession admits N jobs
/// — queries, uploads and the adaptive manager's background replica
/// maintenance — onto ONE simulated clock and ONE shared cluster state:
///
///  - per-session boundaries: node resources are reset and dead nodes
///    revived once at session start (MiniDfs::ResetForSession), not per
///    job, so tenants observe each other's resource bookings and faults;
///  - per-node TaskTracker heartbeats serve every admitted job; which job
///    a free slot goes to is decided by a SlotScheduler policy:
///      * kFifo  — Hadoop's default: strict submission order (earliest
///        job with pending work first; locality within the job);
///      * kFair  — Hadoop-fair-scheduler-style weighted queues: the queue
///        with the smallest running/weight deficit wins the slot
///        (work-conserving: an idle queue's share redistributes);
///  - upload jobs occupy map slots too: each source file is one slot task
///    whose simulated duration comes from the real upload pipeline, so
///    ingest and queries genuinely contend;
///  - adaptive maintenance stays strictly low priority across ALL tenants:
///    a replica rewrite is assigned only when no foreground task of any
///    active job is pending anywhere (SessionResult records the invariant
///    counter, which must stay 0).
///
/// Determinism: every scheduling decision is a pure function of the event
/// order — policy state (queue deficits, pending counts) mutates only on
/// the event thread, and the parallel execution engine reserves completion
/// FIFO slots at assignment exactly as in the single-job engine — so
/// serial and parallel execution stay bit-identical across interleaved
/// jobs (tests/scheduler_test.cc pins it with %.17g dumps).
///
/// JobRunner::Run is now a one-job ClusterSession; its simulated outputs
/// are byte-identical to the pre-session engine.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "hail/hail_client.h"
#include "mapreduce/job.h"
#include "mapreduce/job_runner.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "util/result.h"

namespace hail {
namespace adaptive {
class AdaptiveManager;
}  // namespace adaptive
namespace planner {
class PlanCache;
}  // namespace planner
namespace mapreduce {

/// \brief How free map slots are shared between admitted jobs.
enum class SchedulerPolicy {
  /// Strict submission order (Hadoop's default JobQueueTaskScheduler):
  /// the earliest submitted job with pending work gets every slot.
  kFifo,
  /// Weighted fair sharing across named queues (Hadoop fair scheduler):
  /// each assignment goes to the queue with the smallest
  /// running_tasks/weight deficit; within a queue, earliest job first.
  kFair,
};

/// \brief Deterministic slot-allocation policy state.
///
/// Pure bookkeeping — the session engine reports pending counts and task
/// starts/finishes, and asks which job the next free slot should serve.
/// All decisions are deterministic functions of that call sequence, which
/// itself is a pure function of the simulated event order.
class SlotScheduler {
 public:
  struct QueueState {
    std::string name;
    double weight = 1.0;
    /// Foreground tasks of this queue currently occupying slots.
    uint32_t running = 0;
  };

  explicit SlotScheduler(SchedulerPolicy policy = SchedulerPolicy::kFifo,
                         const std::map<std::string, double>& weights = {});

  /// Registers a job (ids are dense, in call order = submission order);
  /// its queue is created on first sight with the configured weight
  /// (default 1.0). Queue order = first-registration order.
  int RegisterJob(const std::string& queue);

  /// The engine mirrors each job's unassigned foreground task count here.
  void SetPending(int job, size_t pending);

  void OnTaskStarted(int job);
  void OnTaskFinished(int job);

  /// Declares the job's SLO deadline on the session clock (submit time +
  /// its queue's latency target). Jobs without a deadline never enter the
  /// EDF escalation pass.
  void SetJobDeadline(int job, sim::SimTime deadline);

  /// Job that should receive the next free slot, -1 when no job has
  /// pending work. kFifo: lowest job id with pending work. kFair: first
  /// an EDF pass — among jobs already past their declared deadline at
  /// `now` with pending work, the earliest deadline wins (ties: lowest
  /// job id) — then the queue with minimal running/weight (ties:
  /// first-registered queue), then lowest job id within it.
  int PickNextJob(sim::SimTime now = 0.0) const;

  /// True while at least two queues have pending foreground work — the
  /// window in which fair-share entitlement is actually measurable.
  bool Contended() const;

  int queue_of(int job) const;
  const std::vector<QueueState>& queues() const { return queues_; }

 private:
  int QueueIndex(const std::string& name);

  struct JobEntry {
    int queue = 0;
    size_t pending = 0;
    /// SLO deadline on the session clock; infinity = never escalates.
    sim::SimTime deadline = 0.0;
    bool has_deadline = false;
  };

  SchedulerPolicy policy_;
  std::map<std::string, double> weights_;
  std::vector<QueueState> queues_;
  std::vector<JobEntry> jobs_;
};

/// \brief An upload tenant: each source file is one slot-occupying task.
///
/// The task runs the real ingestion path (stock-HDFS text or HAIL) at its
/// assignment instant on whichever node the scheduler placed it (the
/// file's client_node is the locality preference), and holds its map slot
/// for the upload's simulated duration plus task setup/cleanup.
struct UploadJobSpec {
  struct File {
    /// Preferred (client) node; under contention the scheduler may place
    /// the ingest task elsewhere, which then acts as the client.
    int client_node = 0;
    std::string dfs_path;
    std::string text;
  };

  std::string name;
  /// kHadoop = stock text upload, kHail = PAX + per-replica indexes.
  /// (kHadoopPP ingestion is itself a MapReduce job chain and is not
  /// modelled as slot tasks.)
  System system = System::kHadoop;
  /// HAIL schema + per-replica sort columns (system == kHail only).
  HailUploadConfig hail;
  std::vector<File> files;
};

/// \brief Bounded admission for one queue (overload shedding).
///
/// Both limits are checked at admission time (activation instant, after
/// any submit-time/dependency deferral) and shed deterministically with
/// `Status::Overloaded` — a shed job never computes a plan, never holds a
/// slot, and never hangs its dependents (they fail fast too). Zero
/// disables the corresponding check.
struct AdmissionControl {
  /// Max unfinished jobs admitted to the queue; one more is shed.
  size_t max_backlog_jobs = 0;
  /// Shed when the queue's projected wait — pending foreground tasks x
  /// observed mean task slot-seconds / the queue's entitled slot share —
  /// exceeds this many seconds. Needs at least one completed task to
  /// estimate from; before that only the backlog bound applies.
  double shed_wait_s = 0.0;
};

/// \brief Session-wide options (failure injection, policy, engine).
struct SessionOptions {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  /// Per-queue fair-share weights; queues not listed weigh 1.0.
  std::map<std::string, double> queue_weights;
  /// Per-queue latency SLO: a job's deadline is submit_time + its queue's
  /// target. Under kFair, jobs past deadline escalate via EDF above the
  /// fair shares; violations are accounted per queue either way.
  std::map<std::string, double> queue_slo_s;
  /// Per-queue admission bounds; unlisted queues admit unboundedly.
  std::map<std::string, AdmissionControl> queue_admission;
  /// Allow the fair scheduler to preempt a running task of an over-share
  /// queue when another queue's pending task has waited longer than
  /// `preemption_catchup_s` (Hadoop fair-scheduler preemption timeout).
  /// The preempted attempt requeues; its wasted slot-seconds are billed
  /// to its queue as `preempted_slot_seconds`.
  bool preemption = false;
  double preemption_catchup_s = 60.0;
  /// Serial/parallel execution of the functional reads (shared pool).
  ExecutionMode execution = ExecutionMode::kDefault;
  /// Background replica maintenance rides the whole session's idle slots.
  adaptive::AdaptiveManager* adaptive = nullptr;
  /// When non-null, job plans are cached here keyed on (spec, directory
  /// generation): repeat submissions of the same query skip both the plan
  /// computation and its billed planning CPU. Owned by the caller so the
  /// cache survives across sessions; invalidated automatically by any
  /// namenode directory mutation.
  planner::PlanCache* plan_cache = nullptr;
  /// Estimate a queue's projected wait from the planner's predicted job
  /// costs (admitted jobs' plan.predicted_cost_seconds spread over their
  /// pending tasks) instead of the observed mean task duration. Falls
  /// back to the observed mean for unplanned jobs. Off by default: the
  /// legacy estimator's shed decisions are preserved bit-for-bit.
  bool admission_from_planner = false;
  /// Node to kill mid-session; -1 disables failure injection. Legacy
  /// single-kill knob, merged into `fault_plan` at Run time.
  int kill_node = -1;
  /// Kill once this fraction of `kill_progress_job`'s tasks completed.
  double kill_at_progress = 0.5;
  /// Job whose progress triggers the kill (submission index).
  int kill_progress_job = 0;
  /// Deterministic fault schedule: node kills (with optional revive),
  /// per-(node, block) replica corruption, slow-node factors.
  sim::FaultPlan fault_plan;
  /// Re-replicate lost/corrupt replicas through the maintenance queue
  /// (strictly below foreground work). Opt-in: sessions that inject
  /// faults enable it; corrupt replicas are revoked either way.
  bool self_heal = false;
  /// Launch duplicate attempts for straggling tasks (first completion
  /// wins, deterministically). Opt-in, for plans with slow nodes.
  bool speculative_execution = false;
  /// A running task becomes a speculation candidate once it has been
  /// running longer than this factor times the average completed-task
  /// duration of its job.
  double speculative_lag_factor = 1.5;
  /// Read attempts failing with a retryable error (Unavailable dead
  /// node, Corruption) requeue with capped exponential backoff; at the
  /// cap the job fails cleanly instead of requeueing forever.
  int max_task_attempts = 4;
  double retry_backoff_s = 10.0;
  double retry_backoff_max_s = 60.0;
  /// Feed each completed query to the adaptive manager as it finishes
  /// (instead of only in the session epilogue) so the planner can react —
  /// e.g. add hot-block replicas — while the storm is still running. The
  /// observe/plan round runs as its own deferred event, after both
  /// engines have applied every pending shared-DFS mutation, preserving
  /// serial==parallel.
  bool online_adaptation = false;

  /// When non-null, the session emits spans (session, jobs, tasks, block
  /// reads, index probes, maintenance, repairs, uploads) into this
  /// tracer on the *simulated* clock. Purely observational: billed costs
  /// and every simulated number are bit-identical with tracing on or
  /// off, and the emitted trace is bit-identical between serial and
  /// parallel execution (see obs/trace.h).
  obs::Tracer* tracer = nullptr;
};

/// \brief Per-queue slot usage over one session (fair-share accounting).
struct QueueUsage {
  std::string queue;
  double weight = 1.0;
  /// Completed foreground task attempts / slot-seconds they occupied.
  uint64_t tasks = 0;
  double slot_seconds = 0.0;
  /// Subset assigned while >= 2 queues had pending work — the window
  /// where fair-share entitlement is measurable (bench_scheduler gates on
  /// contended_slot_seconds shares matching queue weights).
  uint64_t contended_tasks = 0;
  double contended_slot_seconds = 0.0;
  // -- per-queue SLO accounting (options.queue_slo_s) --
  /// Latency target; 0 when the queue declared none.
  double slo_target_s = 0.0;
  uint64_t jobs_completed = 0;
  /// Jobs rejected at admission (Status::Overloaded).
  uint64_t jobs_shed = 0;
  /// Completed jobs whose end-to-end latency exceeded the SLO target.
  uint64_t slo_violations = 0;
  /// Nearest-rank percentiles of completed jobs' submit-to-finish
  /// latency; 0 when no job of the queue completed.
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  // -- preemption billing --
  /// Running attempts of this queue preempted for a starved queue, and
  /// the slot-seconds those attempts had consumed when cancelled.
  uint64_t preemptions = 0;
  double preempted_slot_seconds = 0.0;
};

/// \brief Everything one session produced.
struct SessionResult {
  /// Per-job outcome, in submission order. A job can fail (bad input,
  /// failed dependency, upload error) without failing the session.
  std::vector<Result<JobResult>> jobs;
  /// Session makespan: simulated end of the last job (cleanup included);
  /// failed tenants count up to their failure instant.
  double session_seconds = 0.0;
  std::vector<QueueUsage> queues;
  // -- session-wide background maintenance --
  uint32_t maintenance_scheduled = 0;
  uint32_t maintenance_completed = 0;
  uint32_t maintenance_failed = 0;
  /// Maintenance assignments made while foreground work was pending
  /// anywhere. The strict low-priority guarantee says this is always 0;
  /// it is recorded (rather than assumed) so tests/bench can pin it.
  uint64_t maintenance_while_foreground_pending = 0;
  // -- self-healing storage (options.self_heal) --
  uint32_t repairs_scheduled = 0;
  uint32_t repairs_completed = 0;
  /// Repairs dropped because they were no longer needed (node revived
  /// with its replica intact, file deleted) or could never run.
  uint32_t repairs_abandoned = 0;
  /// Lost replicas still waiting for repair when the session ended
  /// (requeued in the namenode for a later session).
  uint64_t under_replicated_remaining = 0;
  // -- task retry / speculative execution --
  uint32_t task_retries = 0;
  uint32_t speculative_attempts = 0;
  /// Speculative attempts that finished before their primaries.
  uint32_t speculative_wins = 0;
  // -- overload hardening (preemption / shedding / SLOs) --
  uint32_t preemptions = 0;
  double preempted_slot_seconds = 0.0;
  uint32_t jobs_shed = 0;
  uint64_t slo_violations_total = 0;
  // -- aggressive replication (maintenance kAddReplica / kEvictReplica) --
  uint32_t replicas_added = 0;
  uint32_t replicas_evicted = 0;
  // -- cost-based planning (spec.use_planner / options.plan_cache) --
  /// Query jobs whose plan carried per-block access decisions.
  uint32_t jobs_planned = 0;
  /// Plan-cache traffic for this session's admissions (0 when no cache).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidations = 0;
  /// kBuildStats maintenance commits (stats sidecar backfills).
  uint32_t stats_backfilled = 0;
};

/// \brief N jobs on one simulated clock and one shared cluster state.
///
/// Usage: construct, Submit jobs (optionally with a submit time and a
/// dependency on an earlier job), Run once. Run resets node resources and
/// revives dead nodes at the session boundary, then drives per-node
/// TaskTracker heartbeats until every job finished and background
/// maintenance drained.
class ClusterSession {
 public:
  explicit ClusterSession(hdfs::MiniDfs* dfs, SessionOptions options = {});

  /// Submits a query job. `submit_time` defers admission on the session
  /// clock; `depends_on` (a previously returned job id) delays admission
  /// until that job completes — its plan then sees the dependency's DFS
  /// effects (e.g. a finished upload). Returns the job id.
  int Submit(JobSpec spec, std::string queue = "default",
             sim::SimTime submit_time = 0.0, int depends_on = -1);

  /// Submits an upload tenant (same queue/deferral semantics).
  int SubmitUpload(UploadJobSpec upload, std::string queue = "default",
                   sim::SimTime submit_time = 0.0, int depends_on = -1);

  size_t job_count() const { return jobs_.size(); }

  /// Runs the whole session to completion. Single use. Session-fatal
  /// errors (reader failure, no alive TaskTrackers, scheduler starvation)
  /// surface here; per-job failures land in SessionResult::jobs.
  Result<SessionResult> Run();

  /// One submitted job as the session engine sees it (internal, exposed
  /// only because the engine's implementation lives in the .cc).
  struct Submitted {
    enum class Kind { kQuery, kUpload };
    Kind kind = Kind::kQuery;
    JobSpec spec;
    UploadJobSpec upload;
    std::string queue;
    sim::SimTime submit_time = 0.0;
    int depends_on = -1;
  };

 private:
  hdfs::MiniDfs* dfs_;
  SessionOptions options_;
  std::vector<Submitted> jobs_;
  bool ran_ = false;
};

}  // namespace mapreduce
}  // namespace hail
