/// \file job.h
/// \brief MapReduce job definitions: HailRecord, map functions, job specs.
///
/// §4.1: Bob writes his job almost as before, with three small changes —
/// the HailInputFormat, a @HailQuery annotation (filter + projection), and
/// a HailRecord input value whose accessors address attributes by their
/// original position. This header is the C++ rendering of that API; stock
/// Hadoop and Hadoop++ jobs use the same JobSpec with a different
/// `system`.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/cost_attribution.h"
#include "obs/explain.h"
#include "query/predicate.h"
#include "schema/schema.h"
#include "schema/value.h"

namespace hail {
namespace mapreduce {

/// \brief The record handed to a map function.
///
/// Carries either projected attributes (HAIL with a projection), the full
/// row, or — for bad records — the raw text plus a flag ("the HailRecord
/// provides a flag to indicate bad records", §4.3).
class HailRecord {
 public:
  HailRecord() = default;

  static HailRecord FullRow(std::vector<Value> values) {
    HailRecord r;
    r.values_ = std::move(values);
    return r;
  }
  static HailRecord Projected(std::vector<int> attrs,
                              std::vector<Value> values) {
    HailRecord r;
    r.attrs_ = std::move(attrs);
    r.values_ = std::move(values);
    return r;
  }
  static HailRecord BadRecord(std::string raw) {
    HailRecord r;
    r.bad_ = true;
    r.raw_ = std::move(raw);
    return r;
  }

  bool bad() const { return bad_; }
  const std::string& raw() const { return raw_; }

  /// Attribute access by 1-based original position, mirroring the paper's
  /// `v.getInt(1)`. Works for both full and projected records.
  const Value& Get(int attr_position) const;
  int64_t GetInt(int attr_position) const;
  double GetDouble(int attr_position) const;
  const std::string& GetString(int attr_position) const;

  /// Values in projection (or schema) order.
  const std::vector<Value>& values() const { return values_; }
  /// 0-based attribute indexes of values(); empty = full row.
  const std::vector<int>& attrs() const { return attrs_; }

 private:
  std::vector<Value> values_;
  std::vector<int> attrs_;
  bool bad_ = false;
  std::string raw_;
};

/// \brief Collects map-function output.
class MapOutput {
 public:
  explicit MapOutput(bool collect) : collect_(collect) {}

  void Emit(std::string row) {
    ++count_;
    if (collect_) rows_.push_back(std::move(row));
  }

  uint64_t count() const { return count_; }
  std::vector<std::string>& rows() { return rows_; }
  const std::vector<std::string>& rows() const { return rows_; }

 private:
  bool collect_;
  uint64_t count_ = 0;
  std::vector<std::string> rows_;
};

using MapFn = std::function<void(const HailRecord&, MapOutput*)>;

/// \brief Which stack executes the job.
enum class System {
  kHadoop,    // text blocks, full scan
  kHadoopPP,  // Hadoop++: binary rows + trojan index (per logical block)
  kHail,      // HAIL: PAX + per-replica clustered indexes
};

std::string_view SystemName(System system);

/// \brief A MapReduce job (map-only, like all of the paper's queries).
struct JobSpec {
  std::string name;
  std::string input_file;
  Schema schema;
  System system = System::kHadoop;

  /// The @HailQuery annotation. For kHadoop the filter is evaluated inside
  /// the map wrapper (Bob's hand-written string-splitting filter); for
  /// kHail/kHadoopPP it drives index selection and post-filtering.
  std::optional<QueryAnnotation> annotation;

  /// User map function; when empty, a default function emits the projected
  /// attributes as a delimited row (used by the equivalence tests).
  MapFn map;

  /// HailSplitting (§4.3): pack many blocks into one split for index-scan
  /// jobs. Disabled in §6.4's experiments, enabled in §6.5's.
  bool hail_splitting = false;

  /// Cost-based access-path planning (planner/access_planner.h): choose a
  /// path per block from upload-time statistics and skip blocks whose
  /// zone map is disjoint from the filter. Off by default: unplanned jobs
  /// execute bit-identically to before the planner existed.
  bool use_planner = false;

  /// Store emitted rows in the JobResult (tests) or only count (benches).
  bool collect_output = false;
};

/// \brief Per-job outcome + the measurements the paper reports.
struct JobResult {
  std::string job_name;
  /// Fig 6(a)/7(a)/9: end-to-end job runtime, seconds.
  double end_to_end_seconds = 0.0;
  /// Fig 6(b)/7(b): average RecordReader time per map task, seconds.
  double avg_record_reader_seconds = 0.0;
  /// Fig 6(c)/7(c): T_ideal = #MapTasks/#ParallelMapTasks * Avg(T_RR).
  double ideal_seconds = 0.0;
  /// T_overhead = T_end-to-end - T_ideal.
  double overhead_seconds = 0.0;

  uint32_t map_tasks = 0;
  uint32_t rescheduled_tasks = 0;
  /// HAIL tasks that could not find a matching index and fell back to a
  /// full scan (failover path, §2.2).
  uint32_t fallback_scans = 0;
  /// Tasks that read at least one block through a clustered/trojan index
  /// scan (the adaptive loop's per-task access-path signal).
  uint32_t index_scan_tasks = 0;
  /// Tasks served by an adaptive per-block unclustered index.
  uint32_t unclustered_scan_tasks = 0;

  // -- background maintenance (adaptive reorganization) piggybacked on
  // this job's idle slots --
  uint32_t maintenance_scheduled = 0;
  uint32_t maintenance_completed = 0;
  uint32_t maintenance_failed = 0;

  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t output_count = 0;
  uint64_t bad_records_seen = 0;
  std::vector<std::string> output_rows;  // populated when collect_output

  // -- observability (obs/): cost attribution + EXPLAIN inputs --
  /// Per-bucket breakdown of every cost this job was billed: the winning
  /// attempts' reader costs plus engine-level waste (preempted slot time,
  /// speculative losers). Buckets sum exactly to `cost.total_nanos`; the
  /// companion double `billed_cost_seconds` tracks it within rounding.
  obs::CostLedger cost;
  double billed_cost_seconds = 0.0;
  /// Index/sort column the job plan keyed on (-1 = full scan plan).
  int index_column = -1;
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
  uint64_t rows_skipped = 0;

  // -- cost-based planning (JobSpec::use_planner) --
  /// True when the access-path planner produced this job's plan.
  bool planned = false;
  /// Planner-predicted billed cost (sum of per-block estimates), seconds.
  double predicted_cost_seconds = 0.0;
  /// Blocks never read because their zone map was disjoint from the
  /// filter (subset of blocks_skipped).
  uint64_t zone_skipped_blocks = 0;
  /// Filled when RunOptions::profile is set (single-job runner path).
  std::optional<obs::QueryProfile> profile;
};

}  // namespace mapreduce
}  // namespace hail
