#include "mapreduce/record_reader.h"

namespace hail {
namespace mapreduce {

std::unique_ptr<RecordReader> MakeTextRecordReader();
std::unique_ptr<RecordReader> MakeHailRecordReader();
std::unique_ptr<RecordReader> MakeTrojanRecordReader();

std::unique_ptr<RecordReader> MakeRecordReader(System system) {
  switch (system) {
    case System::kHadoop:
      return MakeTextRecordReader();
    case System::kHail:
      return MakeHailRecordReader();
    case System::kHadoopPP:
      return MakeTrojanRecordReader();
  }
  return nullptr;
}

}  // namespace mapreduce
}  // namespace hail
