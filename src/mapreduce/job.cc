#include "mapreduce/job.h"

#include <cassert>
#include <stdexcept>

namespace hail {
namespace mapreduce {

namespace {
const Value& LookupAttr(const std::vector<Value>& values,
                        const std::vector<int>& attrs, int attr_position) {
  const int idx = attr_position - 1;  // 1-based like the paper's getInt(1)
  if (attrs.empty()) {
    return values.at(static_cast<size_t>(idx));
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == idx) return values[i];
  }
  throw std::out_of_range("attribute @" + std::to_string(attr_position) +
                          " not in projection");
}
}  // namespace

const Value& HailRecord::Get(int attr_position) const {
  return LookupAttr(values_, attrs_, attr_position);
}

int64_t HailRecord::GetInt(int attr_position) const {
  const Value& v = Get(attr_position);
  return v.is_int32() ? v.as_int32() : v.as_int64();
}

double HailRecord::GetDouble(int attr_position) const {
  return Get(attr_position).AsNumeric();
}

const std::string& HailRecord::GetString(int attr_position) const {
  return Get(attr_position).as_string();
}

std::string_view SystemName(System system) {
  switch (system) {
    case System::kHadoop:
      return "Hadoop";
    case System::kHadoopPP:
      return "Hadoop++";
    case System::kHail:
      return "HAIL";
  }
  return "?";
}

}  // namespace mapreduce
}  // namespace hail
