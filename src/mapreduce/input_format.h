/// \file input_format.h
/// \brief Split computation: default Hadoop policy vs HailSplitting (§4.3).
///
/// Default: one input split per HDFS block, located at the block's
/// replica holders. HailSplitting: for index-scan jobs, cluster blocks by
/// the node holding their matching-index replica, then create as many
/// splits per node as it has map slots — collapsing thousands of map
/// tasks into (#nodes x #slots), which §6.5 shows is worth up to 68x.

#pragma once

#include <cstdint>
#include <vector>

#include "hdfs/dfs_client.h"
#include "mapreduce/job.h"
#include "planner/access_path.h"

namespace hail {
namespace mapreduce {

/// \brief One unit of map-task input.
struct InputSplit {
  /// Block ids this split covers (1 for default splitting, many for
  /// HailSplitting).
  std::vector<uint64_t> blocks;
  /// Position of each block within the file (text boundary handling).
  std::vector<uint32_t> block_indexes;
  /// Nodes the scheduler should prefer (replica holders, or the node
  /// with the matching index under HAIL scheduling).
  std::vector<int> preferred_nodes;
  uint64_t logical_bytes = 0;
};

/// \brief Splits plus everything a reader needs about the file.
struct JobPlan {
  std::vector<InputSplit> splits;
  /// All blocks of the input file in order (readers chase row tails across
  /// block boundaries; the engine resolves next-block ids from here).
  std::vector<hdfs::BlockLocation> file_blocks;
  /// Simulated cost of the split phase itself, billed before scheduling
  /// starts (Hadoop++ pays per-block header reads here).
  double split_phase_seconds = 0.0;
  /// Index column the job will use, -1 for full scans.
  int index_column = -1;

  // -- cost-based planning (spec.use_planner; see planner/access_planner.h)
  /// True when the access-path planner ran for this job.
  bool planned = false;
  /// One decision per file_blocks entry (same order); empty when not
  /// planned. Readers index it by a split's block_indexes.
  std::vector<planner::AccessDecision> decisions;
  /// Per-block planning CPU (constants().planner_block_plan_us × blocks).
  /// Not folded into split_phase_seconds: a plan-cache hit re-uses the
  /// plan without re-paying it.
  double planner_seconds = 0.0;
  /// Sum of the per-block cost estimates (the admission/observer signal).
  double predicted_cost_seconds = 0.0;
  /// Blocks the zone maps proved empty (binding skips).
  uint64_t planner_blocks_skipped = 0;
  /// Blocks planned from fresh statistics.
  uint64_t planner_fresh_stats_blocks = 0;
};

/// Computes the plan for a job: default splitting for full scans and for
/// kHadoop/kHadoopPP; HailSplitting for kHail jobs with
/// spec.hail_splitting and an index-serviceable filter.
Result<JobPlan> ComputeJobPlan(hdfs::MiniDfs* dfs, const JobSpec& spec);

}  // namespace mapreduce
}  // namespace hail
