#include <algorithm>

#include "hail/hail_block.h"
#include "mapreduce/cached_block.h"
#include "mapreduce/record_reader.h"
#include "planner/access_path.h"
#include "query/vectorized.h"

namespace hail {
namespace mapreduce {

namespace {

/// \brief Once-per-block-version decode state shared across tasks and
/// queries via the cluster BlockCache: parsed HAIL layout, opened PAX
/// view, and the lazily deserialised clustered index (§4.3 reads it
/// "entirely into main memory" — once, not once per task).
struct CachedHailBlock : CachedIndexedBlock<HailBlockView, ClusteredIndex> {
  PaxBlockView pax;

  /// Lazily deserialises the adaptive unclustered index (same protocol as
  /// the clustered Index(): decode once, count once, cache the error too).
  Result<const UnclusteredIndex*> Unclustered(hdfs::BlockCache* cache) const {
    std::lock_guard<std::mutex> lock(uc_mu_);
    if (!uc_ready_) {
      uc_ready_ = true;
      cache->NoteIndexDecode();
      Result<UnclusteredIndex> decoded = view.ReadUnclusteredIndex();
      if (decoded.ok()) {
        uc_.emplace(std::move(*decoded));
      } else {
        uc_status_ = decoded.status();
      }
    }
    HAIL_RETURN_NOT_OK(uc_status_);
    return &*uc_;
  }

 private:
  mutable std::mutex uc_mu_;
  mutable bool uc_ready_ = false;
  mutable Status uc_status_;
  mutable std::optional<UnclusteredIndex> uc_;
};

/// Opens (or retrieves) the decoded block state for one replica.
Result<std::shared_ptr<const CachedHailBlock>> OpenCachedHailBlock(
    const ReadContext& ctx, int dn, uint64_t block_id,
    std::string_view bytes) {
  return OpenCachedArtifact<CachedHailBlock>(
      ctx, dn, block_id,
      [&]() -> Result<std::shared_ptr<const hdfs::BlockArtifact>> {
        auto cached = std::make_shared<CachedHailBlock>();
        HAIL_ASSIGN_OR_RETURN(cached->view, HailBlockView::Open(bytes));
        HAIL_ASSIGN_OR_RETURN(cached->pax, cached->view.OpenPax());
        return std::shared_ptr<const hdfs::BlockArtifact>(std::move(cached));
      });
}

/// \brief One projected column's typed batch accessor, opened once per
/// block so tuple reconstruction never goes through the per-value
/// GetAnyValue dispatch (and string columns decode sequentially instead of
/// re-scanning their partition per access).
struct ProjectedColumn {
  FieldType type = FieldType::kInt32;
  MiniPageEncoding enc = MiniPageEncoding::kPlain;
  ColumnSpan<int32_t> i32;
  ColumnSpan<int64_t> i64;
  ColumnSpan<double> f64;
  VarlenCursor varlen;
  // Encoded minipages (format v3): qualifying rows decode here, one value
  // at a time — the scan itself ran on the encoded form.
  ForSpan forspan;
  RleSpan<int32_t> rle_i32;
  RleSpan<int64_t> rle_i64;
  RleSpan<double> rle_f64;
  DictSpan dict;
  uint32_t rle_run = 0;  // sequential run cursor (selections are ascending)
};

Result<ProjectedColumn> OpenProjectedColumn(const PaxBlockView& pax,
                                            int column) {
  if (column < 0 || column >= pax.num_columns()) {
    return Status::InvalidArgument("projection references attribute @" +
                                   std::to_string(column + 1) +
                                   " outside the block");
  }
  ProjectedColumn out;
  out.type = pax.schema().field(column).type;
  out.enc = pax.column_encoding(column);
  switch (out.enc) {
    case MiniPageEncoding::kFor: {
      HAIL_ASSIGN_OR_RETURN(out.forspan, pax.ForSpanOf(column));
      return out;
    }
    case MiniPageEncoding::kRle: {
      switch (out.type) {
        case FieldType::kInt32:
        case FieldType::kDate: {
          HAIL_ASSIGN_OR_RETURN(out.rle_i32, pax.RleInt32Span(column));
          break;
        }
        case FieldType::kInt64: {
          HAIL_ASSIGN_OR_RETURN(out.rle_i64, pax.RleInt64Span(column));
          break;
        }
        default: {
          HAIL_ASSIGN_OR_RETURN(out.rle_f64, pax.RleDoubleSpan(column));
          break;
        }
      }
      return out;
    }
    case MiniPageEncoding::kDict: {
      HAIL_ASSIGN_OR_RETURN(out.dict, pax.DictSpanOf(column));
      return out;
    }
    case MiniPageEncoding::kPlain:
      break;
  }
  switch (out.type) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      HAIL_ASSIGN_OR_RETURN(out.i32, pax.Int32Span(column));
      break;
    }
    case FieldType::kInt64: {
      HAIL_ASSIGN_OR_RETURN(out.i64, pax.Int64Span(column));
      break;
    }
    case FieldType::kDouble: {
      HAIL_ASSIGN_OR_RETURN(out.f64, pax.DoubleSpan(column));
      break;
    }
    case FieldType::kString: {
      HAIL_ASSIGN_OR_RETURN(out.varlen, pax.OpenVarlenCursor(column));
      break;
    }
  }
  return out;
}

/// Run-cursor access: ascending rows advance the remembered run index in
/// amortised O(1); a backward jump (new block range) re-seeks via the
/// branchless binary search.
template <typename T>
T RleAt(const RleSpan<T>& span, uint32_t* run, uint32_t row) {
  if (row < span.run_start(*run)) *run = span.RunContaining(row);
  while (span.run_end(*run) <= row) ++*run;
  return span.run_value(*run);
}

Result<Value> ReadProjectedValue(ProjectedColumn* col, uint32_t row) {
  switch (col->enc) {
    case MiniPageEncoding::kFor: {
      const int64_t v = col->forspan.Value(row);
      return col->type == FieldType::kInt64
                 ? Value(v)
                 : Value(static_cast<int32_t>(v));
    }
    case MiniPageEncoding::kRle:
      switch (col->type) {
        case FieldType::kInt32:
        case FieldType::kDate:
          return Value(RleAt(col->rle_i32, &col->rle_run, row));
        case FieldType::kInt64:
          return Value(RleAt(col->rle_i64, &col->rle_run, row));
        default:
          return Value(RleAt(col->rle_f64, &col->rle_run, row));
      }
    case MiniPageEncoding::kDict:
      return Value(std::string(col->dict.Value(row)));
    case MiniPageEncoding::kPlain:
      break;
  }
  switch (col->type) {
    case FieldType::kInt32:
    case FieldType::kDate:
      return Value(col->i32[row]);
    case FieldType::kInt64:
      return Value(col->i64[row]);
    case FieldType::kDouble:
      return Value(col->f64[row]);
    case FieldType::kString: {
      HAIL_ASSIGN_OR_RETURN(std::string_view s, col->varlen.Get(row));
      return Value(std::string(s));
    }
  }
  return Status::Corruption("unknown column type");
}

/// \brief HAIL RecordReader (§4.3): index scan + vectorized post-filter +
/// PAX->row tuple reconstruction; falls back to a full scan of a PAX
/// replica when no suitable index is alive.
///
/// The read path is index-range -> batched column filter (typed kernels
/// over zero-copy minipage spans) -> selection vector -> tuple
/// reconstruction only for qualifying rows.
class HailRecordReader : public RecordReader {
 public:
  Result<TaskCost> ReadSplit(const InputSplit& split,
                             ReadContext* ctx) override {
    TaskCost cost;
    for (size_t b = 0; b < split.blocks.size(); ++b) {
      HAIL_RETURN_NOT_OK(
          ReadOneBlock(split.block_indexes[b], ctx, &cost));
    }
    return cost;
  }

 private:
  Status ReadOneBlock(uint32_t block_index, ReadContext* ctx,
                      TaskCost* cost) {
    const hdfs::BlockLocation& loc = ctx->plan->file_blocks[block_index];
    const hdfs::DfsConfig& cfg = ctx->dfs->config();
    const int index_column = ctx->plan->index_column;

    // Per-block access decision from the cost-based planner (empty vector
    // when the job was not planned). kSkipZoneMap is binding: the stats
    // proved no row qualifies and the block holds no bad records, so it
    // is never opened and bills nothing — the planning CPU was already
    // paid in the split phase.
    const planner::AccessDecision* decision =
        block_index < ctx->plan->decisions.size()
            ? &ctx->plan->decisions[block_index]
            : nullptr;
    if (decision != nullptr &&
        decision->path == planner::AccessPath::kSkipZoneMap) {
      ++ctx->blocks_skipped;
      ++ctx->zone_skipped_blocks;
      ctx->rows_skipped += decision->block_records;
      if (ctx->trace != nullptr) {
        const size_t span =
            ctx->trace->Open("block_skip", "read", cost->total());
        ctx->trace->Attr(span, "block", loc.block_id);
        ctx->trace->Attr(span, "reason", "zone_map");
        ctx->trace->Attr(span, "rows",
                         static_cast<uint64_t>(decision->block_records));
        ctx->trace->Close(span, cost->total());
      }
      return Status::OK();
    }

    const size_t bspan =
        ctx->trace != nullptr
            ? ctx->trace->Open("block_read", "read", cost->total())
            : 0;

    // Replica choice via getHostsWithIndex (§4.3): prefer the local node,
    // then any node whose replica has the matching clustered index. When
    // no clustered replica matches, probe for an adaptive *unclustered*
    // index on the filter column (installed online by the reorganizer)
    // before falling back to a full scan. All eligible replicas form one
    // ordered failover list (indexed > unclustered > plain, local first
    // within each class): a dead or corrupt replica costs a wasted
    // attempt, not the task.
    const std::optional<KeyRange> key_range =
        (index_column >= 0 && ctx->spec->annotation.has_value())
            ? ctx->spec->annotation->filter.KeyRangeFor(index_column)
            : std::nullopt;
    enum : uint8_t { kIndexed = 0, kUnclustered = 1, kPlain = 2 };
    std::vector<int> candidates;
    std::vector<uint8_t> klass;
    auto add_hosts = [&](const std::vector<int>& hosts, uint8_t k) {
      auto add_one = [&](int h) {
        if (std::find(candidates.begin(), candidates.end(), h) ==
            candidates.end()) {
          candidates.push_back(h);
          klass.push_back(k);
        }
      };
      for (int h : hosts) {
        if (h == ctx->task_node) add_one(h);
      }
      for (int h : hosts) add_one(h);
    };
    // A planned full scan (fresh stats predicted an unclustered probe
    // would be abandoned, or no index exists) goes straight to the plain
    // replicas: no dense-index read is wasted before the inevitable pass.
    // Advisory only — with a clustered replica alive the planner never
    // chooses kFullScan, and missing stats leave the dynamic path intact.
    const bool planned_scan = decision != nullptr && decision->stats_fresh &&
                              decision->path == planner::AccessPath::kFullScan;
    if (index_column >= 0 && !planned_scan) {
      add_hosts(ctx->dfs->namenode().GetHostsWithIndex(loc.block_id,
                                                       index_column),
                kIndexed);
      if (key_range.has_value()) {
        add_hosts(ctx->dfs->namenode().GetHostsWithUnclusteredIndex(
                      loc.block_id, index_column),
                  kUnclustered);
      }
    }
    add_hosts(loc.datanodes, kPlain);

    std::string_view bytes;
    HAIL_ASSIGN_OR_RETURN(
        size_t winner,
        ReadReplicaWithFailover(ctx, loc.block_id, loc.logical_bytes,
                                candidates, cost, &bytes));
    const int dn = candidates[winner];
    const bool indexed = klass[winner] == kIndexed;
    const bool unclustered = klass[winner] == kUnclustered;
    if (klass[winner] == kPlain && index_column >= 0) {
      ctx->fallback_scan = true;
    }
    HAIL_ASSIGN_OR_RETURN(std::shared_ptr<const CachedHailBlock> cached,
                          OpenCachedHailBlock(*ctx, dn, loc.block_id, bytes));
    const HailBlockView& view = cached->view;
    const PaxBlockView& pax = cached->pax;

    const double scale = cfg.scale_factor;
    const uint64_t logical_records = static_cast<uint64_t>(
        static_cast<double>(pax.num_records()) * scale);
    const sim::CostModel& node_cost =
        ctx->dfs->cluster().node(ctx->task_node).cost();
    const sim::CostModel& disk_cost = ctx->dfs->cluster().node(dn).cost();
    const sim::CostConstants& c = ctx->dfs->cluster().constants();

    // Columns the task touches: filter columns + projection (all when no
    // projection was annotated, §4.3).
    std::vector<int> proj;
    if (ctx->spec->annotation.has_value() &&
        !ctx->spec->annotation->projection.empty()) {
      proj = ctx->spec->annotation->projection;
    } else {
      for (int i = 0; i < pax.num_columns(); ++i) proj.push_back(i);
    }
    std::vector<int> filter_cols;
    if (ctx->spec->annotation.has_value()) {
      filter_cols = ctx->spec->annotation->filter.ReferencedColumns();
    }

    RowRange range{0, pax.num_records()};
    bool index_scan = false;
    bool uc_scan = false;
    bool uc_abandoned = false;  // probe paid for, then found unselective
    uint64_t uc_candidates = 0;  // rows the unclustered index yielded
    SelectionVector selection;
    bool use_selection = false;
    if (indexed && view.has_index() && view.sort_column() == index_column &&
        key_range.has_value()) {
      // "We read the index entirely into main memory (typically a few
      // KB) to perform an index lookup." — decoded once per block
      // version, shared across tasks and queries.
      HAIL_ASSIGN_OR_RETURN(const ClusteredIndex* index,
                            cached->Index(&ctx->dfs->block_cache()));
      range = index->Lookup(*key_range);
      index_scan = true;
      if (ctx->trace != nullptr) {
        const size_t probe =
            ctx->trace->Open("index_probe", "index", cost->total());
        ctx->trace->Attr(probe, "kind", "clustered");
        ctx->trace->Attr(probe, "column", index_column);
        ctx->trace->Attr(probe, "rows", static_cast<uint64_t>(range.size()));
        ctx->trace->Close(probe, cost->total());
      }
    } else if (unclustered && view.unclustered_column() == index_column &&
               key_range.has_value()) {
      // Adaptive unclustered path (§3.5 semantics): the dense index yields
      // the exact qualifying row ids for the key column, in key order —
      // i.e. random block order, each hit its own random access. Sort them
      // ascending so reconstruction cursors stay sequential.
      HAIL_ASSIGN_OR_RETURN(const UnclusteredIndex* uc,
                            cached->Unclustered(&ctx->dfs->block_cache()));
      std::vector<uint32_t> candidates = uc->Lookup(*key_range);
      if (static_cast<double>(candidates.size()) >
          c.unclustered_max_selectivity *
              static_cast<double>(pax.num_records())) {
        // Too many hits: the random accesses would cost more than one
        // sequential pass. Scan instead — billed as index read + full
        // scan, and reported as a fallback so the planner's regret keeps
        // pushing toward a real re-sort.
        uc_abandoned = true;
        ctx->fallback_scan = true;
      } else {
        std::sort(candidates.begin(), candidates.end());
        uc_candidates = candidates.size();
        selection.mutable_rows() = std::move(candidates);
        uc_scan = true;
        use_selection = true;
      }
      if (ctx->trace != nullptr) {
        const size_t probe =
            ctx->trace->Open("index_probe", "index", cost->total());
        ctx->trace->Attr(probe, "kind", "unclustered");
        ctx->trace->Attr(probe, "column", index_column);
        ctx->trace->Attr(probe, "rows", uc_candidates);
        if (uc_abandoned) ctx->trace->Attr(probe, "abandoned", 1);
        ctx->trace->Close(probe, cost->total());
      }
    }

    // ---- functional: batched column filter -> selection vector ----
    const Predicate* filter = ctx->spec->annotation.has_value()
                                  ? &ctx->spec->annotation->filter
                                  : nullptr;
    const bool has_filter = filter != nullptr && !filter->empty();
    const uint32_t clamped_end = std::min(range.end, pax.num_records());
    if (has_filter) {
      HAIL_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                            CompiledPredicate::Compile(*filter, pax.schema()));
      if (uc_scan) {
        // Every term is conservatively re-applied to the candidate rows —
        // including the key-range terms the index already satisfied
        // (redundant but O(candidates), and it keeps the probe correct if
        // an index ever returns a superset).
        HAIL_RETURN_NOT_OK(compiled.RefineCandidates(pax, &selection));
      } else {
        HAIL_RETURN_NOT_OK(compiled.FilterBlock(pax, range, &selection));
        use_selection = true;
      }
    }
    // Without a filter every row of the range qualifies; iterate it
    // directly rather than materialising a dense selection vector.
    const uint64_t qualifying =
        use_selection ? selection.size()
                      : (clamped_end > range.begin ? clamped_end - range.begin
                                                   : 0);

    // Tuple reconstruction of the projected attributes (§4.3), only for
    // qualifying rows: typed spans for fixed columns, one sequential
    // varlen cursor per projected string column (selection vectors are
    // ascending, so each string partition is decoded at most once).
    if (qualifying > 0) {
      std::vector<ProjectedColumn> accessors;
      accessors.reserve(proj.size());
      for (int colm : proj) {
        HAIL_ASSIGN_OR_RETURN(ProjectedColumn accessor,
                              OpenProjectedColumn(pax, colm));
        accessors.push_back(std::move(accessor));
      }
      for (uint64_t i = 0; i < qualifying; ++i) {
        const uint32_t r = use_selection
                               ? selection[static_cast<size_t>(i)]
                               : range.begin + static_cast<uint32_t>(i);
        std::vector<Value> values;
        values.reserve(proj.size());
        for (ProjectedColumn& accessor : accessors) {
          HAIL_ASSIGN_OR_RETURN(Value v, ReadProjectedValue(&accessor, r));
          values.push_back(std::move(v));
        }
        InvokeMap(*ctx, HailRecord::Projected(proj, std::move(values)),
                  /*already_filtered=*/true);
      }
    }
    // Bad records are handed to the map function with a flag (§4.3);
    // the cursor walks the bad section once instead of O(n^2) re-skips.
    HAIL_ASSIGN_OR_RETURN(BadRecordCursor bad, pax.OpenBadRecords());
    while (!bad.Done()) {
      HAIL_ASSIGN_OR_RETURN(std::string_view raw, bad.Next());
      InvokeMap(*ctx, HailRecord::BadRecord(std::string(raw)),
                /*already_filtered=*/true);
      ++ctx->bad_records;
    }
    ctx->records_seen += uc_scan ? uc_candidates : range.size();
    ctx->records_qualifying += qualifying;
    if (index_scan) ctx->index_scan = true;
    if (uc_scan) ctx->unclustered_scan = true;
    const uint64_t rows_touched = uc_scan ? uc_candidates : range.size();
    if ((index_scan || uc_scan) && rows_touched == 0) {
      ++ctx->blocks_skipped;
    } else {
      ++ctx->blocks_scanned;
    }
    if (index_scan || uc_scan) {
      ctx->rows_skipped += pax.num_records() - rows_touched;
    }

    // ---- cost ----
    const double fraction =
        pax.num_records() == 0
            ? 0.0
            : static_cast<double>(range.size()) /
                  static_cast<double>(pax.num_records());
    // Records the CPU actually looked at: the index range for (full/index)
    // scans, only the index's candidate rows for unclustered probes.
    const uint64_t logical_range_records = static_cast<uint64_t>(
        static_cast<double>(uc_scan ? uc_candidates : range.size()) * scale);
    const uint64_t logical_qualifying = static_cast<uint64_t>(
        static_cast<double>(qualifying) * scale);

    // Columns the scan touches beyond the index itself.
    std::vector<int> accessed_cols = filter_cols;
    for (int colm : proj) {
      if (std::find(accessed_cols.begin(), accessed_cols.end(), colm) ==
          accessed_cols.end()) {
        accessed_cols.push_back(colm);
      }
    }

    uint64_t bytes_read = 0;
    int column_seeks = 0;
    if (uc_scan) {
      // §3.5's unclustered economics: the dense index (one key+rowid entry
      // per record) is read in full, then every qualifying record costs a
      // random partition-granular access per touched column. Pays off only
      // for very selective queries — exactly the paper's argument.
      bytes_read += LogicalDenseIndexBytes(
          logical_records, pax.schema().field(index_column).type);
      column_seeks += 1;
      const uint64_t logical_candidates = static_cast<uint64_t>(
          static_cast<double>(uc_candidates) * scale);
      const uint64_t logical_partitions =
          logical_records / c.index_partition_logical + 1;
      // Candidates land in random partitions; with n candidates over P
      // partitions at most min(n, P) distinct partitions are touched.
      const uint64_t partitions_touched =
          std::min<uint64_t>(logical_candidates, logical_partitions);
      for (int colm : accessed_cols) {
        const uint64_t col_logical = static_cast<uint64_t>(
            static_cast<double>(pax.column_value_bytes(colm)) * scale);
        bytes_read += partitions_touched * (col_logical / logical_partitions);
        column_seeks += static_cast<int>(partitions_touched);
      }
    } else if (index_scan) {
      // Header + index root: read in full, a few KB at paper scale.
      bytes_read += LogicalSparseIndexBytes(
          logical_records, c.index_partition_logical,
          pax.schema().field(index_column).type, /*pointer_bytes=*/4);
      column_seeks += 1;
      if (!range.empty()) {
        for (int colm : accessed_cols) {
          const uint64_t col_logical = static_cast<uint64_t>(
              static_cast<double>(pax.column_value_bytes(colm)) * scale);
          bytes_read +=
              static_cast<uint64_t>(fraction * static_cast<double>(col_logical));
          column_seeks += 1;  // each minipage slice is a separate extent
        }
      }
    } else {
      // Full scan of the PAX replica: every minipage, one pass. Billed on
      // values-only bytes (the real offset side-cars are scaled-down
      // dense; at paper scale they are negligible).
      uint64_t value_bytes = 0;
      for (int colm = 0; colm < pax.num_columns(); ++colm) {
        value_bytes += pax.column_value_bytes(colm);
      }
      bytes_read =
          static_cast<uint64_t>(static_cast<double>(value_bytes) * scale);
      column_seeks = 1;
      if (uc_abandoned) {
        // The probe read the dense index before deciding to scan.
        bytes_read += LogicalDenseIndexBytes(
            logical_records, pax.schema().field(index_column).type);
        column_seeks += 1;
      }
    }

    const double seek_s =
        c.block_open_ms / 1000.0 + column_seeks * disk_cost.DiskSeek();
    const double transfer_s = disk_cost.DiskTransfer(bytes_read);
    cost->disk_seconds += seek_s + transfer_s;
    cost->ledger.Bill(obs::CostBucket::kSeek, seek_s);
    cost->ledger.Bill(obs::CostBucket::kTransfer, transfer_s);
    const double cpu_s = node_cost.Crc(bytes_read) +
                         node_cost.PredicateEval(logical_range_records) +
                         node_cost.Reconstruct(logical_qualifying,
                                               static_cast<int>(proj.size())) +
                         node_cost.MapCalls(logical_qualifying);
    cost->cpu_seconds += cpu_s;
    cost->ledger.Bill(obs::CostBucket::kCpu, cpu_s);
    // Scan-on-compressed (format v3): the filter ran on the encoded form,
    // so only qualifying rows pay the per-value decode, once per encoded
    // projected column. Zero for v1/v2 blocks (every column reads kPlain).
    uint64_t encoded_projected = 0;
    for (int colm : proj) {
      if (pax.column_encoding(colm) != MiniPageEncoding::kPlain) {
        ++encoded_projected;
      }
    }
    if (encoded_projected > 0) {
      const double decode_s =
          node_cost.DecodeValues(logical_qualifying * encoded_projected);
      cost->cpu_seconds += decode_s;
      cost->ledger.Bill(obs::CostBucket::kDecode, decode_s);
    }
    if (!index_scan && !uc_scan) {
      // Full scans decode every record, not just qualifying ones.
      const double scan_cpu_s =
          node_cost.Reconstruct(logical_range_records, pax.num_columns());
      cost->cpu_seconds += scan_cpu_s;
      cost->ledger.Bill(obs::CostBucket::kCpu, scan_cpu_s);
    }
    if (dn != ctx->task_node) {
      const double net_s = node_cost.NetTransfer(bytes_read);
      cost->net_seconds += net_s;
      cost->ledger.Bill(obs::CostBucket::kNetwork, net_s);
    }
    cost->logical_bytes_read += bytes_read;
    if (ctx->trace != nullptr) {
      ctx->trace->Attr(bspan, "block", loc.block_id);
      ctx->trace->Attr(bspan, "datanode", dn);
      ctx->trace->Attr(bspan, "generation",
                       ctx->dfs->datanode(dn).block_generation(loc.block_id));
      ctx->trace->Attr(bspan, "replica",
                       indexed ? "clustered"
                               : (unclustered ? "unclustered" : "plain"));
      ctx->trace->Attr(bspan, "bytes", bytes_read);
      ctx->trace->Attr(bspan, "rows", rows_touched);
      ctx->trace->Attr(bspan, "qualifying", qualifying);
      ctx->trace->Close(bspan, cost->total());
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<RecordReader> MakeHailRecordReader() {
  return std::make_unique<HailRecordReader>();
}

}  // namespace mapreduce
}  // namespace hail
