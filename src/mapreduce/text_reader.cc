#include "mapreduce/record_reader.h"
#include "schema/row_parser.h"

namespace hail {
namespace mapreduce {

namespace {

/// Replica order to try: local first ("it is the local HDFS client ...
/// that decides from which datanode a map task will read", §4.2), then
/// the remaining alive holders — failover walks this list.
std::vector<int> ReplicaOrder(const std::vector<int>& holders,
                              int task_node) {
  std::vector<int> order;
  order.reserve(holders.size());
  for (int dn : holders) {
    if (dn == task_node) order.push_back(dn);
  }
  for (int dn : holders) {
    if (dn != task_node) order.push_back(dn);
  }
  return order;
}

/// Clears the context's row-matcher pointer on every exit path so it never
/// dangles into reader-local state.
class RowMatcherScope {
 public:
  explicit RowMatcherScope(ReadContext* ctx) : ctx_(ctx) {}
  ~RowMatcherScope() { ctx_->row_matcher = nullptr; }

 private:
  ReadContext* ctx_;
};

/// \brief Stock Hadoop: full scan over text blocks.
///
/// Reproduces LineRecordReader's boundary rules in the "line belongs to
/// the split containing its first byte" formulation: a reader skips a
/// partial first line (the previous block's reader finishes it) and reads
/// past its block's end to complete its own last line.
class TextRecordReader : public RecordReader {
 public:
  Result<TaskCost> ReadSplit(const InputSplit& split,
                             ReadContext* ctx) override {
    TaskCost cost;
    RowParser parser(ctx->spec->schema);
    // Compile the annotation filter once per split; InvokeMap then skips
    // the per-row, per-term type dispatch of Predicate::Matches. A filter
    // that cannot be compiled against the schema fails the split, same as
    // the HAIL reader.
    CompiledPredicate matcher;
    RowMatcherScope scope(ctx);
    if (ctx->spec->annotation.has_value() &&
        ctx->spec->annotation->has_filter()) {
      HAIL_ASSIGN_OR_RETURN(
          matcher, CompiledPredicate::Compile(ctx->spec->annotation->filter,
                                              ctx->spec->schema));
      ctx->row_matcher = &matcher;
    }
    for (size_t b = 0; b < split.blocks.size(); ++b) {
      HAIL_RETURN_NOT_OK(
          ReadOneBlock(split.block_indexes[b], &parser, ctx, &cost));
    }
    return cost;
  }

 private:
  Status ReadOneBlock(uint32_t block_index, RowParser* parser,
                      ReadContext* ctx, TaskCost* cost) {
    const hdfs::BlockLocation& loc =
        ctx->plan->file_blocks[block_index];
    const size_t bspan =
        ctx->trace != nullptr
            ? ctx->trace->Open("block_read", "read", cost->total())
            : 0;
    std::string_view data;
    std::vector<int> candidates = ReplicaOrder(loc.datanodes, ctx->task_node);
    HAIL_ASSIGN_OR_RETURN(
        size_t winner,
        ReadReplicaWithFailover(ctx, loc.block_id, loc.logical_bytes,
                                candidates, cost, &data));
    const int dn = candidates[winner];

    // Boundary rule part 1: if the previous block (of the *same* part
    // file) does not end in a newline, our first line fragment belongs to
    // the previous reader. Boundary reads are verified with failover too:
    // a silently corrupt neighbour would split rows differently and break
    // result equivalence (the happy-path read itself stays unbilled, as
    // the split accounting already charges each block to its own task).
    size_t begin = 0;
    if (block_index > 0 &&
        ctx->plan->file_blocks[block_index - 1].file_id == loc.file_id) {
      const hdfs::BlockLocation& prev =
          ctx->plan->file_blocks[block_index - 1];
      std::string_view prev_data;
      TaskCost boundary_cost;  // wasted boundary attempts are negligible
      HAIL_RETURN_NOT_OK(
          ReadReplicaWithFailover(ctx, prev.block_id, prev.logical_bytes,
                                  ReplicaOrder(prev.datanodes, ctx->task_node),
                                  &boundary_cost, &prev_data)
              .status());
      if (!prev_data.empty() && prev_data.back() != '\n') {
        const size_t nl = data.find('\n');
        begin = (nl == std::string_view::npos) ? data.size() : nl + 1;
      }
    }

    // Boundary rule part 2: finish our last line from following blocks.
    std::string content(data.substr(begin));
    if (!content.empty() && content.back() != '\n') {
      for (uint32_t next = block_index + 1;
           next < ctx->plan->file_blocks.size(); ++next) {
        const hdfs::BlockLocation& nloc = ctx->plan->file_blocks[next];
        if (nloc.file_id != loc.file_id) break;  // never cross part files
        std::string_view ndata;
        TaskCost boundary_cost;
        HAIL_RETURN_NOT_OK(
            ReadReplicaWithFailover(ctx, nloc.block_id, nloc.logical_bytes,
                                    ReplicaOrder(nloc.datanodes,
                                                 ctx->task_node),
                                    &boundary_cost, &ndata)
                .status());
        const size_t nl = ndata.find('\n');
        if (nl == std::string_view::npos) {
          content.append(ndata);  // a row spanning >1 whole block
          continue;
        }
        content.append(ndata.substr(0, nl));
        break;
      }
    }

    // Parse + hand every row to the map function (filtering happens in
    // Bob's map code for stock Hadoop).
    uint64_t records = 0;
    for (std::string_view row : SplitRows(content)) {
      if (row.empty()) continue;
      ++records;
      ParsedRow parsed = parser->Parse(row);
      if (parsed.ok) {
        if (InvokeMap(*ctx, HailRecord::FullRow(std::move(parsed.values)),
                      /*already_filtered=*/false)) {
          ++ctx->records_qualifying;
        }
      } else {
        ++ctx->bad_records;
        InvokeMap(*ctx, HailRecord::BadRecord(std::string(row)),
                  /*already_filtered=*/false);
      }
    }
    ctx->records_seen += records;

    // ---- cost ----
    const double scale = ctx->dfs->config().scale_factor;
    const uint64_t logical_bytes = loc.logical_bytes;
    const uint64_t logical_records =
        static_cast<uint64_t>(static_cast<double>(records) * scale);
    const sim::CostModel& disk_cost = ctx->dfs->cluster().node(dn).cost();
    const sim::CostModel& cpu_cost =
        ctx->dfs->cluster().node(ctx->task_node).cost();
    const double open_s =
        ctx->dfs->cluster().constants().block_open_ms / 1000.0;
    cost->disk_seconds += open_s;
    cost->disk_seconds += disk_cost.DiskAccess(logical_bytes);
    // Attribution splits the fused DiskAccess term back into its seek and
    // transfer components (same arithmetic, booked separately).
    cost->ledger.Bill(obs::CostBucket::kSeek, open_s + disk_cost.DiskSeek());
    cost->ledger.Bill(obs::CostBucket::kTransfer,
                      disk_cost.DiskTransfer(logical_bytes));
    const double cpu_s = cpu_cost.Crc(logical_bytes) +
                         cpu_cost.ScanParse(logical_records) +
                         cpu_cost.MapCalls(logical_records);
    cost->cpu_seconds += cpu_s;
    cost->ledger.Bill(obs::CostBucket::kCpu, cpu_s);
    if (dn != ctx->task_node) {
      const double net_s = cpu_cost.NetTransfer(logical_bytes);
      cost->net_seconds += net_s;
      cost->ledger.Bill(obs::CostBucket::kNetwork, net_s);
    }
    cost->logical_bytes_read += logical_bytes;
    ++ctx->blocks_scanned;
    if (ctx->trace != nullptr) {
      ctx->trace->Attr(bspan, "block", loc.block_id);
      ctx->trace->Attr(bspan, "datanode", dn);
      ctx->trace->Attr(bspan, "replica", "text");
      ctx->trace->Attr(bspan, "bytes", logical_bytes);
      ctx->trace->Attr(bspan, "rows", records);
      ctx->trace->Close(bspan, cost->total());
    }
    return Status::OK();
  }
};

}  // namespace

// Defined in readers_common.cc-adjacent factory; see MakeRecordReader in
// reader_factory.cc.
std::unique_ptr<RecordReader> MakeTextRecordReader() {
  return std::make_unique<TextRecordReader>();
}

}  // namespace mapreduce
}  // namespace hail
