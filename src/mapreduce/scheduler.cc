#include "mapreduce/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "adaptive/adaptive_manager.h"
#include "adaptive/reorg.h"
#include "hail/re_replication.h"
#include "mapreduce/pending_index.h"
#include "obs/metrics.h"
#include "planner/plan_cache.h"
#include "util/thread_pool.h"

namespace hail {
namespace mapreduce {

// ---------------------------------------------------------------------------
// SlotScheduler
// ---------------------------------------------------------------------------

SlotScheduler::SlotScheduler(SchedulerPolicy policy,
                             const std::map<std::string, double>& weights)
    : policy_(policy), weights_(weights) {}

int SlotScheduler::QueueIndex(const std::string& name) {
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].name == name) return static_cast<int>(i);
  }
  QueueState q;
  q.name = name;
  auto it = weights_.find(name);
  q.weight = it != weights_.end() && it->second > 0.0 ? it->second : 1.0;
  queues_.push_back(std::move(q));
  return static_cast<int>(queues_.size()) - 1;
}

int SlotScheduler::RegisterJob(const std::string& queue) {
  JobEntry entry;
  entry.queue = QueueIndex(queue);
  jobs_.push_back(entry);
  return static_cast<int>(jobs_.size()) - 1;
}

void SlotScheduler::SetPending(int job, size_t pending) {
  jobs_[static_cast<size_t>(job)].pending = pending;
}

void SlotScheduler::OnTaskStarted(int job) {
  queues_[static_cast<size_t>(jobs_[static_cast<size_t>(job)].queue)]
      .running += 1;
}

void SlotScheduler::OnTaskFinished(int job) {
  uint32_t& running =
      queues_[static_cast<size_t>(jobs_[static_cast<size_t>(job)].queue)]
          .running;
  if (running > 0) running -= 1;
}

int SlotScheduler::queue_of(int job) const {
  return jobs_[static_cast<size_t>(job)].queue;
}

void SlotScheduler::SetJobDeadline(int job, sim::SimTime deadline) {
  jobs_[static_cast<size_t>(job)].deadline = deadline;
  jobs_[static_cast<size_t>(job)].has_deadline = true;
}

int SlotScheduler::PickNextJob(sim::SimTime now) const {
  if (policy_ == SchedulerPolicy::kFifo) {
    for (size_t j = 0; j < jobs_.size(); ++j) {
      if (jobs_[j].pending > 0) return static_cast<int>(j);
    }
    return -1;
  }
  // EDF above fair share: a job already past its declared SLO deadline
  // outranks every fair-share deficit — earliest deadline first, ties to
  // the lowest job id. Queues still inside their SLO keep weighted-fair
  // shares below.
  int edf = -1;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const JobEntry& job = jobs_[j];
    if (job.pending == 0 || !job.has_deadline || job.deadline > now) continue;
    if (edf < 0 || job.deadline < jobs_[static_cast<size_t>(edf)].deadline) {
      edf = static_cast<int>(j);
    }
  }
  if (edf >= 0) return edf;
  // Fair: the queue with pending work whose running/weight deficit is
  // smallest wins (work-conserving — queues without pending work never
  // block others). Ties break on first-registration order, then the
  // earliest submitted job inside the winning queue.
  int best_queue = -1;
  double best_deficit = 0.0;
  for (size_t q = 0; q < queues_.size(); ++q) {
    bool has_pending = false;
    for (const JobEntry& job : jobs_) {
      if (job.queue == static_cast<int>(q) && job.pending > 0) {
        has_pending = true;
        break;
      }
    }
    if (!has_pending) continue;
    const double deficit =
        static_cast<double>(queues_[q].running) / queues_[q].weight;
    if (best_queue < 0 || deficit < best_deficit) {
      best_queue = static_cast<int>(q);
      best_deficit = deficit;
    }
  }
  if (best_queue < 0) return -1;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].queue == best_queue && jobs_[j].pending > 0) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

bool SlotScheduler::Contended() const {
  int queues_with_work = 0;
  for (size_t q = 0; q < queues_.size(); ++q) {
    for (const JobEntry& job : jobs_) {
      if (job.queue == static_cast<int>(q) && job.pending > 0) {
        ++queues_with_work;
        break;
      }
    }
  }
  return queues_with_work >= 2;
}

// ---------------------------------------------------------------------------
// Session engine
// ---------------------------------------------------------------------------

namespace {

enum class TaskStatus { kPending, kRunning, kDone };

struct TaskState {
  const InputSplit* split = nullptr;            // query tasks
  const UploadJobSpec::File* file = nullptr;    // upload tasks
  TaskStatus status = TaskStatus::kPending;
  /// Attempt id of the current primary attempt; ids come from
  /// `attempt_serial` so a speculative duplicate never aliases a retry.
  int attempt = 0;
  int attempt_serial = 0;
  int run_on = -1;
  sim::SimTime assign_time = 0.0;  // of the latest attempt
  /// Instant the task last became pending (activation, requeue, backoff
  /// release, preemption); the preemption trigger measures catch-up wait
  /// against it.
  sim::SimTime pending_since = 0.0;
  double rr_seconds = 0.0;
  /// True while a retryable failure waits out its backoff (the task is
  /// in neither the pending index nor any slot).
  bool awaiting_backoff = false;
  // Speculative execution: one duplicate attempt may run concurrently
  // with the primary; the first completion wins, the other attempt only
  // returns its slot (loser_* bookkeeping).
  int spec_attempt = 0;  // 0 = no duplicate in flight
  int spec_node = -1;
  sim::SimTime spec_assign_time = 0.0;
  bool speculated = false;  // a task is speculated at most once
  int loser_attempt = 0;
  int loser_node = -1;
  // Statistics and output of the last *successful* attempt.
  std::unique_ptr<MapOutput> output;
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  bool fallback_scan = false;
  bool index_scan = false;
  bool unclustered_scan = false;
  /// Cost attribution of the winning attempt (obs/cost_attribution.h): the
  /// reader's per-bucket integer-nanosecond ledger plus the matching double
  /// total that drove the simulated clock.
  obs::CostLedger ledger;
  double billed_seconds = 0.0;
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
  uint64_t rows_skipped = 0;
  uint64_t zone_skipped_blocks = 0;
  int reschedules = 0;
  // Fair-share accounting: whether the latest assignment happened under
  // cross-queue contention, accumulated slot occupancy.
  bool contended = false;
  const std::vector<int>& preferred_nodes() const {
    static const std::vector<int> kNone;
    if (split != nullptr) return split->preferred_nodes;
    return file != nullptr ? upload_pref : kNone;
  }
  std::vector<int> upload_pref;
};

/// One background replica-reorganization task riding on the session's idle
/// slots (adaptive indexing; see adaptive/adaptive_manager.h).
struct MaintState {
  adaptive::MaintenanceTask task;
  enum class Status { kPending, kRunning, kCommitted, kFailed } status =
      Status::kPending;
  /// Rewrite computed at assignment (pre-mutation state), committed at the
  /// completion event.
  std::optional<adaptive::PreparedReorg> prepared;
};

/// Everything a functional read produces; computed inline (serial) or on a
/// pool thread (parallel), consumed on the event thread either way.
struct ReadOutcome {
  Result<TaskCost> cost = Status::Unknown("read not executed");
  std::unique_ptr<MapOutput> output;
  uint64_t records_seen = 0;
  uint64_t records_qualifying = 0;
  uint64_t bad_records = 0;
  bool fallback_scan = false;
  bool index_scan = false;
  bool unclustered_scan = false;
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
  uint64_t rows_skipped = 0;
  uint64_t zone_skipped_blocks = 0;
  /// Reader-level spans recorded at billed-cost offsets (block reads,
  /// index probes, failover rereads); the engine splices them onto the
  /// task span at the completion event. Empty when tracing is off.
  obs::TraceBuffer trace;
  /// Corrupt replicas the read failed over past; the engine reports them
  /// to the namenode at the completion event (readers are const over DFS).
  std::vector<BadReplicaReport> bad_replicas;
};

/// One lost/corrupt replica being re-created from a surviving copy
/// (self-healing). Rides the maintenance queue strictly below foreground
/// work, mirroring MaintState's prepare-at-assignment/commit-at-completion
/// split.
struct RepairState {
  hdfs::UnderReplicatedEntry entry;
  /// Datanode the new replica goes to; -1 while unplaced (no eligible
  /// target — retried after the next revive).
  int target = -1;
  enum class Status { kQueued, kRunning, kCommitted, kDropped } status =
      Status::kQueued;
  std::optional<PreparedRepair> prepared;
};

/// Process-wide worker pool for parallel map-task reads. Created lazily,
/// never destroyed (workers block on an empty queue between sessions);
/// sized by HAIL_THREADS or hardware_concurrency.
ThreadPool* SharedPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return pool;
}

ExecutionMode ResolveMode(ExecutionMode requested) {
  if (requested != ExecutionMode::kDefault) return requested;
  if (const char* env = std::getenv("HAIL_EXEC")) {
    if (std::strcmp(env, "serial") == 0) return ExecutionMode::kSerial;
    if (std::strcmp(env, "parallel") == 0) return ExecutionMode::kParallel;
  }
  // With a single worker there is nothing to overlap — the ~µs/task
  // dispatch overhead would be pure loss, so default to the inline path.
  return ThreadPool::DefaultThreads() > 1 ? ExecutionMode::kParallel
                                          : ExecutionMode::kSerial;
}

/// One admitted job's mutable execution state.
struct JobExec {
  const ClusterSession::Submitted* submitted = nullptr;
  int id = -1;
  /// kWaiting: not yet admitted (deferred submit / dependency).
  /// kStarting: plan computed, paying job startup + split phase.
  /// kActive: tasks visible to the scheduler.
  enum class Phase { kWaiting, kStarting, kActive, kDone, kFailed };
  Phase phase = Phase::kWaiting;
  JobPlan plan;                          // query jobs
  std::unique_ptr<RecordReader> reader;  // serial mode reuses one reader
  std::vector<TaskState> tasks;
  PendingTaskIndex pending{0};
  uint32_t completed = 0;
  sim::SimTime eligible_at = 0.0;
  sim::SimTime finish_time = 0.0;
  /// Online adaptation already observed this job (skip it in the epilogue).
  bool observed = false;
  Status error;  // valid when kFailed
  /// Tracing/cost-attribution state: the job's span id (0 = none) and the
  /// engine-level waste billed to this tenant (preempted slot time,
  /// speculative losers) on top of the winning attempts' reader costs.
  uint64_t span = 0;
  obs::CostLedger waste_ledger;
  double waste_seconds = 0.0;
};

}  // namespace

/// The whole mutable state of one session execution (shared by the event
/// closures). Generalizes the former single-job Engine: per-job state
/// lives in JobExec, slots/heartbeats/maintenance/failure state are
/// session-wide, and a SlotScheduler decides which job a free slot serves.
struct SessionEngine {
  hdfs::MiniDfs* dfs = nullptr;
  const SessionOptions* options = nullptr;
  std::vector<JobExec> jobs;
  SlotScheduler scheduler;

  sim::EventQueue events;
  std::vector<int> free_slots;  // per node
  int total_slots = 0;
  /// Unassigned foreground tasks across all active jobs (the maintenance
  /// gate: background work runs only while this is 0).
  size_t foreground_pending = 0;
  size_t jobs_finished = 0;  // done or failed
  std::vector<int> completion_order;
  bool session_done = false;
  Status first_error;  // session-fatal (scheduler desync, starvation)

  /// Span tracing (obs/trace.h). All tracer mutation happens on the event
  /// thread inside event callbacks, and only while the session is healthy:
  /// after a fatal error serial drains the remaining events as no-ops
  /// while parallel discards unjoined reads, so appending past that
  /// instant would diverge between the modes. The guard keeps the span
  /// append order — and hence span ids — bit-identical.
  obs::Tracer* tracer = nullptr;
  uint64_t session_span = 0;
  bool tracing() const { return tracer != nullptr && first_error.ok(); }

  /// Effective fault schedule: options->fault_plan plus the legacy
  /// kill_node knob merged in at Run time.
  sim::FaultPlan plan;
  std::vector<char> kill_fired;  // one flag per plan.kills entry

  // ---- fair-share accounting (indexed like scheduler.queues()) ----
  std::vector<QueueUsage> usage;
  uint64_t maint_while_fg_pending = 0;

  // ---- background maintenance (adaptive replica reorganization) ----
  std::vector<MaintState> maint;
  /// Per-node FIFO of maint indexes (a rewrite runs on the datanode that
  /// holds the replica).
  std::vector<std::deque<size_t>> maint_by_node;
  uint32_t maint_completed = 0;
  uint32_t maint_failed = 0;
  /// Parallel mode: commits requested by completion events, applied by the
  /// loop after every in-flight read has drained (reads assigned before
  /// the commit must observe — and may be concurrently reading — the
  /// pre-rewrite bytes).
  std::vector<size_t> pending_commits;

  // ---- self-healing re-replication (options->self_heal) ----
  std::vector<RepairState> repairs;
  /// Per-target-node FIFO of repair indexes.
  std::vector<std::deque<size_t>> repairs_by_node;
  uint32_t repairs_completed = 0;
  uint32_t repairs_abandoned = 0;
  /// Parallel mode: repair commits deferred exactly like reorg commits.
  std::vector<size_t> pending_repair_commits;

  // ---- retry / speculation counters ----
  uint32_t task_retries = 0;
  uint32_t spec_attempts = 0;
  uint32_t spec_wins = 0;

  // ---- overload hardening ----
  uint32_t preemptions = 0;
  double preempted_slot_seconds = 0.0;
  uint32_t jobs_shed = 0;
  uint32_t replicas_added = 0;
  uint32_t replicas_evicted = 0;

  // ---- cost-based planning (options->plan_cache / spec.use_planner) ----
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidations = 0;  // this session's share
  uint32_t jobs_planned = 0;
  uint32_t stats_backfilled = 0;  // kBuildStats maintenance commits

  // ---- parallel engine state (unused in serial mode) ----
  bool parallel = false;
  ThreadPool* pool = nullptr;
  /// One dispatched-but-not-joined functional read. `seq` is the
  /// completion event's reserved FIFO slot; `earliest_completion` the
  /// soonest simulated instant the task can complete (cost >= 0), which
  /// bounds how far the event loop may run before joining.
  struct InFlight {
    int job = -1;
    size_t task_id = 0;
    int attempt = 0;
    int node = -1;
    sim::SimTime assign_time = 0.0;
    sim::SimTime earliest_completion = 0.0;
    uint64_t seq = 0;
    std::future<ReadOutcome> future;
  };
  std::deque<InFlight> inflight;  // assignment (= reserved seq) order
  /// Fault injection (kill/revive/corrupt), bad-replica reports and upload
  /// execution all mutate shared DFS state; requested inside events,
  /// applied by the loop *after* the event returns and every in-flight
  /// read has joined (reads assigned before the mutation must observe
  /// pre-mutation state, both for serial-equivalence and because pool
  /// threads read it concurrently).
  struct PendingFault {
    enum class Kind { kKill, kRevive, kCorrupt };
    Kind kind = Kind::kKill;
    int node = -1;
    double revive_after = -1.0;  // kKill
    int nth_block = 0;           // kCorrupt
    /// kKill: the failure-detection event's reserved FIFO slot (identical
    /// tie-break rank to serial, which schedules it inline).
    uint64_t seq = 0;
  };
  std::vector<PendingFault> pending_faults;
  std::vector<BadReplicaReport> pending_bad_reports;
  struct PendingUpload {
    int job = -1;
    size_t task_id = 0;
    int node = -1;
    uint64_t seq = 0;
  };
  std::vector<PendingUpload> pending_uploads;

  const sim::CostConstants& constants() const {
    return dfs->cluster().constants();
  }

  void AdmitJob(int j);
  /// Admission control: true when the job was shed (already failed).
  bool ShedIfOverloaded(int j);
  void ActivateJob(int j);
  void FailJob(int j, Status st);
  void JobDone(int j);
  void AdmitDependents(int j);
  void CheckSessionDone();
  void Heartbeat(int node);
  /// Fair-scheduler preemption: when the cluster is fully occupied and a
  /// queue's pending task has waited past the catch-up deadline while the
  /// queue is under its fair share, cancel the most recently assigned
  /// task of the most over-share queue (the attempt requeues; its wasted
  /// slot-seconds are billed to the preempted queue).
  void MaybePreempt();
  /// Online adaptation (options->online_adaptation): observe one finished
  /// query and enqueue whatever the planner decided, mid-session.
  void ObserveOnline(int j);
  /// Files planner output into the per-node maintenance queues.
  void EnqueueMaintTasks(std::vector<adaptive::MaintenanceTask> tasks);
  void MaintenanceBeat(int node, int assigned);
  void OnTaskComplete(int j, size_t task_id, int attempt, int node,
                      double rr_seconds,
                      const std::shared_ptr<ReadOutcome>& outcome);
  void HandleFailedAttempt(int j, size_t task_id, int attempt, int node,
                           const Status& st);
  void OnFailureDetected(int node);
  void AssignTask(int j, size_t task_id, int node);
  void TrySpeculate(int node, int* assigned);
  void DispatchRead(int j, size_t task_id, int attempt, int node);
  void AssignUpload(int j, size_t task_id, int node);
  void ExecuteUpload(int j, size_t task_id, int node,
                     const uint64_t* reserved_seq);
  void AssignMaintenance(size_t mid, int node);
  void OnMaintenanceComplete(size_t mid, int node);
  void CommitMaintenance(size_t mid);
  // Fault plan execution (Request* defers to the parallel loop's
  // post-drain mutation window; serial applies inline).
  void RequestKill(int victim, double revive_after);
  void ApplyKill(int victim, double revive_after,
                 const uint64_t* reserved_seq);
  void RequestRevive(int node);
  void ApplyRevive(int node);
  void RequestCorrupt(int node, int nth_block);
  void ApplyCorrupt(int node, int nth_block);
  void ApplyBadReplicaReports(const std::vector<BadReplicaReport>& reports);
  // Self-healing re-replication.
  void IngestRepairs();
  enum class RepairAssign { kAssigned, kSkipped, kStall };
  RepairAssign AssignRepair(size_t rid, int node);
  void OnRepairComplete(size_t rid, int node);
  void CommitRepairInline(size_t rid);
  void RetargetRepair(size_t rid);
  ReadOutcome ExecuteRead(int j, RecordReader* rdr, const InputSplit& split,
                          int node) const;
  void FinishRead(int j, size_t task_id, int attempt, int node,
                  sim::SimTime assign_time, ReadOutcome outcome,
                  const uint64_t* reserved_seq);
  void JoinOldest();
  void RunParallelLoop();
  void AccountUsage(int j, const TaskState& task, double slot_seconds);
  JobResult AssembleResult(const JobExec& job) const;
};

void SessionEngine::AdmitJob(int j) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  if (job.phase != JobExec::Phase::kWaiting) return;
  if (tracing()) {
    const ClusterSession::Submitted& s = *job.submitted;
    job.span = tracer->AddSpan(
        "job", s.kind == ClusterSession::Submitted::Kind::kQuery ? "query"
                                                                 : "upload",
        events.Now(), 0.0, session_span, /*lane=*/-1);
    tracer->Attr(job.span, "name",
                 s.kind == ClusterSession::Submitted::Kind::kQuery
                     ? s.spec.name
                     : s.upload.name);
    tracer->Attr(job.span, "job", static_cast<int64_t>(j));
    tracer->Attr(job.span, "queue", s.queue);
  }
  if (ShedIfOverloaded(j)) return;
  const ClusterSession::Submitted& sub = *job.submitted;
  const sim::SimTime now = events.Now();
  if (sub.kind == ClusterSession::Submitted::Kind::kQuery) {
    // Plan cache: a repeat submission of the same query at an unchanged
    // directory generation re-uses the cached plan and skips both the
    // computation and its billed planning CPU.
    bool cache_hit = false;
    if (options->plan_cache != nullptr) {
      const std::string key = planner::PlanCache::KeyFor(sub.spec);
      const uint64_t generation = dfs->namenode().directory_generation();
      const uint64_t inval_before =
          options->plan_cache->stats().invalidations;
      const JobPlan* cached = options->plan_cache->Lookup(key, generation);
      plan_cache_invalidations +=
          options->plan_cache->stats().invalidations - inval_before;
      if (cached != nullptr) {
        job.plan = *cached;
        cache_hit = true;
        ++plan_cache_hits;
      } else {
        Result<JobPlan> plan = ComputeJobPlan(dfs, sub.spec);
        if (!plan.ok()) {
          FailJob(j, plan.status());
          return;
        }
        job.plan = std::move(*plan);
        options->plan_cache->Insert(key, generation, job.plan);
        ++plan_cache_misses;
      }
    } else {
      Result<JobPlan> plan = ComputeJobPlan(dfs, sub.spec);
      if (!plan.ok()) {
        FailJob(j, plan.status());
        return;
      }
      job.plan = std::move(*plan);
    }
    if (job.plan.planned) ++jobs_planned;
    if (job.plan.splits.empty()) {
      FailJob(j, Status::InvalidArgument("job '" + sub.spec.name +
                                         "' has no input"));
      return;
    }
    job.reader = MakeRecordReader(sub.spec.system);
    job.tasks.resize(job.plan.splits.size());
    for (size_t i = 0; i < job.plan.splits.size(); ++i) {
      job.tasks[i].split = &job.plan.splits[i];
    }
    // Job submission pays startup + the split phase before tasks appear;
    // the per-block planning CPU is paid only when the plan was actually
    // computed (a cache hit re-uses the already-paid work).
    job.eligible_at = now + constants().job_startup_s +
                      job.plan.split_phase_seconds +
                      (cache_hit ? 0.0 : job.plan.planner_seconds);
  } else {
    if (sub.upload.files.empty()) {
      FailJob(j, Status::InvalidArgument("upload job '" + sub.upload.name +
                                         "' has no files"));
      return;
    }
    if (sub.upload.system != System::kHadoop &&
        sub.upload.system != System::kHail) {
      // Hadoop++ ingestion is itself a MapReduce job chain, not a
      // client-side pipeline; silently falling back to the text path
      // would store a layout its queries cannot read.
      FailJob(j, Status::InvalidArgument(
                     "upload job '" + sub.upload.name + "': system '" +
                     std::string(SystemName(sub.upload.system)) +
                     "' is not modelled as slot tasks"));
      return;
    }
    job.tasks.resize(sub.upload.files.size());
    for (size_t i = 0; i < sub.upload.files.size(); ++i) {
      job.tasks[i].file = &sub.upload.files[i];
      job.tasks[i].upload_pref = {sub.upload.files[i].client_node};
    }
    job.eligible_at = now + constants().job_startup_s;
  }
  job.phase = JobExec::Phase::kStarting;
}

bool SessionEngine::ShedIfOverloaded(int j) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  const std::string& queue = job.submitted->queue;
  const auto it = options->queue_admission.find(queue);
  if (it == options->queue_admission.end()) return false;
  const AdmissionControl& ac = it->second;
  // Backlog bound: unfinished jobs already admitted to this queue.
  if (ac.max_backlog_jobs > 0) {
    size_t backlog = 0;
    for (const JobExec& other : jobs) {
      if (other.id == j || other.submitted->queue != queue) continue;
      if (other.phase == JobExec::Phase::kStarting ||
          other.phase == JobExec::Phase::kActive) {
        ++backlog;
      }
    }
    if (backlog >= ac.max_backlog_jobs) {
      FailJob(j, Status::Overloaded(
                     "queue '" + queue + "' backlog at its admission bound (" +
                     std::to_string(backlog) + " jobs)"));
      return true;
    }
  }
  // Projected-wait bound: pending foreground tasks of the queue's active
  // jobs x the queue's observed mean task slot-seconds, divided by the
  // slots its fair-share weight entitles it to. Needs one completed task.
  if (ac.shed_wait_s > 0.0) {
    const int q = scheduler.queue_of(j);
    const QueueUsage& u = usage[static_cast<size_t>(q)];
    // The legacy estimator needs one completed task for its observed mean;
    // the planner-fed estimator (options->admission_from_planner) can
    // project from predicted job costs before anything completed.
    const bool planner_fed = options->admission_from_planner;
    if ((u.tasks > 0 || planner_fed) && total_slots > 0) {
      const double mean_ss =
          u.tasks > 0 ? u.slot_seconds / static_cast<double>(u.tasks) : 0.0;
      size_t backlog_tasks = 0;
      double backlog_cost = 0.0;  // planner-fed: predicted slot-seconds
      for (const JobExec& other : jobs) {
        if (other.submitted->queue != queue) continue;
        size_t pending = 0;
        if (other.phase == JobExec::Phase::kActive) {
          pending = other.pending.size();
        } else if (other.phase == JobExec::Phase::kStarting) {
          pending = other.tasks.size();
        } else {
          continue;
        }
        backlog_tasks += pending;
        // A shed candidate never computes a plan, so predictions come
        // from the *already admitted* jobs' plans; unplanned jobs fall
        // back to the observed mean.
        const double per_task =
            other.plan.planned && !other.tasks.empty()
                ? other.plan.predicted_cost_seconds /
                      static_cast<double>(other.tasks.size())
                : mean_ss;
        backlog_cost += static_cast<double>(pending) * per_task;
      }
      const std::vector<SlotScheduler::QueueState>& queues =
          scheduler.queues();
      double weight_sum = 0.0;
      for (const SlotScheduler::QueueState& qs : queues) {
        weight_sum += qs.weight > 0.0 ? qs.weight : 1.0;
      }
      const double own = queues[static_cast<size_t>(q)].weight > 0.0
                             ? queues[static_cast<size_t>(q)].weight
                             : 1.0;
      const double entitled = total_slots * own / weight_sum;
      const double projected =
          planner_fed
              ? backlog_cost / entitled
              : static_cast<double>(backlog_tasks) * mean_ss / entitled;
      if (projected > ac.shed_wait_s) {
        char wait[32];
        std::snprintf(wait, sizeof(wait), "%.1f", projected);
        FailJob(j, Status::Overloaded("queue '" + queue +
                                      "' projected wait " + wait +
                                      "s exceeds shed threshold"));
        return true;
      }
    }
  }
  return false;
}

void SessionEngine::ActivateJob(int j) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  if (job.phase != JobExec::Phase::kStarting) return;
  job.phase = JobExec::Phase::kActive;
  job.pending = PendingTaskIndex(dfs->cluster().num_nodes());
  for (size_t i = 0; i < job.tasks.size(); ++i) {
    job.tasks[i].pending_since = events.Now();
    job.pending.Push(i, job.tasks[i].preferred_nodes());
  }
  foreground_pending += job.tasks.size();
  scheduler.SetPending(j, job.pending.size());
  // No immediate poke: the next TaskTracker heartbeat (periodic or
  // out-of-band) picks the work up, like a real JobTracker.
}

void SessionEngine::FailJob(int j, Status st) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  if (job.phase == JobExec::Phase::kDone ||
      job.phase == JobExec::Phase::kFailed) {
    return;
  }
  foreground_pending -= job.pending.size();
  job.pending = PendingTaskIndex(0);
  scheduler.SetPending(j, 0);
  job.phase = JobExec::Phase::kFailed;
  job.finish_time = events.Now();  // failed tenants still count for makespan
  if (st.IsOverloaded()) {
    ++jobs_shed;
    ++usage[static_cast<size_t>(scheduler.queue_of(j))].jobs_shed;
  }
  if (tracing() && job.span != 0) {
    tracer->Attr(job.span, "error", st.message());
    tracer->SetEnd(job.span, job.finish_time);
  }
  job.error = std::move(st);
  ++jobs_finished;
  AdmitDependents(j);
  CheckSessionDone();
}

void SessionEngine::JobDone(int j) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  job.phase = JobExec::Phase::kDone;
  // The job's reported numbers are fixed at this instant (remaining
  // heartbeats only ever serve other jobs or background rewrites).
  job.finish_time = events.Now() + constants().job_cleanup_s;
  completion_order.push_back(j);
  ++jobs_finished;
  if (tracing() && job.span != 0) tracer->SetEnd(job.span, job.finish_time);
  if (options->online_adaptation && options->adaptive != nullptr &&
      job.submitted->kind == ClusterSession::Submitted::Kind::kQuery) {
    // Deferred to its own event: at an event boundary both execution
    // modes have applied every pending shared-DFS mutation, so the
    // observe/plan round reads identical state serial and parallel.
    events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                         [this, j] { ObserveOnline(j); });
  }
  AdmitDependents(j);
  CheckSessionDone();
}

void SessionEngine::ObserveOnline(int j) {
  if (!first_error.ok() || options->adaptive == nullptr) return;
  JobExec& job = jobs[static_cast<size_t>(j)];
  if (job.phase != JobExec::Phase::kDone || job.observed) return;
  job.observed = true;
  const size_t before = maint.size();
  options->adaptive->ObserveJob(job.submitted->spec, AssembleResult(job));
  EnqueueMaintTasks(options->adaptive->TakeTasks());
  if (session_done && first_error.ok()) {
    // The cluster may already be idle: kick the nodes that just got work
    // (mid-session the periodic beats pick it up).
    std::vector<int> kick;
    for (size_t mid = before; mid < maint.size(); ++mid) {
      kick.push_back(maint[mid].task.datanode);
    }
    std::sort(kick.begin(), kick.end());
    kick.erase(std::unique(kick.begin(), kick.end()), kick.end());
    for (int node : kick) {
      events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                           [this, node] { Heartbeat(node); });
    }
  }
}

void SessionEngine::EnqueueMaintTasks(
    std::vector<adaptive::MaintenanceTask> tasks) {
  const int n = dfs->cluster().num_nodes();
  for (const adaptive::MaintenanceTask& task : tasks) {
    if (task.datanode < 0 || task.datanode >= n) continue;
    maint_by_node[static_cast<size_t>(task.datanode)].push_back(maint.size());
    maint.push_back(MaintState{task, MaintState::Status::kPending, {}});
  }
}

void SessionEngine::AdmitDependents(int j) {
  const JobExec& done = jobs[static_cast<size_t>(j)];
  for (JobExec& job : jobs) {
    if (job.phase != JobExec::Phase::kWaiting ||
        job.submitted->depends_on != j) {
      continue;
    }
    if (done.phase != JobExec::Phase::kDone) {
      // Fail fast, and keep the overload signal distinct: a dependent of a
      // shed job is itself "shed by cascade", not a generic precondition
      // failure (clients retry the two cases differently).
      FailJob(job.id,
              done.error.IsOverloaded()
                  ? Status::Overloaded("dependency job " + std::to_string(j) +
                                       " was shed")
                  : Status::FailedPrecondition(
                        "dependency job " + std::to_string(j) + " failed"));
      continue;
    }
    const int id = job.id;
    const sim::SimTime when =
        std::max(events.Now(), job.submitted->submit_time);
    events.ScheduleAt(when, [this, id] {
      AdmitJob(id);
      JobExec& dep = jobs[static_cast<size_t>(id)];
      if (dep.phase == JobExec::Phase::kStarting) {
        events.ScheduleAt(dep.eligible_at, [this, id] { ActivateJob(id); });
      }
    });
  }
}

void SessionEngine::CheckSessionDone() {
  if (session_done || jobs_finished != jobs.size()) return;
  session_done = true;
  // The cluster just went idle; remaining maintenance and repairs drain
  // on the freed slots (every job's reported numbers are already fixed —
  // heartbeats below only ever assign background work).
  for (size_t n = 0; n < maint_by_node.size(); ++n) {
    const bool has_work =
        !maint_by_node[n].empty() ||
        (n < repairs_by_node.size() && !repairs_by_node[n].empty());
    if (!has_work) continue;
    const int idle_node = static_cast<int>(n);
    events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                         [this, idle_node] { Heartbeat(idle_node); });
  }
}

void SessionEngine::Heartbeat(int node) {
  if (!dfs->cluster().node(node).alive()) return;
  if (session_done) {
    // Foreground is finished (or aborted). Maintenance may still drain on
    // the idle cluster below — but never after an error.
    if (!first_error.ok()) return;
    MaintenanceBeat(node, /*assigned=*/0);
    return;
  }
  int assigned = 0;
  bool upload_assigned = false;
  while (free_slots[static_cast<size_t>(node)] > 0 &&
         assigned < constants().tasks_per_heartbeat) {
    // Policy first (which job deserves the slot), locality second (the
    // earliest pending task of that job preferring this node, else its
    // earliest pending task overall).
    const int j = scheduler.PickNextJob(events.Now());
    if (j < 0) break;
    JobExec& job = jobs[static_cast<size_t>(j)];
    const bool contended = scheduler.Contended();
    const std::optional<size_t> pick = job.pending.PopFor(node);
    if (!pick.has_value()) {
      // Scheduler and job pending counts are updated in lockstep; a
      // mismatch is a logic error — fail loudly instead of silently
      // absorbing the corruption (foreground_pending would stay inflated
      // and block maintenance for the rest of the session).
      if (first_error.ok()) {
        first_error = Status::Unknown("scheduler/job pending-count desync");
      }
      session_done = true;
      return;
    }
    --foreground_pending;
    scheduler.SetPending(j, job.pending.size());
    job.tasks[*pick].contended = contended;
    if (job.submitted->kind == ClusterSession::Submitted::Kind::kUpload) {
      AssignUpload(j, *pick, node);
      ++assigned;
      // An ingest launch consumes the rest of this beat: nothing else may
      // be assigned in the same event, so DFS state visible to later
      // assignments is identical whether the upload executed inline
      // (serial) or deferred until in-flight reads drained (parallel).
      upload_assigned = true;
      break;
    }
    AssignTask(j, *pick, node);
    ++assigned;
  }
  if (!upload_assigned && options->speculative_execution &&
      foreground_pending == 0 &&
      free_slots[static_cast<size_t>(node)] > 0 &&
      assigned < constants().tasks_per_heartbeat) {
    // The slot would idle: offer it to a straggling task as a duplicate
    // attempt (first completion wins).
    TrySpeculate(node, &assigned);
  }
  if (!upload_assigned) {
    // Background maintenance rides strictly behind foreground work: a
    // reorg task is assigned only while *no* foreground task of any
    // active job is pending anywhere, within the same per-heartbeat
    // assignment quota, and only on the node holding the replica.
    // Foreground tenants are never starved.
    MaintenanceBeat(node, assigned);
  }
  if (options->preemption &&
      options->policy == SchedulerPolicy::kFair) {
    MaybePreempt();
  }
}

void SessionEngine::MaybePreempt() {
  // Only meaningful when the cluster is fully occupied: a free slot
  // anywhere can serve any pending task (PopFor falls back to the
  // earliest pending task overall), so starvation self-clears otherwise.
  for (size_t n = 0; n < free_slots.size(); ++n) {
    if (free_slots[n] > 0 && dfs->cluster().node(static_cast<int>(n)).alive())
      return;
  }
  const sim::SimTime now = events.Now();
  const std::vector<SlotScheduler::QueueState>& queues = scheduler.queues();
  const auto share_of = [&](int q) {
    const SlotScheduler::QueueState& qs = queues[static_cast<size_t>(q)];
    return qs.running / (qs.weight > 0.0 ? qs.weight : 1.0);
  };
  // Starved queue: running strictly below its fair-share entitlement,
  // with a runnable pending task older than the catch-up deadline. The
  // entitlement gate matters: an over-share queue whose *excess* tasks
  // queue up behind its own running ones is backlogged, not starved.
  // Lowest queue index wins ties (registration order).
  double weight_sum = 0.0;
  for (const SlotScheduler::QueueState& qs : queues) {
    weight_sum += qs.weight > 0.0 ? qs.weight : 1.0;
  }
  const auto entitled = [&](int q) {
    const SlotScheduler::QueueState& qs = queues[static_cast<size_t>(q)];
    const double w = qs.weight > 0.0 ? qs.weight : 1.0;
    return static_cast<double>(total_slots) * w /
           (weight_sum > 0.0 ? weight_sum : 1.0);
  };
  int starved = -1;
  for (const JobExec& job : jobs) {
    if (job.phase != JobExec::Phase::kActive || job.pending.size() == 0)
      continue;
    const int q = scheduler.queue_of(job.id);
    if (starved >= 0 && q >= starved) continue;
    if (static_cast<double>(queues[static_cast<size_t>(q)].running) >=
        entitled(q)) {
      continue;
    }
    for (const TaskState& t : job.tasks) {
      if (t.status != TaskStatus::kPending || t.awaiting_backoff) continue;
      if (now - t.pending_since <= options->preemption_catchup_s) continue;
      starved = q;
      break;
    }
  }
  if (starved < 0) return;
  // Victim queue: the most over-share queue (highest running/weight)
  // strictly above the starved queue's share. Ties: lowest queue index.
  int victim_q = -1;
  double victim_share = share_of(starved);
  for (size_t q = 0; q < queues.size(); ++q) {
    if (static_cast<int>(q) == starved || queues[q].running == 0) continue;
    if (share_of(static_cast<int>(q)) > victim_share) {
      victim_q = static_cast<int>(q);
      victim_share = share_of(static_cast<int>(q));
    }
  }
  if (victim_q < 0) return;
  // Victim task: the most recently assigned running query task of that
  // queue (least sunk work wasted); ties break on lowest (job, task).
  int vj = -1;
  size_t vt = 0;
  sim::SimTime latest = 0.0;
  for (const JobExec& job : jobs) {
    if (job.phase != JobExec::Phase::kActive ||
        scheduler.queue_of(job.id) != victim_q ||
        job.submitted->kind != ClusterSession::Submitted::Kind::kQuery) {
      continue;
    }
    for (size_t t = 0; t < job.tasks.size(); ++t) {
      const TaskState& task = job.tasks[t];
      if (task.status != TaskStatus::kRunning) continue;
      if (task.spec_attempt != 0) continue;  // speculation has its own race
      if (task.run_on < 0 || !dfs->cluster().node(task.run_on).alive())
        continue;
      if (vj < 0 || task.assign_time > latest) {
        vj = job.id;
        vt = t;
        latest = task.assign_time;
      }
    }
  }
  if (vj < 0) return;
  JobExec& job = jobs[static_cast<size_t>(vj)];
  TaskState& task = job.tasks[vt];
  const int node = task.run_on;
  // Requeue the attempt. The in-flight completion callback goes stale: the
  // status check (and attempt bump at reassignment) makes it a no-op, so
  // no result is double-counted and the slot is freed exactly once — here.
  // Deliberately NOT counted as a reschedule: preemption is the
  // scheduler's choice, not a task failure, so it neither consumes retry
  // attempts nor inflates a later failure's backoff.
  task.status = TaskStatus::kPending;
  task.run_on = -1;
  task.pending_since = now;
  job.pending.Push(vt, task.preferred_nodes());
  ++foreground_pending;
  scheduler.SetPending(vj, job.pending.size());
  scheduler.OnTaskFinished(vj);
  free_slots[static_cast<size_t>(node)] += 1;
  const double wasted = now - task.assign_time;
  // The preempted slot time is billed to the victim tenant's cost ledger:
  // the cluster did the work, the queue's own overdraft caused its loss.
  job.waste_ledger.Bill(obs::CostBucket::kWastedPreemption, wasted);
  job.waste_seconds += wasted;
  if (tracing()) {
    const uint64_t sp = tracer->AddSpan("preemption", "sched",
                                        task.assign_time, wasted, job.span,
                                        /*lane=*/node);
    tracer->Attr(sp, "task", static_cast<uint64_t>(vt));
    tracer->Attr(sp, "node", static_cast<int64_t>(node));
    tracer->Attr(sp, "wasted_slot_seconds", wasted);
  }
  QueueUsage& u = usage[static_cast<size_t>(victim_q)];
  ++u.preemptions;
  u.preempted_slot_seconds += wasted;
  ++preemptions;
  preempted_slot_seconds += wasted;
  // The freed slot goes to whoever the policy now favors (the starved
  // queue, by construction) on the next beat.
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void SessionEngine::MaintenanceBeat(int node, int assigned) {
  if (foreground_pending > 0) return;
  // Re-replication repairs run before adaptive reorgs (durability beats
  // index freshness), under the same strict-background gate and quota.
  if (!repairs_by_node.empty()) {
    std::deque<size_t>& rq = repairs_by_node[static_cast<size_t>(node)];
    while (free_slots[static_cast<size_t>(node)] > 0 && !rq.empty() &&
           (session_done || assigned < constants().tasks_per_heartbeat)) {
      const size_t rid = rq.front();
      rq.pop_front();
      const RepairAssign r = AssignRepair(rid, node);
      if (r == RepairAssign::kStall) break;  // requeued; retry later
      if (r == RepairAssign::kAssigned) ++assigned;
    }
  }
  if (maint_by_node.empty()) return;
  std::deque<size_t>& queue = maint_by_node[static_cast<size_t>(node)];
  // Mid-session the TaskTracker's per-heartbeat quota applies; once every
  // job is done the cluster is idle and the queue drains as fast as slots
  // allow.
  while (free_slots[static_cast<size_t>(node)] > 0 && !queue.empty() &&
         (session_done || assigned < constants().tasks_per_heartbeat)) {
    const size_t mid = queue.front();
    queue.pop_front();
    AssignMaintenance(mid, node);
    ++assigned;
  }
}

void SessionEngine::AssignMaintenance(size_t mid, int node) {
  if (foreground_pending > 0) {
    // Strict low priority is an invariant, not a hope: record violations
    // (tests pin this at zero) instead of silently absorbing them.
    ++maint_while_fg_pending;
  }
  MaintState& m = maint[mid];
  // The rewrite is computed against the DFS state at assignment time (the
  // same instant serial execution would read it); the mutation waits for
  // the completion event.
  Result<adaptive::PreparedReorg> prep = adaptive::PrepareReorg(*dfs, m.task);
  if (!prep.ok()) {
    // A broken task (replica gone, wrong layout) is dropped, not retried;
    // it must not wedge the queue.
    m.status = MaintState::Status::kFailed;
    ++maint_failed;
    return;
  }
  m.status = MaintState::Status::kRunning;
  m.prepared.emplace(std::move(*prep));
  free_slots[static_cast<size_t>(node)] -= 1;
  const double duration = m.prepared->seconds;
  events.ScheduleAfter(duration,
                       [this, mid, node] { OnMaintenanceComplete(mid, node); });
}

void SessionEngine::OnMaintenanceComplete(size_t mid, int node) {
  MaintState& m = maint[mid];
  if (m.status != MaintState::Status::kRunning) return;
  if (!first_error.ok()) {
    // The session failed; don't mutate DFS state while the queue drains.
    m.status = MaintState::Status::kPending;
    m.prepared.reset();
    return;
  }
  if (!dfs->cluster().node(node).alive()) {
    // Node killed mid-reorg: the prepared bytes are gone with it. Requeue;
    // after a revive the next session's planner state still wants this
    // block.
    m.status = MaintState::Status::kPending;
    m.prepared.reset();
    return;
  }
  free_slots[static_cast<size_t>(node)] += 1;
  if (tracing()) {
    const double duration = m.prepared->seconds;
    const uint64_t sp =
        tracer->AddSpan("reorg", "maint", events.Now() - duration, duration,
                        session_span, /*lane=*/node);
    tracer->Attr(sp, "block", m.task.block_id);
    tracer->Attr(sp, "column", static_cast<int64_t>(m.task.column));
    tracer->Attr(sp, "node", static_cast<int64_t>(node));
  }
  if (parallel) {
    pending_commits.push_back(mid);
  } else {
    CommitMaintenance(mid);
  }
  // The freed slot asks for more work (maintenance or requeued foreground).
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void SessionEngine::CommitMaintenance(size_t mid) {
  MaintState& m = maint[mid];
  Status st = adaptive::CommitReorg(dfs, m.task, std::move(*m.prepared));
  m.prepared.reset();
  if (st.ok()) {
    m.status = MaintState::Status::kCommitted;
    ++maint_completed;
    if (m.task.kind == adaptive::MaintenanceTask::Kind::kAddReplica) {
      ++replicas_added;
    } else if (m.task.kind == adaptive::MaintenanceTask::Kind::kEvictReplica) {
      ++replicas_evicted;
    } else if (m.task.kind == adaptive::MaintenanceTask::Kind::kBuildStats) {
      ++stats_backfilled;
    }
  } else {
    m.status = MaintState::Status::kFailed;
    ++maint_failed;
  }
}

void SessionEngine::IngestRepairs() {
  if (!options->self_heal) return;
  std::vector<hdfs::UnderReplicatedEntry> lost =
      dfs->namenode().TakeUnderReplicated();
  for (hdfs::UnderReplicatedEntry& e : lost) {
    if (!RepairStillNeeded(*dfs, e)) {
      dfs->namenode().AbandonRepair(e);
      ++repairs_abandoned;
      continue;
    }
    RepairState r;
    r.entry = std::move(e);
    r.target = PickRepairTarget(*dfs, r.entry);
    const size_t rid = repairs.size();
    if (r.target >= 0) {
      repairs_by_node[static_cast<size_t>(r.target)].push_back(rid);
      if (session_done) {
        // Mid-session the periodic beats pick the repair up; after the
        // last job only an explicit kick reaches the idle target.
        const int target = r.target;
        events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                             [this, target] { Heartbeat(target); });
      }
    }
    repairs.push_back(std::move(r));
  }
}

SessionEngine::RepairAssign SessionEngine::AssignRepair(size_t rid,
                                                        int node) {
  RepairState& r = repairs[rid];
  if (r.status != RepairState::Status::kQueued) return RepairAssign::kSkipped;
  if (foreground_pending > 0) {
    // Same strict-background invariant as adaptive maintenance: record
    // violations (tests pin this at zero), never absorb them silently.
    ++maint_while_fg_pending;
  }
  if (!RepairStillNeeded(*dfs, r.entry)) {
    // The lost node revived with its replica intact (or the file is
    // gone): nothing is missing anymore.
    dfs->namenode().AbandonRepair(r.entry);
    r.status = RepairState::Status::kDropped;
    ++repairs_abandoned;
    return RepairAssign::kSkipped;
  }
  Result<PreparedRepair> prep = PrepareRepair(*dfs, r.entry, node);
  if (!prep.ok()) {
    if (prep.status().IsUnavailable()) {
      // No live source right now (every surviving holder is dead): park
      // the repair; a later beat — after a revive — tries again.
      repairs_by_node[static_cast<size_t>(node)].push_back(rid);
      return RepairAssign::kStall;
    }
    dfs->namenode().AbandonRepair(r.entry);
    r.status = RepairState::Status::kDropped;
    ++repairs_abandoned;
    return RepairAssign::kSkipped;
  }
  r.status = RepairState::Status::kRunning;
  r.prepared.emplace(std::move(*prep));
  free_slots[static_cast<size_t>(node)] -= 1;
  const double duration = r.prepared->seconds * plan.slow_factor(node);
  events.ScheduleAfter(duration,
                       [this, rid, node] { OnRepairComplete(rid, node); });
  return RepairAssign::kAssigned;
}

void SessionEngine::OnRepairComplete(size_t rid, int node) {
  RepairState& r = repairs[rid];
  if (r.status != RepairState::Status::kRunning) return;
  if (!first_error.ok()) {
    // The session failed; don't mutate DFS state while the queue drains.
    r.status = RepairState::Status::kQueued;
    r.prepared.reset();
    r.target = -1;
    return;
  }
  if (!dfs->cluster().node(node).alive()) {
    // Target died mid-repair: the written bytes died with it. Replace.
    r.status = RepairState::Status::kQueued;
    r.prepared.reset();
    r.target = -1;
    RetargetRepair(rid);
    return;
  }
  free_slots[static_cast<size_t>(node)] += 1;
  if (tracing()) {
    const double duration = r.prepared->seconds * plan.slow_factor(node);
    const uint64_t sp =
        tracer->AddSpan("repair", "repair", events.Now() - duration, duration,
                        session_span, /*lane=*/node);
    tracer->Attr(sp, "block", r.entry.block_id);
    tracer->Attr(sp, "lost_datanode",
                 static_cast<int64_t>(r.entry.lost_datanode));
    tracer->Attr(sp, "target", static_cast<int64_t>(node));
  }
  if (parallel) {
    pending_repair_commits.push_back(rid);
  } else {
    CommitRepairInline(rid);
  }
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void SessionEngine::CommitRepairInline(size_t rid) {
  RepairState& r = repairs[rid];
  Status st = CommitRepair(dfs, r.entry, r.target, std::move(*r.prepared));
  r.prepared.reset();
  if (st.ok()) {
    r.status = RepairState::Status::kCommitted;
    ++repairs_completed;
    return;
  }
  // The target vanished between completion and commit (parallel mode's
  // drain window): place the replica somewhere else.
  r.status = RepairState::Status::kQueued;
  r.target = -1;
  RetargetRepair(rid);
}

void SessionEngine::RetargetRepair(size_t rid) {
  RepairState& r = repairs[rid];
  if (r.status != RepairState::Status::kQueued) return;
  r.target = PickRepairTarget(*dfs, r.entry);
  if (r.target < 0) return;  // unplaced; retried after the next revive
  repairs_by_node[static_cast<size_t>(r.target)].push_back(rid);
  if (session_done) {
    const int target = r.target;
    events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                         [this, target] { Heartbeat(target); });
  }
}

void SessionEngine::RequestKill(int victim, double revive_after) {
  if (!parallel) {
    ApplyKill(victim, revive_after, /*reserved_seq=*/nullptr);
    return;
  }
  PendingFault f;
  f.kind = PendingFault::Kind::kKill;
  f.node = victim;
  f.revive_after = revive_after;
  f.seq = events.ReserveSeq();
  pending_faults.push_back(f);
}

void SessionEngine::ApplyKill(int victim, double revive_after,
                              const uint64_t* reserved_seq) {
  if (victim < 0 || victim >= dfs->cluster().num_nodes()) return;
  if (!dfs->cluster().node(victim).alive()) return;
  dfs->KillNode(victim, events.Now());
  auto detect = [this, victim] { OnFailureDetected(victim); };
  if (reserved_seq != nullptr) {
    events.ScheduleAtReserved(*reserved_seq,
                              events.Now() + constants().expiry_interval_s,
                              std::move(detect));
  } else {
    events.ScheduleAfter(constants().expiry_interval_s, std::move(detect));
  }
  if (revive_after >= 0.0) {
    // Never revive before the failure detection fired — the detector's
    // requeue/repair bookkeeping assumes the node stayed dead until then.
    const double delay =
        std::max(revive_after, constants().expiry_interval_s + 1.0);
    events.ScheduleAfter(delay, [this, victim] { RequestRevive(victim); });
  }
}

void SessionEngine::RequestRevive(int node) {
  if (!parallel) {
    ApplyRevive(node);
    return;
  }
  PendingFault f;
  f.kind = PendingFault::Kind::kRevive;
  f.node = node;
  pending_faults.push_back(f);
}

void SessionEngine::ApplyRevive(int node) {
  if (dfs->cluster().node(node).alive()) return;
  dfs->ReviveNode(node);
  free_slots[static_cast<size_t>(node)] =
      dfs->cluster().node(node).profile().map_slots;
  // The node re-joins: kick a heartbeat (its periodic chain stops once
  // the session ends) and give stalled/unplaced repairs another chance —
  // the revive may have restored their only source, or made this node an
  // eligible target.
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
  if (options->self_heal) {
    for (size_t rid = 0; rid < repairs.size(); ++rid) {
      if (repairs[rid].status == RepairState::Status::kQueued &&
          repairs[rid].target < 0) {
        RetargetRepair(rid);
      }
    }
    for (size_t n = 0; n < repairs_by_node.size(); ++n) {
      if (repairs_by_node[n].empty()) continue;
      const int rn = static_cast<int>(n);
      if (rn == node || !dfs->cluster().node(rn).alive()) continue;
      events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                           [this, rn] { Heartbeat(rn); });
    }
  }
}

void SessionEngine::RequestCorrupt(int node, int nth_block) {
  if (!parallel) {
    ApplyCorrupt(node, nth_block);
    return;
  }
  PendingFault f;
  f.kind = PendingFault::Kind::kCorrupt;
  f.node = node;
  f.nth_block = nth_block;
  pending_faults.push_back(f);
}

void SessionEngine::ApplyCorrupt(int node, int nth_block) {
  if (node < 0 || node >= dfs->cluster().num_nodes() || nth_block < 0) return;
  // "nth block of node i" resolves against the namenode's block-id-ordered
  // holdings at injection time — deterministic for a given DFS state.
  std::vector<uint64_t> blocks = dfs->namenode().BlocksOnDatanode(node);
  if (blocks.empty()) return;
  const uint64_t block = blocks[static_cast<size_t>(nth_block) % blocks.size()];
  (void)dfs->InjectCorruption(node, block);
}

void SessionEngine::ApplyBadReplicaReports(
    const std::vector<BadReplicaReport>& reports) {
  if (reports.empty()) return;
  if (parallel) {
    pending_bad_reports.insert(pending_bad_reports.end(), reports.begin(),
                               reports.end());
    return;
  }
  for (const BadReplicaReport& r : reports) {
    (void)dfs->ReportBadReplica(r.block_id, r.datanode);
  }
  IngestRepairs();
}

ReadOutcome SessionEngine::ExecuteRead(int j, RecordReader* rdr,
                                       const InputSplit& split,
                                       int node) const {
  const JobExec& job = jobs[static_cast<size_t>(j)];
  ReadOutcome out;
  out.output = std::make_unique<MapOutput>(job.submitted->spec.collect_output);
  ReadContext ctx;
  ctx.dfs = dfs;
  ctx.spec = &job.submitted->spec;
  ctx.plan = &job.plan;
  ctx.task_node = node;
  ctx.out = out.output.get();
  // Reader spans land in the outcome's buffer (at billed-cost offsets);
  // the completion event splices them, so pool threads never touch the
  // session tracer.
  if (tracer != nullptr) ctx.trace = &out.trace;
  out.cost = rdr->ReadSplit(split, &ctx);
  out.records_seen = ctx.records_seen;
  out.records_qualifying = ctx.records_qualifying;
  out.bad_records = ctx.bad_records;
  out.fallback_scan = ctx.fallback_scan;
  out.index_scan = ctx.index_scan;
  out.unclustered_scan = ctx.unclustered_scan;
  out.blocks_scanned = ctx.blocks_scanned;
  out.blocks_skipped = ctx.blocks_skipped;
  out.rows_skipped = ctx.rows_skipped;
  out.zone_skipped_blocks = ctx.zone_skipped_blocks;
  out.bad_replicas = std::move(ctx.bad_replicas);
  return out;
}

void SessionEngine::FinishRead(int j, size_t task_id, int attempt, int node,
                               sim::SimTime assign_time, ReadOutcome outcome,
                               const uint64_t* reserved_seq) {
  // The outcome travels inside the completion event instead of being
  // written into TaskState here: with speculation two attempts of one task
  // can be live at once, and only the completion order decides whose
  // results count. (EventQueue callbacks are copyable std::functions,
  // hence the shared_ptr.)
  auto oc = std::make_shared<ReadOutcome>(std::move(outcome));
  // A failed attempt still occupied its slot for setup + cleanup before
  // reporting the error.
  double duration = constants().task_setup_s + constants().task_cleanup_s;
  double rr = 0.0;
  if (oc->cost.ok()) {
    // Slow nodes stretch the data-access portion of the attempt.
    const double factor = plan.slow_factor(node);
    rr = constants().task_rr_init_ms / 1000.0 + oc->cost->total() * factor;
    duration += oc->cost->total() * factor;
  }
  auto completion = [this, j, task_id, attempt, node, rr, oc] {
    OnTaskComplete(j, task_id, attempt, node, rr, oc);
  };
  if (reserved_seq != nullptr) {
    events.ScheduleAtReserved(*reserved_seq, assign_time + duration,
                              std::move(completion));
  } else {
    events.ScheduleAfter(duration, std::move(completion));
  }
}

void SessionEngine::AssignTask(int j, size_t task_id, int node) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  TaskState& task = job.tasks[task_id];
  task.status = TaskStatus::kRunning;
  task.attempt = ++task.attempt_serial;
  task.run_on = node;
  task.assign_time = events.Now();
  free_slots[static_cast<size_t>(node)] -= 1;
  scheduler.OnTaskStarted(j);
  DispatchRead(j, task_id, task.attempt, node);
}

void SessionEngine::TrySpeculate(int node, int* assigned) {
  // A straggler is a running task whose elapsed time exceeds
  // speculative_lag_factor times its job's average completed-task
  // duration. One duplicate per task, never on the task's own node;
  // most-overdue first, ties to the lowest (job, task) — all decided on
  // event-thread state, so serial and parallel pick identically.
  int best_j = -1;
  size_t best_t = 0;
  double best_overdue = 0.0;
  for (JobExec& job : jobs) {
    if (job.phase != JobExec::Phase::kActive) continue;
    if (job.submitted->kind != ClusterSession::Submitted::Kind::kQuery) {
      continue;
    }
    double done_rr = 0.0;
    uint32_t done_count = 0;
    for (const TaskState& t : job.tasks) {
      if (t.status == TaskStatus::kDone) {
        done_rr += t.rr_seconds;
        ++done_count;
      }
    }
    if (done_count == 0) continue;  // no duration estimate yet
    const double avg = constants().task_setup_s +
                       done_rr / static_cast<double>(done_count) +
                       constants().task_cleanup_s;
    const double threshold = options->speculative_lag_factor * avg;
    for (size_t i = 0; i < job.tasks.size(); ++i) {
      const TaskState& t = job.tasks[i];
      if (t.status != TaskStatus::kRunning || t.speculated ||
          t.spec_attempt != 0 || t.run_on == node) {
        continue;
      }
      const double elapsed = events.Now() - t.assign_time;
      if (elapsed <= threshold) continue;
      const double overdue = elapsed - threshold;
      if (best_j < 0 || overdue > best_overdue) {
        best_j = job.id;
        best_t = i;
        best_overdue = overdue;
      }
    }
  }
  if (best_j < 0) return;
  TaskState& task = jobs[static_cast<size_t>(best_j)].tasks[best_t];
  task.speculated = true;
  task.spec_attempt = ++task.attempt_serial;
  task.spec_node = node;
  task.spec_assign_time = events.Now();
  free_slots[static_cast<size_t>(node)] -= 1;
  scheduler.OnTaskStarted(best_j);
  ++spec_attempts;
  *assigned += 1;
  DispatchRead(best_j, best_t, task.spec_attempt, node);
}

void SessionEngine::DispatchRead(int j, size_t task_id, int attempt,
                                 int node) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  const InputSplit* split = job.tasks[task_id].split;
  if (!parallel) {
    // Functional read happens now; the simulated duration covers setup +
    // record reading + cleanup.
    FinishRead(j, task_id, attempt, node, events.Now(),
               ExecuteRead(j, job.reader.get(), *split, node),
               /*reserved_seq=*/nullptr);
    return;
  }

  // Parallel: reserve the completion event's FIFO slot here — exactly
  // where serial would allocate it — and dispatch the read to the pool.
  // The loop joins the future before the simulation can reach the task's
  // earliest possible completion instant.
  InFlight f;
  f.job = j;
  f.task_id = task_id;
  f.attempt = attempt;
  f.node = node;
  f.assign_time = events.Now();
  f.earliest_completion =
      f.assign_time + constants().task_setup_s + constants().task_cleanup_s;
  f.seq = events.ReserveSeq();
  const System system = job.submitted->spec.system;
  f.future = pool->Submit([this, j, split, node, system] {
    // Readers are cheap to construct; a private instance per read keeps
    // the pool threads free of any shared reader state.
    std::unique_ptr<RecordReader> rdr = MakeRecordReader(system);
    return ExecuteRead(j, rdr.get(), *split, node);
  });
  inflight.push_back(std::move(f));
}

void SessionEngine::AssignUpload(int j, size_t task_id, int node) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  TaskState& task = job.tasks[task_id];
  task.status = TaskStatus::kRunning;
  task.attempt += 1;
  task.run_on = node;
  task.assign_time = events.Now();
  free_slots[static_cast<size_t>(node)] -= 1;
  scheduler.OnTaskStarted(j);
  if (!parallel) {
    ExecuteUpload(j, task_id, node, /*reserved_seq=*/nullptr);
    return;
  }
  // Uploads mutate shared DFS state: defer execution until the loop has
  // drained every in-flight pool read (they were assigned pre-mutation and
  // must observe pre-upload bytes). The completion event's FIFO rank and
  // the upload's simulated start instant are fixed here, so the deferral
  // changes nothing simulated.
  PendingUpload u;
  u.job = j;
  u.task_id = task_id;
  u.node = node;
  u.seq = events.ReserveSeq();
  pending_uploads.push_back(u);
}

void SessionEngine::ExecuteUpload(int j, size_t task_id, int node,
                                  const uint64_t* reserved_seq) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  TaskState& task = job.tasks[task_id];
  const UploadJobSpec& spec = job.submitted->upload;
  const UploadJobSpec::File& file = *task.file;
  const sim::SimTime start = events.Now();
  sim::SimTime completed_at = start;
  Status st;
  if (spec.system == System::kHail) {
    Result<HailUploadReport> rep = HailUploadTextFile(
        dfs, spec.hail, node, file.dfs_path, file.text, start);
    if (rep.ok()) {
      completed_at = rep->completed;
    } else {
      st = rep.status();
    }
  } else {
    Result<hdfs::UploadReport> rep =
        hdfs::UploadTextFile(dfs, node, file.dfs_path, file.text, start);
    if (rep.ok()) {
      completed_at = rep->completed;
    } else {
      st = rep.status();
    }
  }
  if (!st.ok()) {
    // Per-tenant failure: the upload job dies, the cluster lives on.
    free_slots[static_cast<size_t>(node)] += 1;
    scheduler.OnTaskFinished(j);
    task.status = TaskStatus::kDone;
    FailJob(j, std::move(st));
    events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                         [this, node] { Heartbeat(node); });
    return;
  }
  // The ingest runs inside a task wrapper: it holds its slot for the
  // upload's simulated duration plus the usual task setup/cleanup.
  task.rr_seconds = std::max(0.0, completed_at - start);
  const double duration =
      constants().task_setup_s + task.rr_seconds + constants().task_cleanup_s;
  const int attempt = task.attempt;
  auto completion = [this, j, task_id, attempt, node] {
    OnTaskComplete(j, task_id, attempt, node, /*rr_seconds=*/0.0,
                   /*outcome=*/nullptr);
  };
  if (reserved_seq != nullptr) {
    events.ScheduleAtReserved(*reserved_seq, start + duration,
                              std::move(completion));
  } else {
    events.ScheduleAfter(duration, std::move(completion));
  }
}

void SessionEngine::JoinOldest() {
  InFlight f = std::move(inflight.front());
  inflight.pop_front();
  FinishRead(f.job, f.task_id, f.attempt, f.node, f.assign_time,
             f.future.get(), &f.seq);
}

void SessionEngine::AccountUsage(int j, const TaskState& task,
                                 double slot_seconds) {
  // usage was sized to the queue count in Run; queues only register there.
  const size_t q = static_cast<size_t>(scheduler.queue_of(j));
  usage[q].tasks += 1;
  usage[q].slot_seconds += slot_seconds;
  if (task.contended) {
    usage[q].contended_tasks += 1;
    usage[q].contended_slot_seconds += slot_seconds;
  }
}

void SessionEngine::OnTaskComplete(int j, size_t task_id, int attempt,
                                   int node, double rr_seconds,
                                   const std::shared_ptr<ReadOutcome>& outcome) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  TaskState& task = job.tasks[task_id];
  // Corrupt-replica sightings are reported no matter whose attempt this is
  // — the failed-over read really happened. Serial reports inline (before
  // any kill below); parallel defers to the loop's post-drain window in
  // the same order.
  if (outcome != nullptr) ApplyBadReplicaReports(outcome->bad_replicas);
  if (attempt != 0 && attempt == task.loser_attempt) {
    // The losing attempt of a task whose race already ended: give the
    // slot back, discard the result — but bill the duplicate's reader
    // cost to the tenant as wasted speculation (the cluster did the work).
    if (first_error.ok() && outcome != nullptr && outcome->cost.ok()) {
      const double lost = outcome->cost->total();
      job.waste_ledger.Bill(obs::CostBucket::kWastedSpeculation, lost);
      job.waste_seconds += lost;
      if (tracing()) {
        const double factor = plan.slow_factor(node);
        const double duration = constants().task_setup_s +
                                constants().task_cleanup_s + lost * factor;
        const sim::SimTime start = events.Now() - duration;
        const uint64_t sp = tracer->AddSpan("map_task", "task", start,
                                            duration, job.span, node);
        tracer->Attr(sp, "task", static_cast<uint64_t>(task_id));
        tracer->Attr(sp, "attempt", static_cast<int64_t>(attempt));
        tracer->Attr(sp, "node", static_cast<int64_t>(node));
        tracer->Attr(sp, "result", "speculative_loser");
        tracer->Attr(sp, "wasted_cost_seconds", lost);
        tracer->Splice(outcome->trace, sp, node,
                       start + constants().task_setup_s, factor);
      }
    }
    const int loser_node = task.loser_node;
    task.loser_attempt = 0;
    task.loser_node = -1;
    if (dfs->cluster().node(loser_node).alive()) {
      free_slots[static_cast<size_t>(loser_node)] += 1;
      scheduler.OnTaskFinished(j);
      events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                           [this, loser_node] { Heartbeat(loser_node); });
    }
    return;
  }
  const bool is_primary =
      task.status == TaskStatus::kRunning && attempt == task.attempt;
  const bool is_spec = task.status == TaskStatus::kRunning &&
                       task.spec_attempt != 0 && attempt == task.spec_attempt;
  if (!is_primary && !is_spec) {
    return;  // stale completion of a superseded attempt
  }
  if (job.phase == JobExec::Phase::kFailed) {
    // Sibling task of a tenant that already failed: just give the slot
    // back to the cluster. This must run even after the session's last
    // job finished (session_done) — a zombie slot would otherwise block
    // the post-session maintenance drain on this node.
    if (is_primary && task.spec_attempt != 0) {
      // A duplicate is still in flight; promote it so its own arrival
      // lands here too and releases its slot.
      task.attempt = task.spec_attempt;
      task.run_on = task.spec_node;
      task.spec_attempt = 0;
      task.spec_node = -1;
    } else if (is_spec) {
      task.spec_attempt = 0;
      task.spec_node = -1;
    } else {
      task.status = TaskStatus::kDone;
    }
    if (!dfs->cluster().node(node).alive()) return;  // slot died with it
    free_slots[static_cast<size_t>(node)] += 1;
    scheduler.OnTaskFinished(j);
    events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                         [this, node] { Heartbeat(node); });
    return;
  }
  if (session_done) return;
  if (!dfs->cluster().node(node).alive()) {
    return;  // node died mid-run; the failure detector handles it
  }
  if (outcome != nullptr && !outcome->cost.ok()) {
    HandleFailedAttempt(j, task_id, attempt, node, outcome->cost.status());
    return;
  }

  // First completion wins: retire the sibling attempt (if any) as the
  // loser — its arrival only returns its slot.
  if (task.spec_attempt != 0) {
    if (is_spec) {
      task.loser_attempt = task.attempt;
      task.loser_node = task.run_on;
      task.attempt = attempt;
      task.run_on = node;
      task.assign_time = task.spec_assign_time;
      ++spec_wins;
    } else {
      task.loser_attempt = task.spec_attempt;
      task.loser_node = task.spec_node;
    }
    task.spec_attempt = 0;
    task.spec_node = -1;
  }
  if (outcome != nullptr) {
    task.output = std::move(outcome->output);
    task.records_seen = outcome->records_seen;
    task.records_qualifying = outcome->records_qualifying;
    task.bad_records = outcome->bad_records;
    task.fallback_scan = outcome->fallback_scan;
    task.index_scan = outcome->index_scan;
    task.unclustered_scan = outcome->unclustered_scan;
    task.ledger = outcome->cost->ledger;
    task.billed_seconds = outcome->cost->total();
    task.blocks_scanned = outcome->blocks_scanned;
    task.blocks_skipped = outcome->blocks_skipped;
    task.rows_skipped = outcome->rows_skipped;
    task.zone_skipped_blocks = outcome->zone_skipped_blocks;
    // RecordReader time = one-time reader construction + the data access
    // (already stretched by the executing node's slow factor).
    task.rr_seconds = rr_seconds;
  }
  task.status = TaskStatus::kDone;
  free_slots[static_cast<size_t>(node)] += 1;
  scheduler.OnTaskFinished(j);
  ++job.completed;
  if (tracing()) {
    const sim::SimTime start = task.assign_time;
    const uint64_t sp = tracer->AddSpan(
        outcome != nullptr ? "map_task" : "upload_task", "task", start,
        events.Now() - start, job.span, node);
    tracer->Attr(sp, "task", static_cast<uint64_t>(task_id));
    tracer->Attr(sp, "attempt", static_cast<int64_t>(attempt));
    tracer->Attr(sp, "node", static_cast<int64_t>(node));
    if (outcome != nullptr) {
      tracer->Attr(sp, "records", task.records_seen);
      tracer->Attr(sp, "qualifying", task.records_qualifying);
      tracer->Attr(sp, "billed_cost_seconds", task.billed_seconds);
      tracer->Attr(sp, "billed_cost_nanos", task.ledger.total_nanos);
      tracer->Splice(outcome->trace, sp, node,
                     start + constants().task_setup_s,
                     plan.slow_factor(node));
    } else if (task.file != nullptr) {
      tracer->Attr(sp, "file", task.file->dfs_path);
    }
  }
  AccountUsage(j, task,
               constants().task_setup_s + task.rr_seconds +
                   constants().task_cleanup_s);

  // Failure injection: kill a victim once the designated job crosses its
  // progress threshold ("we kill all Java processes ... after 50% of work
  // progress", §6.4.3). Time-triggered kills fired via their own events.
  for (size_t k = 0; k < plan.kills.size(); ++k) {
    const sim::FaultPlan::Kill& kill = plan.kills[k];
    if (kill_fired[k] || kill.node < 0 || kill.at_progress < 0.0) continue;
    if (j != kill.progress_job) continue;
    if (static_cast<double>(job.completed) >=
        kill.at_progress * static_cast<double>(job.tasks.size())) {
      kill_fired[k] = 1;
      RequestKill(kill.node, kill.revive_after);
    }
  }

  if (job.completed == job.tasks.size()) {
    JobDone(j);
    if (session_done) return;  // idle cluster: only maintenance remains
  }
  // Out-of-band heartbeat: the freed slot asks for work shortly after
  // completion instead of waiting for the periodic beat.
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
}

void SessionEngine::HandleFailedAttempt(int j, size_t task_id, int attempt,
                                        int node, const Status& st) {
  JobExec& job = jobs[static_cast<size_t>(j)];
  TaskState& task = job.tasks[task_id];
  if (tracing()) {
    const sim::SimTime start =
        attempt == task.attempt ? task.assign_time : task.spec_assign_time;
    const uint64_t sp = tracer->AddSpan("map_task", "task", start,
                                        events.Now() - start, job.span, node);
    tracer->Attr(sp, "task", static_cast<uint64_t>(task_id));
    tracer->Attr(sp, "attempt", static_cast<int64_t>(attempt));
    tracer->Attr(sp, "node", static_cast<int64_t>(node));
    tracer->Attr(sp, "result", "failed");
    tracer->Attr(sp, "error", st.message());
  }
  free_slots[static_cast<size_t>(node)] += 1;
  scheduler.OnTaskFinished(j);
  events.ScheduleAfter(constants().oob_heartbeat_latency_s,
                       [this, node] { Heartbeat(node); });
  if (task.spec_attempt != 0) {
    // The sibling attempt lives on as the sole attempt of the task.
    if (attempt == task.attempt) {
      task.attempt = task.spec_attempt;
      task.run_on = task.spec_node;
      task.assign_time = task.spec_assign_time;
    }
    task.spec_attempt = 0;
    task.spec_node = -1;
    return;
  }
  // Retryable failures (dead replica set, exhausted failover) requeue
  // with capped exponential backoff; anything else — and the attempt cap
  // — fails the job cleanly instead of requeueing forever.
  const bool retryable = st.IsUnavailable() || st.IsCorruption();
  if (!retryable || task.reschedules + 1 >= options->max_task_attempts) {
    task.status = TaskStatus::kDone;  // attempt retired; job is over
    FailJob(j, st);
    return;
  }
  task.status = TaskStatus::kPending;
  task.awaiting_backoff = true;
  task.reschedules += 1;
  ++task_retries;
  double backoff = options->retry_backoff_s;
  for (int i = 1; i < task.reschedules; ++i) backoff *= 2.0;
  backoff = std::min(backoff, options->retry_backoff_max_s);
  events.ScheduleAfter(backoff, [this, j, task_id] {
    JobExec& job2 = jobs[static_cast<size_t>(j)];
    TaskState& t = job2.tasks[task_id];
    const bool still_wanted = t.awaiting_backoff &&
                              job2.phase == JobExec::Phase::kActive &&
                              !session_done;
    t.awaiting_backoff = false;
    if (!still_wanted) return;
    t.pending_since = events.Now();
    job2.pending.Push(task_id, t.preferred_nodes());
    ++foreground_pending;
    scheduler.SetPending(j, job2.pending.size());
  });
}

void SessionEngine::OnFailureDetected(int node) {
  // Re-replication sees the loss first: every replica the dead node held
  // goes onto the namenode's under-replicated queue — even when the
  // session is already winding down, because that queue outlives it.
  if (options->self_heal) {
    dfs->namenode().EnqueueLostNodeReplicas(node);
    IngestRepairs();
    // Queued repairs that were targeted at the dead node need a new home.
    if (!repairs_by_node.empty()) {
      std::deque<size_t>& rq = repairs_by_node[static_cast<size_t>(node)];
      while (!rq.empty()) {
        const size_t rid = rq.front();
        rq.pop_front();
        repairs[rid].target = -1;
        RetargetRepair(rid);
      }
    }
  }
  if (session_done) return;
  // Lost in-flight tasks and completed map outputs on the dead node are
  // re-executed elsewhere. Jobs already done keep their numbers (fixed at
  // completion); upload tasks are not re-executed — their pipeline writes
  // committed at assignment and live on the chain's surviving replicas —
  // a running upload task simply completes at detection time.
  for (JobExec& job : jobs) {
    if (job.phase != JobExec::Phase::kActive) continue;
    bool requeued = false;
    for (size_t i = 0; i < job.tasks.size(); ++i) {
      TaskState& task = job.tasks[i];
      // Speculation bookkeeping tied to the dead node dissolves — the
      // slot died with it, and late completions arrive as superseded
      // attempts.
      if (task.loser_attempt != 0 && task.loser_node == node) {
        task.loser_attempt = 0;
        task.loser_node = -1;
      }
      if (task.status == TaskStatus::kRunning && task.spec_attempt != 0 &&
          task.spec_node == node) {
        task.spec_attempt = 0;
        task.spec_node = -1;
        scheduler.OnTaskFinished(job.id);
      }
      if (task.run_on != node) continue;
      if (job.submitted->kind == ClusterSession::Submitted::Kind::kUpload) {
        if (task.status == TaskStatus::kRunning) {
          task.status = TaskStatus::kDone;
          scheduler.OnTaskFinished(job.id);
          ++job.completed;
          // The slot vanished at the kill instant: charge only the
          // occupancy the node actually provided, not the full nominal
          // duration (queries in the same situation re-run and account
          // their successful attempt only).
          const double nominal = constants().task_setup_s + task.rr_seconds +
                                 constants().task_cleanup_s;
          const double held = dfs->cluster().node(node).death_time() -
                              task.assign_time;
          AccountUsage(job.id, task, std::clamp(held, 0.0, nominal));
        }
        continue;
      }
      if (task.status == TaskStatus::kRunning) {
        if (task.spec_attempt != 0) {
          // The surviving speculative attempt becomes the primary: no
          // requeue, the task keeps running where the duplicate is.
          task.attempt = task.spec_attempt;
          task.run_on = task.spec_node;
          task.assign_time = task.spec_assign_time;
          task.spec_attempt = 0;
          task.spec_node = -1;
          scheduler.OnTaskFinished(job.id);
          continue;
        }
        task.status = TaskStatus::kPending;
        task.reschedules += 1;
        task.pending_since = events.Now();
        scheduler.OnTaskFinished(job.id);
        job.pending.Push(i, task.preferred_nodes());
        ++foreground_pending;
        requeued = true;
      } else if (task.status == TaskStatus::kDone) {
        task.status = TaskStatus::kPending;
        task.reschedules += 1;
        task.pending_since = events.Now();
        task.output.reset();
        --job.completed;
        job.pending.Push(i, task.preferred_nodes());
        ++foreground_pending;
        requeued = true;
      }
    }
    if (requeued) scheduler.SetPending(job.id, job.pending.size());
    if (job.submitted->kind == ClusterSession::Submitted::Kind::kUpload &&
        job.completed == job.tasks.size()) {
      JobDone(job.id);
      if (session_done) return;
    }
  }
}

void SessionEngine::RunParallelLoop() {
  for (;;) {
    // Join every in-flight read whose completion event could precede the
    // next queued event — (earliest_completion, reserved seq) is a strict
    // lower bound on the completion event's (time, seq) key, so the
    // simulation never runs past an unscheduled completion.
    while (!inflight.empty()) {
      bool join_now = true;
      if (events.pending() > 0) {
        const auto [when, seq] = events.NextKey();
        const InFlight& f = inflight.front();
        join_now = f.earliest_completion < when ||
                   (f.earliest_completion == when && f.seq < seq);
      }
      if (!join_now) break;
      JoinOldest();
    }
    if (!first_error.ok()) break;
    if (events.pending() == 0) {
      if (inflight.empty()) break;
      continue;  // only in-flight reads remain; join them next pass
    }
    events.RunOne();
    if (!pending_faults.empty() || !pending_commits.empty() ||
        !pending_uploads.empty() || !pending_repair_commits.empty() ||
        !pending_bad_reports.empty()) {
      // Drain all in-flight reads before mutating shared DFS state
      // (upload execution, reorg/repair commit, bad-replica report or
      // fault): they were assigned pre-mutation and must observe — and
      // may be concurrently reading — the pre-mutation bytes. The apply
      // order mirrors the inline order serial uses within one event:
      // reports land before fault requests (OnTaskComplete reports at
      // entry, requests kills later), and at most one category besides
      // those is pending per event.
      while (!inflight.empty()) JoinOldest();
      for (const PendingUpload& u : pending_uploads) {
        ExecuteUpload(u.job, u.task_id, u.node, &u.seq);
      }
      pending_uploads.clear();
      for (size_t mid : pending_commits) CommitMaintenance(mid);
      pending_commits.clear();
      for (size_t rid : pending_repair_commits) CommitRepairInline(rid);
      pending_repair_commits.clear();
      if (!pending_bad_reports.empty()) {
        std::vector<BadReplicaReport> reports =
            std::move(pending_bad_reports);
        pending_bad_reports.clear();
        for (const BadReplicaReport& r : reports) {
          (void)dfs->ReportBadReplica(r.block_id, r.datanode);
        }
        IngestRepairs();
      }
      if (!pending_faults.empty()) {
        std::vector<PendingFault> faults = std::move(pending_faults);
        pending_faults.clear();
        for (const PendingFault& f : faults) {
          switch (f.kind) {
            case PendingFault::Kind::kKill:
              ApplyKill(f.node, f.revive_after, &f.seq);
              break;
            case PendingFault::Kind::kRevive:
              ApplyRevive(f.node);
              break;
            case PendingFault::Kind::kCorrupt:
              ApplyCorrupt(f.node, f.nth_block);
              break;
          }
        }
      }
    }
  }
  // Error exit: wait out any stragglers so no pool thread touches this
  // engine after Run returns (their results are discarded, exactly as
  // serial never executed those reads' results).
  while (!inflight.empty()) {
    inflight.front().future.wait();
    inflight.pop_front();
  }
  // Serial drains every remaining (no-op) event after an error; mirror it
  // so executed-event accounting matches.
  events.RunUntilEmpty();
}

JobResult SessionEngine::AssembleResult(const JobExec& job) const {
  const ClusterSession::Submitted& sub = *job.submitted;
  JobResult result;
  result.job_name = sub.kind == ClusterSession::Submitted::Kind::kQuery
                        ? sub.spec.name
                        : sub.upload.name;
  // Per-job latency on the shared clock: completion minus submission.
  result.end_to_end_seconds = job.finish_time - sub.submit_time;
  result.map_tasks = static_cast<uint32_t>(job.tasks.size());

  // Per-query cost attribution: winning attempts' reader ledgers plus the
  // engine-level waste billed to this tenant (preemptions, speculative
  // losers). Buckets sum exactly to the billed total by construction.
  result.index_column = sub.kind == ClusterSession::Submitted::Kind::kQuery
                            ? job.plan.index_column
                            : -1;
  result.planned = job.plan.planned;
  result.predicted_cost_seconds = job.plan.predicted_cost_seconds;
  result.cost = job.waste_ledger;
  result.billed_cost_seconds = job.waste_seconds;

  double rr_sum = 0.0;
  for (const TaskState& task : job.tasks) {
    rr_sum += task.rr_seconds;
    result.records_seen += task.records_seen;
    result.records_qualifying += task.records_qualifying;
    result.bad_records_seen += task.bad_records;
    result.rescheduled_tasks += static_cast<uint32_t>(task.reschedules);
    result.cost.Add(task.ledger);
    result.billed_cost_seconds += task.billed_seconds;
    result.blocks_scanned += task.blocks_scanned;
    result.blocks_skipped += task.blocks_skipped;
    result.rows_skipped += task.rows_skipped;
    result.zone_skipped_blocks += task.zone_skipped_blocks;
    if (task.fallback_scan) result.fallback_scans += 1;
    if (task.index_scan) result.index_scan_tasks += 1;
    if (task.unclustered_scan) result.unclustered_scan_tasks += 1;
    if (task.output != nullptr) {
      result.output_count += task.output->count();
      if (sub.kind == ClusterSession::Submitted::Kind::kQuery &&
          sub.spec.collect_output) {
        for (const std::string& row : task.output->rows()) {
          result.output_rows.push_back(row);
        }
      }
    }
  }
  result.avg_record_reader_seconds =
      rr_sum / static_cast<double>(job.tasks.size());
  // T_ideal = #MapTasks / #ParallelMapTasks * Avg(T_RecordReader) (§6.4.1).
  result.ideal_seconds = static_cast<double>(job.tasks.size()) /
                         static_cast<double>(total_slots) *
                         result.avg_record_reader_seconds;
  result.overhead_seconds = result.end_to_end_seconds - result.ideal_seconds;

  // Background maintenance is session-scoped; every job reports the
  // session totals (a single-job session reads exactly like the old
  // single-job runner).
  result.maintenance_scheduled = static_cast<uint32_t>(maint.size());
  result.maintenance_completed = maint_completed;
  result.maintenance_failed = maint_failed;
  return result;
}

// ---------------------------------------------------------------------------
// ClusterSession
// ---------------------------------------------------------------------------

ClusterSession::ClusterSession(hdfs::MiniDfs* dfs, SessionOptions options)
    : dfs_(dfs), options_(std::move(options)) {}

int ClusterSession::Submit(JobSpec spec, std::string queue,
                           sim::SimTime submit_time, int depends_on) {
  Submitted sub;
  sub.kind = Submitted::Kind::kQuery;
  sub.spec = std::move(spec);
  sub.queue = std::move(queue);
  sub.submit_time = submit_time;
  sub.depends_on = depends_on;
  jobs_.push_back(std::move(sub));
  return static_cast<int>(jobs_.size()) - 1;
}

int ClusterSession::SubmitUpload(UploadJobSpec upload, std::string queue,
                                 sim::SimTime submit_time, int depends_on) {
  Submitted sub;
  sub.kind = Submitted::Kind::kUpload;
  sub.upload = std::move(upload);
  sub.queue = std::move(queue);
  sub.submit_time = submit_time;
  sub.depends_on = depends_on;
  jobs_.push_back(std::move(sub));
  return static_cast<int>(jobs_.size()) - 1;
}

Result<SessionResult> ClusterSession::Run() {
  if (ran_) {
    return Status::FailedPrecondition("ClusterSession::Run is single-use");
  }
  ran_ = true;
  if (jobs_.empty()) {
    return Status::InvalidArgument("session has no jobs");
  }
  sim::SimCluster& cluster = dfs_->cluster();
  // Session boundary: reset resource bookings and revive dead nodes once
  // for the whole session (jobs inside it share cluster state).
  dfs_->ResetForSession();

  SessionEngine eng;
  eng.dfs = dfs_;
  eng.options = &options_;
  eng.scheduler = SlotScheduler(options_.policy, options_.queue_weights);
  eng.parallel = ResolveMode(options_.execution) == ExecutionMode::kParallel;
  if (eng.parallel) eng.pool = SharedPool();
  eng.tracer = options_.tracer;
  if (eng.tracer != nullptr) {
    eng.session_span = eng.tracer->AddSpan("session", "session", 0.0, 0.0,
                                           /*parent=*/0, /*lane=*/-1);
    eng.tracer->Attr(eng.session_span, "jobs",
                     static_cast<uint64_t>(jobs_.size()));
    eng.tracer->Attr(eng.session_span, "nodes",
                     static_cast<int64_t>(cluster.num_nodes()));
  }

  // Effective fault schedule: the deterministic plan plus the legacy
  // single-kill knob (kept for callers that predate FaultPlan).
  eng.plan = options_.fault_plan;
  if (options_.kill_node >= 0) {
    sim::FaultPlan::Kill kill;
    kill.node = options_.kill_node;
    kill.at_progress = options_.kill_at_progress;
    kill.progress_job = options_.kill_progress_job;
    eng.plan.kills.push_back(kill);
  }
  eng.kill_fired.assign(eng.plan.kills.size(), 0);

  // Session-start corruptions (at_time <= 0) land before any plan or
  // read: the fault exists from the first instant in both execution modes.
  for (const sim::FaultPlan::Corrupt& c : eng.plan.corruptions) {
    if (c.at_time <= 0.0) eng.ApplyCorrupt(c.node, c.nth_block);
  }

  eng.jobs.resize(jobs_.size());
  for (size_t i = 0; i < jobs_.size(); ++i) {
    JobExec& job = eng.jobs[i];
    job.submitted = &jobs_[i];
    job.id = static_cast<int>(i);
    eng.scheduler.RegisterJob(jobs_[i].queue);
    const auto slo = options_.queue_slo_s.find(jobs_[i].queue);
    if (slo != options_.queue_slo_s.end() && slo->second > 0.0) {
      eng.scheduler.SetJobDeadline(static_cast<int>(i),
                                   jobs_[i].submit_time + slo->second);
    }
  }
  eng.usage.resize(eng.scheduler.queues().size());

  // Admit every immediately-submitted job now (plans computed against the
  // session-start DFS state, exactly like the single-job runner did).
  bool any_admissible = false;
  for (JobExec& job : eng.jobs) {
    const Submitted& sub = *job.submitted;
    if (job.phase != JobExec::Phase::kWaiting) continue;  // failed already
    if (sub.depends_on >= 0) {
      if (sub.depends_on >= job.id) {
        eng.FailJob(job.id, Status::InvalidArgument(
                                "depends_on must name an earlier job"));
      } else {
        any_admissible = true;  // admitted when the dependency completes
      }
      continue;
    }
    if (sub.submit_time > 0.0) {
      any_admissible = true;  // admission event scheduled below
      continue;
    }
    eng.AdmitJob(job.id);
    if (job.phase == JobExec::Phase::kStarting) any_admissible = true;
  }
  if (!any_admissible) {
    // Nothing can ever run (every job failed admission): report per-job
    // errors without touching cluster or adaptive-manager state — an
    // aborted session must never swallow the maintenance queue.
    SessionResult out;
    for (const JobExec& job : eng.jobs) {
      out.jobs.push_back(Result<JobResult>(job.error));
    }
    return out;
  }

  eng.free_slots.resize(static_cast<size_t>(cluster.num_nodes()));
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    eng.free_slots[static_cast<size_t>(i)] =
        cluster.node(i).alive() ? cluster.node(i).profile().map_slots : 0;
    eng.total_slots += eng.free_slots[static_cast<size_t>(i)];
  }
  if (eng.total_slots == 0) {
    return Status::FailedPrecondition("no alive TaskTrackers");
  }

  // Adaptive maintenance: take every pending replica rewrite; they run on
  // slots with no foreground work and whatever does not finish goes back.
  eng.maint_by_node.resize(static_cast<size_t>(cluster.num_nodes()));
  eng.repairs_by_node.resize(static_cast<size_t>(cluster.num_nodes()));
  // Losses recorded by earlier sessions wait in the namenode; a
  // self-healing session picks them up at the boundary.
  eng.IngestRepairs();
  if (options_.adaptive != nullptr) {
    eng.EnqueueMaintTasks(options_.adaptive->TakeTasks());
  }

  // Activation + deferred-admission events. For time-0 jobs the admission
  // already happened; their tasks appear once startup + split phase has
  // been paid.
  sim::SimTime first_eligible = -1.0;
  for (JobExec& job : eng.jobs) {
    const int id = job.id;
    if (job.phase == JobExec::Phase::kStarting) {
      eng.events.ScheduleAt(job.eligible_at,
                            [&eng, id] { eng.ActivateJob(id); });
      if (first_eligible < 0.0 || job.eligible_at < first_eligible) {
        first_eligible = job.eligible_at;
      }
    } else if (job.phase == JobExec::Phase::kWaiting &&
               job.submitted->depends_on < 0) {
      eng.events.ScheduleAt(job.submitted->submit_time, [&eng, id] {
        eng.AdmitJob(id);
        JobExec& deferred = eng.jobs[static_cast<size_t>(id)];
        if (deferred.phase == JobExec::Phase::kStarting) {
          eng.events.ScheduleAt(deferred.eligible_at,
                                [&eng, id] { eng.ActivateJob(id); });
        }
      });
    }
  }

  // Time-triggered faults fire as plain events; progress-triggered kills
  // are checked in OnTaskComplete.
  for (size_t k = 0; k < eng.plan.kills.size(); ++k) {
    const sim::FaultPlan::Kill& kill = eng.plan.kills[k];
    if (kill.node < 0 || kill.at_time < 0.0) continue;
    eng.kill_fired[k] = 1;  // fires exactly once, below
    const int victim = kill.node;
    const double revive_after = kill.revive_after;
    eng.events.ScheduleAt(kill.at_time, [&eng, victim, revive_after] {
      eng.RequestKill(victim, revive_after);
    });
  }
  for (const sim::FaultPlan::Corrupt& c : eng.plan.corruptions) {
    if (c.at_time <= 0.0) continue;  // applied at the session boundary
    const int cn = c.node;
    const int nth = c.nth_block;
    eng.events.ScheduleAt(c.at_time,
                          [&eng, cn, nth] { eng.RequestCorrupt(cn, nth); });
  }

  // Per-node TaskTracker heartbeats, staggered like real daemon start
  // times, from the first instant any job can have work.
  const sim::SimTime t0 = first_eligible >= 0.0 ? first_eligible : 0.0;
  const sim::CostConstants& c = cluster.constants();
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (!cluster.node(i).alive()) continue;
    const double stagger = c.heartbeat_interval_s *
                           (static_cast<double>(i) + 1.0) /
                           static_cast<double>(cluster.num_nodes());
    // Each TaskTracker re-schedules its own periodic heartbeat.
    struct Beat {
      SessionEngine* eng;
      int node;
      double interval;
      void operator()() const {
        eng->Heartbeat(node);
        // Starvation guard: a session that cannot make progress (all
        // replicas of a pending block dead, or a logic error) must not
        // heartbeat forever.
        if (eng->events.executed() > 50'000'000 && eng->first_error.ok()) {
          eng->first_error = Status::Unknown("scheduler starved (event cap)");
          eng->session_done = true;
        }
        if (!eng->session_done) {
          SessionEngine* e = eng;
          int n = node;
          double iv = interval;
          eng->events.ScheduleAfter(interval, Beat{e, n, iv});
        }
      }
    };
    eng.events.ScheduleAt(t0 + stagger, Beat{&eng, i, c.heartbeat_interval_s});
  }

  if (eng.parallel) {
    eng.RunParallelLoop();
  } else {
    eng.events.RunUntilEmpty();
  }
  if (eng.tracer != nullptr && eng.session_span != 0) {
    // Both modes drain to an empty queue, so Now() — the last executed
    // event's instant — is identical serial and parallel.
    eng.tracer->SetEnd(eng.session_span, eng.events.Now());
  }

  // Unfinished maintenance goes back to the manager *before* any error
  // exit — a failed session must not lose queued reorganization work.
  if (options_.adaptive != nullptr) {
    std::vector<adaptive::MaintenanceTask> unfinished;
    for (const MaintState& m : eng.maint) {
      if (m.status == MaintState::Status::kPending ||
          m.status == MaintState::Status::kRunning) {
        unfinished.push_back(m.task);
      }
    }
    options_.adaptive->ReturnUnfinished(std::move(unfinished));
    options_.adaptive->NoteCompleted(eng.maint_completed, eng.maint_failed);
  }
  // Unserviced repairs go back to the namenode *before* any error exit —
  // a lost replica stays on the books until some session re-creates it.
  for (const RepairState& r : eng.repairs) {
    if (r.status == RepairState::Status::kQueued ||
        r.status == RepairState::Status::kRunning) {
      dfs_->namenode().RequeueUnderReplicated(r.entry);
    }
  }
  HAIL_RETURN_NOT_OK(eng.first_error);
  for (const JobExec& job : eng.jobs) {
    if (job.phase != JobExec::Phase::kDone &&
        job.phase != JobExec::Phase::kFailed) {
      const Submitted& sub = *job.submitted;
      const std::string& name = sub.kind == Submitted::Kind::kQuery
                                    ? sub.spec.name
                                    : sub.upload.name;
      return Status::Unknown("job '" + name +
                             "' did not complete (scheduler starved)");
    }
  }

  // ---- assemble the results ----
  SessionResult out;
  out.jobs.reserve(eng.jobs.size());
  for (const JobExec& job : eng.jobs) {
    // Failed tenants still held the cluster until their failure instant —
    // the session makespan covers them too.
    out.session_seconds = std::max(out.session_seconds, job.finish_time);
    if (job.phase == JobExec::Phase::kFailed) {
      out.jobs.push_back(Result<JobResult>(job.error));
      continue;
    }
    out.jobs.push_back(eng.AssembleResult(job));
  }
  const auto& queues = eng.scheduler.queues();
  eng.usage.resize(queues.size());
  for (size_t q = 0; q < queues.size(); ++q) {
    eng.usage[q].queue = queues[q].name;
    eng.usage[q].weight = queues[q].weight;
    const auto slo = options_.queue_slo_s.find(queues[q].name);
    if (slo != options_.queue_slo_s.end() && slo->second > 0.0) {
      eng.usage[q].slo_target_s = slo->second;
    }
  }
  // Per-queue latency distribution + SLO accounting over completed jobs.
  std::vector<std::vector<double>> latencies(queues.size());
  for (const JobExec& job : eng.jobs) {
    if (job.phase != JobExec::Phase::kDone) continue;
    const size_t q = static_cast<size_t>(eng.scheduler.queue_of(job.id));
    const double latency = job.finish_time - job.submitted->submit_time;
    latencies[q].push_back(latency);
    eng.usage[q].jobs_completed += 1;
    if (eng.usage[q].slo_target_s > 0.0 &&
        latency > eng.usage[q].slo_target_s) {
      eng.usage[q].slo_violations += 1;
    }
  }
  for (size_t q = 0; q < queues.size(); ++q) {
    std::vector<double>& lat = latencies[q];
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    // Nearest-rank percentile: ceil(p * N) as a 1-based rank.
    const auto pct = [&lat](double p) {
      const size_t rank = static_cast<size_t>(
          std::ceil(p * static_cast<double>(lat.size())));
      return lat[std::min(lat.size(), std::max<size_t>(rank, 1)) - 1];
    };
    eng.usage[q].latency_p50_s = pct(0.50);
    eng.usage[q].latency_p95_s = pct(0.95);
    eng.usage[q].latency_p99_s = pct(0.99);
    out.slo_violations_total += eng.usage[q].slo_violations;
  }
  out.preemptions = eng.preemptions;
  out.preempted_slot_seconds = eng.preempted_slot_seconds;
  out.jobs_shed = eng.jobs_shed;
  out.replicas_added = eng.replicas_added;
  out.replicas_evicted = eng.replicas_evicted;
  out.queues = std::move(eng.usage);
  out.maintenance_scheduled = static_cast<uint32_t>(eng.maint.size());
  out.maintenance_completed = eng.maint_completed;
  out.maintenance_failed = eng.maint_failed;
  out.maintenance_while_foreground_pending = eng.maint_while_fg_pending;
  out.repairs_scheduled = static_cast<uint32_t>(eng.repairs.size());
  out.repairs_completed = eng.repairs_completed;
  out.repairs_abandoned = eng.repairs_abandoned;
  out.under_replicated_remaining = dfs_->namenode().under_replicated_count();
  out.task_retries = eng.task_retries;
  out.speculative_attempts = eng.spec_attempts;
  out.speculative_wins = eng.spec_wins;
  out.jobs_planned = eng.jobs_planned;
  out.plan_cache_hits = eng.plan_cache_hits;
  out.plan_cache_misses = eng.plan_cache_misses;
  out.plan_cache_invalidations = eng.plan_cache_invalidations;
  out.stats_backfilled = eng.stats_backfilled;

  // Mirror the session's engine counters into the cluster's unified
  // registry (monotonic across sessions; a snapshot after N sessions is
  // byte-identical serial vs parallel because every delta is).
  {
    obs::MetricsRegistry& m = dfs_->metrics();
    m.counter("scheduler.sessions")->Inc();
    m.counter("scheduler.jobs_submitted")->Add(jobs_.size());
    m.counter("scheduler.jobs_completed")
        ->Add(static_cast<uint64_t>(eng.completion_order.size()));
    m.counter("scheduler.jobs_shed")->Add(eng.jobs_shed);
    m.counter("scheduler.preemptions")->Add(eng.preemptions);
    m.counter("scheduler.task_retries")->Add(eng.task_retries);
    m.counter("scheduler.speculative_attempts")->Add(eng.spec_attempts);
    m.counter("scheduler.speculative_wins")->Add(eng.spec_wins);
    m.counter("scheduler.slo_violations")->Add(out.slo_violations_total);
    m.gauge("scheduler.preempted_slot_seconds")
        ->Add(eng.preempted_slot_seconds);
    m.counter("maintenance.scheduled")->Add(eng.maint.size());
    m.counter("maintenance.completed")->Add(eng.maint_completed);
    m.counter("maintenance.failed")->Add(eng.maint_failed);
    m.counter("repair.scheduled")->Add(eng.repairs.size());
    m.counter("repair.completed")->Add(eng.repairs_completed);
    m.counter("repair.abandoned")->Add(eng.repairs_abandoned);
    m.counter("replication.replicas_added")->Add(eng.replicas_added);
    m.counter("replication.replicas_evicted")->Add(eng.replicas_evicted);
    // Planner counters only materialize when planning is in play, so the
    // metric snapshots of planner-free runs stay byte-identical to before
    // the planner existed.
    if (eng.jobs_planned > 0 || options_.plan_cache != nullptr ||
        eng.stats_backfilled > 0) {
      uint64_t zone_skips = 0;
      for (const JobExec& job : eng.jobs) {
        for (const TaskState& task : job.tasks) {
          if (task.status == TaskStatus::kDone) {
            zone_skips += task.zone_skipped_blocks;
          }
        }
      }
      m.counter("planner.jobs_planned")->Add(eng.jobs_planned);
      m.counter("planner.blocks_skipped")->Add(zone_skips);
      m.counter("planner.plan_cache_hits")->Add(eng.plan_cache_hits);
      m.counter("planner.plan_cache_misses")->Add(eng.plan_cache_misses);
      m.counter("planner.plan_cache_invalidations")
          ->Add(eng.plan_cache_invalidations);
      m.counter("planner.stats_backfilled")->Add(eng.stats_backfilled);
    }
    obs::Histogram* rr = m.histogram(
        "task.rr_seconds", {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0});
    obs::Counter* billed = m.counter("cost.billed_nanos_total");
    for (const JobExec& job : eng.jobs) {
      if (job.phase != JobExec::Phase::kDone) continue;
      billed->Add(job.waste_ledger.total_nanos);
      for (const TaskState& task : job.tasks) {
        if (task.status != TaskStatus::kDone) continue;
        rr->Observe(task.rr_seconds);
        billed->Add(task.ledger.total_nanos);
      }
    }
  }

  if (options_.adaptive != nullptr) {
    // Close the loop in completion order: record each finished query (and
    // its access paths) in the workload observer; the planner may queue
    // reorganization for the next session against the now-current replica
    // directory.
    for (int j : eng.completion_order) {
      const Submitted& sub = jobs_[static_cast<size_t>(j)];
      if (sub.kind != Submitted::Kind::kQuery) continue;
      if (eng.jobs[static_cast<size_t>(j)].observed) continue;  // online path
      const Result<JobResult>& r = out.jobs[static_cast<size_t>(j)];
      if (r.ok()) options_.adaptive->ObserveJob(sub.spec, *r);
    }
  }
  return out;
}

}  // namespace mapreduce
}  // namespace hail
