#include "mapreduce/record_reader.h"

#include "schema/row_parser.h"

namespace hail {
namespace mapreduce {

namespace {

/// Default map function: emit projected attributes as a delimited row
/// (used when the job does not install its own map). Matches what the
/// equivalence tests compare across systems.
void DefaultMap(const JobSpec& spec, const HailRecord& record,
                MapOutput* out) {
  if (record.bad()) return;  // default behaviour: ignore bad records
  const std::vector<int>* proj = nullptr;
  std::vector<int> all;
  if (spec.annotation.has_value() && !spec.annotation->projection.empty()) {
    proj = &spec.annotation->projection;
  } else {
    all.resize(static_cast<size_t>(spec.schema.num_fields()));
    for (int i = 0; i < spec.schema.num_fields(); ++i) all[static_cast<size_t>(i)] = i;
    proj = &all;
  }
  std::string row;
  for (size_t i = 0; i < proj->size(); ++i) {
    if (i > 0) row += spec.schema.delimiter();
    const int attr = (*proj)[i];
    row += record.Get(attr + 1).ToText(spec.schema.field(attr).type);
  }
  out->Emit(std::move(row));
}

}  // namespace

bool InvokeMap(const ReadContext& ctx, const HailRecord& record,
               bool already_filtered) {
  const JobSpec& spec = *ctx.spec;
  if (!record.bad() && !already_filtered && spec.annotation.has_value() &&
      spec.annotation->has_filter()) {
    // Stock Hadoop: Bob's map function string-splits the row and filters
    // by hand (§4.1). The engine applies the same predicate for result
    // equivalence — through the split's compiled matcher when the reader
    // installed one.
    const bool match =
        ctx.row_matcher != nullptr
            ? ctx.row_matcher->MatchesRow(record.values())
            : spec.annotation->filter.Matches(record.values());
    if (!match) return false;
  }
  if (spec.map) {
    spec.map(record, ctx.out);
  } else {
    DefaultMap(spec, record, ctx.out);
  }
  return true;
}

}  // namespace mapreduce
}  // namespace hail
