#include "mapreduce/record_reader.h"

#include "schema/row_parser.h"

namespace hail {
namespace mapreduce {

namespace {

/// Default map function: emit projected attributes as a delimited row
/// (used when the job does not install its own map). Matches what the
/// equivalence tests compare across systems.
void DefaultMap(const JobSpec& spec, const HailRecord& record,
                MapOutput* out) {
  if (record.bad()) return;  // default behaviour: ignore bad records
  const std::vector<int>* proj = nullptr;
  std::vector<int> all;
  if (spec.annotation.has_value() && !spec.annotation->projection.empty()) {
    proj = &spec.annotation->projection;
  } else {
    all.resize(static_cast<size_t>(spec.schema.num_fields()));
    for (int i = 0; i < spec.schema.num_fields(); ++i) all[static_cast<size_t>(i)] = i;
    proj = &all;
  }
  std::string row;
  for (size_t i = 0; i < proj->size(); ++i) {
    if (i > 0) row += spec.schema.delimiter();
    const int attr = (*proj)[i];
    row += record.Get(attr + 1).ToText(spec.schema.field(attr).type);
  }
  out->Emit(std::move(row));
}

}  // namespace

Result<size_t> ReadReplicaWithFailover(ReadContext* ctx, uint64_t block_id,
                                       uint64_t logical_bytes,
                                       const std::vector<int>& candidates,
                                       TaskCost* cost,
                                       std::string_view* bytes_out) {
  const hdfs::DfsConfig& cfg = ctx->dfs->config();
  const sim::CostConstants& c = ctx->dfs->cluster().constants();
  const sim::CostModel& node_cost =
      ctx->dfs->cluster().node(ctx->task_node).cost();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const int dn = candidates[i];
    Result<std::string_view> read =
        ctx->dfs->datanode(dn).ReadBlockVerified(block_id, cfg.chunk_bytes);
    if (read.ok()) {
      *bytes_out = *read;
      return i;
    }
    const Status& st = read.status();
    if (st.IsCorruption()) {
      // The bytes were transferred and checksummed before the mismatch
      // surfaced: the whole wasted read is billed, then the next replica
      // is tried. The sighting is recorded for the engine to report.
      ctx->bad_replicas.push_back({block_id, dn});
      const double waste_start = cost->total();
      const double disk =
          c.block_open_ms / 1000.0 +
          ctx->dfs->cluster().node(dn).cost().DiskAccess(logical_bytes);
      const double cpu = node_cost.Crc(logical_bytes);
      double net = 0.0;
      cost->disk_seconds += disk;
      cost->cpu_seconds += cpu;
      if (dn != ctx->task_node) {
        net = node_cost.NetTransfer(logical_bytes);
        cost->net_seconds += net;
      }
      cost->logical_bytes_read += logical_bytes;
      cost->ledger.Bill(obs::CostBucket::kFailoverReread, disk + cpu + net);
      if (ctx->trace != nullptr) {
        const size_t span =
            ctx->trace->Open("failover_reread", "failover", waste_start);
        ctx->trace->Attr(span, "block", block_id);
        ctx->trace->Attr(span, "datanode", dn);
        ctx->trace->Attr(span, "bytes", logical_bytes);
        ctx->trace->Attr(span, "error", "corruption");
        ctx->trace->Close(span, cost->total());
      }
    } else if (st.IsUnavailable() || st.IsNotFound()) {
      // Dead node, or a replica deleted after an earlier corruption
      // report: only the connection attempt is paid.
      const double open = c.block_open_ms / 1000.0;
      cost->disk_seconds += open;
      cost->ledger.Bill(obs::CostBucket::kFailoverReread, open);
    } else {
      return st;
    }
  }
  return Status::Unavailable("no readable replica for block " +
                             std::to_string(block_id));
}

bool InvokeMap(const ReadContext& ctx, const HailRecord& record,
               bool already_filtered) {
  const JobSpec& spec = *ctx.spec;
  if (!record.bad() && !already_filtered && spec.annotation.has_value() &&
      spec.annotation->has_filter()) {
    // Stock Hadoop: Bob's map function string-splits the row and filters
    // by hand (§4.1). The engine applies the same predicate for result
    // equivalence — through the split's compiled matcher when the reader
    // installed one.
    const bool match =
        ctx.row_matcher != nullptr
            ? ctx.row_matcher->MatchesRow(record.values())
            : spec.annotation->filter.Matches(record.values());
    if (!match) return false;
  }
  if (spec.map) {
    spec.map(record, ctx.out);
  } else {
    DefaultMap(spec, record, ctx.out);
  }
  return true;
}

}  // namespace mapreduce
}  // namespace hail
