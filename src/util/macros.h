/// \file macros.h
/// \brief Error-propagation and misc macros (Arrow/RocksDB idiom).

#pragma once

#define HAIL_CONCAT_IMPL(x, y) x##y
#define HAIL_CONCAT(x, y) HAIL_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Status; returns it from the enclosing
/// function if it is not OK.
#define HAIL_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::hail::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define HAIL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()

/// Evaluates an expression returning Result<T>; assigns the value to `lhs`
/// or returns the error status from the enclosing function.
#define HAIL_ASSIGN_OR_RETURN(lhs, rexpr) \
  HAIL_ASSIGN_OR_RETURN_IMPL(HAIL_CONCAT(_result_, __LINE__), lhs, rexpr)

/// Aborts the process when a must-succeed expression fails. Reserved for
/// invariant violations (never for user input).
#define HAIL_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::hail::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                   \
      ::hail::internal::FatalStatus(__FILE__, __LINE__, _st);          \
    }                                                                  \
  } while (false)

namespace hail {
class Status;
namespace internal {
[[noreturn]] void FatalStatus(const char* file, int line, const Status& st);
}  // namespace internal
}  // namespace hail
