/// \file thread_pool.h
/// \brief Fixed-size worker pool with a future-based join primitive.
///
/// Backs the parallel map-task execution engine (mapreduce/job_runner.cc):
/// the event loop dispatches each task's *functional* read to the pool and
/// joins the returned future when the simulated completion event is due, so
/// heavy per-task work (CRC verification, block decode, filtering, tuple
/// reconstruction) overlaps across hardware threads while all scheduling
/// decisions and simulated-clock accounting stay on the event thread.
///
/// Tasks submitted to the pool run in FIFO submission order whenever the
/// pool has one worker, which keeps single-threaded parallel-mode runs
/// trivially equivalent to serial execution; with more workers, callers
/// must only depend on the futures they hold, never on cross-task ordering.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hail {

/// \brief A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Destruction drains the queue: every submitted task is executed (never
/// dropped), so futures returned by Submit are always satisfied and task
/// closures may safely reference state that outlives the last `get()`.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues \p fn and returns a future for its result. The future's
  /// `get()` blocks until a worker has executed the task.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Number of hardware threads to use by default: the HAIL_THREADS
  /// environment variable when set (>= 1), else hardware_concurrency().
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hail
