#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/macros.h"
#include "util/status.h"

namespace hail {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logger::Emit(LogLevel level, const char* file, int line,
                  const std::string& message) {
  std::string out;
  out.reserve(message.size() + 64);
  out += "[";
  out += LevelName(level);
  out += "] ";
  out += Basename(file);
  out += ":";
  out += std::to_string(line);
  out += " ";
  out += message;
  out += "\n";
  std::cerr << out;
}

namespace internal {

void FatalStatus(const char* file, int line, const Status& st) {
  Logger::Emit(LogLevel::kError, file, line,
               "HAIL_CHECK_OK failed: " + st.ToString());
  std::abort();
}

}  // namespace internal
}  // namespace hail
