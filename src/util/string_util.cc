#include "util/string_util.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hail {

std::vector<std::string_view> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
                         s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || s.empty()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double");
#if defined(__cpp_lib_to_chars)
  // Fast path for plain normal decimals: from_chars is allocation-free
  // and several times faster than strtod. Anything it does not fully
  // consume (leading '+', whitespace, hex floats) or whose value strtod
  // would flag with errno (inf/nan, overflow, and subnormals — glibc
  // sets ERANGE for those) falls through to the strtod path below, so
  // acceptance and values stay exactly strtod's.
  {
    double value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(),
                                           value);
    if (ec == std::errc() && ptr == s.data() + s.size() &&
        (std::fpclassify(value) == FP_NORMAL || value == 0.0)) {
      return value;
    }
  }
#endif
  // strtod needs a NUL-terminated buffer. Values are short in practice,
  // so a stack buffer keeps this allocation-free too; anything longer
  // falls back to a heap copy with identical semantics.
  char stack_buf[64];
  std::string heap_buf;
  const char* cstr;
  if (s.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, s.data(), s.size());
    stack_buf[s.size()] = '\0';
    cstr = stack_buf;
  } else {
    heap_buf.assign(s);
    cstr = heap_buf.c_str();
  }
  errno = 0;
  char* endptr = nullptr;
  const double value = std::strtod(cstr, &endptr);
  if (errno != 0 || endptr != cstr + s.size()) {
    return Status::InvalidArgument("not a double: '" + std::string(s) + "'");
  }
  return value;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f s", seconds);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace hail
