#include "util/string_util.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hail {

std::vector<std::string_view> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
                         s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || s.empty()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double");
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  errno = 0;
  char* endptr = nullptr;
  const double value = std::strtod(buf.c_str(), &endptr);
  if (errno != 0 || endptr != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return value;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f s", seconds);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace hail
