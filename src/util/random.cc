#include "util/random.h"

#include <cmath>

namespace hail {

std::string Random::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

double Random::NextExponential(double mean) {
  // Inversion; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace hail
