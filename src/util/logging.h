/// \file logging.h
/// \brief Minimal leveled logger used across the library.
///
/// Logging is off by default at DEBUG level; benches and examples raise the
/// level explicitly. The logger writes to stderr and is safe to call from
/// multiple threads (each line is written with a single ostream op).

#pragma once

#include <sstream>
#include <string>

namespace hail {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Process-wide log settings.
class Logger {
 public:
  /// Sets the minimum level that is emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emits one formatted line (used by the HAIL_LOG macro).
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);
};

namespace internal {

/// RAII line builder behind HAIL_LOG; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hail

#define HAIL_LOG(level)                                               \
  if (::hail::LogLevel::level < ::hail::Logger::GetLevel()) {         \
  } else                                                              \
    ::hail::internal::LogMessage(::hail::LogLevel::level, __FILE__, __LINE__)
