/// \file io.h
/// \brief Little-endian byte serialisation used by all on-"disk" formats.
///
/// ByteWriter appends to an owned std::string; ByteReader walks a
/// string_view with bounds checking, returning Corruption statuses on
/// truncated input so block deserialisation never reads out of bounds.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/result.h"

namespace hail {

/// \brief Append-only little-endian encoder.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void PutLengthPrefixed(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s);
  }

  void PutBytes(std::string_view s) { out_.append(s.data(), s.size()); }

  /// Current size; also used to note offsets while writing headers.
  size_t size() const { return out_.size(); }

  /// Patches a previously written u32 at \p offset (for back-filled sizes).
  void PatchU32(size_t offset, uint32_t v) {
    std::memcpy(out_.data() + offset, &v, sizeof(v));
  }

  std::string& buffer() { return out_; }
  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PutRaw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

/// \brief Bounds-checked little-endian decoder.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ >= data_.size(); }

  Result<uint8_t> GetU8() {
    uint8_t v = 0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> GetU32() {
    uint32_t v = 0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v = 0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int32_t> GetI32() {
    int32_t v = 0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> GetI64() {
    int64_t v = 0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> GetF64() {
    double v = 0.0;
    HAIL_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }

  /// Length-prefixed (u32) byte string; the view aliases the input buffer.
  Result<std::string_view> GetLengthPrefixed() {
    HAIL_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    return GetBytes(len);
  }

  Result<std::string_view> GetBytes(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("byte stream truncated");
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  /// Repositions the cursor (e.g. to jump to a column minipage offset).
  Status SeekTo(size_t offset) {
    if (offset > data_.size()) return Status::Corruption("seek out of bounds");
    pos_ = offset;
    return Status::OK();
  }

 private:
  Status GetRaw(void* p, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("byte stream truncated");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hail
