#include "util/status.h"

namespace hail {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(state_->code));
  result += ": ";
  result += state_->message;
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += state_->message;
  return Status(state_->code, std::move(msg));
}

}  // namespace hail
