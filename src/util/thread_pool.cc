#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace hail {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted futures must always
      // be satisfied (callers block on get()).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("HAIL_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace hail
