/// \file string_util.h
/// \brief Small string helpers shared across modules.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace hail {

/// Splits \p input on \p delimiter; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char delimiter);

/// Joins \p parts with \p separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer parse of the full string (no trailing garbage).
Result<int64_t> ParseInt64(std::string_view s);

/// Strict double parse of the full string.
Result<double> ParseDouble(std::string_view s);

/// "1427.3 s", "64.0 MB", etc. for human-readable bench output.
std::string FormatBytes(uint64_t bytes);
std::string FormatSeconds(double seconds);

/// Thousands-separated integer, e.g. 3,200.
std::string FormatCount(uint64_t n);

}  // namespace hail
