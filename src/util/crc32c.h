/// \file crc32c.h
/// \brief CRC32C (Castagnoli) checksums, the algorithm HDFS uses per chunk.
///
/// Software slicing-by-8 implementation; tables are built once at first use.
/// HDFS stores one CRC32C per 512-byte chunk of every block replica
/// (paper §3.2); HAIL recomputes these after per-replica sorting because the
/// physical bytes differ between replicas of the same logical block.

#pragma once

#include <cstddef>
#include <cstdint>

namespace hail {
namespace crc32c {

/// Extends \p init_crc with \p size bytes at \p data and returns the new CRC.
/// Pass 0 as \p init_crc for a fresh checksum.
uint32_t Extend(uint32_t init_crc, const void* data, size_t size);

/// Computes the CRC32C of the given buffer.
inline uint32_t Value(const void* data, size_t size) {
  return Extend(0, data, size);
}

/// Masks a CRC so that a CRC of CRC-bearing data does not degenerate
/// (RocksDB/LevelDB idiom; HDFS stores raw CRCs, we expose both).
uint32_t Mask(uint32_t crc);

/// Inverse of Mask().
uint32_t Unmask(uint32_t masked);

}  // namespace crc32c
}  // namespace hail
