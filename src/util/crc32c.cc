#include "util/crc32c.h"

#include <array>
#include <mutex>

namespace hail {
namespace crc32c {

namespace {

constexpr uint32_t kPolynomial = 0x82f63b78;  // reflected CRC32C polynomial

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes.
  std::array<std::array<uint32_t, 256>, 8> t;
};

const Tables& GetTables() {
  static const Tables tables = [] {
    Tables tb{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      tb.t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xff];
      }
    }
    return tb;
  }();
  return tables;
}

inline uint32_t LoadU32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t size) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init_crc;

  // Process one byte at a time until 8-byte aligned work remains.
  while (size >= 8) {
    const uint32_t lo = LoadU32LE(p) ^ crc;
    const uint32_t hi = LoadU32LE(p + 4);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p) & 0xff];
    ++p;
    --size;
  }
  return ~crc;
}

uint32_t Mask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Unmask(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace hail
