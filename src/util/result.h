/// \file result.h
/// \brief Result<T>: a value or an error Status (Arrow idiom).

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/macros.h"
#include "util/status.h"

namespace hail {

/// \brief Holds either a successfully computed value of type T or the
/// Status describing why the computation failed.
///
/// Typical usage:
/// \code
///   Result<int> ParsePort(std::string_view s);
///   ...
///   HAIL_ASSIGN_OR_RETURN(int port, ParsePort(text));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status carries no value");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or \p fallback when errored.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace hail
