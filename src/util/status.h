/// \file status.h
/// \brief Error handling primitives for HAIL (Arrow/RocksDB idiom).
///
/// All fallible operations in the library return `Status` or `Result<T>`
/// (see result.h) instead of throwing exceptions. Hot paths stay
/// exception-free; `HAIL_RETURN_NOT_OK` / `HAIL_ASSIGN_OR_RETURN`
/// (macros.h) propagate errors with no overhead on the OK path.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hail {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kOutOfRange = 7,
  kFailedPrecondition = 8,
  kUnknown = 9,
  kUnavailable = 10,
  kOverloaded = 11,
};

/// \brief Returns a human-readable name for a status code (e.g. "IOError").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// The OK state is represented by a null internal pointer, so returning
/// `Status::OK()` is free of allocation and branch-predictable.
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  /// Creates a status with the given \p code and \p message.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// Status code; kOk when ok().
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// Error message; empty when ok().
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with \p context (no-op for OK statuses).
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK.
  std::unique_ptr<State> state_;
};

}  // namespace hail
