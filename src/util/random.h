/// \file random.h
/// \brief Deterministic PRNGs for data generation and simulation.
///
/// Everything in the repository that needs randomness takes an explicit
/// seed so simulations and tests are reproducible bit-for-bit.

#pragma once

#include <cstdint>
#include <string>

namespace hail {

/// \brief SplitMix64: tiny, fast generator used to seed and for general use.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Returns 0 when n == 0.
  uint64_t Uniform(uint64_t n) {
    if (n == 0) return 0;
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the generator periods used here.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean);

  /// Forks an independent stream (for per-node / per-block generators).
  Random Fork() { return Random(NextU64()); }

 private:
  uint64_t state_;
};

/// \brief Zipf-distributed generator over [0, n) with parameter theta.
///
/// Used by workload generators to produce skewed attribute values
/// (e.g. popular sourceIPs in UserVisits).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next Zipf-distributed rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace hail
