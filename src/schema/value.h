/// \file value.h
/// \brief A dynamically typed attribute value (parse/reconstruct boundary).
///
/// Hot paths (sorting, indexing, predicate evaluation) operate on typed
/// column vectors inside PAX blocks; Value is only used where rows cross
/// API boundaries: text parsing, HailRecord handed to the map function,
/// and test assertions.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "schema/schema.h"

namespace hail {

/// \brief One attribute value. DATE is carried as kInt32 day numbers.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  bool is_int32() const { return std::holds_alternative<int32_t>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int32_t as_int32() const { return std::get<int32_t>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view of any non-string value (int32/int64 widened).
  double AsNumeric() const {
    if (is_int32()) return as_int32();
    if (is_int64()) return static_cast<double>(as_int64());
    return as_double();
  }

  /// Renders the value as it would appear in a text row.
  std::string ToText(FieldType type) const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator<(const Value& other) const;

 private:
  std::variant<int32_t, int64_t, double, std::string> v_;
};

}  // namespace hail
