#include "schema/row_parser.h"

#include <cassert>

#include "util/string_util.h"

namespace hail {

ParsedRow RowParser::Parse(std::string_view row) const {
  ParsedRow out;
  const auto parts = SplitString(row, schema_.delimiter());
  if (static_cast<int>(parts.size()) != schema_.num_fields()) {
    return out;  // wrong arity -> bad record
  }
  out.values.reserve(parts.size());
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const std::string_view text = parts[static_cast<size_t>(i)];
    switch (schema_.field(i).type) {
      case FieldType::kInt32: {
        auto v = ParseInt64(text);
        if (!v.ok() || *v < INT32_MIN || *v > INT32_MAX) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(static_cast<int32_t>(*v));
        break;
      }
      case FieldType::kInt64: {
        auto v = ParseInt64(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
      case FieldType::kDouble: {
        auto v = ParseDouble(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
      case FieldType::kString: {
        out.values.emplace_back(std::string(text));
        break;
      }
      case FieldType::kDate: {
        auto v = ParseDateToDays(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
    }
  }
  out.ok = true;
  return out;
}

std::string RowParser::Render(const std::vector<Value>& values) const {
  std::string out;
  for (int i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) out += schema_.delimiter();
    out += values[static_cast<size_t>(i)].ToText(schema_.field(i).type);
  }
  return out;
}

ColumnarAppender::ColumnarAppender(const Schema& schema,
                                   std::vector<ColumnVector>* columns)
    : schema_(&schema), columns_(columns) {
  assert(columns_->size() == static_cast<size_t>(schema.num_fields()));
}

bool ColumnarAppender::AppendRow(std::string_view row) {
  const int num_fields = schema_->num_fields();
  const char delimiter = schema_->delimiter();
  // All columns are kept at equal length; remember it so a bad row can
  // roll back every partial append. Truncate is a no-op on columns the
  // row never reached.
  const size_t base = columns_->empty() ? 0 : (*columns_)[0].size();
  const auto bad_row = [&] {
    for (ColumnVector& col : *columns_) col.Truncate(base);
    return false;
  };
  size_t start = 0;
  for (int i = 0; i < num_fields; ++i) {
    std::string_view text;
    if (i + 1 < num_fields) {
      const size_t pos = row.find(delimiter, start);
      if (pos == std::string_view::npos) return bad_row();  // too few fields
      text = row.substr(start, pos - start);
      start = pos + 1;
    } else {
      text = row.substr(start);
      if (text.find(delimiter) != std::string_view::npos) {
        return bad_row();  // too many fields
      }
    }
    ColumnVector& col = (*columns_)[static_cast<size_t>(i)];
    switch (schema_->field(i).type) {
      case FieldType::kInt32: {
        auto v = ParseInt64(text);
        if (!v.ok() || *v < INT32_MIN || *v > INT32_MAX) return bad_row();
        col.AppendInt32(static_cast<int32_t>(*v));
        break;
      }
      case FieldType::kInt64: {
        auto v = ParseInt64(text);
        if (!v.ok()) return bad_row();
        col.AppendInt64(*v);
        break;
      }
      case FieldType::kDouble: {
        auto v = ParseDouble(text);
        if (!v.ok()) return bad_row();
        col.AppendDouble(*v);
        break;
      }
      case FieldType::kString:
        col.AppendString(text);
        break;
      case FieldType::kDate: {
        auto v = ParseDateToDays(text);
        if (!v.ok()) return bad_row();
        col.AppendInt32(*v);
        break;
      }
    }
  }
  return true;
}

std::vector<std::string_view> SplitRows(std::string_view data) {
  std::vector<std::string_view> rows;
  size_t start = 0;
  while (start < data.size()) {
    size_t pos = data.find('\n', start);
    if (pos == std::string_view::npos) {
      rows.push_back(data.substr(start));
      break;
    }
    rows.push_back(data.substr(start, pos - start));
    start = pos + 1;
  }
  return rows;
}

}  // namespace hail
