#include "schema/row_parser.h"

#include "util/string_util.h"

namespace hail {

ParsedRow RowParser::Parse(std::string_view row) const {
  ParsedRow out;
  const auto parts = SplitString(row, schema_.delimiter());
  if (static_cast<int>(parts.size()) != schema_.num_fields()) {
    return out;  // wrong arity -> bad record
  }
  out.values.reserve(parts.size());
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const std::string_view text = parts[static_cast<size_t>(i)];
    switch (schema_.field(i).type) {
      case FieldType::kInt32: {
        auto v = ParseInt64(text);
        if (!v.ok() || *v < INT32_MIN || *v > INT32_MAX) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(static_cast<int32_t>(*v));
        break;
      }
      case FieldType::kInt64: {
        auto v = ParseInt64(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
      case FieldType::kDouble: {
        auto v = ParseDouble(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
      case FieldType::kString: {
        out.values.emplace_back(std::string(text));
        break;
      }
      case FieldType::kDate: {
        auto v = ParseDateToDays(text);
        if (!v.ok()) {
          out.values.clear();
          return out;
        }
        out.values.emplace_back(*v);
        break;
      }
    }
  }
  out.ok = true;
  return out;
}

std::string RowParser::Render(const std::vector<Value>& values) const {
  std::string out;
  for (int i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) out += schema_.delimiter();
    out += values[static_cast<size_t>(i)].ToText(schema_.field(i).type);
  }
  return out;
}

std::vector<std::string_view> SplitRows(std::string_view data) {
  std::vector<std::string_view> rows;
  size_t start = 0;
  while (start < data.size()) {
    size_t pos = data.find('\n', start);
    if (pos == std::string_view::npos) {
      rows.push_back(data.substr(start));
      break;
    }
    rows.push_back(data.substr(start, pos - start));
    start = pos + 1;
  }
  return rows;
}

}  // namespace hail
