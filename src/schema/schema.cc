#include "schema/schema.h"

#include <cstdio>

#include "util/string_util.h"

namespace hail {

std::string_view FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt32:
      return "int32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
    case FieldType::kDate:
      return "date";
  }
  return "?";
}

size_t FieldTypeWidth(FieldType type) {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kDate:
      return 4;
    case FieldType::kInt64:
      return 8;
    case FieldType::kDouble:
      return 8;
    case FieldType::kString:
      return 0;
  }
  return 0;
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::EstimatedRowWidth(size_t avg_string_bytes) const {
  size_t width = 0;
  for (const Field& f : fields_) {
    width += IsFixedSize(f.type) ? FieldTypeWidth(f.type) : avg_string_bytes;
  }
  return width;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += fields_[i].name;
    out += ':';
    out += FieldTypeName(fields_[i].type);
  }
  return out;
}

Result<Schema> Schema::Parse(std::string_view text) {
  std::vector<Field> fields;
  if (TrimWhitespace(text).empty()) {
    return Status::InvalidArgument("empty schema text");
  }
  for (std::string_view part : SplitString(text, ',')) {
    const auto pieces = SplitString(part, ':');
    if (pieces.size() != 2) {
      return Status::InvalidArgument("bad schema field: '" + std::string(part) +
                                     "'");
    }
    const std::string_view name = TrimWhitespace(pieces[0]);
    const std::string_view type_name = TrimWhitespace(pieces[1]);
    FieldType type;
    if (type_name == "int32") {
      type = FieldType::kInt32;
    } else if (type_name == "int64") {
      type = FieldType::kInt64;
    } else if (type_name == "double") {
      type = FieldType::kDouble;
    } else if (type_name == "string") {
      type = FieldType::kString;
    } else if (type_name == "date") {
      type = FieldType::kDate;
    } else {
      return Status::InvalidArgument("unknown field type: '" +
                                     std::string(type_name) + "'");
    }
    if (name.empty()) {
      return Status::InvalidArgument("empty field name in schema");
    }
    fields.push_back(Field{std::string(name), type});
  }
  return Schema(std::move(fields));
}

namespace {
constexpr int kDaysPerMonthCumulative[13] = {0,   31,  59,  90,  120, 151, 181,
                                             212, 243, 273, 304, 334, 365};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's days_from_civil algorithm (public domain).
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int z, int* y, int* m, int* d) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int yr = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = yr + (*m <= 2);
}
}  // namespace

Result<int32_t> ParseDateToDays(std::string_view iso_date) {
  if (iso_date.size() != 10 || iso_date[4] != '-' || iso_date[7] != '-') {
    return Status::InvalidArgument("bad date: '" + std::string(iso_date) + "'");
  }
  auto digits = [&](size_t pos, size_t len) -> int {
    int v = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      const char c = iso_date[i];
      if (c < '0' || c > '9') return -1;
      v = v * 10 + (c - '0');
    }
    return v;
  };
  const int y = digits(0, 4);
  const int m = digits(5, 2);
  const int d = digits(8, 2);
  if (y < 0 || m < 1 || m > 12 || d < 1) {
    return Status::InvalidArgument("bad date: '" + std::string(iso_date) + "'");
  }
  int max_day = kDaysPerMonthCumulative[m] - kDaysPerMonthCumulative[m - 1];
  if (m == 2 && IsLeapYear(y)) max_day = 29;
  if (d > max_day) {
    return Status::InvalidArgument("bad date: '" + std::string(iso_date) + "'");
  }
  return DaysFromCivil(y, m, d);
}

std::string DaysToDateString(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace hail
