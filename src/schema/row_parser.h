/// \file row_parser.h
/// \brief Parses delimited text rows against a Schema (paper §3.1).
///
/// The HAIL client runs this while uploading: rows that fail to parse
/// ("bad records") are separated into the block's bad-record section and
/// later handed to map functions with a flag, exactly as §4.3 describes.
///
/// Two parse paths share the same acceptance rules:
///   - RowParser::Parse — row-at-a-time into boxed Values (query-side
///     tuple reconstruction, reference/tests);
///   - ColumnarAppender — straight into typed ColumnVectors with no
///     per-row Value allocation (the upload ingest hot path).

#pragma once

#include <string_view>
#include <vector>

#include "layout/column_vector.h"
#include "schema/schema.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {

/// \brief Outcome of parsing one text row.
struct ParsedRow {
  /// Typed values in schema order; empty when !ok.
  std::vector<Value> values;
  /// False for bad records.
  bool ok = false;
};

/// \brief Reusable text-row parser for one schema.
///
/// Holds the schema by value so constructing from a temporary (e.g.
/// `RowParser parser(UserVisitsSchema());`) is safe.
class RowParser {
 public:
  explicit RowParser(Schema schema) : schema_(std::move(schema)) {}

  /// Parses one row (without trailing newline). Never fails hard: schema
  /// mismatches yield ParsedRow{.ok = false}.
  ParsedRow Parse(std::string_view row) const;

  /// Renders values back into a text row (inverse of Parse for good rows).
  std::string Render(const std::vector<Value>& values) const;

  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
};

/// \brief Parses text rows straight into typed column storage.
///
/// Bound to one ColumnVector per schema field (e.g. a PaxBlock under
/// construction). AppendRow applies exactly the same acceptance rules as
/// RowParser::Parse — same arity check, same per-type range checks — but
/// writes each field directly into its typed vector, so ingest performs
/// no per-row std::vector<Value> allocation and no string boxing for
/// fixed-size fields.
class ColumnarAppender {
 public:
  /// \p columns must have one entry per schema field, types matching; it
  /// must outlive the appender.
  ColumnarAppender(const Schema& schema, std::vector<ColumnVector>* columns);

  /// Parses one row (without trailing newline) into the columns. Returns
  /// false — leaving every column unchanged — when the row does not
  /// conform to the schema (a "bad record").
  bool AppendRow(std::string_view row);

 private:
  const Schema* schema_;
  std::vector<ColumnVector>* columns_;
};

/// \brief Splits a byte buffer into newline-terminated rows.
///
/// Used by the HAIL client's content-aware block cutting: HDFS splits after
/// a constant number of bytes, HAIL never splits a row across blocks
/// (paper §3.1, step (1) of Figure 1).
std::vector<std::string_view> SplitRows(std::string_view data);

}  // namespace hail
