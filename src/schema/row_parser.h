/// \file row_parser.h
/// \brief Parses delimited text rows against a Schema (paper §3.1).
///
/// The HAIL client runs this while uploading: rows that fail to parse
/// ("bad records") are separated into the block's bad-record section and
/// later handed to map functions with a flag, exactly as §4.3 describes.

#pragma once

#include <string_view>
#include <vector>

#include "schema/schema.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {

/// \brief Outcome of parsing one text row.
struct ParsedRow {
  /// Typed values in schema order; empty when !ok.
  std::vector<Value> values;
  /// False for bad records.
  bool ok = false;
};

/// \brief Reusable text-row parser for one schema.
///
/// Holds the schema by value so constructing from a temporary (e.g.
/// `RowParser parser(UserVisitsSchema());`) is safe.
class RowParser {
 public:
  explicit RowParser(Schema schema) : schema_(std::move(schema)) {}

  /// Parses one row (without trailing newline). Never fails hard: schema
  /// mismatches yield ParsedRow{.ok = false}.
  ParsedRow Parse(std::string_view row) const;

  /// Renders values back into a text row (inverse of Parse for good rows).
  std::string Render(const std::vector<Value>& values) const;

  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
};

/// \brief Splits a byte buffer into newline-terminated rows.
///
/// Used by the HAIL client's content-aware block cutting: HDFS splits after
/// a constant number of bytes, HAIL never splits a row across blocks
/// (paper §3.1, step (1) of Figure 1).
std::vector<std::string_view> SplitRows(std::string_view data);

}  // namespace hail
