#include "schema/value.h"

#include <cstdio>

namespace hail {

std::string Value::ToText(FieldType type) const {
  char buf[32];
  switch (type) {
    case FieldType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", as_int32());
      return buf;
    case FieldType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(as_int64()));
      return buf;
    case FieldType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", as_double());
      return buf;
    case FieldType::kString:
      return as_string();
    case FieldType::kDate:
      return DaysToDateString(as_int32());
  }
  return {};
}

bool Value::operator<(const Value& other) const {
  // Values of mixed numeric types compare numerically; strings compare
  // lexicographically and sort after numbers (only same-type comparisons
  // occur in practice).
  const bool a_str = is_string();
  const bool b_str = other.is_string();
  if (a_str != b_str) return !a_str;
  if (a_str) return as_string() < other.as_string();
  return AsNumeric() < other.AsNumeric();
}

}  // namespace hail
