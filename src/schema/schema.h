/// \file schema.h
/// \brief Typed schemas for datasets uploaded through HAIL.
///
/// The HAIL client parses each text row against a user-provided schema
/// (paper §3.1); rows that do not match are "bad records" and land in a
/// dedicated section of the block. Fixed-size types are indexable with
/// offset arithmetic; STRING attributes use the variable-size side car
/// described in §3.5.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace hail {

/// \brief Attribute type. DATE is stored as days-since-epoch in an int32.
enum class FieldType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
};

std::string_view FieldTypeName(FieldType type);

/// Returns the on-disk width of a fixed-size type, or 0 for STRING.
size_t FieldTypeWidth(FieldType type);

/// True for types whose values have a constant byte width.
inline bool IsFixedSize(FieldType type) { return type != FieldType::kString; }

/// \brief One attribute: a name plus a type.
struct Field {
  std::string name;
  FieldType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of attributes plus the text-row delimiter.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Field> fields, char delimiter = ',')
      : fields_(std::move(fields)), delimiter_(delimiter) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }
  char delimiter() const { return delimiter_; }

  /// Index of the attribute with the given name, or -1.
  int FieldIndex(std::string_view name) const;

  /// Sum of fixed widths plus \p avg_string_bytes per STRING attribute;
  /// used for block capacity planning.
  size_t EstimatedRowWidth(size_t avg_string_bytes = 16) const;

  /// Serialises to a compact text form ("name:type,..."), the inverse of
  /// Parse(). Stored in every block's metadata header.
  std::string ToString() const;
  static Result<Schema> Parse(std::string_view text);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_ && delimiter_ == other.delimiter_;
  }

 private:
  std::vector<Field> fields_;
  char delimiter_ = ',';
};

/// \brief Days since 1970-01-01 from an ISO "YYYY-MM-DD" date, and back.
/// HAIL stores DATE attributes as int32 day numbers so they sort and
/// compare as integers.
Result<int32_t> ParseDateToDays(std::string_view iso_date);
std::string DaysToDateString(int32_t days);

}  // namespace hail
