#include "query/predicate.h"

#include <algorithm>

#include "util/string_util.h"

namespace hail {

namespace {

/// Three-way comparison of a row value against a literal, with numeric
/// widening (matching index/key_search.h semantics).
int CompareValues(const Value& v, const Value& literal) {
  if (v.is_string() || literal.is_string()) {
    return ThreeWayCompareStrings(v.as_string(), literal.as_string());
  }
  const bool both_int = (v.is_int32() || v.is_int64()) &&
                        (literal.is_int32() || literal.is_int64());
  if (both_int) {
    const int64_t a = v.is_int32() ? v.as_int32() : v.as_int64();
    const int64_t b =
        literal.is_int32() ? literal.as_int32() : literal.as_int64();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  const double a = v.AsNumeric();
  const double b = literal.AsNumeric();
  return a < b ? -1 : (a == b ? 0 : 1);
}

}  // namespace

bool PredicateTerm::Matches(const Value& v) const {
  const int cmp = CompareValues(v, literal);
  if (op == CompareOp::kBetween) {
    return cmp >= 0 && CompareValues(v, literal_hi) <= 0;
  }
  return OpMatchesCompare(cmp, op);
}

std::optional<KeyRange> PredicateTerm::ToKeyRange() const {
  switch (op) {
    case CompareOp::kEq:
      return KeyRange::Equal(literal);
    case CompareOp::kNe:
      return std::nullopt;
    case CompareOp::kLt:
    case CompareOp::kLe:
      // The sparse index is partition-granular and the reader post-filters,
      // so <= and < share the same conservative range.
      return KeyRange::AtMost(literal);
    case CompareOp::kGt:
    case CompareOp::kGe:
      return KeyRange::AtLeast(literal);
    case CompareOp::kBetween:
      return KeyRange::Between(literal, literal_hi);
  }
  return std::nullopt;
}

bool Predicate::Matches(const std::vector<Value>& row) const {
  for (const PredicateTerm& t : terms_) {
    if (t.column < 0 || t.column >= static_cast<int>(row.size())) return false;
    if (!t.Matches(row[static_cast<size_t>(t.column)])) return false;
  }
  return true;
}

std::vector<const PredicateTerm*> Predicate::TermsOnColumn(int column) const {
  std::vector<const PredicateTerm*> out;
  for (const PredicateTerm& t : terms_) {
    if (t.column == column) out.push_back(&t);
  }
  return out;
}

std::vector<int> Predicate::ReferencedColumns() const {
  std::vector<int> out;
  for (const PredicateTerm& t : terms_) {
    if (std::find(out.begin(), out.end(), t.column) == out.end()) {
      out.push_back(t.column);
    }
  }
  return out;
}

std::optional<KeyRange> Predicate::KeyRangeFor(int column) const {
  bool found = false;
  KeyRange merged = KeyRange::All();
  for (const PredicateTerm& t : terms_) {
    if (t.column != column) continue;
    auto range = t.ToKeyRange();
    if (!range.has_value()) continue;
    found = true;
    // Intersect: tighten lo upward, hi downward.
    if (range->lo.has_value()) {
      if (!merged.lo.has_value() ||
          CompareValues(*range->lo, *merged.lo) > 0) {
        merged.lo = range->lo;
      }
    }
    if (range->hi.has_value()) {
      if (!merged.hi.has_value() ||
          CompareValues(*range->hi, *merged.hi) < 0) {
        merged.hi = range->hi;
      }
    }
  }
  if (!found) return std::nullopt;
  return merged;
}

std::string Predicate::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += " and ";
    const PredicateTerm& t = terms_[i];
    out += "@" + std::to_string(t.column + 1);
    const FieldType type = schema.field(t.column).type;
    switch (t.op) {
      case CompareOp::kEq:
        out += " = " + t.literal.ToText(type);
        break;
      case CompareOp::kNe:
        out += " != " + t.literal.ToText(type);
        break;
      case CompareOp::kLt:
        out += " < " + t.literal.ToText(type);
        break;
      case CompareOp::kLe:
        out += " <= " + t.literal.ToText(type);
        break;
      case CompareOp::kGt:
        out += " > " + t.literal.ToText(type);
        break;
      case CompareOp::kGe:
        out += " >= " + t.literal.ToText(type);
        break;
      case CompareOp::kBetween:
        out += " between(" + t.literal.ToText(type) + "," +
               t.literal_hi.ToText(type) + ")";
        break;
    }
  }
  return out;
}

int QueryAnnotation::preferred_index_column() const {
  for (const PredicateTerm& t : filter.terms()) {
    if (t.ToKeyRange().has_value()) return t.column;
  }
  return -1;
}

namespace {

/// Parses "@N" -> 0-based column index.
Result<int> ParseColumnRef(std::string_view token, const Schema& schema) {
  token = TrimWhitespace(token);
  if (token.size() < 2 || token[0] != '@') {
    return Status::InvalidArgument("expected @N attribute reference, got '" +
                                   std::string(token) + "'");
  }
  HAIL_ASSIGN_OR_RETURN(int64_t pos, ParseInt64(token.substr(1)));
  if (pos < 1 || pos > schema.num_fields()) {
    return Status::InvalidArgument("attribute @" + std::to_string(pos) +
                                   " out of range (schema has " +
                                   std::to_string(schema.num_fields()) +
                                   " attributes)");
  }
  return static_cast<int>(pos - 1);
}

/// Types a literal against the column's schema type.
Result<Value> ParseLiteral(std::string_view text, FieldType type) {
  text = TrimWhitespace(text);
  // Strip optional quotes.
  if (text.size() >= 2 &&
      ((text.front() == '\'' && text.back() == '\'') ||
       (text.front() == '"' && text.back() == '"'))) {
    text = text.substr(1, text.size() - 2);
  }
  switch (type) {
    case FieldType::kInt32: {
      HAIL_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      // Match RowParser::Parse: out-of-range INT32 literals are rejected,
      // not silently truncated.
      if (v < INT32_MIN || v > INT32_MAX) {
        return Status::InvalidArgument("INT32 literal out of range: '" +
                                       std::string(text) + "'");
      }
      return Value(static_cast<int32_t>(v));
    }
    case FieldType::kInt64: {
      HAIL_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case FieldType::kDouble: {
      HAIL_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case FieldType::kString:
      return Value(std::string(text));
    case FieldType::kDate: {
      HAIL_ASSIGN_OR_RETURN(int32_t days, ParseDateToDays(text));
      return Value(days);
    }
  }
  return Status::InvalidArgument("unknown field type");
}

/// Splits on a lowercase-insensitive " and " at the top level.
std::vector<std::string_view> SplitConjunction(std::string_view filter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  int paren_depth = 0;
  // Scan every position: the old `i + 5 <= size` bound stopped short of
  // a conjunction whose right operand ends the string, mis-parsing the
  // whole tail as one term.
  for (size_t i = 0; i < filter.size(); ++i) {
    const char c = filter[i];
    if (c == '(') ++paren_depth;
    if (c == ')') --paren_depth;
    if (paren_depth == 0 && (c == 'a' || c == 'A') && i > 0 &&
        filter[i - 1] == ' ' && i + 3 <= filter.size()) {
      const std::string_view word = filter.substr(i, 3);
      if ((word == "and" || word == "AND" || word == "And") &&
          i + 3 < filter.size() && filter[i + 3] == ' ') {
        parts.push_back(filter.substr(start, i - start));
        start = i + 4;
        i += 3;
      }
    }
  }
  parts.push_back(filter.substr(start));
  return parts;
}

Result<PredicateTerm> ParseTerm(std::string_view term, const Schema& schema) {
  term = TrimWhitespace(term);
  PredicateTerm out;

  // between(a,b)?
  const size_t between_pos = term.find("between");
  if (between_pos != std::string_view::npos) {
    HAIL_ASSIGN_OR_RETURN(out.column,
                          ParseColumnRef(term.substr(0, between_pos), schema));
    const size_t open = term.find('(', between_pos);
    const size_t close = term.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      return Status::InvalidArgument("malformed between(...): '" +
                                     std::string(term) + "'");
    }
    const std::string_view args = term.substr(open + 1, close - open - 1);
    const auto pieces = SplitString(args, ',');
    if (pieces.size() != 2) {
      return Status::InvalidArgument("between needs two literals: '" +
                                     std::string(term) + "'");
    }
    const FieldType type = schema.field(out.column).type;
    out.op = CompareOp::kBetween;
    HAIL_ASSIGN_OR_RETURN(out.literal, ParseLiteral(pieces[0], type));
    HAIL_ASSIGN_OR_RETURN(out.literal_hi, ParseLiteral(pieces[1], type));
    return out;
  }

  // Comparator terms; test two-char operators before one-char ones.
  static constexpr struct {
    const char* token;
    CompareOp op;
  } kOps[] = {
      {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"!=", CompareOp::kNe},
      {"<", CompareOp::kLt},  {">", CompareOp::kGt},  {"=", CompareOp::kEq},
  };
  for (const auto& candidate : kOps) {
    const size_t pos = term.find(candidate.token);
    if (pos == std::string_view::npos) continue;
    HAIL_ASSIGN_OR_RETURN(out.column,
                          ParseColumnRef(term.substr(0, pos), schema));
    out.op = candidate.op;
    const FieldType type = schema.field(out.column).type;
    HAIL_ASSIGN_OR_RETURN(
        out.literal,
        ParseLiteral(term.substr(pos + std::strlen(candidate.token)), type));
    return out;
  }
  return Status::InvalidArgument("cannot parse predicate term: '" +
                                 std::string(term) + "'");
}

}  // namespace

Result<QueryAnnotation> ParseAnnotation(const Schema& schema,
                                        std::string_view filter,
                                        std::string_view projection) {
  QueryAnnotation out;
  filter = TrimWhitespace(filter);
  if (!filter.empty()) {
    std::vector<PredicateTerm> terms;
    for (std::string_view part : SplitConjunction(filter)) {
      if (TrimWhitespace(part).empty()) continue;
      HAIL_ASSIGN_OR_RETURN(PredicateTerm term, ParseTerm(part, schema));
      terms.push_back(std::move(term));
    }
    out.filter = Predicate(std::move(terms));
  }
  projection = TrimWhitespace(projection);
  if (!projection.empty()) {
    // Accept both "{@1,@5}" and "@1,@5".
    if (projection.front() == '{' && projection.back() == '}') {
      projection = projection.substr(1, projection.size() - 2);
    }
    for (std::string_view part : SplitString(projection, ',')) {
      if (TrimWhitespace(part).empty()) continue;
      HAIL_ASSIGN_OR_RETURN(int col, ParseColumnRef(part, schema));
      out.projection.push_back(col);
    }
  }
  return out;
}

}  // namespace hail
