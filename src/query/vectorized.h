/// \file vectorized.h
/// \brief The vectorized scan engine's filter layer.
///
/// The row-at-a-time hot loop the readers used to run — one
/// std::vector<Value> per record, one type-dispatched CompareValues per
/// predicate term, one O(partition) varlen re-scan per string access —
/// burns the I/O savings HAIL's index scans buy (paper §4.3). This layer
/// lowers a Predicate once per block into per-column typed kernels that
/// evaluate column-at-a-time over zero-copy minipage spans, producing a
/// selection vector of qualifying row ids. Tuple reconstruction then runs
/// only for those rows.
///
/// Semantics are exactly those of PredicateTerm::Matches /
/// Predicate::Matches (numeric widening included); the property tests in
/// tests/vectorized_scan_test.cc assert the equivalence across all field
/// types, partition sizes, and bad-record mixes.
///
/// Encoded minipages (format v3) are scanned WITHOUT decoding: literals
/// are rewritten once per block into the encoded domain — dictionary
/// literals become integer code compares against the sorted dictionary,
/// FOR literals become unsigned code offsets (folding to match-all /
/// match-none when the literal falls outside the frame) — and RLE terms
/// evaluate the predicate once per run, short-circuiting whole runs into
/// the selection vector. Only qualifying rows are ever decoded, at tuple
/// reconstruction.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/pax_block.h"
#include "query/predicate.h"
#include "schema/schema.h"
#include "util/result.h"

namespace hail {

/// \brief Reusable, ascending list of qualifying row ids.
class SelectionVector {
 public:
  void Clear() { rows_.clear(); }
  void FillRange(uint32_t begin, uint32_t end) {
    rows_.clear();
    rows_.reserve(end > begin ? end - begin : 0);
    for (uint32_t r = begin; r < end; ++r) rows_.push_back(r);
  }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  uint32_t operator[](size_t i) const { return rows_[i]; }
  const std::vector<uint32_t>& rows() const { return rows_; }
  std::vector<uint32_t>& mutable_rows() { return rows_; }

 private:
  std::vector<uint32_t> rows_;
};

/// \brief A Predicate lowered to typed per-column kernels.
///
/// `between` terms are decomposed into (>= lo) and (<= hi) so every
/// compiled term carries exactly one literal, matching the two independent
/// CompareValues calls of the interpreted path. Fixed-size terms are
/// evaluated first (cheap span loads); string terms post-filter the
/// survivors with a sequential VarlenCursor so each candidate value is
/// decoded at most once.
class CompiledPredicate {
 public:
  CompiledPredicate() = default;

  /// Lowers \p pred against \p schema. Fails with InvalidArgument when a
  /// term references a column outside the schema or mixes a string literal
  /// with a numeric column (the interpreted path throws on such terms).
  static Result<CompiledPredicate> Compile(const Predicate& pred,
                                           const Schema& schema);

  /// True when the predicate has no terms (every row qualifies).
  bool empty() const { return terms_.empty(); }

  /// Fills \p sel with every row of [range.begin, range.end) — clamped to
  /// the block — that satisfies all terms, in ascending order.
  Status FilterBlock(const PaxBlockView& view, RowRange range,
                     SelectionVector* sel) const;

  /// Filters an existing *ascending* candidate selection in place (the
  /// unclustered-index read path: the index yields candidate row ids, this
  /// applies the remaining terms). Evaluates only the candidate rows —
  /// fixed-size terms first, then strings through one sequential cursor
  /// pass — never the whole range.
  Status RefineCandidates(const PaxBlockView& view, SelectionVector* sel) const;

  /// Row-wise evaluation with literal typing resolved at compile time.
  /// Used by the row-major readers (text, trojan). Equivalent to
  /// Predicate::Matches for rows whose value types match the schema; rows
  /// with mismatched types are rejected instead of throwing.
  bool MatchesRow(const std::vector<Value>& row) const;

 private:
  /// How a term's column/literal pair compares, resolved once per block
  /// instead of once per row.
  enum class Kind : uint8_t {
    kI32VsI64,  // int32/date column, integral literal (int64 compare)
    kI32VsF64,  // int32/date column, double literal (double compare)
    kI64VsI64,
    kI64VsF64,
    kF64,       // double column, any numeric literal
    kString,
  };

  struct CompiledTerm {
    int column = -1;
    CompareOp op = CompareOp::kEq;
    Kind kind = Kind::kI32VsI64;
    int64_t lit_i = 0;   // integral-compare literal
    double lit_d = 0.0;  // double-compare literal
    std::string lit_s;   // string literal
  };

  static Result<CompiledTerm> CompileTerm(int column, CompareOp op,
                                          const Value& literal,
                                          FieldType column_type);

  /// True when the term can run in the cheap first phase: fixed-size
  /// columns (any encoding) and dictionary-encoded strings, whose compare
  /// is an integer code kernel after the literal rewrite. Only plain
  /// varlen strings pay a sequential decode and go last.
  bool IsCheapTerm(const PaxBlockView& view, const CompiledTerm& term) const;

  Status ApplyFixedTerm(const PaxBlockView& view, const CompiledTerm& term,
                        RowRange range, bool dense,
                        SelectionVector* sel) const;
  Status ApplyStringTerm(const PaxBlockView& view, const CompiledTerm& term,
                         RowRange range, bool dense,
                         SelectionVector* sel) const;

  // Scan-on-compressed kernels (format v3 minipages).
  Status ApplyForTerm(const PaxBlockView& view, const CompiledTerm& term,
                      RowRange range, bool dense, SelectionVector* sel) const;
  Status ApplyRleTerm(const PaxBlockView& view, const CompiledTerm& term,
                      RowRange range, bool dense, SelectionVector* sel) const;
  Status ApplyDictTerm(const PaxBlockView& view, const CompiledTerm& term,
                       RowRange range, bool dense, SelectionVector* sel) const;

  std::vector<CompiledTerm> terms_;
};

}  // namespace hail
