#include "query/vectorized.h"

#include <algorithm>
#include <cstring>

#include "index/key_search.h"

namespace hail {

namespace {

/// Dispatches a CompareOp to a per-value match lambda once, then hands it
/// to `run` (the loop shape). Every op is expressed through (v < lit) and
/// (v == lit), replicating the interpreted path's three-way mapping
/// `a < b ? -1 : (a == b ? 0 : 1)` — which classifies an unordered (NaN)
/// pair as "greater", so e.g. kGt must match NaN even though `v > lit`
/// would not.
template <typename L, typename F>
void WithComparator(CompareOp op, L lit, F run) {
  switch (op) {
    case CompareOp::kEq: run([lit](L v) { return v == lit; }); break;
    case CompareOp::kNe: run([lit](L v) { return !(v == lit); }); break;
    case CompareOp::kLt: run([lit](L v) { return v < lit; }); break;
    case CompareOp::kLe: run([lit](L v) { return v < lit || v == lit; }); break;
    case CompareOp::kGt:
      run([lit](L v) { return !(v < lit) && !(v == lit); });
      break;
    case CompareOp::kGe: run([lit](L v) { return !(v < lit); }); break;
    case CompareOp::kBetween: break;  // decomposed at compile time
  }
}

/// Tight dense loop over the span appending qualifying rows. T is the
/// storage type, L the comparison type (int64_t or double) chosen by the
/// compiled kind.
template <typename T, typename L>
void DenseFilter(const ColumnSpan<T>& col, CompareOp op, L lit,
                 uint32_t begin, uint32_t end, std::vector<uint32_t>* out) {
  WithComparator<L>(op, lit, [&](auto pred) {
    for (uint32_t r = begin; r < end; ++r) {
      if (pred(static_cast<L>(col[r]))) out->push_back(r);
    }
  });
}

/// In-place compaction of an existing selection vector.
template <typename T, typename L>
void SparseFilter(const ColumnSpan<T>& col, CompareOp op, L lit,
                  std::vector<uint32_t>* sel) {
  WithComparator<L>(op, lit, [&](auto pred) {
    size_t w = 0;
    for (uint32_t r : *sel) {
      if (pred(static_cast<L>(col[r]))) (*sel)[w++] = r;
    }
    sel->resize(w);
  });
}

// -- Scan-on-compressed kernels ---------------------------------------------

/// Outcome of rewriting a literal into the encoded domain of one block.
enum class LiteralFold : uint8_t {
  kKernel,  // run the code kernel with the rewritten literal
  kAll,     // every row matches this term
  kNone,    // no row matches this term
};

/// Rewrites an integral literal into FOR code space (code = value − frame)
/// and constant-folds comparisons that fall outside [0, code_max]. The
/// arithmetic runs in 128 bits: literal − frame can exceed the int64
/// range when the two have opposite signs.
LiteralFold FoldCodeLiteral(CompareOp op, __int128 rewritten,
                            uint64_t code_max, int64_t* kernel_lit) {
  if (rewritten < 0) {
    switch (op) {
      case CompareOp::kEq:
      case CompareOp::kLt:
      case CompareOp::kLe:
        return LiteralFold::kNone;  // all codes are >= 0 > literal
      default:
        return LiteralFold::kAll;
    }
  }
  if (rewritten > static_cast<__int128>(code_max)) {
    switch (op) {
      case CompareOp::kEq:
      case CompareOp::kGt:
      case CompareOp::kGe:
        return LiteralFold::kNone;  // all codes are <= code_max < literal
      default:
        return LiteralFold::kAll;
    }
  }
  *kernel_lit = static_cast<int64_t>(rewritten);
  return LiteralFold::kKernel;
}

/// Dense/sparse loops over a 1/2/4-byte code array. `map` lifts a raw
/// code into the comparison domain (identity for rewritten integral
/// literals, frame + code → double for double literals).
template <typename C, typename L, typename Map>
void DenseCodeFilter(const char* codes, CompareOp op, L lit, Map map,
                     uint32_t begin, uint32_t end,
                     std::vector<uint32_t>* out) {
  WithComparator<L>(op, lit, [&](auto pred) {
    for (uint32_t r = begin; r < end; ++r) {
      C c;
      std::memcpy(&c, codes + static_cast<size_t>(r) * sizeof(C), sizeof(C));
      if (pred(map(c))) out->push_back(r);
    }
  });
}

template <typename C, typename L, typename Map>
void SparseCodeFilter(const char* codes, CompareOp op, L lit, Map map,
                      std::vector<uint32_t>* sel) {
  WithComparator<L>(op, lit, [&](auto pred) {
    size_t w = 0;
    for (uint32_t r : *sel) {
      C c;
      std::memcpy(&c, codes + static_cast<size_t>(r) * sizeof(C), sizeof(C));
      if (pred(map(c))) (*sel)[w++] = r;
    }
    sel->resize(w);
  });
}

/// Width dispatch shared by the FOR and dictionary kernels.
template <typename L, typename Map>
void RunCodeFilter(const char* codes, uint8_t width, CompareOp op, L lit,
                   Map map, RowRange range, bool dense,
                   std::vector<uint32_t>* rows) {
  switch (width) {
    case 1:
      dense ? DenseCodeFilter<uint8_t, L>(codes, op, lit, map, range.begin,
                                          range.end, rows)
            : SparseCodeFilter<uint8_t, L>(codes, op, lit, map, rows);
      break;
    case 2:
      dense ? DenseCodeFilter<uint16_t, L>(codes, op, lit, map, range.begin,
                                           range.end, rows)
            : SparseCodeFilter<uint16_t, L>(codes, op, lit, map, rows);
      break;
    default:
      dense ? DenseCodeFilter<uint32_t, L>(codes, op, lit, map, range.begin,
                                           range.end, rows)
            : SparseCodeFilter<uint32_t, L>(codes, op, lit, map, rows);
      break;
  }
}

/// Applies a folded-away term: kAll keeps the candidate set (filling the
/// range when this is the first, dense, term), kNone empties it.
void ApplyFold(LiteralFold fold, RowRange range, bool dense,
               SelectionVector* sel) {
  if (fold == LiteralFold::kAll) {
    if (dense) sel->FillRange(range.begin, range.end);
    return;
  }
  sel->Clear();
}

/// RLE term: the predicate runs once per run and whole qualifying runs
/// short-circuit into the selection vector without touching per-row data.
template <typename T, typename L>
void DenseRleFilter(const RleSpan<T>& col, CompareOp op, L lit,
                    uint32_t begin, uint32_t end,
                    std::vector<uint32_t>* out) {
  if (end <= begin || col.num_records() == 0) return;
  WithComparator<L>(op, lit, [&](auto pred) {
    for (uint32_t j = col.RunContaining(begin); j < col.num_runs(); ++j) {
      const uint32_t s = std::max(col.run_start(j), begin);
      const uint32_t e = std::min(col.run_end(j), end);
      if (s >= end) break;
      if (pred(static_cast<L>(col.run_value(j)))) {
        for (uint32_t r = s; r < e; ++r) out->push_back(r);
      }
    }
  });
}

/// Sparse RLE: candidates are ascending, so one forward walk over the
/// runs evaluates the predicate once per run actually visited.
template <typename T, typename L>
void SparseRleFilter(const RleSpan<T>& col, CompareOp op, L lit,
                     std::vector<uint32_t>* sel) {
  if (sel->empty()) return;
  WithComparator<L>(op, lit, [&](auto pred) {
    size_t w = 0;
    uint32_t j = col.RunContaining((*sel)[0]);
    bool match = pred(static_cast<L>(col.run_value(j)));
    for (uint32_t r : *sel) {
      while (col.run_end(j) <= r) {
        ++j;
        match = pred(static_cast<L>(col.run_value(j)));
      }
      if (match) (*sel)[w++] = r;
    }
    sel->resize(w);
  });
}

uint64_t MaxCodeForWidth(uint8_t width) {
  return width == 1 ? 0xFFull : width == 2 ? 0xFFFFull : 0xFFFFFFFFull;
}

}  // namespace

Result<CompiledPredicate::CompiledTerm> CompiledPredicate::CompileTerm(
    int column, CompareOp op, const Value& literal, FieldType column_type) {
  CompiledTerm t;
  t.column = column;
  t.op = op;
  if (column_type == FieldType::kString) {
    if (!literal.is_string()) {
      return Status::InvalidArgument(
          "numeric literal against string column @" +
          std::to_string(column + 1));
    }
    t.kind = Kind::kString;
    t.lit_s = literal.as_string();
    return t;
  }
  if (literal.is_string()) {
    return Status::InvalidArgument("string literal against numeric column @" +
                                   std::to_string(column + 1));
  }
  const bool integral_literal = key_search::IsIntegral(literal);
  switch (column_type) {
    case FieldType::kInt32:
    case FieldType::kDate:
      t.kind = integral_literal ? Kind::kI32VsI64 : Kind::kI32VsF64;
      break;
    case FieldType::kInt64:
      t.kind = integral_literal ? Kind::kI64VsI64 : Kind::kI64VsF64;
      break;
    case FieldType::kDouble:
      t.kind = Kind::kF64;
      break;
    case FieldType::kString:
      break;  // unreachable
  }
  if (t.kind == Kind::kI32VsI64 || t.kind == Kind::kI64VsI64) {
    t.lit_i = key_search::AsInt64(literal);
  } else {
    t.lit_d = literal.AsNumeric();
  }
  return t;
}

Result<CompiledPredicate> CompiledPredicate::Compile(const Predicate& pred,
                                                     const Schema& schema) {
  CompiledPredicate out;
  out.terms_.reserve(pred.terms().size());
  for (const PredicateTerm& term : pred.terms()) {
    if (term.column < 0 || term.column >= schema.num_fields()) {
      return Status::InvalidArgument("predicate references attribute @" +
                                     std::to_string(term.column + 1) +
                                     " outside the schema");
    }
    const FieldType type = schema.field(term.column).type;
    if (term.op == CompareOp::kBetween) {
      // Two independent comparisons, mirroring the interpreted
      // `cmp(v, lo) >= 0 && cmp(v, hi) <= 0`.
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm lo,
          CompileTerm(term.column, CompareOp::kGe, term.literal, type));
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm hi,
          CompileTerm(term.column, CompareOp::kLe, term.literal_hi, type));
      out.terms_.push_back(std::move(lo));
      out.terms_.push_back(std::move(hi));
    } else {
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm t,
          CompileTerm(term.column, term.op, term.literal, type));
      out.terms_.push_back(std::move(t));
    }
  }
  return out;
}

Status CompiledPredicate::ApplyForTerm(const PaxBlockView& view,
                                       const CompiledTerm& term,
                                       RowRange range, bool dense,
                                       SelectionVector* sel) const {
  HAIL_ASSIGN_OR_RETURN(ForSpan span, view.ForSpanOf(term.column));
  std::vector<uint32_t>& rows = sel->mutable_rows();
  const bool integral =
      term.kind == Kind::kI32VsI64 || term.kind == Kind::kI64VsI64;
  if (integral) {
    // Rewrite the literal into code space once; the kernel then compares
    // raw unsigned codes against it — no per-row frame addition at all.
    int64_t kernel_lit = 0;
    const LiteralFold fold = FoldCodeLiteral(
        term.op, static_cast<__int128>(term.lit_i) - span.frame(),
        MaxCodeForWidth(span.code_width()), &kernel_lit);
    if (fold != LiteralFold::kKernel) {
      ApplyFold(fold, range, dense, sel);
      return Status::OK();
    }
    RunCodeFilter<int64_t>(
        span.codes(), span.code_width(), term.op, kernel_lit,
        [](auto c) { return static_cast<int64_t>(c); }, range, dense, &rows);
    return Status::OK();
  }
  // Double literal: compare frame + code widened to double, the same
  // widening the plain kernel applies to the decoded value.
  const int64_t frame = span.frame();
  RunCodeFilter<double>(
      span.codes(), span.code_width(), term.op, term.lit_d,
      [frame](auto c) {
        return static_cast<double>(static_cast<int64_t>(
            static_cast<uint64_t>(frame) + static_cast<uint64_t>(c)));
      },
      range, dense, &rows);
  return Status::OK();
}

Status CompiledPredicate::ApplyRleTerm(const PaxBlockView& view,
                                       const CompiledTerm& term,
                                       RowRange range, bool dense,
                                       SelectionVector* sel) const {
  std::vector<uint32_t>& rows = sel->mutable_rows();
  switch (term.kind) {
    case Kind::kI32VsI64: {
      HAIL_ASSIGN_OR_RETURN(RleSpan<int32_t> col,
                            view.RleInt32Span(term.column));
      dense ? DenseRleFilter<int32_t, int64_t>(col, term.op, term.lit_i,
                                               range.begin, range.end, &rows)
            : SparseRleFilter<int32_t, int64_t>(col, term.op, term.lit_i,
                                                &rows);
      break;
    }
    case Kind::kI32VsF64: {
      HAIL_ASSIGN_OR_RETURN(RleSpan<int32_t> col,
                            view.RleInt32Span(term.column));
      dense ? DenseRleFilter<int32_t, double>(col, term.op, term.lit_d,
                                              range.begin, range.end, &rows)
            : SparseRleFilter<int32_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kI64VsI64: {
      HAIL_ASSIGN_OR_RETURN(RleSpan<int64_t> col,
                            view.RleInt64Span(term.column));
      dense ? DenseRleFilter<int64_t, int64_t>(col, term.op, term.lit_i,
                                               range.begin, range.end, &rows)
            : SparseRleFilter<int64_t, int64_t>(col, term.op, term.lit_i,
                                                &rows);
      break;
    }
    case Kind::kI64VsF64: {
      HAIL_ASSIGN_OR_RETURN(RleSpan<int64_t> col,
                            view.RleInt64Span(term.column));
      dense ? DenseRleFilter<int64_t, double>(col, term.op, term.lit_d,
                                              range.begin, range.end, &rows)
            : SparseRleFilter<int64_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kF64: {
      HAIL_ASSIGN_OR_RETURN(RleSpan<double> col,
                            view.RleDoubleSpan(term.column));
      dense ? DenseRleFilter<double, double>(col, term.op, term.lit_d,
                                             range.begin, range.end, &rows)
            : SparseRleFilter<double, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kString:
      return Status::InvalidArgument("string term in RLE kernel");
  }
  return Status::OK();
}

Status CompiledPredicate::ApplyDictTerm(const PaxBlockView& view,
                                        const CompiledTerm& term,
                                        RowRange range, bool dense,
                                        SelectionVector* sel) const {
  HAIL_ASSIGN_OR_RETURN(DictSpan span, view.DictSpanOf(term.column));
  // Rewrite the string literal into code space once per block. The
  // dictionary is sorted and distinct, so code order IS string order:
  // every comparison maps to a bound over the codes.
  const uint32_t dict_size = span.dict_size();
  LiteralFold fold = LiteralFold::kKernel;
  CompareOp code_op = CompareOp::kEq;
  int64_t code_lit = 0;
  switch (term.op) {
    case CompareOp::kEq:
    case CompareOp::kNe: {
      const uint32_t lb = span.LowerBound(term.lit_s);
      const bool present = lb < dict_size && span.DictEntry(lb) == term.lit_s;
      if (!present) {
        fold = term.op == CompareOp::kEq ? LiteralFold::kNone
                                         : LiteralFold::kAll;
      } else {
        code_op = term.op;
        code_lit = lb;
      }
      break;
    }
    case CompareOp::kLt:
    case CompareOp::kLe: {
      // v < lit  ⇔ code < LowerBound(lit);  v <= lit ⇔ code < UpperBound.
      const uint32_t bound = term.op == CompareOp::kLt
                                 ? span.LowerBound(term.lit_s)
                                 : span.UpperBound(term.lit_s);
      if (bound == 0) {
        fold = LiteralFold::kNone;
      } else if (bound == dict_size) {
        fold = LiteralFold::kAll;
      } else {
        code_op = CompareOp::kLt;
        code_lit = bound;
      }
      break;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // v > lit  ⇔ code >= UpperBound(lit);  v >= lit ⇔ code >= LowerBound.
      const uint32_t bound = term.op == CompareOp::kGt
                                 ? span.UpperBound(term.lit_s)
                                 : span.LowerBound(term.lit_s);
      if (bound == dict_size) {
        fold = LiteralFold::kNone;
      } else if (bound == 0) {
        fold = LiteralFold::kAll;
      } else {
        code_op = CompareOp::kGe;
        code_lit = bound;
      }
      break;
    }
    case CompareOp::kBetween:
      return Status::InvalidArgument("between not decomposed");
  }
  if (fold != LiteralFold::kKernel) {
    ApplyFold(fold, range, dense, sel);
    return Status::OK();
  }
  RunCodeFilter<int64_t>(
      span.codes(), span.code_width(), code_op, code_lit,
      [](auto c) { return static_cast<int64_t>(c); }, range, dense,
      &sel->mutable_rows());
  return Status::OK();
}

bool CompiledPredicate::IsCheapTerm(const PaxBlockView& view,
                                    const CompiledTerm& term) const {
  return term.kind != Kind::kString ||
         view.column_encoding(term.column) == MiniPageEncoding::kDict;
}

Status CompiledPredicate::ApplyFixedTerm(const PaxBlockView& view,
                                         const CompiledTerm& term,
                                         RowRange range, bool dense,
                                         SelectionVector* sel) const {
  switch (view.column_encoding(term.column)) {
    case MiniPageEncoding::kPlain:
      break;
    case MiniPageEncoding::kFor:
      return ApplyForTerm(view, term, range, dense, sel);
    case MiniPageEncoding::kRle:
      return ApplyRleTerm(view, term, range, dense, sel);
    case MiniPageEncoding::kDict:
      return Status::InvalidArgument("fixed term on dictionary column");
  }
  std::vector<uint32_t>& rows = sel->mutable_rows();
  switch (term.kind) {
    case Kind::kI32VsI64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> col,
                            view.Int32Span(term.column));
      dense ? DenseFilter<int32_t, int64_t>(col, term.op, term.lit_i,
                                            range.begin, range.end, &rows)
            : SparseFilter<int32_t, int64_t>(col, term.op, term.lit_i, &rows);
      break;
    }
    case Kind::kI32VsF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> col,
                            view.Int32Span(term.column));
      dense ? DenseFilter<int32_t, double>(col, term.op, term.lit_d,
                                           range.begin, range.end, &rows)
            : SparseFilter<int32_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kI64VsI64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> col,
                            view.Int64Span(term.column));
      dense ? DenseFilter<int64_t, int64_t>(col, term.op, term.lit_i,
                                            range.begin, range.end, &rows)
            : SparseFilter<int64_t, int64_t>(col, term.op, term.lit_i, &rows);
      break;
    }
    case Kind::kI64VsF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> col,
                            view.Int64Span(term.column));
      dense ? DenseFilter<int64_t, double>(col, term.op, term.lit_d,
                                           range.begin, range.end, &rows)
            : SparseFilter<int64_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<double> col,
                            view.DoubleSpan(term.column));
      dense ? DenseFilter<double, double>(col, term.op, term.lit_d,
                                          range.begin, range.end, &rows)
            : SparseFilter<double, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kString:
      return Status::InvalidArgument("string term in fixed kernel");
  }
  return Status::OK();
}

Status CompiledPredicate::ApplyStringTerm(const PaxBlockView& view,
                                          const CompiledTerm& term,
                                          RowRange range, bool dense,
                                          SelectionVector* sel) const {
  if (view.column_encoding(term.column) == MiniPageEncoding::kDict) {
    return ApplyDictTerm(view, term, range, dense, sel);
  }
  HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor,
                        view.OpenVarlenCursor(term.column));
  std::vector<uint32_t>& rows = sel->mutable_rows();
  if (dense) {
    for (uint32_t r = range.begin; r < range.end; ++r) {
      HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
      if (OpMatchesCompare(ThreeWayCompareStrings(s, term.lit_s), term.op)) {
        rows.push_back(r);
      }
    }
    return Status::OK();
  }
  size_t w = 0;
  for (uint32_t r : rows) {
    // Selection vectors are ascending, so the cursor decodes each
    // candidate partition in one forward pass.
    HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
    if (OpMatchesCompare(ThreeWayCompareStrings(s, term.lit_s), term.op)) {
      rows[w++] = r;
    }
  }
  rows.resize(w);
  return Status::OK();
}

Status CompiledPredicate::FilterBlock(const PaxBlockView& view, RowRange range,
                                      SelectionVector* sel) const {
  sel->Clear();
  range.end = std::min(range.end, view.num_records());
  if (range.empty()) return Status::OK();
  if (terms_.empty()) {
    sel->FillRange(range.begin, range.end);
    return Status::OK();
  }
  // Cheap terms first — typed span loads and integer code kernels
  // (dictionary strings included) narrow the candidate set before any
  // plain varlen value is decoded. Order within each phase is the term
  // order, so the conjunction's result set is identical either way.
  bool dense = true;
  for (const CompiledTerm& term : terms_) {
    if (!IsCheapTerm(view, term)) continue;
    HAIL_RETURN_NOT_OK(term.kind == Kind::kString
                           ? ApplyStringTerm(view, term, range, dense, sel)
                           : ApplyFixedTerm(view, term, range, dense, sel));
    dense = false;
    if (sel->empty()) return Status::OK();
  }
  for (const CompiledTerm& term : terms_) {
    if (IsCheapTerm(view, term)) continue;
    HAIL_RETURN_NOT_OK(ApplyStringTerm(view, term, range, dense, sel));
    dense = false;
    if (sel->empty()) return Status::OK();
  }
  return Status::OK();
}

Status CompiledPredicate::RefineCandidates(const PaxBlockView& view,
                                           SelectionVector* sel) const {
  if (terms_.empty() || sel->empty()) return Status::OK();
  // The dense flag is always false: the selection is the candidate set.
  for (const CompiledTerm& term : terms_) {
    if (!IsCheapTerm(view, term)) continue;
    HAIL_RETURN_NOT_OK(
        term.kind == Kind::kString
            ? ApplyStringTerm(view, term, RowRange{}, false, sel)
            : ApplyFixedTerm(view, term, RowRange{}, false, sel));
    if (sel->empty()) return Status::OK();
  }
  for (const CompiledTerm& term : terms_) {
    if (IsCheapTerm(view, term)) continue;
    HAIL_RETURN_NOT_OK(ApplyStringTerm(view, term, RowRange{}, false, sel));
    if (sel->empty()) return Status::OK();
  }
  return Status::OK();
}

bool CompiledPredicate::MatchesRow(const std::vector<Value>& row) const {
  for (const CompiledTerm& term : terms_) {
    if (term.column < 0 ||
        term.column >= static_cast<int>(row.size())) {
      return false;
    }
    const Value& v = row[static_cast<size_t>(term.column)];
    bool match = false;
    switch (term.kind) {
      case Kind::kString: {
        if (!v.is_string()) return false;
        match = OpMatchesCompare(ThreeWayCompareStrings(v.as_string(), term.lit_s),
                               term.op);
        break;
      }
      case Kind::kI32VsI64:
      case Kind::kI64VsI64: {
        if (v.is_string()) return false;
        if (key_search::IsIntegral(v)) {
          const int64_t w = key_search::AsInt64(v);
          match = OpMatchesCompare(
              w < term.lit_i ? -1 : (w == term.lit_i ? 0 : 1), term.op);
        } else {
          // Double row value vs integral literal widens to double, exactly
          // like CompareValues.
          const double w = v.AsNumeric();
          const double lit = static_cast<double>(term.lit_i);
          match = OpMatchesCompare(w < lit ? -1 : (w == lit ? 0 : 1), term.op);
        }
        break;
      }
      case Kind::kI32VsF64:
      case Kind::kI64VsF64:
      case Kind::kF64: {
        if (v.is_string()) return false;
        const double w = v.AsNumeric();
        match = OpMatchesCompare(
            w < term.lit_d ? -1 : (w == term.lit_d ? 0 : 1), term.op);
        break;
      }
    }
    if (!match) return false;
  }
  return true;
}

}  // namespace hail
