#include "query/vectorized.h"

#include <algorithm>

#include "index/key_search.h"

namespace hail {

namespace {

/// Dispatches a CompareOp to a per-value match lambda once, then hands it
/// to `run` (the loop shape). Every op is expressed through (v < lit) and
/// (v == lit), replicating the interpreted path's three-way mapping
/// `a < b ? -1 : (a == b ? 0 : 1)` — which classifies an unordered (NaN)
/// pair as "greater", so e.g. kGt must match NaN even though `v > lit`
/// would not.
template <typename L, typename F>
void WithComparator(CompareOp op, L lit, F run) {
  switch (op) {
    case CompareOp::kEq: run([lit](L v) { return v == lit; }); break;
    case CompareOp::kNe: run([lit](L v) { return !(v == lit); }); break;
    case CompareOp::kLt: run([lit](L v) { return v < lit; }); break;
    case CompareOp::kLe: run([lit](L v) { return v < lit || v == lit; }); break;
    case CompareOp::kGt:
      run([lit](L v) { return !(v < lit) && !(v == lit); });
      break;
    case CompareOp::kGe: run([lit](L v) { return !(v < lit); }); break;
    case CompareOp::kBetween: break;  // decomposed at compile time
  }
}

/// Tight dense loop over the span appending qualifying rows. T is the
/// storage type, L the comparison type (int64_t or double) chosen by the
/// compiled kind.
template <typename T, typename L>
void DenseFilter(const ColumnSpan<T>& col, CompareOp op, L lit,
                 uint32_t begin, uint32_t end, std::vector<uint32_t>* out) {
  WithComparator<L>(op, lit, [&](auto pred) {
    for (uint32_t r = begin; r < end; ++r) {
      if (pred(static_cast<L>(col[r]))) out->push_back(r);
    }
  });
}

/// In-place compaction of an existing selection vector.
template <typename T, typename L>
void SparseFilter(const ColumnSpan<T>& col, CompareOp op, L lit,
                  std::vector<uint32_t>* sel) {
  WithComparator<L>(op, lit, [&](auto pred) {
    size_t w = 0;
    for (uint32_t r : *sel) {
      if (pred(static_cast<L>(col[r]))) (*sel)[w++] = r;
    }
    sel->resize(w);
  });
}

}  // namespace

Result<CompiledPredicate::CompiledTerm> CompiledPredicate::CompileTerm(
    int column, CompareOp op, const Value& literal, FieldType column_type) {
  CompiledTerm t;
  t.column = column;
  t.op = op;
  if (column_type == FieldType::kString) {
    if (!literal.is_string()) {
      return Status::InvalidArgument(
          "numeric literal against string column @" +
          std::to_string(column + 1));
    }
    t.kind = Kind::kString;
    t.lit_s = literal.as_string();
    return t;
  }
  if (literal.is_string()) {
    return Status::InvalidArgument("string literal against numeric column @" +
                                   std::to_string(column + 1));
  }
  const bool integral_literal = key_search::IsIntegral(literal);
  switch (column_type) {
    case FieldType::kInt32:
    case FieldType::kDate:
      t.kind = integral_literal ? Kind::kI32VsI64 : Kind::kI32VsF64;
      break;
    case FieldType::kInt64:
      t.kind = integral_literal ? Kind::kI64VsI64 : Kind::kI64VsF64;
      break;
    case FieldType::kDouble:
      t.kind = Kind::kF64;
      break;
    case FieldType::kString:
      break;  // unreachable
  }
  if (t.kind == Kind::kI32VsI64 || t.kind == Kind::kI64VsI64) {
    t.lit_i = key_search::AsInt64(literal);
  } else {
    t.lit_d = literal.AsNumeric();
  }
  return t;
}

Result<CompiledPredicate> CompiledPredicate::Compile(const Predicate& pred,
                                                     const Schema& schema) {
  CompiledPredicate out;
  out.terms_.reserve(pred.terms().size());
  for (const PredicateTerm& term : pred.terms()) {
    if (term.column < 0 || term.column >= schema.num_fields()) {
      return Status::InvalidArgument("predicate references attribute @" +
                                     std::to_string(term.column + 1) +
                                     " outside the schema");
    }
    const FieldType type = schema.field(term.column).type;
    if (term.op == CompareOp::kBetween) {
      // Two independent comparisons, mirroring the interpreted
      // `cmp(v, lo) >= 0 && cmp(v, hi) <= 0`.
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm lo,
          CompileTerm(term.column, CompareOp::kGe, term.literal, type));
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm hi,
          CompileTerm(term.column, CompareOp::kLe, term.literal_hi, type));
      out.terms_.push_back(std::move(lo));
      out.terms_.push_back(std::move(hi));
    } else {
      HAIL_ASSIGN_OR_RETURN(
          CompiledTerm t,
          CompileTerm(term.column, term.op, term.literal, type));
      out.terms_.push_back(std::move(t));
    }
  }
  return out;
}

Status CompiledPredicate::ApplyFixedTerm(const PaxBlockView& view,
                                         const CompiledTerm& term,
                                         RowRange range, bool dense,
                                         SelectionVector* sel) const {
  std::vector<uint32_t>& rows = sel->mutable_rows();
  switch (term.kind) {
    case Kind::kI32VsI64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> col,
                            view.Int32Span(term.column));
      dense ? DenseFilter<int32_t, int64_t>(col, term.op, term.lit_i,
                                            range.begin, range.end, &rows)
            : SparseFilter<int32_t, int64_t>(col, term.op, term.lit_i, &rows);
      break;
    }
    case Kind::kI32VsF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int32_t> col,
                            view.Int32Span(term.column));
      dense ? DenseFilter<int32_t, double>(col, term.op, term.lit_d,
                                           range.begin, range.end, &rows)
            : SparseFilter<int32_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kI64VsI64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> col,
                            view.Int64Span(term.column));
      dense ? DenseFilter<int64_t, int64_t>(col, term.op, term.lit_i,
                                            range.begin, range.end, &rows)
            : SparseFilter<int64_t, int64_t>(col, term.op, term.lit_i, &rows);
      break;
    }
    case Kind::kI64VsF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<int64_t> col,
                            view.Int64Span(term.column));
      dense ? DenseFilter<int64_t, double>(col, term.op, term.lit_d,
                                           range.begin, range.end, &rows)
            : SparseFilter<int64_t, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kF64: {
      HAIL_ASSIGN_OR_RETURN(ColumnSpan<double> col,
                            view.DoubleSpan(term.column));
      dense ? DenseFilter<double, double>(col, term.op, term.lit_d,
                                          range.begin, range.end, &rows)
            : SparseFilter<double, double>(col, term.op, term.lit_d, &rows);
      break;
    }
    case Kind::kString:
      return Status::InvalidArgument("string term in fixed kernel");
  }
  return Status::OK();
}

Status CompiledPredicate::ApplyStringTerm(const PaxBlockView& view,
                                          const CompiledTerm& term,
                                          RowRange range, bool dense,
                                          SelectionVector* sel) const {
  HAIL_ASSIGN_OR_RETURN(VarlenCursor cursor,
                        view.OpenVarlenCursor(term.column));
  std::vector<uint32_t>& rows = sel->mutable_rows();
  if (dense) {
    for (uint32_t r = range.begin; r < range.end; ++r) {
      HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
      if (OpMatchesCompare(ThreeWayCompareStrings(s, term.lit_s), term.op)) {
        rows.push_back(r);
      }
    }
    return Status::OK();
  }
  size_t w = 0;
  for (uint32_t r : rows) {
    // Selection vectors are ascending, so the cursor decodes each
    // candidate partition in one forward pass.
    HAIL_ASSIGN_OR_RETURN(std::string_view s, cursor.Get(r));
    if (OpMatchesCompare(ThreeWayCompareStrings(s, term.lit_s), term.op)) {
      rows[w++] = r;
    }
  }
  rows.resize(w);
  return Status::OK();
}

Status CompiledPredicate::FilterBlock(const PaxBlockView& view, RowRange range,
                                      SelectionVector* sel) const {
  sel->Clear();
  range.end = std::min(range.end, view.num_records());
  if (range.empty()) return Status::OK();
  if (terms_.empty()) {
    sel->FillRange(range.begin, range.end);
    return Status::OK();
  }
  // Fixed-size terms first: cheap typed span loads narrow the candidate
  // set before any varlen value is decoded.
  bool dense = true;
  for (const CompiledTerm& term : terms_) {
    if (term.kind == Kind::kString) continue;
    HAIL_RETURN_NOT_OK(ApplyFixedTerm(view, term, range, dense, sel));
    dense = false;
    if (sel->empty()) return Status::OK();
  }
  for (const CompiledTerm& term : terms_) {
    if (term.kind != Kind::kString) continue;
    HAIL_RETURN_NOT_OK(ApplyStringTerm(view, term, range, dense, sel));
    dense = false;
    if (sel->empty()) return Status::OK();
  }
  return Status::OK();
}

Status CompiledPredicate::RefineCandidates(const PaxBlockView& view,
                                           SelectionVector* sel) const {
  if (terms_.empty() || sel->empty()) return Status::OK();
  // The dense flag is always false: the selection is the candidate set.
  for (const CompiledTerm& term : terms_) {
    if (term.kind == Kind::kString) continue;
    HAIL_RETURN_NOT_OK(ApplyFixedTerm(view, term, RowRange{}, false, sel));
    if (sel->empty()) return Status::OK();
  }
  for (const CompiledTerm& term : terms_) {
    if (term.kind != Kind::kString) continue;
    HAIL_RETURN_NOT_OK(ApplyStringTerm(view, term, RowRange{}, false, sel));
    if (sel->empty()) return Status::OK();
  }
  return Status::OK();
}

bool CompiledPredicate::MatchesRow(const std::vector<Value>& row) const {
  for (const CompiledTerm& term : terms_) {
    if (term.column < 0 ||
        term.column >= static_cast<int>(row.size())) {
      return false;
    }
    const Value& v = row[static_cast<size_t>(term.column)];
    bool match = false;
    switch (term.kind) {
      case Kind::kString: {
        if (!v.is_string()) return false;
        match = OpMatchesCompare(ThreeWayCompareStrings(v.as_string(), term.lit_s),
                               term.op);
        break;
      }
      case Kind::kI32VsI64:
      case Kind::kI64VsI64: {
        if (v.is_string()) return false;
        if (key_search::IsIntegral(v)) {
          const int64_t w = key_search::AsInt64(v);
          match = OpMatchesCompare(
              w < term.lit_i ? -1 : (w == term.lit_i ? 0 : 1), term.op);
        } else {
          // Double row value vs integral literal widens to double, exactly
          // like CompareValues.
          const double w = v.AsNumeric();
          const double lit = static_cast<double>(term.lit_i);
          match = OpMatchesCompare(w < lit ? -1 : (w == lit ? 0 : 1), term.op);
        }
        break;
      }
      case Kind::kI32VsF64:
      case Kind::kI64VsF64:
      case Kind::kF64: {
        if (v.is_string()) return false;
        const double w = v.AsNumeric();
        match = OpMatchesCompare(
            w < term.lit_d ? -1 : (w == term.lit_d ? 0 : 1), term.op);
        break;
      }
    }
    if (!match) return false;
  }
  return true;
}

}  // namespace hail
