/// \file predicate.h
/// \brief Selection predicates and the @HailQuery annotation (paper §4.1).
///
/// Bob annotates his map function with
///   @HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})
/// The filter references attributes by 1-based position (@3 = third
/// attribute). Supported comparators: =, !=, <, <=, >, >=, between(a,b);
/// conjunctions with "and". HAIL uses the annotation to pick a replica
/// with a matching clustered index; when no filter is given the job falls
/// back to a full scan, exactly like stock Hadoop.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "index/clustered_index.h"
#include "schema/schema.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {

/// \brief Comparison operator of a simple predicate term.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,  // inclusive on both ends
};

/// Applies a non-between comparison operator to a three-way compare
/// result (-1/0/1). kBetween has two literals and is handled by callers
/// via decomposition into kGe + kLe. Shared by the interpreted
/// (PredicateTerm::Matches) and compiled (query/vectorized.cc) paths so
/// the operator semantics exist exactly once.
inline bool OpMatchesCompare(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kBetween:
      return false;
  }
  return false;
}

/// Three-way string comparison shared by the interpreted and compiled
/// evaluation paths.
inline int ThreeWayCompareStrings(std::string_view a, std::string_view b) {
  return a < b ? -1 : (a == b ? 0 : 1);
}

/// \brief One term: <attribute> <op> <literal(s)>.
struct PredicateTerm {
  int column = -1;  // 0-based attribute index
  CompareOp op = CompareOp::kEq;
  Value literal;       // lo for kBetween
  Value literal_hi;    // only for kBetween

  /// Evaluates against a single attribute value.
  bool Matches(const Value& v) const;

  /// Key range usable with a clustered index on this term's column;
  /// nullopt for kNe (not index-serviceable).
  std::optional<KeyRange> ToKeyRange() const;
};

/// \brief Conjunction of terms (the only composition §4.1 needs).
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<PredicateTerm> terms)
      : terms_(std::move(terms)) {}

  const std::vector<PredicateTerm>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  /// True when a full row satisfies every term.
  bool Matches(const std::vector<Value>& row) const;

  /// Terms restricted to one column (for per-column post-filtering).
  std::vector<const PredicateTerm*> TermsOnColumn(int column) const;

  /// Columns referenced by any term.
  std::vector<int> ReferencedColumns() const;

  /// The index-serviceable key range for \p column: intersection of all
  /// range-compatible terms on it. nullopt if no term references it.
  std::optional<KeyRange> KeyRangeFor(int column) const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<PredicateTerm> terms_;
};

/// \brief The @HailQuery annotation: filter + attribute projection.
struct QueryAnnotation {
  Predicate filter;
  /// 0-based attribute indexes to hand to the map function; empty = all
  /// attributes ("in case that no projection was specified ... we
  /// reconstruct all attributes", §4.3).
  std::vector<int> projection;

  bool has_filter() const { return !filter.empty(); }

  /// The column HAIL would like an index on: the first filter column
  /// (query optimizers could be smarter; the paper picks the filter
  /// attribute).
  int preferred_index_column() const;
};

/// Parses the textual annotation:
///   filter:     "@3 between(1999-01-01,2000-01-01) and @1 = 42"
///   projection: "@1,@5" (or empty string for all attributes)
/// Literal typing is resolved against \p schema.
Result<QueryAnnotation> ParseAnnotation(const Schema& schema,
                                        std::string_view filter,
                                        std::string_view projection);

}  // namespace hail
