#include "workload/synthetic.h"

#include <cstdio>

#include "util/random.h"

namespace hail {
namespace workload {

Schema SyntheticSchema(int num_attributes) {
  std::vector<Field> fields;
  fields.reserve(static_cast<size_t>(num_attributes));
  for (int i = 0; i < num_attributes; ++i) {
    fields.push_back(Field{"attr" + std::to_string(i + 1), FieldType::kInt32});
  }
  return Schema(std::move(fields));
}

std::string GenerateSyntheticText(const SyntheticConfig& config) {
  Random rng(config.seed);
  std::string out;
  out.reserve(config.rows * 150);
  char buf[16];
  for (uint64_t r = 0; r < config.rows; ++r) {
    for (int a = 0; a < config.num_attributes; ++a) {
      if (a > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%d",
                    static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(config.max_value))));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

int32_t SyntheticBoundForSelectivity(const SyntheticConfig& config, double s) {
  return static_cast<int32_t>(static_cast<double>(config.max_value) * s);
}

double SyntheticAvgRowBytes() { return 19 * 6.9 + 18 + 1; }

}  // namespace workload
}  // namespace hail
