/// \file uservisits.h
/// \brief The UserVisits dataset of Pavlo et al. [27] (paper §6.2).
///
/// Schema (9 attributes): sourceIP, destURL, visitDate, adRevenue,
/// userAgent, countryCode, languageCode, searchWord, duration.
/// Value distributions are tuned so Bob's five queries hit the paper's
/// selectivities:
///   Q1  visitDate in [1999-01-01, 2000-01-01]   -> 3.1e-2
///   Q2  sourceIP = 172.101.11.46                -> 3.2e-8 (needle rows)
///   Q3  Q2 and visitDate = 1992-12-22           -> 6e-9
///   Q4  adRevenue in [1, 10]                    -> 1.7e-2
///   Q5  adRevenue in [1, 100]                   -> 2.04e-1 (approx)
/// Needles are planted deterministically at the *scaled* frequency so the
/// number of matching blocks matches the paper-scale workload (see
/// DESIGN.md §2).

#pragma once

#include <cstdint>
#include <string>

#include "schema/schema.h"

namespace hail {
namespace workload {

/// The needle sourceIP Bob investigates (§1, §6.2).
inline constexpr const char* kNeedleIP = "172.101.11.46";
/// The needle visit date of Bob-Q3.
inline constexpr const char* kNeedleDate = "1992-12-22";

/// Attribute positions (0-based) in the UserVisits schema.
enum UserVisitsAttr : int {
  kSourceIP = 0,
  kDestURL = 1,
  kVisitDate = 2,
  kAdRevenue = 3,
  kUserAgent = 4,
  kCountryCode = 5,
  kLanguageCode = 6,
  kSearchWord = 7,
  kDuration = 8,
};

Schema UserVisitsSchema();

struct UserVisitsConfig {
  uint64_t rows = 10000;
  uint64_t seed = 1;
  /// Plant the Q2 needle every N rows; 0 derives N from `scale_factor`
  /// so that needle density matches 3.2e-8 at paper scale.
  uint64_t needle_every = 0;
  double scale_factor = 1.0;
  /// Emit visitDate monotonically increasing over the file (log data
  /// arriving in event-time order) instead of uniformly shuffled. Blocks
  /// then cover disjoint date ranges — the workload zone maps are built
  /// for. Off by default: the shuffled generator stays byte-identical.
  bool time_ordered = false;
};

/// Generates delimited text rows (newline-terminated).
std::string GenerateUserVisitsText(const UserVisitsConfig& config);

/// Average text bytes per row for capacity planning (measured, ~150).
double UserVisitsAvgRowBytes();

}  // namespace workload
}  // namespace hail
