#include "workload/testbed.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hail {
namespace workload {

namespace {

hdfs::DfsConfig MakeDfsConfig(const TestbedConfig& tb) {
  hdfs::DfsConfig cfg;
  cfg.block_size = tb.real_block_bytes;
  cfg.replication = tb.replication;
  cfg.scale_factor = static_cast<double>(tb.logical_block_bytes) /
                     static_cast<double>(tb.real_block_bytes);
  // Keep the number of index partitions per block at the paper's density:
  // 1024 logical values per partition, scaled down with the block.
  const double real_partition =
      1024.0 / cfg.scale_factor;
  cfg.format.varlen_partition_size = static_cast<uint32_t>(
      std::clamp(std::lround(real_partition), 1l, 1024l));
  cfg.format.enable_encoding = tb.encode_blocks;
  return cfg;
}

}  // namespace

Testbed::Testbed(const TestbedConfig& config) : config_(config) {
  sim::ClusterConfig cc;
  cc.num_nodes = config.num_nodes;
  cc.profile = config.profile;
  cc.constants = config.constants;
  cc.hardware_variance = config.hardware_variance;
  cc.seed = config.seed;
  cluster_ = std::make_unique<sim::SimCluster>(cc);
  dfs_ = std::make_unique<hdfs::MiniDfs>(cluster_.get(), MakeDfsConfig(config));
}

uint64_t Testbed::RowsPerNode(double avg_row_bytes) const {
  const double bytes = static_cast<double>(config_.blocks_per_node) *
                       static_cast<double>(config_.real_block_bytes);
  return static_cast<uint64_t>(bytes / avg_row_bytes);
}

void Testbed::LoadUserVisits() {
  schema_ = UserVisitsSchema();
  texts_.clear();
  const int copies = config_.share_text_across_nodes ? 1 : config_.num_nodes;
  for (int i = 0; i < copies; ++i) {
    UserVisitsConfig uv;
    uv.rows = RowsPerNode(UserVisitsAvgRowBytes());
    uv.seed = config_.seed + static_cast<uint64_t>(i) * 977;
    uv.scale_factor = scale_factor();
    uv.time_ordered = config_.time_ordered_uservisits;
    texts_.push_back(GenerateUserVisitsText(uv));
  }
}

void Testbed::LoadSynthetic() {
  schema_ = SyntheticSchema();
  texts_.clear();
  const int copies = config_.share_text_across_nodes ? 1 : config_.num_nodes;
  for (int i = 0; i < copies; ++i) {
    SyntheticConfig syn;
    syn.rows = RowsPerNode(SyntheticAvgRowBytes());
    syn.seed = config_.seed + static_cast<uint64_t>(i) * 977;
    texts_.push_back(GenerateSyntheticText(syn));
  }
}

std::vector<hdfs::ParallelUploadSpec> Testbed::MakeSpecs(
    const std::string& path) {
  std::vector<hdfs::ParallelUploadSpec> specs;
  specs.reserve(static_cast<size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    const std::string& text =
        texts_[config_.share_text_across_nodes
                   ? 0
                   : static_cast<size_t>(i)];
    // Each node writes its own part file under the dataset directory
    // (queries read the whole directory), like a distributed generator.
    char part[32];
    std::snprintf(part, sizeof(part), "/part-%05d", i);
    specs.push_back(hdfs::ParallelUploadSpec{i, path + part, text});
  }
  return specs;
}

Result<hdfs::UploadReport> Testbed::UploadHadoop(const std::string& dfs_path) {
  if (texts_.empty()) return Status::FailedPrecondition("no dataset loaded");
  return hdfs::ParallelUploadText(dfs_.get(), MakeSpecs(dfs_path));
}

Result<HailUploadReport> Testbed::UploadHail(const std::string& dfs_path,
                                             std::vector<int> sort_columns) {
  if (texts_.empty()) return Status::FailedPrecondition("no dataset loaded");
  HailUploadConfig config;
  config.schema = schema_;
  config.sort_columns = std::move(sort_columns);
  config.build_stats = config_.build_stats;
  return HailParallelUpload(dfs_.get(), config, MakeSpecs(dfs_path));
}

Result<hadooppp::HadoopPPUploadReport> Testbed::UploadHadoopPP(
    const std::string& dfs_path, int index_column) {
  if (texts_.empty()) return Status::FailedPrecondition("no dataset loaded");
  hadooppp::HadoopPPUploadConfig config;
  config.schema = schema_;
  config.index_column = index_column;
  return hadooppp::HadoopPPUpload(dfs_.get(), config, MakeSpecs(dfs_path));
}

void Testbed::FreeSourceTexts() {
  texts_.clear();
  texts_.shrink_to_fit();
}

std::string DumpResult(const mapreduce::JobResult& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "e2e=%.17g rr=%.17g ideal=%.17g ovh=%.17g mt=%u resch=%u fb=%u "
      "idx=%u uc=%u ms=%u mc=%u mf=%u seen=%llu qual=%llu out=%llu bad=%llu",
      r.end_to_end_seconds, r.avg_record_reader_seconds, r.ideal_seconds,
      r.overhead_seconds, r.map_tasks, r.rescheduled_tasks, r.fallback_scans,
      r.index_scan_tasks, r.unclustered_scan_tasks, r.maintenance_scheduled,
      r.maintenance_completed, r.maintenance_failed,
      static_cast<unsigned long long>(r.records_seen),
      static_cast<unsigned long long>(r.records_qualifying),
      static_cast<unsigned long long>(r.output_count),
      static_cast<unsigned long long>(r.bad_records_seen));
  std::string out(buf);
  for (const std::string& row : r.output_rows) {
    out += '|';
    out += row;
  }
  return out;
}

std::string DumpCost(const obs::CostLedger& ledger) {
  std::string out;
  for (int b = 0; b < obs::kNumCostBuckets; ++b) {
    out += obs::CostBucketName(static_cast<obs::CostBucket>(b));
    out += '=';
    out += std::to_string(ledger.nanos[b]);
    out += ' ';
  }
  out += "total=";
  out += std::to_string(ledger.total_nanos);
  return out;
}

std::string DumpPlan(const mapreduce::JobPlan& plan) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "plan idx=%d planned=%d psec=%.17g pred=%.17g skip=%llu "
                "fresh=%llu",
                plan.index_column, plan.planned ? 1 : 0, plan.planner_seconds,
                plan.predicted_cost_seconds,
                static_cast<unsigned long long>(plan.planner_blocks_skipped),
                static_cast<unsigned long long>(
                    plan.planner_fresh_stats_blocks));
  std::string out(buf);
  for (const mapreduce::InputSplit& split : plan.splits) {
    out += "\nsplit b=";
    for (uint64_t b : split.blocks) {
      out += std::to_string(b);
      out += ',';
    }
    out += " n=";
    for (int n : split.preferred_nodes) {
      out += std::to_string(n);
      out += ',';
    }
    std::snprintf(buf, sizeof(buf), " lb=%llu",
                  static_cast<unsigned long long>(split.logical_bytes));
    out += buf;
  }
  for (const planner::AccessDecision& d : plan.decisions) {
    const std::string_view path = planner::AccessPathName(d.path);
    std::snprintf(buf, sizeof(buf),
                  "\ndec %.*s fresh=%d sel=%.17g est=%.17g rows=%u",
                  static_cast<int>(path.size()), path.data(),
                  d.stats_fresh ? 1 : 0, d.est_selectivity, d.est_cost_seconds,
                  d.block_records);
    out += buf;
  }
  return out;
}

std::string DumpSession(const mapreduce::SessionResult& r) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "session=%.17g ms=%u mc=%u mf=%u viol=%llu "
                "rs=%u rc=%u ra=%u ur=%llu retry=%u spec=%u specw=%u "
                "pre=%u pss=%.17g shed=%u sviol=%llu radd=%u revt=%u",
                r.session_seconds, r.maintenance_scheduled,
                r.maintenance_completed, r.maintenance_failed,
                static_cast<unsigned long long>(
                    r.maintenance_while_foreground_pending),
                r.repairs_scheduled, r.repairs_completed, r.repairs_abandoned,
                static_cast<unsigned long long>(r.under_replicated_remaining),
                r.task_retries, r.speculative_attempts, r.speculative_wins,
                r.preemptions, r.preempted_slot_seconds, r.jobs_shed,
                static_cast<unsigned long long>(r.slo_violations_total),
                r.replicas_added, r.replicas_evicted);
  std::string out(buf);
  for (const auto& job : r.jobs) {
    out += '\n';
    out += job.ok() ? DumpResult(*job) : job.status().ToString();
  }
  for (const mapreduce::QueueUsage& q : r.queues) {
    std::snprintf(buf, sizeof(buf),
                  "\nqueue %s w=%.17g tasks=%llu ss=%.17g ct=%llu css=%.17g "
                  "slo=%.17g done=%llu shedq=%llu qviol=%llu "
                  "p50=%.17g p95=%.17g p99=%.17g qpre=%llu qpss=%.17g",
                  q.queue.c_str(), q.weight,
                  static_cast<unsigned long long>(q.tasks), q.slot_seconds,
                  static_cast<unsigned long long>(q.contended_tasks),
                  q.contended_slot_seconds, q.slo_target_s,
                  static_cast<unsigned long long>(q.jobs_completed),
                  static_cast<unsigned long long>(q.jobs_shed),
                  static_cast<unsigned long long>(q.slo_violations),
                  q.latency_p50_s, q.latency_p95_s, q.latency_p99_s,
                  static_cast<unsigned long long>(q.preemptions),
                  q.preempted_slot_seconds);
    out += buf;
  }
  return out;
}

Result<mapreduce::JobResult> Testbed::RunQuery(
    mapreduce::System system, const std::string& dfs_path,
    const QueryDef& query, bool hail_splitting,
    const mapreduce::RunOptions& options, bool collect_output) {
  HAIL_ASSIGN_OR_RETURN(
      mapreduce::JobSpec spec,
      MakeQueryJob(schema_, dfs_path, system, query, hail_splitting,
                   collect_output));
  mapreduce::JobRunner runner(dfs_.get());
  return runner.Run(spec, options);
}

}  // namespace workload
}  // namespace hail
