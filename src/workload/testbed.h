/// \file testbed.h
/// \brief Shared experiment scaffolding for tests, benches and examples.
///
/// A Testbed bundles a simulated cluster, a MiniDfs, and per-node source
/// datasets, and exposes the three systems' ingestion paths plus query
/// execution. Benches configure it at paper scale (20 GB/node logical via
/// the scale model); tests at toy scale.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hadooppp/hadooppp_upload.h"
#include "hail/hail_client.h"
#include "hdfs/dfs_client.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/scheduler.h"
#include "workload/queries.h"
#include "workload/synthetic.h"
#include "workload/uservisits.h"

namespace hail {
namespace workload {

struct TestbedConfig {
  int num_nodes = 10;
  sim::NodeProfile profile = sim::NodeProfile::Physical();
  int replication = 3;
  /// Paper-scale block size (64 MB default).
  uint64_t logical_block_bytes = 64ull * 1024 * 1024;
  /// Real bytes per block in this process; scale = logical/real.
  uint64_t real_block_bytes = 32 * 1024;
  /// Logical blocks generated per node (paper: 20 GB/node / 64 MB = 320).
  uint32_t blocks_per_node = 320;
  double hardware_variance = 0.0;
  uint64_t seed = 42;
  /// One generated text shared by all nodes (memory saver); set false to
  /// give each node distinct rows.
  bool share_text_across_nodes = true;
  /// Serialise PAX blocks as format v3 (encoded minipages) cluster-wide.
  /// Off by default so golden byte streams are unchanged.
  bool encode_blocks = false;
  /// Build per-column block statistics during HAIL uploads (the input of
  /// the cost-based access-path planner). Off by default.
  bool build_stats = false;
  /// Generate UserVisits with visitDate in event-time order (disjoint
  /// per-block date ranges — what zone-map skipping prunes).
  bool time_ordered_uservisits = false;
  sim::CostConstants constants;
};

/// \brief One experiment environment (cluster + DFS + datasets).
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  sim::SimCluster& cluster() { return *cluster_; }
  hdfs::MiniDfs& dfs() { return *dfs_; }
  const TestbedConfig& config() const { return config_; }
  const Schema& schema() const { return schema_; }
  double scale_factor() const {
    return static_cast<double>(config_.logical_block_bytes) /
           static_cast<double>(config_.real_block_bytes);
  }

  /// Generates the UserVisits / Synthetic source texts for every node.
  void LoadUserVisits();
  void LoadSynthetic();

  /// Upload paths (one per system). `sort_columns` holds HAIL's per-replica
  /// index attributes; `index_column` the single trojan attribute.
  Result<hdfs::UploadReport> UploadHadoop(const std::string& dfs_path);
  Result<HailUploadReport> UploadHail(const std::string& dfs_path,
                                      std::vector<int> sort_columns);
  Result<hadooppp::HadoopPPUploadReport> UploadHadoopPP(
      const std::string& dfs_path, int index_column);

  /// Frees the generated source texts (after upload, to cap memory).
  void FreeSourceTexts();

  /// Runs one catalogue query as a MapReduce job.
  Result<mapreduce::JobResult> RunQuery(
      mapreduce::System system, const std::string& dfs_path,
      const QueryDef& query, bool hail_splitting = false,
      const mapreduce::RunOptions& options = {},
      bool collect_output = false);

 private:
  std::vector<hdfs::ParallelUploadSpec> MakeSpecs(const std::string& path);
  uint64_t RowsPerNode(double avg_row_bytes) const;

  TestbedConfig config_;
  std::unique_ptr<sim::SimCluster> cluster_;
  std::unique_ptr<hdfs::MiniDfs> dfs_;
  Schema schema_;
  std::vector<std::string> texts_;  // size 1 when shared
};

/// Exact textual dump of every simulated number in a JobResult — doubles
/// rendered with %.17g, output rows appended in emitted order — so two
/// dumps compare equal iff the results are bit-identical. The single
/// source of truth for the serial==parallel determinism checks (tests and
/// benches share it so the field list cannot drift between copies).
std::string DumpResult(const mapreduce::JobResult& result);

/// Same contract for a whole multi-job session: session clock, per-job
/// dumps (submission order; errors dump their status), per-queue
/// slot-second usage and the maintenance counters/invariant.
std::string DumpSession(const mapreduce::SessionResult& result);

/// Exact textual dump of a per-query cost ledger (integer nanoseconds per
/// bucket + total), same bit-identity contract as DumpResult. Used by the
/// cost-attribution determinism tests; deliberately NOT part of
/// DumpResult so the pre-existing golden dumps stay byte-stable.
std::string DumpCost(const obs::CostLedger& ledger);

/// Exact textual dump of a computed JobPlan — splits with block ids and
/// preferred nodes, index column, and (when planned) every per-block
/// access decision with %.17g estimates. Two dumps compare equal iff the
/// plans are bit-identical; the serial==parallel plan-identity gate in
/// bench_planner rests on it.
std::string DumpPlan(const mapreduce::JobPlan& plan);

}  // namespace workload
}  // namespace hail
