#include "workload/queries.h"

namespace hail {
namespace workload {

std::vector<QueryDef> BobQueries() {
  // SELECT sourceIP FROM UserVisits
  //   WHERE visitDate BETWEEN '1999-01-01' AND '2000-01-01'
  // SELECT searchWord, duration, adRevenue FROM UserVisits WHERE ...
  return {
      {"Bob-Q1", "@3 between(1999-01-01,2000-01-01)", "{@1}", 3.1e-2},
      {"Bob-Q2", "@1 = 172.101.11.46", "{@8,@9,@4}", 3.2e-8},
      {"Bob-Q3", "@1 = 172.101.11.46 and @3 = 1992-12-22", "{@8,@9,@4}",
       6e-9},
      {"Bob-Q4", "@4 between(1,10)", "{@8,@9,@4}", 1.7e-2},
      {"Bob-Q5", "@4 between(1,100)", "{@8,@9,@4}", 2.04e-1},
  };
}

std::vector<QueryDef> SyntheticQueries() {
  // Table 1: selectivities 0.10 / 0.01 with 19, 9 and 1 projected
  // attributes; all filter on the first attribute. Attribute domain is
  // [0, 10^7), so prefix ranges give exact selectivities.
  const std::string sel10 = "@1 < 1000000";
  const std::string sel01 = "@1 < 100000";
  std::string proj9 = "{@1,@2,@3,@4,@5,@6,@7,@8,@9}";
  return {
      {"Syn-Q1a", sel10, "", 0.10},
      {"Syn-Q1b", sel10, proj9, 0.10},
      {"Syn-Q1c", sel10, "{@1}", 0.10},
      {"Syn-Q2a", sel01, "", 0.01},
      {"Syn-Q2b", sel01, proj9, 0.01},
      {"Syn-Q2c", sel01, "{@1}", 0.01},
  };
}

Result<mapreduce::JobSpec> MakeQueryJob(const Schema& schema,
                                        const std::string& input_file,
                                        mapreduce::System system,
                                        const QueryDef& query,
                                        bool hail_splitting,
                                        bool collect_output) {
  mapreduce::JobSpec spec;
  spec.name = query.name;
  spec.input_file = input_file;
  spec.schema = schema;
  spec.system = system;
  HAIL_ASSIGN_OR_RETURN(
      QueryAnnotation annotation,
      ParseAnnotation(schema, query.filter, query.projection));
  spec.annotation = std::move(annotation);
  spec.hail_splitting = hail_splitting;
  spec.collect_output = collect_output;
  return spec;
}

}  // namespace workload
}  // namespace hail
