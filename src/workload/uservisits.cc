#include "workload/uservisits.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "util/random.h"

namespace hail {
namespace workload {

namespace {

constexpr const char* kCountryCodes[] = {"USA", "DEU", "FRA", "GBR", "CHN",
                                         "IND", "BRA", "JPN", "MEX", "TUR"};
constexpr const char* kLanguages[] = {"en",    "de", "fr",    "zh", "hi",
                                      "pt-br", "ja", "es-mx", "tr", "it"};
// Pavlo et al.'s UserVisits declares userAgent VARCHAR(256) and
// sourceIP/destURL as long varchars; realistic full agent strings keep the
// binary/text size ratio near 1 (strings dominate the row), matching the
// paper's observation that UserVisits barely shrinks under conversion.
constexpr const char* kAgents[] = {
    "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/535.1 (KHTML like "
    "Gecko) Chrome/14.0.835.202 Safari/535.1",
    "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 5.1; Trident/4.0; .NET "
    "CLR 2.0.50727)",
    "Opera/9.80 (X11; Linux x86_64; U; en) Presto/2.9.168 Version/11.52",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_7_2) AppleWebKit/534.51.22",
    "Mozilla/5.0 (X11; Ubuntu; Linux i686; rv:8.0) Gecko/20100101 "
    "Firefox/8.0",
};
constexpr const char* kWords[] = {
    "alpha",  "bravo",  "charlie", "delta", "echo",  "foxtrot", "golf",
    "hotel",  "india",  "juliet",  "kilo",  "lima",  "mike",    "november",
    "oscar",  "papa",   "quebec",  "romeo", "sierra", "tango",  "uniform",
    "victor", "whisky", "xray",    "yankee", "zulu"};

// visitDate domain: [1980-01-01, 2012-04-01). 11,779 days, so the one-year
// Q1 window of 366 days selects 3.107e-2 of the rows.
constexpr int32_t kDateBaseDays = 3653;   // 1980-01-01
constexpr int32_t kDateSpanDays = 11779;

// adRevenue domain [0, 520): Q4's [1,10] selects 1.73e-2; Q5's [1,100]
// selects 1.90e-1 (paper: 2.04e-1).
constexpr double kAdRevenueMax = 520.0;

}  // namespace

Schema UserVisitsSchema() {
  return Schema({
      {"sourceIP", FieldType::kString},
      {"destURL", FieldType::kString},
      {"visitDate", FieldType::kDate},
      {"adRevenue", FieldType::kDouble},
      {"userAgent", FieldType::kString},
      {"countryCode", FieldType::kString},
      {"languageCode", FieldType::kString},
      {"searchWord", FieldType::kString},
      {"duration", FieldType::kInt32},
  });
}

std::string GenerateUserVisitsText(const UserVisitsConfig& config) {
  Random rng(config.seed);
  uint64_t needle_every = config.needle_every;
  if (needle_every == 0) {
    // Match the paper-scale needle density of 3.2e-8 under the scale
    // model: one real needle row represents `scale_factor` logical rows.
    const double logical_density = 3.2e-8 * config.scale_factor;
    needle_every = logical_density > 0
                       ? static_cast<uint64_t>(1.0 / logical_density)
                       : 0;
    if (needle_every == 0) needle_every = 1;
    // Tiny (test-sized) datasets still need Bob's needle to exist at all;
    // clamp so at least one needle row is planted.
    if (needle_every > config.rows && config.rows > 0) {
      needle_every = config.rows;
    }
  }

  std::string out;
  out.reserve(config.rows * 160);
  char buf[64];
  uint64_t needle_count = 0;
  for (uint64_t r = 0; r < config.rows; ++r) {
    const bool is_needle = needle_every > 0 && (r % needle_every) ==
                                                   (needle_every / 2);
    // sourceIP
    if (is_needle) {
      out += kNeedleIP;
      ++needle_count;
    } else {
      std::snprintf(buf, sizeof(buf), "%d.%d.%d.%d",
                    static_cast<int>(rng.Uniform(223) + 1),
                    static_cast<int>(rng.Uniform(256)),
                    static_cast<int>(rng.Uniform(256)),
                    static_cast<int>(rng.Uniform(256)));
      out += buf;
    }
    out += ',';
    // destURL
    out += "http://www.";
    out += rng.NextString(8 + rng.Uniform(10));
    out += ".com/";
    out += rng.NextString(6 + rng.Uniform(12));
    out += ',';
    // visitDate: every 5th needle row carries Bob-Q3's exact date.
    int32_t days;
    if (is_needle && (needle_count % 5) == 1) {
      days = *ParseDateToDays(kNeedleDate);
    } else if (config.time_ordered) {
      days = kDateBaseDays +
             static_cast<int32_t>(r * static_cast<uint64_t>(kDateSpanDays) /
                                  std::max<uint64_t>(config.rows, 1));
    } else {
      days = kDateBaseDays + static_cast<int32_t>(rng.Uniform(kDateSpanDays));
    }
    out += DaysToDateString(days);
    out += ',';
    // adRevenue
    std::snprintf(buf, sizeof(buf), "%.2f", rng.NextDouble() * kAdRevenueMax);
    out += buf;
    out += ',';
    // userAgent / countryCode / languageCode / searchWord
    out += kAgents[rng.Uniform(std::size(kAgents))];
    out += ',';
    out += kCountryCodes[rng.Uniform(std::size(kCountryCodes))];
    out += ',';
    out += kLanguages[rng.Uniform(std::size(kLanguages))];
    out += ',';
    out += kWords[rng.Uniform(std::size(kWords))];
    out += ',';
    // duration
    std::snprintf(buf, sizeof(buf), "%d", static_cast<int>(rng.Uniform(10000)));
    out += buf;
    out += '\n';
  }
  return out;
}

double UserVisitsAvgRowBytes() { return 172.0; }

}  // namespace workload
}  // namespace hail
