/// \file synthetic.h
/// \brief The Synthetic dataset: 19 integer attributes (paper §6.2).
///
/// "We additionally use a Synthetic dataset consisting of 19 integer
/// attributes in order to understand the effects of selectivity ... all
/// queries use the same attribute for filtering", so HAIL's extra indexes
/// cannot help — that isolation is the point. Integer-only rows shrink
/// considerably under binary conversion, which is why HAIL uploads this
/// dataset 1.6x faster than Hadoop (Fig. 4b).

#pragma once

#include <cstdint>
#include <string>

#include "schema/schema.h"

namespace hail {
namespace workload {

Schema SyntheticSchema(int num_attributes = 19);

struct SyntheticConfig {
  uint64_t rows = 10000;
  uint64_t seed = 7;
  int num_attributes = 19;
  /// Attribute values are uniform in [0, max_value); queries on @1 use
  /// prefix ranges, so selectivity = bound / max_value.
  int32_t max_value = 10000000;
};

std::string GenerateSyntheticText(const SyntheticConfig& config);

/// Selectivity s on the filter attribute -> upper bound for "@1 < bound".
int32_t SyntheticBoundForSelectivity(const SyntheticConfig& config, double s);

double SyntheticAvgRowBytes();

}  // namespace workload
}  // namespace hail
