/// \file queries.h
/// \brief The paper's query catalogue: Bob-Q1..Q5 and Syn-Q1a..Q2c (§6.2).

#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "schema/schema.h"
#include "util/result.h"

namespace hail {
namespace workload {

/// \brief One benchmark query: a filter + projection over a dataset.
struct QueryDef {
  std::string name;
  std::string filter;      // @HailQuery filter text
  std::string projection;  // @HailQuery projection text ("" = all attrs)
  double paper_selectivity = 0.0;
};

/// Bob's five UserVisits queries with the paper's selectivities.
std::vector<QueryDef> BobQueries();

/// The six Synthetic queries of Table 1 (all filter on @1).
std::vector<QueryDef> SyntheticQueries();

/// Builds a runnable JobSpec for a query on a given system.
Result<mapreduce::JobSpec> MakeQueryJob(const Schema& schema,
                                        const std::string& input_file,
                                        mapreduce::System system,
                                        const QueryDef& query,
                                        bool hail_splitting = false,
                                        bool collect_output = false);

}  // namespace workload
}  // namespace hail
