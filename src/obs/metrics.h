/// \file metrics.h
/// \brief Unified metrics registry: typed counters, gauges, histograms.
///
/// One registry per cluster (owned by MiniDfs) replaces the ad-hoc
/// counters that used to be scattered across the block cache, the
/// scheduler, the adaptive observer and the repair path. Three types:
///
///  - Counter: monotonic uint64, incremented from scan-kernel hot paths
///    and pool threads. Sharded relaxed atomics — on the serial engine a
///    single thread touches a single cache line; on the parallel engine
///    each worker lands on its own shard and the read-side merge is a
///    plain uint64 sum, which is associative and commutative, so the
///    merged value is bit-identical regardless of thread interleaving.
///  - Gauge: a double, mutated only on the simulated-clock event thread
///    (enforced by convention, checked under TSan in CI).
///  - Histogram: fixed boundaries chosen at registration; per-bucket
///    counts are Counters, so parallel observation stays deterministic.
///
/// Registration is by dotted lowercase name ("cache.verify_hits",
/// "scheduler.preemptions"); `TakeSnapshot()` returns every metric
/// sorted by name and serializes to one canonical flat JSON object —
/// the single serializer behind every BENCH_*.json and the metrics
/// artifacts, so keys cannot drift between benches.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hail {
namespace obs {

/// Shortest round-trip decimal rendering of a double (deterministic
/// across runs and platforms with IEEE doubles; "17" never prints as
/// "17.000000000000000").
std::string FormatDouble(double v);

/// \brief Monotonic counter with per-worker shards.
class Counter {
 public:
  void Add(uint64_t delta) {
    slots_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  /// Sum over shards. Deterministic for a deterministic set of
  /// increments (uint64 addition commutes).
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  static size_t ThisThreadShard();
  Slot slots_[kShards];
};

/// \brief Last-value-wins double. Event-thread only.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double Value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// \brief Fixed-boundary histogram; bucket i counts values <= bounds[i],
/// with one overflow bucket, so counts.size() == bounds.size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> Counts() const;
  uint64_t TotalCount() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Counter>> buckets_;
};

/// \brief One metric in a snapshot (name-sorted within the snapshot).
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t count = 0;             // counter
  double value = 0.0;             // gauge
  std::vector<double> bounds;     // histogram
  std::vector<uint64_t> buckets;  // histogram (bounds.size() + 1)
};

/// \brief Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Canonical flat JSON object: counters as integers, gauges as
  /// shortest-round-trip doubles, histograms as {bounds, counts}.
  /// Byte-deterministic for equal metric values.
  std::string ToJson() const;

  /// "name value" per line (human quick-look / test diffs).
  std::string ToText() const;
};

/// \brief Named registry. Thread-safe registration; lookups return
/// stable pointers that stay valid for the registry's lifetime, so hot
/// paths resolve a name once and increment raw pointers afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or registers. A name registered as one kind must not be
  /// reused as another (returns the existing metric of that kind only).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// \p bounds is consulted only on first registration.
  Histogram* histogram(std::string_view name, std::vector<double> bounds);

  /// Zeroes every value but keeps registrations (pointers stay valid).
  void Reset();

  MetricsSnapshot TakeSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Writes \p contents to \p path (truncating). Returns false on I/O
/// error. Shared by the bench JSON emitters and the trace writers.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace obs
}  // namespace hail
