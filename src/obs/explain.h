/// \file explain.h
/// \brief Plan-shaped per-query profile (EXPLAIN ANALYZE for the sim).
///
/// `RunOptions::profile` makes a query come back with one of these:
/// which access path the planner chose, how much data the path let the
/// scan skip, rows through the filter kernels, what the block cache
/// saved, and the billed cost split into attribution buckets.
/// `FormatProfile` renders the text form printed by the examples and
/// benches (`bench_query_exec` prints one for the first fig7 query).

#pragma once

#include <cstdint>
#include <string>

#include "obs/cost_attribution.h"

namespace hail {
namespace obs {

struct QueryProfile {
  std::string job_name;
  std::string system;      // "HAIL", "Hadoop", "Hadoop++"
  std::string annotation;  // predicate annotation driving path choice

  // ---- access path ----
  std::string access_path;  // "clustered-index", "full-scan", "mixed", ...
  int index_column = -1;    // sort/index column the plan keyed on; -1 = none
  uint32_t map_tasks = 0;
  uint32_t index_scan_tasks = 0;
  uint32_t unclustered_scan_tasks = 0;
  uint32_t fallback_scans = 0;

  // ---- scan effort ----
  uint64_t blocks_scanned = 0;  // blocks whose rows were touched
  uint64_t blocks_skipped = 0;  // blocks an index probe pruned entirely
  uint64_t rows_skipped = 0;    // rows an index let the scan not touch
  uint64_t rows_in = 0;         // rows into the filter kernels
  uint64_t rows_out = 0;        // rows qualifying
  uint64_t output_rows = 0;     // rows emitted by the map function

  // ---- cost-based planner (JobSpec::use_planner) ----
  bool planned = false;          // per-block access decisions were computed
  double predicted_seconds = 0;  // planner's cost estimate for the job
  uint64_t zone_skipped_blocks = 0;  // blocks pruned by zone-map disproof

  // ---- cache ----
  uint64_t cache_verify_hits = 0;
  uint64_t cache_verify_misses = 0;
  uint64_t cache_artifact_hits = 0;
  uint64_t cache_artifact_misses = 0;
  uint64_t cache_index_decodes = 0;

  // ---- cost ----
  CostLedger cost;              // per-bucket billed breakdown
  double billed_seconds = 0.0;  // double-side billed total (cross-check)
  double end_to_end_seconds = 0.0;
};

/// Multi-line EXPLAIN-style rendering.
std::string FormatProfile(const QueryProfile& profile);

}  // namespace obs
}  // namespace hail
