/// \file trace.h
/// \brief Span tracer on the simulated clock, deterministic in parallel.
///
/// Spans live on the *simulated* timeline: a span's start/duration are
/// simulated seconds, so a trace of a parallel run shows the same
/// cluster history as the serial run — and must be byte-identical,
/// which is gated by tests. Two pieces make that work:
///
///  - The Tracer itself is only ever mutated on the event thread
///    (inside simulated events, or in the drain window that
///    deterministically follows one event in the parallel engine).
///    Span ids are assigned in append order, which is therefore
///    identical in both engines.
///  - Work executed on pool threads (the readers) records spans into a
///    per-task TraceBuffer with *cost offsets* instead of absolute
///    times: "this block read covered billed seconds [a, b) of my
///    task". The engine splices the buffer into the Tracer at the
///    task's completion event, mapping offsets onto the simulated
///    timeline (assign time + setup + slowdown factor) — so the trace
///    content never depends on which wall-clock thread did the work.
///
/// Output: Chrome trace-event JSON (`trace.json`, loadable in
/// chrome://tracing or https://ui.perfetto.dev) and a compact indented
/// text tree (golden-pinned in tests).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"  // FormatDouble

namespace hail {
namespace obs {

/// \brief One completed span. `lane` is the Chrome "tid" — the datanode
/// that did the work, or -1 for the session engine itself.
struct TraceSpan {
  uint64_t id = 0;      // 1-based append order
  uint64_t parent = 0;  // 0 = root
  std::string name;
  std::string category;
  double start = 0.0;     // simulated seconds
  double duration = 0.0;  // simulated seconds
  int lane = -1;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// \brief Per-task span buffer filled on whatever thread runs the read.
///
/// Offsets are billed-cost seconds relative to the start of the task's
/// data access; the engine maps them to simulated time at splice.
/// Open/Close nest (a stack provides parent linkage inside the buffer).
class TraceBuffer {
 public:
  /// Opens a child of the innermost open span (or a buffer root).
  /// Returns a handle for Close/Attr.
  size_t Open(const char* name, const char* category, double offset);
  void Close(size_t handle, double end_offset);

  void Attr(size_t handle, const char* key, std::string value);
  void Attr(size_t handle, const char* key, const char* value) {
    Attr(handle, key, std::string(value));
  }
  void Attr(size_t handle, const char* key, uint64_t value) {
    Attr(handle, key, std::to_string(value));
  }
  void Attr(size_t handle, const char* key, int64_t value) {
    Attr(handle, key, std::to_string(value));
  }
  void Attr(size_t handle, const char* key, int value) {
    Attr(handle, key, std::to_string(value));
  }
  void Attr(size_t handle, const char* key, double value) {
    Attr(handle, key, FormatDouble(value));
  }

  bool empty() const { return spans_.empty(); }
  void clear() {
    spans_.clear();
    open_.clear();
  }

  struct LocalSpan {
    std::string name;
    std::string category;
    double offset = 0.0;    // cost seconds from task data-access start
    double duration = 0.0;  // cost seconds
    size_t parent = 0;      // 1-based local id; 0 = buffer root
    std::vector<std::pair<std::string, std::string>> attrs;
  };
  const std::vector<LocalSpan>& spans() const { return spans_; }

 private:
  std::vector<LocalSpan> spans_;
  std::vector<size_t> open_;  // stack of 1-based local ids
};

/// \brief Session-wide span sink. Event-thread only; a null Tracer*
/// anywhere means tracing is off and costs nothing but the null check.
class Tracer {
 public:
  /// Appends a span; duration may be patched later via SetEnd.
  uint64_t AddSpan(std::string name, std::string category, double start,
                   double duration, uint64_t parent, int lane);
  /// Sets duration so the span ends at \p end (clamped non-negative).
  void SetEnd(uint64_t id, double end);

  void Attr(uint64_t id, const char* key, std::string value);
  void Attr(uint64_t id, const char* key, const char* value) {
    Attr(id, key, std::string(value));
  }
  void Attr(uint64_t id, const char* key, uint64_t value) {
    Attr(id, key, std::to_string(value));
  }
  void Attr(uint64_t id, const char* key, int64_t value) {
    Attr(id, key, std::to_string(value));
  }
  void Attr(uint64_t id, const char* key, int value) {
    Attr(id, key, std::to_string(value));
  }
  void Attr(uint64_t id, const char* key, double value) {
    Attr(id, key, FormatDouble(value));
  }

  /// Splices a task-local buffer under \p parent: every buffer span
  /// lands at `origin + offset * scale` with duration scaled by
  /// \p scale (the node's slowdown factor).
  void Splice(const TraceBuffer& buffer, uint64_t parent, int lane,
              double origin, double scale);

  void Clear() { spans_.clear(); }
  size_t size() const { return spans_.size(); }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Chrome trace-event JSON ("X" complete events; span/parent ids kept
  /// in args). Byte-deterministic for equal span sets.
  std::string ToChromeJson() const;

  /// Indented tree, children under parents, ordered by (start, id).
  /// With \p include_times false, only names and attributes print —
  /// the golden-file tests pin that structural form.
  std::string ToTextTree(bool include_times = true) const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace obs
}  // namespace hail
