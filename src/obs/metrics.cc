#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace hail {
namespace obs {

std::string FormatDouble(double v) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  char fallback[64];
  std::snprintf(fallback, sizeof(fallback), "%.17g", v);
  return fallback;
}

size_t Counter::ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed) %
                              Counter::kShards;
  return shard;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<Counter>());
  }
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i]->Inc();
}

std::vector<uint64_t> Histogram::Counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->Value());
  return out;
}

uint64_t Histogram::TotalCount() const {
  uint64_t sum = 0;
  for (const auto& b : buckets_) sum += b->Value();
  return sum;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b->Reset();
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kCounter;
    m.count = c->Value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kGauge;
    m.value = g->Value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kHistogram;
    m.bounds = h->bounds();
    m.buckets = h->Counts();
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    AppendJsonString(&out, m.name);
    out += ": ";
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += std::to_string(m.count);
        break;
      case MetricValue::Kind::kGauge:
        out += FormatDouble(m.value);
        break;
      case MetricValue::Kind::kHistogram: {
        out += "{\"bounds\": [";
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          if (i) out += ", ";
          out += FormatDouble(m.bounds[i]);
        }
        out += "], \"counts\": [";
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          if (i) out += ", ";
          out += std::to_string(m.buckets[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    out += m.name;
    out += ' ';
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += std::to_string(m.count);
        break;
      case MetricValue::Kind::kGauge:
        out += FormatDouble(m.value);
        break;
      case MetricValue::Kind::kHistogram:
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          if (i) out += '/';
          out += std::to_string(m.buckets[i]);
        }
        break;
    }
    out += '\n';
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == contents.size() && closed;
}

}  // namespace obs
}  // namespace hail
