#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace hail {
namespace obs {

size_t TraceBuffer::Open(const char* name, const char* category,
                         double offset) {
  LocalSpan span;
  span.name = name;
  span.category = category;
  span.offset = offset;
  span.parent = open_.empty() ? 0 : open_.back();
  spans_.push_back(std::move(span));
  const size_t handle = spans_.size();  // 1-based
  open_.push_back(handle);
  return handle;
}

void TraceBuffer::Close(size_t handle, double end_offset) {
  LocalSpan& span = spans_[handle - 1];
  span.duration = std::max(0.0, end_offset - span.offset);
  // Handles close LIFO in the readers; tolerate out-of-order anyway.
  auto it = std::find(open_.rbegin(), open_.rend(), handle);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

void TraceBuffer::Attr(size_t handle, const char* key, std::string value) {
  spans_[handle - 1].attrs.emplace_back(key, std::move(value));
}

uint64_t Tracer::AddSpan(std::string name, std::string category, double start,
                         double duration, uint64_t parent, int lane) {
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start = start;
  span.duration = duration;
  span.lane = lane;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::SetEnd(uint64_t id, double end) {
  TraceSpan& span = spans_[id - 1];
  span.duration = std::max(0.0, end - span.start);
}

void Tracer::Attr(uint64_t id, const char* key, std::string value) {
  spans_[id - 1].attrs.emplace_back(key, std::move(value));
}

void Tracer::Splice(const TraceBuffer& buffer, uint64_t parent, int lane,
                    double origin, double scale) {
  // Local ids are 1-based and parents always precede children, so a
  // single pass with an id-translation table suffices.
  std::vector<uint64_t> global_of(buffer.spans().size() + 1, parent);
  size_t local = 1;
  for (const TraceBuffer::LocalSpan& s : buffer.spans()) {
    const uint64_t gparent = global_of[s.parent];
    const uint64_t id =
        AddSpan(s.name, s.category, origin + s.offset * scale,
                s.duration * scale, gparent, lane);
    for (const auto& [k, v] : s.attrs) Attr(id, k.c_str(), v);
    global_of[local++] = id;
  }
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"";
    AppendJsonEscaped(&out, s.name);
    out += "\", \"cat\": \"";
    AppendJsonEscaped(&out, s.category);
    out += "\", \"ph\": \"X\", \"ts\": ";
    out += FormatDouble(s.start * 1e6);  // Chrome wants microseconds
    out += ", \"dur\": ";
    out += FormatDouble(s.duration * 1e6);
    out += ", \"pid\": 0, \"tid\": ";
    out += std::to_string(s.lane);
    out += ", \"args\": {\"span_id\": ";
    out += std::to_string(s.id);
    out += ", \"parent_id\": ";
    out += std::to_string(s.parent);
    for (const auto& [k, v] : s.attrs) {
      out += ", \"";
      AppendJsonEscaped(&out, k);
      out += "\": \"";
      AppendJsonEscaped(&out, v);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::ToTextTree(bool include_times) const {
  // Children grouped under parents, siblings ordered by (start, id).
  std::vector<std::vector<size_t>> children(spans_.size() + 1);
  for (const TraceSpan& s : spans_) {
    children[s.parent].push_back(s.id);
  }
  for (auto& list : children) {
    std::stable_sort(list.begin(), list.end(),
                     [this](size_t a, size_t b) {
                       const TraceSpan& sa = spans_[a - 1];
                       const TraceSpan& sb = spans_[b - 1];
                       if (sa.start != sb.start) return sa.start < sb.start;
                       return sa.id < sb.id;
                     });
  }
  std::string out;
  // Iterative DFS from the virtual root.
  struct Frame {
    size_t id;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const TraceSpan& s = spans_[f.id - 1];
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    if (include_times) {
      out += '[';
      out += FormatDouble(s.start);
      out += " +";
      out += FormatDouble(s.duration);
      out += "s] ";
    }
    out += s.name;
    for (const auto& [k, v] : s.attrs) {
      out += ' ';
      out += k;
      out += '=';
      out += v;
    }
    out += '\n';
    for (auto it = children[f.id].rbegin(); it != children[f.id].rend();
         ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out;
}

}  // namespace obs
}  // namespace hail
