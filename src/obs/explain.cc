#include "obs/explain.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace hail {
namespace obs {

std::string FormatProfile(const QueryProfile& p) {
  char line[256];
  std::string out;

  std::snprintf(line, sizeof(line), "Query %s  [%s]%s%s\n",
                p.job_name.c_str(), p.system.c_str(),
                p.annotation.empty() ? "" : "  where ",
                p.annotation.c_str());
  out += line;

  std::snprintf(line, sizeof(line),
                "  access path : %s (index column %d)\n",
                p.access_path.c_str(), p.index_column);
  out += line;
  std::snprintf(line, sizeof(line),
                "  map tasks   : %u total = %u clustered-index + %u "
                "unclustered-index + %u full-scan fallback\n",
                p.map_tasks, p.index_scan_tasks, p.unclustered_scan_tasks,
                p.fallback_scans);
  out += line;
  std::snprintf(line, sizeof(line),
                "  blocks      : %" PRIu64 " scanned, %" PRIu64
                " skipped by index probes\n",
                p.blocks_scanned, p.blocks_skipped);
  out += line;
  if (p.planned) {
    // Planner rows render only for planned queries, so unplanned EXPLAIN
    // output is byte-identical to before the planner existed.
    std::snprintf(line, sizeof(line),
                  "  planner     : cost-based, %" PRIu64
                  " blocks zone-map skipped\n",
                  p.zone_skipped_blocks);
    out += line;
    out += "  predicted   : " + FormatDouble(p.predicted_seconds) +
           " s billed-cost estimate\n";
  }
  std::snprintf(line, sizeof(line),
                "  rows        : %" PRIu64 " in -> %" PRIu64
                " qualifying -> %" PRIu64 " emitted (%" PRIu64
                " never touched)\n",
                p.rows_in, p.rows_out, p.output_rows, p.rows_skipped);
  out += line;
  std::snprintf(line, sizeof(line),
                "  cache       : verify %" PRIu64 " hit / %" PRIu64
                " miss, artifact %" PRIu64 " hit / %" PRIu64
                " miss, %" PRIu64 " index decodes\n",
                p.cache_verify_hits, p.cache_verify_misses,
                p.cache_artifact_hits, p.cache_artifact_misses,
                p.cache_index_decodes);
  out += line;

  out += "  billed cost : " + FormatDouble(p.cost.total_seconds()) +
         " s attributed (end-to-end " + FormatDouble(p.end_to_end_seconds) +
         " s)\n";
  for (int i = 0; i < kNumCostBuckets; ++i) {
    const uint64_t nanos = p.cost.nanos[i];
    if (nanos == 0) continue;
    const double seconds = static_cast<double>(nanos) * 1e-9;
    const double share =
        p.cost.total_nanos
            ? 100.0 * static_cast<double>(nanos) /
                  static_cast<double>(p.cost.total_nanos)
            : 0.0;
    std::snprintf(line, sizeof(line), "    %-18s %12.6f s  %5.1f%%\n",
                  CostBucketName(static_cast<CostBucket>(i)), seconds, share);
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace hail
