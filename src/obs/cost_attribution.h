/// \file cost_attribution.h
/// \brief Per-query attribution of billed simulated cost to typed buckets.
///
/// Every CostModel billing site also books the same seconds into exactly
/// one bucket of a CostLedger. The ledger is pure bookkeeping on the
/// side: the simulated doubles that drive the clock (TaskCost
/// disk/cpu/net seconds) are never touched, so enabling attribution
/// cannot perturb a single billed cost (the zero-simulated-overhead
/// guarantee gated in CI).
///
/// Buckets are integer nanoseconds. `Bill` converts seconds to nanos
/// once and adds the same quantum to both the bucket and the running
/// total, so
///
///     sum(buckets) == total_nanos        (exactly, by construction)
///
/// which is what the invariant test enforces — a billing site that
/// forgets to attribute (or attributes twice) breaks the companion
/// check that total_nanos tracks the double-side billed total.
///
/// Integer nanos also make the ledger bit-identical between serial and
/// parallel execution: uint64 addition commutes, so the merge order of
/// per-task ledgers at completion events cannot change any value.

#pragma once

#include <cstdint>
#include <cmath>

namespace hail {
namespace obs {

/// Where one billed cost term goes. Readers bill the first six;
/// kFailoverReread is billed by the replica-failover path for work on
/// replicas that turned out corrupt or dead; the two waste buckets are
/// billed by the session engine (slot time lost to preemption, the full
/// cost of a speculative attempt that lost the race).
enum class CostBucket : uint8_t {
  kSeek = 0,
  kTransfer,
  kNetwork,
  kCpu,
  kDecode,
  kEncode,
  kFailoverReread,
  kWastedPreemption,
  kWastedSpeculation,
};
inline constexpr int kNumCostBuckets = 9;

inline const char* CostBucketName(CostBucket b) {
  switch (b) {
    case CostBucket::kSeek:
      return "seek";
    case CostBucket::kTransfer:
      return "transfer";
    case CostBucket::kNetwork:
      return "network";
    case CostBucket::kCpu:
      return "cpu";
    case CostBucket::kDecode:
      return "decode";
    case CostBucket::kEncode:
      return "encode";
    case CostBucket::kFailoverReread:
      return "failover_reread";
    case CostBucket::kWastedPreemption:
      return "wasted_preemption";
    case CostBucket::kWastedSpeculation:
      return "wasted_speculation";
  }
  return "?";
}

/// \brief Integer-nanosecond cost breakdown; buckets sum exactly to
/// total_nanos.
struct CostLedger {
  uint64_t nanos[kNumCostBuckets] = {};
  uint64_t total_nanos = 0;

  /// Books \p seconds into \p bucket (and the total). Negative or NaN
  /// amounts are clamped to zero — billing sites only produce
  /// non-negative simulated seconds.
  void Bill(CostBucket bucket, double seconds) {
    if (!(seconds > 0.0)) return;
    const uint64_t n = static_cast<uint64_t>(std::llround(seconds * 1e9));
    nanos[static_cast<int>(bucket)] += n;
    total_nanos += n;
  }

  void Add(const CostLedger& other) {
    for (int i = 0; i < kNumCostBuckets; ++i) nanos[i] += other.nanos[i];
    total_nanos += other.total_nanos;
  }

  uint64_t BucketSum() const {
    uint64_t sum = 0;
    for (uint64_t n : nanos) sum += n;
    return sum;
  }

  uint64_t bucket(CostBucket b) const { return nanos[static_cast<int>(b)]; }
  double total_seconds() const {
    return static_cast<double>(total_nanos) * 1e-9;
  }
  bool operator==(const CostLedger&) const = default;
};

}  // namespace obs
}  // namespace hail
