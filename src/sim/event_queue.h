/// \file event_queue.h
/// \brief Discrete-event simulation core: a clock plus an ordered event queue.
///
/// The simulated cluster (src/sim/cluster.h), the HDFS/HAIL upload pipelines
/// and the MapReduce job tracker all advance time through this queue. Events
/// scheduled for the same instant run in FIFO order (a monotonically
/// increasing sequence number breaks ties), which keeps every simulation
/// deterministic for a fixed input.
///
/// Sequence numbers can also be *reserved* ahead of insertion
/// (ReserveSeq/ScheduleAtReserved): the parallel task-execution engine
/// reserves an event's tie-break slot at the simulated instant the serial
/// engine would have scheduled it, then fills in the callback once the
/// off-thread work joins — making parallel event ordering byte-identical
/// to serial even for exact timestamp collisions.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace hail {
namespace sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

/// \brief Priority queue of timestamped callbacks with a simulated clock.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules \p fn to run at absolute time \p when. Scheduling in the past
  /// clamps to Now() (the event runs next).
  void ScheduleAt(SimTime when, Callback fn);

  /// Schedules \p fn to run \p delay seconds from now.
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Reserves the next sequence number without inserting an event. The
  /// reservation must later be filled with ScheduleAtReserved (or
  /// abandoned, leaving a harmless gap in the sequence).
  uint64_t ReserveSeq() { return next_seq_++; }

  /// Inserts an event under a previously reserved sequence number, so its
  /// FIFO rank among same-time events reflects the reservation point, not
  /// the insertion point.
  void ScheduleAtReserved(uint64_t seq, SimTime when, Callback fn);

  /// (when, seq) of the earliest queued event; pending() must be > 0.
  std::pair<SimTime, uint64_t> NextKey() const {
    return {events_.top().when, events_.top().seq};
  }

  /// Pops and executes exactly one event; pending() must be > 0.
  void RunOne();

  /// Runs events until the queue is empty. Returns the final clock value.
  SimTime RunUntilEmpty();

  /// Runs every event with time <= \p deadline (including events those
  /// events schedule within the deadline); later events stay queued.
  /// Afterwards the clock is exactly max(Now(), deadline) — it lands on
  /// the deadline even when no event ran, and never rewinds — so
  /// back-to-back RunUntil calls tile time into clean scheduler quanta.
  SimTime RunUntil(SimTime deadline);

  /// Number of events waiting.
  size_t pending() const { return events_.size(); }

  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

  /// Advances the clock with no event processing (used by timeline-style
  /// components that compute completion times analytically).
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Drops all pending events (without running them) and rewinds the clock
  /// to zero. Used when a cluster is reset between experiments.
  void Clear() {
    events_ = {};
    now_ = 0.0;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace sim
}  // namespace hail
