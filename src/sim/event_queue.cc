#include "sim/event_queue.h"

#include <utility>

namespace hail {
namespace sim {

void EventQueue::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAtReserved(uint64_t seq, SimTime when, Callback fn) {
  if (when < now_) when = now_;
  events_.push(Event{when, seq, std::move(fn)});
}

void EventQueue::RunOne() {
  // The callback may schedule more events, so move it out before popping.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
}

SimTime EventQueue::RunUntilEmpty() {
  while (!events_.empty()) RunOne();
  return now_;
}

SimTime EventQueue::RunUntil(SimTime deadline) {
  while (!events_.empty() && events_.top().when <= deadline) RunOne();
  // Quantum-stepping contract: the clock lands exactly on the deadline
  // (never rewinds), so back-to-back RunUntil calls tile time and relative
  // scheduling from the driver anchors at the quantum boundary.
  AdvanceTo(deadline);
  return now_;
}

}  // namespace sim
}  // namespace hail
