/// \file cost_model.h
/// \brief Converts logical work (bytes, records) into simulated seconds.
///
/// Every functional operation in the repository really executes on real
/// (scaled-down) data; the cost model is consulted with *logical*
/// (paper-scale) quantities to decide how long that operation takes on a
/// given node. See DESIGN.md §2 for the real/logical split.

#pragma once

#include <cstdint>

#include "sim/node_profile.h"

namespace hail {
namespace sim {

/// \brief Stateless duration calculator for one node type.
class CostModel {
 public:
  CostModel(NodeProfile profile, CostConstants constants)
      : p_(profile), c_(constants) {}

  const NodeProfile& profile() const { return p_; }
  const CostConstants& constants() const { return c_; }

  // ---- CPU (seconds; scaled by the node's cpu_factor) ----

  /// Parsing text into typed fields at upload (HAIL client / MR conversion).
  double TextParse(uint64_t logical_bytes) const {
    return CpuMs(MB(logical_bytes) * c_.text_parse_ms_per_mb);
  }

  /// Building PAX minipages out of parsed fields.
  double PaxBuild(uint64_t logical_binary_bytes) const {
    return CpuMs(MB(logical_binary_bytes) * c_.pax_build_ms_per_mb);
  }

  /// In-memory sort of one block by one key: n log2 n comparisons plus a
  /// full reorganisation pass over all columns. Fixed-width and varlen
  /// payload bytes are billed at different rates (string gathers dominate
  /// the paper's 2-3 s per 64 MB block, §3.5).
  double SortBlock(uint64_t logical_records, uint64_t logical_fixed_bytes,
                   uint64_t logical_varlen_bytes, bool string_key) const;

  /// Sparse clustered index + varlen offset lists for one block replica.
  double IndexBuild(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) *
                 c_.index_build_us_per_record);
  }

  /// Dense unclustered index over one block (adaptive incremental path).
  double UnclusteredBuild(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) *
                 c_.unclustered_build_us_per_record);
  }

  /// CRC32C over a byte range (compute or verify).
  double Crc(uint64_t logical_bytes) const {
    return CpuMs(MB(logical_bytes) * c_.crc_ms_per_mb);
  }

  /// Standard Hadoop RecordReader CPU: split text rows into attributes.
  double ScanParse(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) *
                 c_.scan_parse_us_per_record);
  }

  /// Hadoop++ binary row deserialisation.
  double BinaryDeserialize(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) *
                 c_.binary_deser_us_per_record);
  }

  /// Predicate evaluation over PAX values (HAIL post-filtering).
  double PredicateEval(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) *
                 c_.predicate_us_per_record);
  }

  /// PAX -> row reconstruction of qualifying tuples.
  double Reconstruct(uint64_t logical_records, int projected_fields) const {
    return CpuUs(static_cast<double>(logical_records) * projected_fields *
                 c_.reconstruct_us_per_field);
  }

  /// Decoding encoded minipage values at reconstruction (format v3):
  /// qualifying records × encoded projected columns.
  double DecodeValues(uint64_t logical_values) const {
    return CpuUs(static_cast<double>(logical_values) * c_.decode_us_per_value);
  }

  /// Choosing/emitting minipage encodings while serialising (format v3):
  /// records × columns, per block build.
  double EncodeValues(uint64_t logical_values) const {
    return CpuUs(static_cast<double>(logical_values) * c_.encode_us_per_value);
  }

  /// Calling the user's map function once per record.
  double MapCalls(uint64_t logical_records) const {
    return CpuUs(static_cast<double>(logical_records) * c_.map_call_us);
  }

  /// Building the per-column block-stats sidecar at upload:
  /// records × columns summarized.
  double StatsBuild(uint64_t logical_values) const {
    return CpuUs(static_cast<double>(logical_values) *
                 c_.stats_build_us_per_value);
  }

  /// Cost-based planning of \p blocks blocks during the split phase.
  double PlanBlocks(uint64_t blocks) const {
    return CpuUs(static_cast<double>(blocks) * c_.planner_block_plan_us);
  }

  // ---- disk ----

  /// One random seek.
  double DiskSeek() const { return p_.disk_seek_ms / 1000.0; }

  /// Sequential transfer of the given bytes (no seek).
  double DiskTransfer(uint64_t logical_bytes) const {
    return MB(logical_bytes) / p_.disk_mbps;
  }

  /// Seek + sequential read/write.
  double DiskAccess(uint64_t logical_bytes) const {
    return DiskSeek() + DiskTransfer(logical_bytes);
  }

  // ---- network ----

  /// One-hop transfer of the given bytes plus per-packet handling.
  double NetTransfer(uint64_t logical_bytes) const {
    const double packets =
        static_cast<double>(logical_bytes) / static_cast<double>(c_.packet_bytes);
    return MB(logical_bytes) / p_.net_mbps +
           packets * c_.packet_overhead_us * 1e-6;
  }

 private:
  static double MB(uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }
  double CpuMs(double ms) const { return ms / 1000.0 / p_.cpu_factor; }
  double CpuUs(double us) const { return us / 1e6 / p_.cpu_factor; }

  NodeProfile p_;
  CostConstants c_;
};

/// \brief Maps real (scaled-down) quantities to logical (paper-scale) ones.
///
/// A scale factor of 1000 means each block carries 1/1000 of its logical
/// payload as real records; cost accounting multiplies real sizes back up.
class ScaleModel {
 public:
  explicit ScaleModel(double factor = 1.0) : factor_(factor) {}

  double factor() const { return factor_; }

  uint64_t LogicalBytes(uint64_t real_bytes) const {
    return static_cast<uint64_t>(static_cast<double>(real_bytes) * factor_);
  }
  uint64_t LogicalRecords(uint64_t real_records) const {
    return static_cast<uint64_t>(static_cast<double>(real_records) * factor_);
  }

 private:
  double factor_;
};

}  // namespace sim
}  // namespace hail
