#include "sim/node_profile.h"

namespace hail {
namespace sim {

NodeProfile NodeProfile::Physical() {
  NodeProfile p;
  p.name = "physical";
  p.cpu_factor = 1.0;
  p.cores = 4;
  p.map_slots = 2;
  p.disk_mbps = 44.5;   // effective HDFS write rate incl. checksum files
  p.disk_seek_ms = 5.0;
  p.net_mbps = 240.0;   // 3x GbE bonded, minus TCP/framing overhead
  return p;
}

NodeProfile NodeProfile::EC2Large() {
  NodeProfile p;
  p.name = "m1.large";
  p.cpu_factor = 0.55;  // 2008-era virtualised cores
  p.cores = 2;
  p.map_slots = 2;
  p.disk_mbps = 33.5;   // instance storage, noisy neighbours
  p.disk_seek_ms = 6.0;
  p.net_mbps = 90.0;
  return p;
}

NodeProfile NodeProfile::EC2XLarge() {
  NodeProfile p;
  p.name = "m1.xlarge";
  p.cpu_factor = 0.7;
  p.cores = 4;
  p.map_slots = 4;
  p.disk_mbps = 47.5;
  p.disk_seek_ms = 5.5;
  p.net_mbps = 110.0;
  return p;
}

NodeProfile NodeProfile::EC2ClusterQuad() {
  NodeProfile p;
  p.name = "cc1.4xlarge";
  p.cpu_factor = 1.15;
  p.cores = 8;
  p.map_slots = 8;
  p.disk_mbps = 48.0;   // still disk-bound for writes
  p.disk_seek_ms = 5.0;
  p.net_mbps = 700.0;   // 10 GbE
  return p;
}

}  // namespace sim
}  // namespace hail
