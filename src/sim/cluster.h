/// \file cluster.h
/// \brief The simulated cluster: nodes with CPU/disk/NIC resources.
///
/// A SimNode bundles the queued resources of one machine plus its cost
/// model. SimCluster owns the nodes, the shared event queue / clock, and
/// failure state (used by the fault-tolerance experiments, paper §6.4.3).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/node_profile.h"
#include "sim/resource.h"
#include "util/random.h"

namespace hail {
namespace sim {

/// \brief One simulated machine: CPU cores, one disk, full-duplex NIC.
class SimNode {
 public:
  SimNode(int id, NodeProfile profile, CostConstants constants);

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const CostModel& cost() const { return cost_; }
  const NodeProfile& profile() const { return cost_.profile(); }

  Resource& cpu() { return cpu_; }
  Resource& disk() { return disk_; }
  /// Separate spindle for the client's source-file reads: the paper's
  /// nodes have six SATA disks, so ingestion reads do not queue behind
  /// replica flushes.
  Resource& src_disk() { return src_disk_; }
  /// Datanode-side upload worker pool (block sorting/indexing/checksums).
  /// HDFS runs a bounded number of pipeline writer threads, so upload CPU
  /// work does not fan out across every core.
  Resource& upload_cpu() { return upload_cpu_; }
  Resource& nic_send() { return nic_send_; }
  Resource& nic_recv() { return nic_recv_; }

  /// True once the fault injector killed this node.
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }
  /// Simulated time at which the node died (only valid when !alive()).
  SimTime death_time() const { return death_time_; }
  void set_death_time(SimTime t) { death_time_ = t; }

  /// Clears resource bookings and statistics (keeps alive-state).
  void ResetResources();

 private:
  int id_;
  std::string name_;
  CostModel cost_;
  Resource cpu_;
  Resource disk_;
  Resource src_disk_;
  Resource upload_cpu_;
  Resource nic_send_;
  Resource nic_recv_;
  bool alive_ = true;
  SimTime death_time_ = 0.0;
};

/// \brief Configuration for building a cluster.
struct ClusterConfig {
  int num_nodes = 10;
  NodeProfile profile = NodeProfile::Physical();
  CostConstants constants;
  /// Relative disk/net speed jitter across nodes (EC2-style variance);
  /// 0.0 gives identical nodes. Applied deterministically from `seed`.
  double hardware_variance = 0.0;
  uint64_t seed = 42;
};

/// \brief A set of simulated nodes sharing one clock.
class SimCluster {
 public:
  explicit SimCluster(const ClusterConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  SimNode& node(int id) { return *nodes_[static_cast<size_t>(id)]; }
  const SimNode& node(int id) const { return *nodes_[static_cast<size_t>(id)]; }

  EventQueue& events() { return events_; }
  SimTime Now() const { return events_.Now(); }

  const ClusterConfig& config() const { return config_; }
  const CostConstants& constants() const { return config_.constants; }

  /// Marks a node dead at the given time (tasks on it stop making progress;
  /// its replicas become unreadable).
  void KillNode(int id, SimTime when);

  /// Number of nodes still alive.
  int alive_count() const;

  /// Resets all resource bookings, revives all nodes, zeroes the clock.
  void Reset();

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  EventQueue events_;
};

}  // namespace sim
}  // namespace hail
