/// \file resource.h
/// \brief Queued hardware resources (disk, NIC, CPU cores) for the simulator.
///
/// A Resource models a server with `capacity` identical channels (1 for a
/// disk or NIC, #cores for a CPU). Work is placed with Schedule(ready, dur):
/// it starts at the earliest instant >= ready at which a channel is free and
/// occupies that channel for `dur` seconds. This "timeline" style lets
/// straight-line flows (the upload pipeline) compute completion times without
/// callback plumbing, while the event-driven JobTracker uses the same objects
/// for map-slot accounting. Utilisation statistics feed the bench reports.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace hail {
namespace sim {

/// Time interval [start, end) during which a piece of work held a channel.
struct Interval {
  SimTime start = 0.0;
  SimTime end = 0.0;
  double duration() const { return end - start; }
};

/// \brief FIFO multi-channel resource with utilisation tracking.
class Resource {
 public:
  /// \param name display name, e.g. "node3/disk".
  /// \param capacity number of identical channels (>= 1).
  explicit Resource(std::string name, int capacity = 1)
      : name_(std::move(name)), free_at_(static_cast<size_t>(capacity), 0.0) {
    assert(capacity >= 1);
  }

  /// Books \p duration seconds of work that becomes ready at \p ready.
  /// Returns the occupied interval on the earliest-free channel.
  Interval Schedule(SimTime ready, double duration) {
    assert(duration >= 0.0);
    // Find the channel that frees up first.
    size_t best = 0;
    for (size_t i = 1; i < free_at_.size(); ++i) {
      if (free_at_[i] < free_at_[best]) best = i;
    }
    const SimTime start = std::max(ready, free_at_[best]);
    const SimTime end = start + duration;
    free_at_[best] = end;
    busy_time_ += duration;
    ++jobs_;
    last_end_ = std::max(last_end_, end);
    return Interval{start, end};
  }

  /// Earliest time any channel is free.
  SimTime NextFree() const {
    SimTime t = free_at_[0];
    for (SimTime f : free_at_) t = std::min(t, f);
    return t;
  }

  /// Resets all channels to free-at-zero and clears statistics.
  void Reset() {
    std::fill(free_at_.begin(), free_at_.end(), 0.0);
    busy_time_ = 0.0;
    jobs_ = 0;
    last_end_ = 0.0;
  }

  const std::string& name() const { return name_; }
  int capacity() const { return static_cast<int>(free_at_.size()); }
  /// Sum of booked durations across channels.
  double busy_time() const { return busy_time_; }
  /// Number of Schedule() calls.
  uint64_t jobs() const { return jobs_; }
  /// Time the last booked work finishes.
  SimTime last_end() const { return last_end_; }
  /// busy_time / (capacity * horizon); 0 if horizon is 0.
  double Utilization(SimTime horizon) const {
    if (horizon <= 0.0) return 0.0;
    return busy_time_ / (static_cast<double>(capacity()) * horizon);
  }

 private:
  std::string name_;
  std::vector<SimTime> free_at_;
  double busy_time_ = 0.0;
  uint64_t jobs_ = 0;
  SimTime last_end_ = 0.0;
};

}  // namespace sim
}  // namespace hail
