/// \file node_profile.h
/// \brief Hardware profiles for the node types used in the paper's clusters.
///
/// The paper (§6.1, §6.3.3) evaluates on a physical 10-node cluster
/// (2.66 GHz quad-core Xeon, 16 GB RAM, 6x750 GB SATA, 3x GbE) and on EC2
/// m1.large / m1.xlarge / cc1.4xlarge nodes. Profile constants below are
/// calibrated so the stock-Hadoop baselines land near the paper's absolute
/// numbers (see DESIGN.md §5); every other result must follow from the model.

#pragma once

#include <string>

namespace hail {
namespace sim {

/// \brief Per-node hardware description used by the cost model.
struct NodeProfile {
  std::string name;

  /// Relative CPU speed; 1.0 is the physical cluster's Xeon core.
  double cpu_factor = 1.0;

  /// Cores available for parsing/sorting/indexing work.
  int cores = 4;

  /// Concurrent map tasks a TaskTracker runs (Hadoop 0.20 default: 2).
  int map_slots = 2;

  /// Datanode pipeline worker threads available for upload-side CPU work
  /// (sorting, index build, checksum recomputation). HAIL piggybacks on
  /// the HDFS writer threads, which are bounded, so sorts cannot fan out
  /// over every core.
  int upload_worker_threads = 3;

  /// Effective sequential disk bandwidth in MB/s. Deliberately below the
  /// device's raw rate: HDFS interleaves data and checksum files and pays
  /// filesystem/journal overhead per replica (calibrated so the stock
  /// Hadoop upload of Fig. 4a lands at ~1400 s).
  double disk_mbps = 44.5;

  /// Average seek + rotational latency in milliseconds (paper §3.5 uses 5ms).
  double disk_seek_ms = 5.0;

  /// Per-direction network bandwidth in MB/s.
  double net_mbps = 110.0;

  /// --- Presets (constants documented in DESIGN.md §5) ---

  /// The 10-node physical cluster: quad-core Xeon, 3x GbE, SATA disks.
  static NodeProfile Physical();
  /// EC2 m1.large: 2 slow cores, modest disk.
  static NodeProfile EC2Large();
  /// EC2 m1.xlarge: 4 cores, better disk.
  static NodeProfile EC2XLarge();
  /// EC2 cc1.4xlarge (cluster quadruple): 8 fast cores, 10 GbE.
  static NodeProfile EC2ClusterQuad();
};

/// \brief Calibrated workload-independent cost constants.
///
/// CPU costs are for one physical-profile core and get divided by
/// `cpu_factor`. Calibration targets are the stock-Hadoop numbers of
/// Fig. 4(a) and Fig. 6(a); see DESIGN.md §5.
struct CostConstants {
  // --- upload-side CPU work ---
  /// Parsing text rows into typed fields (client side), per logical MB.
  double text_parse_ms_per_mb = 20.0;
  /// Assembling PAX minipages from parsed fields, per logical MB of binary.
  double pax_build_ms_per_mb = 6.0;
  /// Sort comparison cost, applied as records * log2(records) * this.
  /// Integer/double keys compare in a few cycles; string keys pay pointer
  /// chasing plus byte-wise comparison. Calibrated so a 64 MB UserVisits
  /// block sorts+indexes in the "two or three seconds" of §3.5.
  double sort_cmp_fixed_ns = 40.0;
  double sort_cmp_string_ns = 350.0;
  /// Reorganising the non-key columns to the sorted order, per byte moved.
  /// Fixed-width columns are gathered with cheap indexed loads; varlen
  /// (string) columns pay per-value allocation and copying.
  double reorg_fixed_ns_per_byte = 20.0;
  double reorg_varlen_ns_per_byte = 48.0;
  /// Building the sparse clustered index + varlen offset lists, per record.
  double index_build_us_per_record = 0.15;
  /// Building a dense unclustered index (adaptive reorg): sorting one
  /// (key, rowid) pair per record dominates, so it costs more per record
  /// than the sparse clustered root but far less than a full block re-sort.
  double unclustered_build_us_per_record = 0.35;
  /// CRC32C computation/verification, per MB.
  double crc_ms_per_mb = 0.35;

  // --- query-side CPU work ---
  /// Splitting/parsing one text record in the standard Hadoop RecordReader.
  double scan_parse_us_per_record = 1.6;
  /// Deserialising one record from binary row layout (Hadoop++).
  double binary_deser_us_per_record = 1.9;
  /// Evaluating a predicate against one in-memory PAX value.
  double predicate_us_per_record = 0.012;
  /// PAX -> row tuple reconstruction per qualifying record per column.
  double reconstruct_us_per_field = 0.45;
  /// Decoding one encoded minipage value (FOR add, RLE lookup, dictionary
  /// dereference) at tuple reconstruction. Only qualifying rows decode —
  /// the scan itself runs on the encoded form — so this is billed per
  /// qualifying record per *encoded* projected column. Cheap relative to
  /// reconstruct_us_per_field: the win of scan-on-compressed is trading
  /// transfer bytes for this term.
  double decode_us_per_value = 0.05;
  /// Choosing and applying a per-minipage encoding while serialising a
  /// block (sampling pass + code emission), per value. Paid at upload by
  /// the client build and by each datanode's replica re-sort, only when
  /// BlockFormatOptions::enable_encoding is set.
  double encode_us_per_value = 0.09;
  /// Invoking the user map function once.
  double map_call_us = 0.25;
  /// Abandon an unclustered-index probe (adaptive path) when it yields
  /// more than this fraction of the block's rows: beyond it the random
  /// per-partition accesses cost more than one sequential full scan
  /// (§3.5: unclustered indexes only pay off for very selective queries).
  double unclustered_max_selectivity = 0.05;

  // --- cost-based planner ---
  /// Building the per-column block-statistics sidecar at upload (one
  /// sorted summary pass per column), per logical value. Cheaper than a
  /// sort-based replica build: the summaries are tiny and column-local.
  double stats_build_us_per_value = 0.02;
  /// Planning one block (zone-map check + per-access-path cost estimates)
  /// during the split phase, when cost-based planning is on. This is the
  /// "billed only metadata" price of a zone-map-skipped block.
  double planner_block_plan_us = 5.0;

  // --- MapReduce framework (Hadoop 0.20.203 era) ---
  /// TaskTracker heartbeat interval; 0.20 assigns map tasks on heartbeats.
  double heartbeat_interval_s = 3.0;
  /// Map tasks the JobTracker assigns per TaskTracker heartbeat.
  int tasks_per_heartbeat = 1;
  /// Per-task setup: JVM spawn, task localisation, committer setup.
  double task_setup_s = 1.6;
  /// Per-task teardown and JobTracker bookkeeping.
  double task_cleanup_s = 0.25;
  /// Job-level startup (resource upload, split computation, job init).
  double job_startup_s = 8.0;
  /// Job-level cleanup and client notification.
  double job_cleanup_s = 4.0;
  /// Failure detector: TaskTracker expiry interval (paper §6.4.3: 30 s).
  double expiry_interval_s = 30.0;
  /// Latency of the out-of-band heartbeat a TaskTracker sends right after
  /// a task slot frees (0.20.203's mapreduce.tasktracker.outofband.heartbeat).
  double oob_heartbeat_latency_s = 2.0;

  // --- HDFS ---
  uint64_t chunk_bytes = 512;
  uint64_t packet_bytes = 64 * 1024;
  /// Per-packet handling latency in the pipeline (syscalls, buffer copies).
  double packet_overhead_us = 18.0;
  /// Reading a block header / trojan index header before the data scan.
  double header_read_ms = 1.2;
  /// Opening an input stream to one block: DFS client protocol round
  /// trips, stream setup. Paid once per block by every RecordReader.
  double block_open_ms = 10.0;
  /// RecordReader construction (buffer allocation, codec setup, split
  /// bookkeeping). Paid once per map task; dominates the per-task reader
  /// time of index-scan jobs (Fig. 6b) but amortises across the many
  /// blocks of a HailSplitting split (Fig. 9).
  double task_rr_init_ms = 45.0;

  // --- index geometry at paper scale (for logical index-size billing;
  // the real structures use scaled-down partitions, see DESIGN.md §2) ---
  /// Values per clustered-index partition at 64 MB blocks (§3.5: 1024).
  uint32_t index_partition_logical = 1024;
  /// Rows per trojan-index directory entry; makes the trojan directory
  /// ~150x denser than HAIL's (paper: 304 KB vs 2 KB).
  uint32_t trojan_rows_per_entry_logical = 8;
  /// Hadoop++ reads each block's header during the split phase (§6.4.1);
  /// remote open + seek + transfer per block, billed at the JobClient.
  double trojan_split_header_ms = 15.0;

  // --- Hadoop++ upload jobs (calibrated against Fig. 4(a); Hadoop++'s
  // co-partitioning pipeline measured ~2x raw I/O in [12] due to sampling,
  // header construction and speculative re-execution) ---
  /// Merge passes in the shuffle/sort of the conversion & index jobs.
  int hpp_merge_passes = 2;
  /// I/O inflation of the text->binary conversion MapReduce job.
  double hpp_conversion_inflation = 1.5;
  /// I/O inflation of the trojan-index-creation MapReduce job.
  double hpp_index_inflation = 0.95;
};

}  // namespace sim
}  // namespace hail
