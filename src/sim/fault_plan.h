/// \file fault_plan.h
/// \brief Deterministic, seedable schedule of injectable faults.
///
/// A FaultPlan is plain data: a list of node kills (with optional revive),
/// per-(node, block-ordinal) replica corruptions, and slow-node factors.
/// The scheduler applies it on the simulated clock so a given plan
/// produces bit-identical histories in serial and parallel execution.
/// `FromSeed` derives a small kill/corrupt/slow mix from one integer,
/// which is what the CI fault matrix runs.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace hail {
namespace sim {

/// \brief A schedule of faults to inject into one cluster session.
struct FaultPlan {
  /// Kill one node, either at a wall-clock time or at a fraction of a
  /// job's task completions (matching the Fig. 8 protocol). Exactly one
  /// of `at_time >= 0` or `at_progress >= 0` should be set.
  struct Kill {
    int node = -1;
    /// Simulated time of the kill; < 0 means progress-triggered.
    SimTime at_time = -1.0;
    /// Fraction of `progress_job`'s tasks completed; < 0 means
    /// time-triggered.
    double at_progress = -1.0;
    /// Which job's progress drives a progress-triggered kill
    /// (index into the session's submission order).
    int progress_job = 0;
    /// Seconds after the kill at which the node comes back; < 0 means it
    /// stays dead for the rest of the session. Revives are clamped so a
    /// node never returns before its failure detection fires.
    SimTime revive_after = -1.0;
  };

  /// Corrupt one stored replica: the nth block (in block-id order) held
  /// by `node` gets a byte flipped on disk, so the next verified read
  /// fails its CRC. `at_time <= 0` corrupts before the session starts.
  struct Corrupt {
    int node = -1;
    int nth_block = 0;
    SimTime at_time = 0.0;
  };

  /// Multiply every task's execution cost on `node` by `factor` (>= 1).
  struct Slow {
    int node = -1;
    double factor = 1.0;
  };

  std::vector<Kill> kills;
  std::vector<Corrupt> corruptions;
  std::vector<Slow> slow_nodes;

  bool empty() const {
    return kills.empty() && corruptions.empty() && slow_nodes.empty();
  }

  /// Slowdown factor for `node`; 1.0 when the node is not slowed.
  double slow_factor(int node) const;

  /// Derives a deterministic kill/corrupt/slow mix for a cluster of
  /// `num_nodes` nodes. The same seed always yields the same plan.
  static FaultPlan FromSeed(uint64_t seed, int num_nodes);
};

}  // namespace sim
}  // namespace hail
