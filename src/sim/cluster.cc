#include "sim/cluster.h"

#include <algorithm>

namespace hail {
namespace sim {

SimNode::SimNode(int id, NodeProfile profile, CostConstants constants)
    : id_(id),
      name_("node" + std::to_string(id)),
      cost_(profile, constants),
      cpu_(name_ + "/cpu", profile.cores),
      disk_(name_ + "/disk", 1),
      src_disk_(name_ + "/disk-src", 1),
      upload_cpu_(name_ + "/upload-cpu",
                  std::min(profile.upload_worker_threads, profile.cores)),
      nic_send_(name_ + "/nic-send", 1),
      nic_recv_(name_ + "/nic-recv", 1) {}

void SimNode::ResetResources() {
  cpu_.Reset();
  disk_.Reset();
  src_disk_.Reset();
  upload_cpu_.Reset();
  nic_send_.Reset();
  nic_recv_.Reset();
}

SimCluster::SimCluster(const ClusterConfig& config) : config_(config) {
  Random rng(config.seed);
  nodes_.reserve(static_cast<size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    NodeProfile profile = config.profile;
    if (config.hardware_variance > 0.0) {
      // Deterministic per-node jitter models EC2 performance variance
      // (paper §6.3.4 cites Schad et al. on cloud runtime variance).
      const double jitter_disk =
          1.0 + config.hardware_variance * (rng.NextDouble() * 2.0 - 1.0);
      const double jitter_net =
          1.0 + config.hardware_variance * (rng.NextDouble() * 2.0 - 1.0);
      profile.disk_mbps *= jitter_disk;
      profile.net_mbps *= jitter_net;
    }
    nodes_.push_back(std::make_unique<SimNode>(i, profile, config.constants));
  }
}

void SimCluster::KillNode(int id, SimTime when) {
  SimNode& n = node(id);
  n.set_alive(false);
  n.set_death_time(when);
}

int SimCluster::alive_count() const {
  int count = 0;
  for (const auto& n : nodes_) {
    if (n->alive()) ++count;
  }
  return count;
}

void SimCluster::Reset() {
  for (auto& n : nodes_) {
    n->ResetResources();
    n->set_alive(true);
  }
  events_.Clear();
}

}  // namespace sim
}  // namespace hail
