#include "sim/cost_model.h"

#include <cmath>

namespace hail {
namespace sim {

double CostModel::SortBlock(uint64_t logical_records,
                            uint64_t logical_fixed_bytes,
                            uint64_t logical_varlen_bytes,
                            bool string_key) const {
  if (logical_records < 2) return 0.0;
  const double n = static_cast<double>(logical_records);
  const double cmp_ns =
      string_key ? c_.sort_cmp_string_ns : c_.sort_cmp_fixed_ns;
  const double cmp_s = n * std::log2(n) * cmp_ns * 1e-9;
  const double reorg_s =
      static_cast<double>(logical_fixed_bytes) * c_.reorg_fixed_ns_per_byte *
          1e-9 +
      static_cast<double>(logical_varlen_bytes) * c_.reorg_varlen_ns_per_byte *
          1e-9;
  return (cmp_s + reorg_s) / p_.cpu_factor;
}

}  // namespace sim
}  // namespace hail
