#include "sim/fault_plan.h"

namespace hail {
namespace sim {

namespace {

/// SplitMix64: tiny, well-mixed, and stable across platforms.
uint64_t Mix(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double MixUnit(uint64_t& state) {
  return static_cast<double>(Mix(state) >> 11) * 0x1.0p-53;
}

}  // namespace

double FaultPlan::slow_factor(int node) const {
  double factor = 1.0;
  for (const Slow& s : slow_nodes) {
    if (s.node == node && s.factor > factor) factor = s.factor;
  }
  return factor;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, int num_nodes) {
  FaultPlan plan;
  if (num_nodes <= 0) return plan;
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL;

  // One progress-triggered kill, reviving mid-session so the revive and
  // stale-replica paths are exercised too.
  Kill kill;
  kill.node = static_cast<int>(Mix(state) % static_cast<uint64_t>(num_nodes));
  kill.at_progress = 0.35 + 0.3 * MixUnit(state);
  kill.progress_job = 0;
  kill.revive_after = 60.0 + 120.0 * MixUnit(state);
  plan.kills.push_back(kill);

  // One or two pre-session corruptions on nodes other than the victim
  // when the cluster is big enough, so corrupt-replica failover has a
  // live replica to fall back to even after the kill.
  const int num_corruptions = 1 + static_cast<int>(Mix(state) % 2);
  for (int i = 0; i < num_corruptions; ++i) {
    Corrupt corrupt;
    corrupt.node =
        static_cast<int>(Mix(state) % static_cast<uint64_t>(num_nodes));
    if (num_nodes > 1 && corrupt.node == kill.node) {
      corrupt.node = (corrupt.node + 1) % num_nodes;
    }
    corrupt.nth_block = static_cast<int>(Mix(state) % 4);
    corrupt.at_time = 0.0;
    plan.corruptions.push_back(corrupt);
  }

  // One slow node (never the kill victim: a dead node is already the
  // worst case) with a 1.5x-3x cost factor to trigger speculation.
  Slow slow;
  slow.node = static_cast<int>(Mix(state) % static_cast<uint64_t>(num_nodes));
  if (num_nodes > 1 && slow.node == kill.node) {
    slow.node = (slow.node + 1) % num_nodes;
  }
  slow.factor = 1.5 + 1.5 * MixUnit(state);
  plan.slow_nodes.push_back(slow);
  return plan;
}

}  // namespace sim
}  // namespace hail
