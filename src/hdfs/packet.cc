#include "hdfs/packet.h"

#include "util/crc32c.h"
#include "util/io.h"

namespace hail {
namespace hdfs {

std::vector<Packet> MakePackets(uint64_t block_id, std::string_view block_bytes,
                                uint32_t chunk_bytes, uint32_t packet_bytes) {
  std::vector<Packet> packets;
  const uint64_t total = block_bytes.size();
  uint64_t pos = 0;
  uint32_t seq = 0;
  // Always emit at least one (possibly empty) packet so empty blocks still
  // traverse the pipeline and produce a final ACK.
  do {
    Packet p;
    p.block_id = block_id;
    p.seq = seq++;
    p.offset_in_block = pos;
    const uint64_t payload = std::min<uint64_t>(packet_bytes, total - pos);
    p.data.assign(block_bytes.data() + pos, payload);
    for (uint64_t c = 0; c < payload; c += chunk_bytes) {
      const uint64_t len = std::min<uint64_t>(chunk_bytes, payload - c);
      p.chunk_crcs.push_back(crc32c::Value(p.data.data() + c, len));
    }
    pos += payload;
    p.last_in_block = (pos >= total);
    packets.push_back(std::move(p));
  } while (pos < total);
  return packets;
}

bool VerifyPacket(const Packet& packet, uint32_t chunk_bytes) {
  size_t idx = 0;
  const std::string& data = packet.data;
  for (uint64_t c = 0; c < data.size(); c += chunk_bytes, ++idx) {
    const uint64_t len = std::min<uint64_t>(chunk_bytes, data.size() - c);
    if (idx >= packet.chunk_crcs.size()) return false;
    if (crc32c::Value(data.data() + c, len) != packet.chunk_crcs[idx]) {
      return false;
    }
  }
  return idx == packet.chunk_crcs.size();
}

std::string SerializeChecksums(const std::vector<uint32_t>& crcs) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(crcs.size()));
  for (uint32_t crc : crcs) w.PutU32(crc);
  return w.Take();
}

Result<std::vector<uint32_t>> ParseChecksums(std::string_view meta) {
  ByteReader r(meta);
  HAIL_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<uint32_t> crcs;
  crcs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HAIL_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
    crcs.push_back(crc);
  }
  return crcs;
}

std::vector<uint32_t> ComputeChunkChecksums(std::string_view bytes,
                                            uint32_t chunk_bytes) {
  std::vector<uint32_t> crcs;
  for (uint64_t c = 0; c < bytes.size(); c += chunk_bytes) {
    const uint64_t len = std::min<uint64_t>(chunk_bytes, bytes.size() - c);
    crcs.push_back(crc32c::Value(bytes.data() + c, len));
  }
  return crcs;
}

Status VerifyBlockChecksums(std::string_view data,
                            const std::vector<uint32_t>& crcs,
                            uint32_t chunk_bytes) {
  const size_t expected =
      (data.size() + chunk_bytes - 1) / chunk_bytes;
  if (crcs.size() != expected) {
    return Status::Corruption("checksum count mismatch");
  }
  size_t idx = 0;
  for (uint64_t c = 0; c < data.size(); c += chunk_bytes, ++idx) {
    const uint64_t len = std::min<uint64_t>(chunk_bytes, data.size() - c);
    if (crc32c::Value(data.data() + c, len) != crcs[idx]) {
      return Status::Corruption("chunk " + std::to_string(idx) +
                                " checksum mismatch");
    }
  }
  return Status::OK();
}

}  // namespace hdfs
}  // namespace hail
