/// \file local_store.h
/// \brief A datanode's local filesystem (in-memory).
///
/// HDFS keeps two files per replica: `blk_<id>` with the data and
/// `blk_<id>.meta` with one CRC32C per 512-byte chunk (paper §3.2).
/// The store holds real bytes; sizes reported to the simulator are real
/// and get scaled by the caller.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief Simple in-memory file map with byte accounting.
class LocalStore {
 public:
  /// Creates or truncates a file.
  void Put(const std::string& name, std::string bytes);

  /// Appends to a file (creating it when absent) — the streaming flush
  /// path of the stock HDFS pipeline.
  void Append(const std::string& name, std::string_view bytes);

  /// Full contents; NotFound if absent.
  Result<std::string_view> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;
  Status Delete(const std::string& name);

  /// Number of files.
  size_t file_count() const { return files_.size(); }
  /// Sum of file sizes (real bytes).
  uint64_t total_bytes() const { return total_bytes_; }

  void Clear();

 private:
  std::map<std::string, std::string> files_;
  uint64_t total_bytes_ = 0;
};

/// Standard replica file names.
std::string BlockFileName(uint64_t block_id);
std::string BlockMetaFileName(uint64_t block_id);

}  // namespace hdfs
}  // namespace hail
