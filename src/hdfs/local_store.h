/// \file local_store.h
/// \brief A datanode's local filesystem (in-memory).
///
/// HDFS keeps two files per replica: `blk_<id>` with the data and
/// `blk_<id>.meta` with one CRC32C per 512-byte chunk (paper §3.2).
/// The store holds real bytes; sizes reported to the simulator are real
/// and get scaled by the caller.
///
/// Storage is a hash map with string_view-transparent lookup: the read
/// path's Exists/Get probes are O(1) hashes instead of O(log n)
/// string-compare walks, and callers holding only a view never pay a
/// temporary std::string allocation to probe.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief Simple in-memory file map with byte accounting.
class LocalStore {
 public:
  /// Creates or truncates a file.
  void Put(const std::string& name, std::string bytes);

  /// Appends to a file (creating it when absent) — the streaming flush
  /// path of the stock HDFS pipeline.
  void Append(const std::string& name, std::string_view bytes);

  /// Full contents; NotFound if absent.
  Result<std::string_view> Get(std::string_view name) const;

  /// Full contents or nullptr if absent — one probe where callers would
  /// otherwise pair Exists with Get.
  const std::string* GetOrNull(std::string_view name) const;

  bool Exists(std::string_view name) const;
  Status Delete(std::string_view name);

  /// Number of files.
  size_t file_count() const { return files_.size(); }
  /// Sum of file sizes (real bytes).
  uint64_t total_bytes() const { return total_bytes_; }

  void Clear();

 private:
  /// Transparent string hashing so find/count accept string_view without
  /// materialising a std::string key.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, std::string, StringHash, std::equal_to<>>
      files_;
  uint64_t total_bytes_ = 0;
};

/// Standard replica file names.
std::string BlockFileName(uint64_t block_id);
std::string BlockMetaFileName(uint64_t block_id);

}  // namespace hdfs
}  // namespace hail
