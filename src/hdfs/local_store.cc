#include "hdfs/local_store.h"

namespace hail {
namespace hdfs {

void LocalStore::Put(const std::string& name, std::string bytes) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(bytes);
    total_bytes_ += it->second.size();
  } else {
    total_bytes_ += bytes.size();
    files_.emplace(name, std::move(bytes));
  }
}

void LocalStore::Append(const std::string& name, std::string_view bytes) {
  files_[name].append(bytes.data(), bytes.size());
  total_bytes_ += bytes.size();
}

Result<std::string_view> LocalStore::Get(std::string_view name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + std::string(name));
  }
  return std::string_view(it->second);
}

const std::string* LocalStore::GetOrNull(std::string_view name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

bool LocalStore::Exists(std::string_view name) const {
  return files_.find(name) != files_.end();
}

Status LocalStore::Delete(std::string_view name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + std::string(name));
  }
  total_bytes_ -= it->second.size();
  files_.erase(it);
  return Status::OK();
}

void LocalStore::Clear() {
  files_.clear();
  total_bytes_ = 0;
}

std::string BlockFileName(uint64_t block_id) {
  return "blk_" + std::to_string(block_id);
}

std::string BlockMetaFileName(uint64_t block_id) {
  return "blk_" + std::to_string(block_id) + ".meta";
}

}  // namespace hdfs
}  // namespace hail
