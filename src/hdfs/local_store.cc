#include "hdfs/local_store.h"

namespace hail {
namespace hdfs {

void LocalStore::Put(const std::string& name, std::string bytes) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(bytes);
    total_bytes_ += it->second.size();
  } else {
    total_bytes_ += bytes.size();
    files_.emplace(name, std::move(bytes));
  }
}

void LocalStore::Append(const std::string& name, std::string_view bytes) {
  files_[name].append(bytes.data(), bytes.size());
  total_bytes_ += bytes.size();
}

Result<std::string_view> LocalStore::Get(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return std::string_view(it->second);
}

bool LocalStore::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

Status LocalStore::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  total_bytes_ -= it->second.size();
  files_.erase(it);
  return Status::OK();
}

void LocalStore::Clear() {
  files_.clear();
  total_bytes_ = 0;
}

std::string BlockFileName(uint64_t block_id) {
  return "blk_" + std::to_string(block_id);
}

std::string BlockMetaFileName(uint64_t block_id) {
  return "blk_" + std::to_string(block_id) + ".meta";
}

}  // namespace hdfs
}  // namespace hail
