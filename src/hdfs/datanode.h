/// \file datanode.h
/// \brief A simulated HDFS datanode: local replica storage + read path.
///
/// The upload pipelines (hdfs::UploadPipeline for stock HDFS,
/// hail::HailUploadPipeline for HAIL) drive packets *through* datanodes;
/// the datanode itself owns the two files per replica (data + checksums)
/// and the verified read path used by RecordReaders.
///
/// Each replica carries a monotonically increasing *generation*, bumped on
/// every mutation (stream append, one-shot store, delete). The generation
/// keys the cluster-wide BlockCache so query-path work memoised for one
/// version of the bytes (CRC verification, layout decode) can never be
/// served for another.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hdfs/block_cache.h"
#include "hdfs/local_store.h"
#include "hdfs/packet.h"
#include "sim/cluster.h"
#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief One datanode: an id, a local store, and its simulated machine.
class Datanode {
 public:
  Datanode(int id, sim::SimNode* sim_node) : id_(id), sim_(sim_node) {}

  int id() const { return id_; }
  sim::SimNode& sim() { return *sim_; }
  const sim::SimNode& sim() const { return *sim_; }
  LocalStore& store() { return store_; }
  const LocalStore& store() const { return store_; }

  /// Wires the shared read cache (done by MiniDfs at construction). The
  /// datanode invalidates its entries on every replica mutation.
  void AttachCache(BlockCache* cache) { cache_ = cache; }

  /// Streaming flush of one packet (stock HDFS write path): appends the
  /// chunk data to blk_<id> and the checksums to blk_<id>.meta.
  void AppendPacket(const Packet& packet);

  /// One-shot store of a finished block (HAIL path: after sort + index +
  /// checksum recomputation). Overwrites any streamed state.
  void StoreBlock(uint64_t block_id, std::string data,
                  const std::vector<uint32_t>& crcs);

  bool HasBlock(uint64_t block_id) const {
    return store_.Exists(BlockFileName(block_id));
  }

  /// Current version of the replica's bytes; 0 for a never-written block.
  uint64_t block_generation(uint64_t block_id) const {
    auto it = generations_.find(block_id);
    return it == generations_.end() ? 0 : it->second;
  }

  /// Reads a replica and verifies every chunk checksum against the meta
  /// file ("these checksums are reused by HDFS whenever data is sent",
  /// §3.2). Returns a view into the store. Verification is memoised per
  /// block generation in the attached BlockCache (the simulated CRC cost
  /// is still billed per task by the readers — the cache only removes the
  /// repeated *real* work). Reads against a dead node return Unavailable
  /// (retryable on another replica); CRC mismatches return Corruption.
  Result<std::string_view> ReadBlockVerified(uint64_t block_id,
                                             uint32_t chunk_bytes) const;

  /// Reads without verification (used when billing partial reads whose
  /// verification is accounted separately). Unavailable on a dead node.
  Result<std::string_view> ReadBlockRaw(uint64_t block_id) const;

  Status DeleteBlock(uint64_t block_id);

  /// Fault injection: flips one byte of the stored replica without
  /// touching its checksums, so the next verified read fails with
  /// Corruption. Bumps the generation (the cache may never serve bytes
  /// that no longer match the disk).
  Status CorruptReplica(uint64_t block_id);

 private:
  /// Registers a mutation of the replica: bumps the generation and drops
  /// any cached state describing the previous bytes.
  void NoteMutation(uint64_t block_id);

  /// Parses the meta file and verifies all chunk CRCs (the uncached path).
  Status VerifyAgainstMeta(uint64_t block_id, std::string_view data,
                           uint32_t chunk_bytes) const;

  int id_;
  sim::SimNode* sim_;
  LocalStore store_;
  BlockCache* cache_ = nullptr;
  std::unordered_map<uint64_t, uint64_t> generations_;
};

}  // namespace hdfs
}  // namespace hail
