/// \file datanode.h
/// \brief A simulated HDFS datanode: local replica storage + read path.
///
/// The upload pipelines (hdfs::UploadPipeline for stock HDFS,
/// hail::HailUploadPipeline for HAIL) drive packets *through* datanodes;
/// the datanode itself owns the two files per replica (data + checksums)
/// and the verified read path used by RecordReaders.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/local_store.h"
#include "hdfs/packet.h"
#include "sim/cluster.h"
#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief One datanode: an id, a local store, and its simulated machine.
class Datanode {
 public:
  Datanode(int id, sim::SimNode* sim_node) : id_(id), sim_(sim_node) {}

  int id() const { return id_; }
  sim::SimNode& sim() { return *sim_; }
  const sim::SimNode& sim() const { return *sim_; }
  LocalStore& store() { return store_; }
  const LocalStore& store() const { return store_; }

  /// Streaming flush of one packet (stock HDFS write path): appends the
  /// chunk data to blk_<id> and the checksums to blk_<id>.meta.
  void AppendPacket(const Packet& packet);

  /// One-shot store of a finished block (HAIL path: after sort + index +
  /// checksum recomputation). Overwrites any streamed state.
  void StoreBlock(uint64_t block_id, std::string data,
                  const std::vector<uint32_t>& crcs);

  bool HasBlock(uint64_t block_id) const {
    return store_.Exists(BlockFileName(block_id));
  }

  /// Reads a replica and verifies every chunk checksum against the meta
  /// file ("these checksums are reused by HDFS whenever data is sent",
  /// §3.2). Returns a view into the store.
  Result<std::string_view> ReadBlockVerified(uint64_t block_id,
                                             uint32_t chunk_bytes) const;

  /// Reads without verification (used when billing partial reads whose
  /// verification is accounted separately).
  Result<std::string_view> ReadBlockRaw(uint64_t block_id) const;

  Status DeleteBlock(uint64_t block_id);

 private:
  int id_;
  sim::SimNode* sim_;
  LocalStore store_;
};

}  // namespace hdfs
}  // namespace hail
