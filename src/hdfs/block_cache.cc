#include "hdfs/block_cache.h"

#include <algorithm>

namespace hail {
namespace hdfs {

BlockCache::BlockCache(size_t max_entries_per_shard,
                       obs::MetricsRegistry* registry)
    : max_entries_per_shard_(max_entries_per_shard) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  verify_hits_ = registry->counter("cache.verify_hits");
  verify_misses_ = registry->counter("cache.verify_misses");
  bytes_verified_ = registry->counter("cache.bytes_verified");
  artifact_hits_ = registry->counter("cache.artifact_hits");
  artifact_misses_ = registry->counter("cache.artifact_misses");
  index_decodes_ = registry->counter("cache.index_decodes");
  invalidated_entries_ = registry->counter("cache.invalidated_entries");
  evicted_entries_ = registry->counter("cache.evicted_entries");
}

BlockCache::Entry& BlockCache::LiveEntry(Shard& shard, const Key& key,
                                         uint64_t generation) {
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    // Capacity eviction: FIFO over insertion order, skipping keys whose
    // entry was already erased by invalidation.
    while (shard.map.size() >= max_entries_per_shard_ && !shard.fifo.empty()) {
      const Key victim = shard.fifo.front();
      shard.fifo.pop_front();
      if (victim == key) continue;
      if (shard.map.erase(victim) > 0) {
        evicted_entries_->Inc();
      }
    }
    it = shard.map.emplace(key, Entry{}).first;
    it->second.generation = generation;
    shard.fifo.push_back(key);
  } else if (it->second.generation != generation) {
    // The replica was rewritten since this entry was cached: everything in
    // it describes dead bytes. Reset in place.
    it->second = Entry{};
    it->second.generation = generation;
  }
  return it->second;
}

Status BlockCache::VerifyOnce(int datanode, uint64_t block_id,
                              uint64_t generation, uint64_t bytes,
                              const std::function<Status()>& verify) {
  const Key key{datanode, block_id};
  Shard& shard = shard_for(key);
  // The mutex is held across the verification itself: two tasks racing on
  // the same cold block must not both burn the CRC work (and the
  // exactly-once counters would lie).
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = LiveEntry(shard, key, generation);
  if (entry.verified) {
    verify_hits_->Inc();
    return Status::OK();
  }
  verify_misses_->Inc();
  bytes_verified_->Add(bytes);
  Status st = verify();
  if (st.ok()) entry.verified = true;
  return st;
}

Result<std::shared_ptr<const BlockArtifact>> BlockCache::ArtifactOnce(
    int datanode, uint64_t block_id, uint64_t generation,
    const std::function<Result<std::shared_ptr<const BlockArtifact>>()>&
        make) {
  const Key key{datanode, block_id};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = LiveEntry(shard, key, generation);
  if (entry.artifact != nullptr) {
    artifact_hits_->Inc();
    return entry.artifact;
  }
  artifact_misses_->Inc();
  HAIL_ASSIGN_OR_RETURN(std::shared_ptr<const BlockArtifact> artifact,
                        make());
  entry.artifact = std::move(artifact);
  return entry.artifact;
}

void BlockCache::InvalidateBlock(int datanode, uint64_t block_id) {
  const Key key{datanode, block_id};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.erase(key) > 0) {
    invalidated_entries_->Inc();
  }
}

void BlockCache::InvalidateDatanode(int datanode) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.datanode == datanode) {
        it = shard.map.erase(it);
        invalidated_entries_->Inc();
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    invalidated_entries_->Add(shard.map.size());
    shard.map.clear();
    shard.fifo.clear();
  }
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats out;
  out.verify_hits = verify_hits_->Value();
  out.verify_misses = verify_misses_->Value();
  out.bytes_verified = bytes_verified_->Value();
  out.artifact_hits = artifact_hits_->Value();
  out.artifact_misses = artifact_misses_->Value();
  out.index_decodes = index_decodes_->Value();
  out.invalidated_entries = invalidated_entries_->Value();
  out.evicted_entries = evicted_entries_->Value();
  return out;
}

size_t BlockCache::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

size_t BlockCache::entry_count_for(int datanode) const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      (void)entry;
      if (key.datanode == datanode) ++n;
    }
  }
  return n;
}

}  // namespace hdfs
}  // namespace hail
