/// \file namenode.h
/// \brief The HDFS namenode plus HAIL's replica-directory extension (§3.3).
///
/// Stock HDFS keeps Dir_block: blockID -> set of datanodes, and treats all
/// replicas as byte-equivalent. HAIL adds Dir_rep: (blockID, datanode) ->
/// HailBlockReplicaInfo describing the sort order and index each physical
/// replica carries, so the scheduler can route map tasks to the replica
/// with the matching clustered index (getHostsWithIndex, §4.3).

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief Physical layout of one replica.
enum class ReplicaLayout : uint8_t {
  kText = 0,       // raw rows (stock Hadoop)
  kPax = 1,        // HAIL binary PAX
  kRowBinary = 2,  // Hadoop++ binary rows
};

/// \brief HAILBlockReplicaInfo (paper §3.3): what one replica physically is.
struct HailBlockReplicaInfo {
  ReplicaLayout layout = ReplicaLayout::kText;
  /// Column the replica is sorted+indexed by; -1 when unindexed.
  int sort_column = -1;
  /// "clustered", "trojan", or empty for none.
  std::string index_kind;
  /// Physical size of the replica's data file (real bytes).
  uint64_t replica_bytes = 0;
  /// Size of the embedded index (real bytes).
  uint64_t index_bytes = 0;
  /// Column carrying an adaptive *unclustered* index (LIAH-style lazy
  /// adaptivity, installed online by the reorganizer); -1 when none.
  int unclustered_column = -1;
  /// Size of the embedded unclustered index (real bytes).
  uint64_t unclustered_index_bytes = 0;

  bool has_index() const { return sort_column >= 0 && !index_kind.empty(); }
  bool has_unclustered() const { return unclustered_column >= 0; }
};

/// \brief Result of a block allocation: the new id plus pipeline targets.
struct BlockAllocation {
  uint64_t block_id = 0;
  std::vector<int> datanodes;  // pipeline order: DN1 (head) first
};

/// \brief Location info for one block of a file (split phase input).
struct BlockLocation {
  uint64_t block_id = 0;
  std::vector<int> datanodes;   // alive holders
  uint64_t logical_bytes = 0;   // paper-scale size for split accounting
  /// Distinguishes part files when a directory is read: record readers
  /// must not chase row tails across file boundaries.
  uint32_t file_id = 0;
};

/// \brief One lost replica awaiting re-replication.
///
/// `lost_info` remembers the replica-specific layout (sort column, index
/// kind) so the repair re-creates *that* replica, not a generic copy —
/// post-repair the cluster answers index scans exactly as before.
struct UnderReplicatedEntry {
  uint64_t block_id = 0;
  /// The datanode that held the lost replica.
  int lost_datanode = -1;
  HailBlockReplicaInfo lost_info;
  /// True when the loss already revoked ownership (corruption report);
  /// false for node-death losses, where the dead node keeps ownership
  /// until the repair commits (it may revive with the data intact).
  bool ownership_revoked = false;
};

/// \brief Central directory: files -> blocks -> replicas (+ HAIL Dir_rep).
class Namenode {
 public:
  explicit Namenode(int num_datanodes) : num_datanodes_(num_datanodes) {}

  /// Allocates a block id and chooses `replication` targets: the client's
  /// local datanode first (HDFS default placement), then successive alive
  /// nodes. Appends the block to the file's block list.
  Result<BlockAllocation> AllocateBlock(const std::string& file,
                                        int client_node, int replication);

  /// Registers a finished replica (step 11/14 in Figure 1). Also records
  /// the HAIL replica info in Dir_rep.
  Status RegisterReplica(uint64_t block_id, int datanode,
                         const HailBlockReplicaInfo& info);

  /// Records the logical size of a block (billing metadata for splits).
  void SetBlockLogicalBytes(uint64_t block_id, uint64_t logical_bytes);

  /// Dir_block lookup: alive datanodes holding the block.
  Result<std::vector<int>> GetBlockDatanodes(uint64_t block_id) const;

  /// All blocks of a file, in order, with alive holders. When \p file
  /// names no exact file but is a directory prefix (files named
  /// "<file>/part-..."), the blocks of all part files are returned in
  /// file-name order — mirroring how MapReduce jobs consume a directory
  /// of per-node part files.
  Result<std::vector<BlockLocation>> GetFileBlocks(const std::string& file) const;

  /// Dir_rep lookup ("one main memory lookup for each replica", §3.3).
  Result<HailBlockReplicaInfo> GetReplicaInfo(uint64_t block_id,
                                              int datanode) const;

  /// getHostsWithIndex (§4.3): alive datanodes whose replica of the block
  /// carries an index on \p column. Empty when none exists.
  std::vector<int> GetHostsWithIndex(uint64_t block_id, int column) const;

  /// Adaptive fallback lookup: alive datanodes whose replica carries an
  /// *unclustered* index on \p column (readers probe this only when no
  /// clustered replica matches).
  std::vector<int> GetHostsWithUnclusteredIndex(uint64_t block_id,
                                                int column) const;

  /// Failure handling: excludes the node from all lookups.
  void MarkDatanodeDead(int datanode);
  void MarkDatanodeAlive(int datanode);
  bool IsDatanodeAlive(int datanode) const;

  /// Block ids the datanode currently owns a replica of, in block-id
  /// order (deterministic: fault plans address the "nth block of node i").
  std::vector<uint64_t> BlocksOnDatanode(int datanode) const;

  /// A reader detected a CRC failure on (block, datanode): the replica is
  /// revoked from all lookups immediately, remembered so a future revive
  /// never resurrects it, and queued for re-replication. Idempotent.
  Status ReportCorruptReplica(uint64_t block_id, int datanode);

  /// Node-death handling: queues every replica the dead node held for
  /// re-replication. Ownership is *retained* (the node may revive with
  /// the data intact before a repair runs); it is revoked only when the
  /// repair for that replica commits. Idempotent per (block, node).
  void EnqueueLostNodeReplicas(int datanode);

  /// Drains the under-replicated queue (FIFO). Entries stay marked as
  /// in-repair until CompleteRepair or AbandonRepair, so a second loss
  /// report of the same replica cannot double-queue it.
  std::vector<UnderReplicatedEntry> TakeUnderReplicated();
  /// Returns an unserviced entry to the queue (session ended first).
  void RequeueUnderReplicated(const UnderReplicatedEntry& entry);
  size_t under_replicated_count() const { return under_replicated_.size(); }

  /// Commits a finished repair: registers the re-created replica on
  /// `target` and, for a node-death loss whose node is still dead,
  /// revokes the stale copy so a later revive drops it.
  Status CompleteRepair(const UnderReplicatedEntry& entry, int target,
                        const HailBlockReplicaInfo& info);
  /// Drops an in-repair marker without repairing (e.g. the lost node
  /// revived with its replica intact, so nothing is missing anymore).
  void AbandonRepair(const UnderReplicatedEntry& entry);

  /// Deliberately drops one replica (aggressive-replication eviction):
  /// removes (block, datanode) from Dir_block/Dir_rep without queueing a
  /// repair — the drop is wanted, nothing was lost. Refuses when the
  /// replica is unknown, is being repaired, or when fewer than
  /// \p min_remaining alive replicas would survive the drop.
  Status DropReplica(uint64_t block_id, int datanode, int min_remaining);

  /// Blocks whose replica on `datanode` was revoked while it was dead
  /// (re-replicated elsewhere or reported corrupt). The revive path
  /// deletes these stale copies before the node rejoins; each call
  /// clears the node's revocation list.
  std::vector<uint64_t> TakeRevoked(int datanode);

  /// Removes a file from the namespace and returns its block ids so the
  /// caller can reclaim the replicas from the datanodes.
  Result<std::vector<uint64_t>> DeleteFile(const std::string& file);

  /// Registers the per-column statistics sidecar of a block (opaque
  /// serialized planner::BlockStats — the namenode does not interpret it).
  /// The blob is recorded at the block's current mutation count: any later
  /// replica mutation (repair, reorg commit, eviction, corruption) makes
  /// it stale, and `GetBlockStats` stops returning it until a rebuild
  /// re-registers fresh bytes.
  void RegisterBlockStats(uint64_t block_id, std::string stats);

  /// Stats sidecar if present and fresh; NotFound when absent or stale.
  Result<std::string_view> GetBlockStats(uint64_t block_id) const;

  /// True when the block has fresh stats (false: backfill candidate).
  bool BlockStatsFresh(uint64_t block_id) const;

  /// Monotonic counter bumped on every directory mutation (replica
  /// registration/revocation, node death/revive, file create/delete,
  /// stats arrival). Plan caches key on this: any change that could alter
  /// a plan bumps it.
  uint64_t directory_generation() const { return directory_generation_; }

  bool FileExists(const std::string& file) const {
    return files_.count(file) > 0;
  }
  uint64_t next_block_id() const { return next_block_id_; }
  int num_datanodes() const { return num_datanodes_; }

 private:
  int num_datanodes_;
  uint64_t next_block_id_ = 1;
  int placement_cursor_ = 0;  // rotating follower placement
  std::map<std::string, std::vector<uint64_t>> files_;
  std::map<uint64_t, std::vector<int>> dir_block_;
  std::map<uint64_t, uint64_t> block_logical_bytes_;
  // Dir_rep: (blockID, datanode) -> replica info.
  std::map<std::pair<uint64_t, int>, HailBlockReplicaInfo> dir_rep_;
  std::vector<int> dead_;  // datanode ids currently dead

  /// Removes (block, datanode) from Dir_block/Dir_rep and remembers the
  /// revocation so a revive of the node deletes its stale copy.
  void RevokeReplica(uint64_t block_id, int datanode);

  // Self-healing state: lost replicas awaiting repair, the (block, node)
  // pairs currently queued or in repair, and per-node revoked replicas.
  std::deque<UnderReplicatedEntry> under_replicated_;
  std::set<std::pair<uint64_t, int>> repair_pending_;
  std::map<int, std::set<uint64_t>> revoked_;

  /// Bumps the block's mutation count and the directory generation.
  void NoteBlockMutation(uint64_t block_id);

  uint64_t directory_generation_ = 0;
  std::map<uint64_t, uint64_t> block_mutations_;
  // Stats sidecar per block: (mutation count at registration, blob).
  std::map<uint64_t, std::pair<uint64_t, std::string>> block_stats_;
};

}  // namespace hdfs
}  // namespace hail
