/// \file packet.h
/// \brief HDFS wire format: packets of checksummed chunks (paper §3.2).
///
/// "While uploading a block, the data is further partitioned into chunks of
/// constant size 512B. Chunks are collected into packets. A packet is a
/// sequence of chunks plus a checksum for each of the chunks." Only the
/// last datanode in the chain verifies; ACKs flow back with each node
/// appending its ID, and the client checks that ACKs arrive in order.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief One packet: up to `packet_bytes` of chunk data plus per-chunk CRCs.
struct Packet {
  uint64_t block_id = 0;
  uint32_t seq = 0;          // 0-based within the block
  bool last_in_block = false;
  uint64_t offset_in_block = 0;
  std::string data;                 // chunk payloads, concatenated
  std::vector<uint32_t> chunk_crcs;  // one CRC32C per chunk
};

/// \brief Acknowledgement travelling tail -> head -> client. Each datanode
/// appends its ID; the client verifies both ordering and the ID chain.
struct Ack {
  uint32_t seq = 0;
  bool last_in_block = false;
  std::vector<int> datanode_ids;  // appended tail-first
};

/// Splits \p block_bytes into packets with per-chunk CRC32C checksums.
std::vector<Packet> MakePackets(uint64_t block_id, std::string_view block_bytes,
                                uint32_t chunk_bytes, uint32_t packet_bytes);

/// Recomputes and compares every chunk checksum.
bool VerifyPacket(const Packet& packet, uint32_t chunk_bytes);

/// Serialises the checksums of a whole block (contents of blk_*.meta).
std::string SerializeChecksums(const std::vector<uint32_t>& crcs);
Result<std::vector<uint32_t>> ParseChecksums(std::string_view meta);

/// Computes per-chunk CRC32Cs for a byte range.
std::vector<uint32_t> ComputeChunkChecksums(std::string_view bytes,
                                            uint32_t chunk_bytes);

/// Verifies data against a parsed checksum list.
Status VerifyBlockChecksums(std::string_view data,
                            const std::vector<uint32_t>& crcs,
                            uint32_t chunk_bytes);

}  // namespace hdfs
}  // namespace hail
