/// \file dfs_config.h
/// \brief Tunables of the simulated HDFS instance.
///
/// `block_size` is the number of *real* bytes a block carries in this
/// process; `scale_factor` maps those to the logical (paper-scale) bytes
/// the cost model bills. With block_size = 64 KB and scale_factor = 1024,
/// each block represents the paper's default 64 MB HDFS block.

#pragma once

#include <cstdint>

#include "layout/pax_block.h"

namespace hail {
namespace hdfs {

struct DfsConfig {
  /// Real content bytes per HDFS block.
  uint64_t block_size = 64 * 1024;

  /// Replication factor (paper default: 3).
  int replication = 3;

  /// Real-to-logical multiplier for cost accounting (see DESIGN.md §2).
  double scale_factor = 1024.0;

  /// Checksum chunk size on the real byte stream (HDFS uses 512 B).
  uint32_t chunk_bytes = 512;

  /// Packet payload size on the real byte stream (HDFS uses 64 KB of
  /// chunks per packet; scaled down with the data).
  uint32_t packet_bytes = 16 * 1024;

  /// Physical layout options for PAX blocks built by the HAIL client.
  /// Setting format.enable_encoding here turns on format-v3 encoded
  /// minipages cluster-wide: the client writes encoded blocks, replica
  /// re-sorts re-encode, scans run on the compressed form, and the cost
  /// model bills stored (compressed) bytes plus explicit encode/decode
  /// terms. Default off — v1 golden bytes unchanged.
  BlockFormatOptions format;
};

}  // namespace hdfs
}  // namespace hail
