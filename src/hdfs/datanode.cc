#include "hdfs/datanode.h"

#include "util/io.h"

namespace hail {
namespace hdfs {

void Datanode::NoteMutation(uint64_t block_id) {
  ++generations_[block_id];
  if (cache_ != nullptr) cache_->InvalidateBlock(id_, block_id);
}

void Datanode::AppendPacket(const Packet& packet) {
  store_.Append(BlockFileName(packet.block_id), packet.data);
  ByteWriter w;
  for (uint32_t crc : packet.chunk_crcs) w.PutU32(crc);
  store_.Append(BlockMetaFileName(packet.block_id), w.buffer());
  NoteMutation(packet.block_id);
}

void Datanode::StoreBlock(uint64_t block_id, std::string data,
                          const std::vector<uint32_t>& crcs) {
  // One-shot stores use the framed meta format (count-prefixed).
  store_.Put(BlockFileName(block_id), std::move(data));
  store_.Put(BlockMetaFileName(block_id), SerializeChecksums(crcs));
  NoteMutation(block_id);
}

Status Datanode::VerifyAgainstMeta(uint64_t block_id, std::string_view data,
                                   uint32_t chunk_bytes) const {
  HAIL_ASSIGN_OR_RETURN(std::string_view meta,
                        store_.Get(BlockMetaFileName(block_id)));
  // Meta files written by StoreBlock are framed; streamed ones are raw
  // CRC arrays. Distinguish by size.
  std::vector<uint32_t> crcs;
  const size_t expected = (data.size() + chunk_bytes - 1) / chunk_bytes;
  if (meta.size() == 4 + expected * 4) {
    HAIL_ASSIGN_OR_RETURN(crcs, ParseChecksums(meta));
  } else if (meta.size() == expected * 4) {
    crcs.resize(expected);
    std::memcpy(crcs.data(), meta.data(), meta.size());
  } else {
    return Status::Corruption("meta file size mismatch for block " +
                              std::to_string(block_id));
  }
  return VerifyBlockChecksums(data, crcs, chunk_bytes)
      .WithContext("block " + std::to_string(block_id));
}

Result<std::string_view> Datanode::ReadBlockVerified(
    uint64_t block_id, uint32_t chunk_bytes) const {
  // A dead datanode serves nothing: stragglers that race the failure
  // detector get Unavailable and fail over to the next live replica,
  // exactly like post-detection rescheduled tasks.
  if (!sim_->alive()) {
    return Status::Unavailable("datanode " + std::to_string(id_) + " is dead");
  }
  HAIL_ASSIGN_OR_RETURN(std::string_view data,
                        store_.Get(BlockFileName(block_id)));
  if (cache_ != nullptr) {
    HAIL_RETURN_NOT_OK(cache_->VerifyOnce(
        id_, block_id, block_generation(block_id), data.size(),
        [&] { return VerifyAgainstMeta(block_id, data, chunk_bytes); }));
    return data;
  }
  HAIL_RETURN_NOT_OK(VerifyAgainstMeta(block_id, data, chunk_bytes));
  return data;
}

Result<std::string_view> Datanode::ReadBlockRaw(uint64_t block_id) const {
  if (!sim_->alive()) {
    return Status::Unavailable("datanode " + std::to_string(id_) + " is dead");
  }
  return store_.Get(BlockFileName(block_id));
}

Status Datanode::CorruptReplica(uint64_t block_id) {
  HAIL_ASSIGN_OR_RETURN(std::string_view data,
                        store_.Get(BlockFileName(block_id)));
  if (data.empty()) {
    return Status::FailedPrecondition("cannot corrupt empty block " +
                                      std::to_string(block_id));
  }
  std::string flipped(data);
  flipped[flipped.size() / 2] ^= 0x40;
  store_.Put(BlockFileName(block_id), std::move(flipped));
  NoteMutation(block_id);
  return Status::OK();
}

Status Datanode::DeleteBlock(uint64_t block_id) {
  HAIL_RETURN_NOT_OK(store_.Delete(BlockFileName(block_id)));
  Status st = store_.Delete(BlockMetaFileName(block_id));
  NoteMutation(block_id);
  return st;
}

}  // namespace hdfs
}  // namespace hail
