#include "hdfs/replica_transform.h"

namespace hail {
namespace hdfs {

Status IdentityTransformer::BeginBlock(std::string_view block_bytes) {
  block_bytes_ = block_bytes.size();
  return Status::OK();
}

Result<ReplicaBlock> IdentityTransformer::BuildReplica(
    size_t replica_index, const ReplicaWorkContext& ctx) {
  (void)replica_index;
  (void)ctx;
  // The pipeline streamed the bytes to disk packet by packet; only the
  // Dir_rep record is produced here.
  ReplicaBlock out;
  out.info.layout = ReplicaLayout::kText;
  out.info.replica_bytes = block_bytes_;
  return out;
}

Result<uint64_t> StoreTransformedReplicas(
    Namenode* namenode, const std::vector<Datanode*>& datanodes,
    const BlockAllocation& alloc, uint64_t logical_bytes,
    ReplicaTransformer* transformer) {
  for (int t : alloc.datanodes) {
    if (t < 0 || t >= static_cast<int>(datanodes.size())) {
      return Status::InvalidArgument("bad replica target");
    }
  }
  uint64_t stored = 0;
  for (size_t i = 0; i < alloc.datanodes.size(); ++i) {
    const int dn = alloc.datanodes[i];
    ReplicaWorkContext ctx;  // no pipeline billing: cost stays null
    HAIL_ASSIGN_OR_RETURN(ReplicaBlock replica,
                          transformer->BuildReplica(i, ctx));
    stored += replica.bytes.size();
    datanodes[static_cast<size_t>(dn)]->StoreBlock(
        alloc.block_id, std::move(replica.bytes), replica.chunk_crcs);
    HAIL_RETURN_NOT_OK(
        namenode->RegisterReplica(alloc.block_id, dn, replica.info));
  }
  namenode->SetBlockLogicalBytes(alloc.block_id, logical_bytes);
  if (!transformer->stats_bytes().empty()) {
    namenode->RegisterBlockStats(alloc.block_id,
                                 std::string(transformer->stats_bytes()));
  }
  return stored;
}

}  // namespace hdfs
}  // namespace hail
