#include "hdfs/upload_pipeline.h"

#include <algorithm>

#include "hdfs/packet.h"
#include "util/logging.h"

namespace hail {
namespace hdfs {

ChainTiming BillChainTransfer(sim::SimCluster* cluster, int client,
                              sim::SimTime ready, uint64_t logical_bytes,
                              const std::vector<int>& targets) {
  ChainTiming timing;
  timing.arrival_complete.reserve(targets.size());

  // One-packet lag between hops models cut-through forwarding: DN2 starts
  // receiving as soon as DN1 has the first packet, not the whole block.
  const sim::CostModel& client_cost = cluster->node(client).cost();
  const double packet_lag =
      client_cost.NetTransfer(cluster->constants().packet_bytes);

  sim::SimTime hop_ready = ready;
  int sender = client;
  for (int target : targets) {
    sim::Resource& out = cluster->node(sender).nic_send();
    sim::Resource& in = cluster->node(target).nic_recv();
    const double duration =
        cluster->node(sender).cost().NetTransfer(logical_bytes);
    // Sender and receiver sides are booked independently (socket buffers
    // decouple them); the block has fully arrived when both finish. This
    // keeps each NIC timeline densely packed instead of forcing joint
    // start times that would fragment the FIFO schedules.
    const sim::Interval out_iv = out.Schedule(hop_ready, duration);
    const sim::Interval in_iv = in.Schedule(hop_ready, duration);
    const sim::SimTime end = std::max(out_iv.end, in_iv.end);
    timing.arrival_complete.push_back(end);
    // The next hop starts one packet behind this one (cut-through).
    hop_ready = std::max(out_iv.start, in_iv.start) + packet_lag;
    sender = target;
  }
  return timing;
}

Result<BlockWriteResult> UploadPipeline::WriteBlock(
    int client, sim::SimTime ready, uint64_t block_id,
    std::string_view block_bytes, uint64_t logical_bytes,
    const std::vector<int>& targets) {
  IdentityTransformer identity;
  return WriteBlock(client, ready, block_id, block_bytes, logical_bytes,
                    targets, &identity);
}

Result<BlockWriteResult> UploadPipeline::WriteBlock(
    int client, sim::SimTime ready, uint64_t block_id,
    std::string_view block_bytes, uint64_t logical_bytes,
    const std::vector<int>& targets, ReplicaTransformer* transformer) {
  if (targets.empty()) {
    return Status::InvalidArgument("pipeline requires at least one target");
  }
  for (int t : targets) {
    if (t < 0 || t >= static_cast<int>(datanodes_.size())) {
      return Status::InvalidArgument("bad pipeline target");
    }
    if (!cluster_->node(t).alive()) {
      return Status::FailedPrecondition("pipeline target " +
                                        std::to_string(t) + " is dead");
    }
  }
  const bool streaming = transformer->identity();

  // ---- functional path: packets through the chain ----
  std::vector<Packet> packets = MakePackets(
      block_id, block_bytes, config_.chunk_bytes, config_.packet_bytes);

  const int tail = targets.back();
  std::vector<Ack> acks;
  acks.reserve(packets.size());
  for (const Packet& p : packets) {
    if (streaming) {
      // Stock path: every datanode in the chain appends data + checksums
      // to its two replica files as the packet passes through (streaming
      // flush). Transforming datanodes instead hold packets in memory and
      // store their replica after the transform (step 7 in Figure 1).
      for (int dn : targets) {
        datanodes_[static_cast<size_t>(dn)]->AppendPacket(p);
      }
    }
    // Only the tail verifies (DN2 believes DN3, DN1 believes DN2, the
    // client believes DN1).
    if (!VerifyPacket(p, config_.chunk_bytes)) {
      return Status::Corruption("packet " + std::to_string(p.seq) +
                                " failed checksum verification at DN" +
                                std::to_string(tail));
    }
    // ACK travels tail -> head, IDs appended along the way.
    Ack ack;
    ack.seq = p.seq;
    ack.last_in_block = p.last_in_block;
    for (auto it = targets.rbegin(); it != targets.rend(); ++it) {
      ack.datanode_ids.push_back(*it);
    }
    acks.push_back(std::move(ack));
  }

  // Client-side ACK validation: in-order sequence numbers, full chain.
  uint32_t expected_seq = 0;
  for (const Ack& ack : acks) {
    if (ack.seq != expected_seq++) {
      return Status::Corruption("out-of-order ACK: upload failed");
    }
    if (static_cast<int>(ack.datanode_ids.size()) !=
        static_cast<int>(targets.size())) {
      return Status::Corruption("ACK chain incomplete");
    }
  }

  std::string reassembled;
  if (streaming) {
    HAIL_RETURN_NOT_OK(transformer->BeginBlock(block_bytes));
  } else {
    // Reassemble the block from its packets (step 6) — every datanode
    // does this in memory; one reassembly suffices functionally since the
    // bytes are identical, and the transformer decodes it exactly once.
    reassembled.reserve(block_bytes.size());
    for (const Packet& p : packets) reassembled.append(p.data);
    if (reassembled != block_bytes) {
      return Status::Corruption("block reassembly mismatch");
    }
    HAIL_RETURN_NOT_OK(transformer->BeginBlock(reassembled));
  }

  // ---- timing: chain transfer (cut-through) ----
  ChainTiming chain =
      BillChainTransfer(cluster_, client, ready, logical_bytes, targets);

  BlockWriteResult result;
  result.packets = static_cast<uint32_t>(packets.size());

  sim::SimTime done = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const int dn_id = targets[i];
    sim::SimNode& node = cluster_->node(dn_id);
    sim::SimTime replica_done;
    if (streaming) {
      // Flush overlaps receive: the disk starts streaming as packets
      // land, so it is booked from one packet after the hop began
      // receiving. Checksum side-car: 4 bytes per 512-byte chunk.
      const uint64_t logical_meta =
          ChecksumMetaBytes(logical_bytes, cluster_->constants().chunk_bytes);
      const sim::SimTime flush_ready =
          chain.arrival_complete[i] -
          node.cost().NetTransfer(logical_bytes) +
          node.cost().NetTransfer(cluster_->constants().packet_bytes);
      const sim::Interval flush = node.disk().Schedule(
          flush_ready,
          node.cost().DiskTransfer(logical_bytes + logical_meta));
      replica_done = std::max(flush.end, chain.arrival_complete[i]);
      if (dn_id == tail) {
        // Tail verifies every chunk's CRC32C.
        const sim::Interval verify = node.cpu().Schedule(
            chain.arrival_complete[i], node.cost().Crc(logical_bytes));
        replica_done = std::max(replica_done, verify.end);
      }
      ReplicaWorkContext ctx;
      ctx.cost = &node.cost();
      ctx.is_tail = dn_id == tail;
      HAIL_ASSIGN_OR_RETURN(ReplicaBlock replica,
                            transformer->BuildReplica(i, ctx));
      HAIL_RETURN_NOT_OK(
          namenode_->RegisterReplica(block_id, dn_id, replica.info));
    } else {
      // Transforming datanode: sort/index/CRC runs on its bounded pool of
      // pipeline worker threads, in parallel across blocks (§3.5: "on
      // each data node several blocks may be indexed in parallel"); the
      // flush — and with it the block's final ACK (steps 10-15) — waits
      // for the transform.
      ReplicaWorkContext ctx;
      ctx.cost = &node.cost();
      ctx.is_tail = dn_id == tail;
      HAIL_ASSIGN_OR_RETURN(ReplicaBlock replica,
                            transformer->BuildReplica(i, ctx));
      const sim::Interval work = node.upload_cpu().Schedule(
          chain.arrival_complete[i], replica.cpu_seconds);
      const uint64_t logical_meta = ChecksumMetaBytes(
          replica.logical_bytes, cluster_->constants().chunk_bytes);
      const sim::Interval flush = node.disk().Schedule(
          work.end,
          node.cost().DiskAccess(replica.logical_bytes + logical_meta));
      result.replica_bytes_total += replica.bytes.size();
      datanodes_[static_cast<size_t>(dn_id)]->StoreBlock(
          block_id, std::move(replica.bytes), replica.chunk_crcs);
      HAIL_RETURN_NOT_OK(
          namenode_->RegisterReplica(block_id, dn_id, replica.info));
      replica_done = flush.end;
    }
    done = std::max(done, replica_done);
  }
  namenode_->SetBlockLogicalBytes(block_id, logical_bytes);
  // One stats sidecar per logical block (replicas share the same rows);
  // registered after the replicas so it records the block's final
  // mutation count and stays fresh until the next replica mutation.
  if (!transformer->stats_bytes().empty()) {
    namenode_->RegisterBlockStats(block_id,
                                  std::string(transformer->stats_bytes()));
  }

  result.completed = done;
  if (streaming) {
    result.replica_physical_bytes =
        block_bytes.size() +
        ChecksumMetaBytes(block_bytes.size(), config_.chunk_bytes);
    result.replica_bytes_total =
        block_bytes.size() * static_cast<uint64_t>(targets.size());
  }
  return result;
}

}  // namespace hdfs
}  // namespace hail
