#include "hdfs/namenode.h"

#include <algorithm>

namespace hail {
namespace hdfs {

Result<BlockAllocation> Namenode::AllocateBlock(const std::string& file,
                                                int client_node,
                                                int replication) {
  if (replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  if (replication > num_datanodes_) {
    return Status::InvalidArgument("replication exceeds datanode count");
  }
  BlockAllocation alloc;
  alloc.block_id = next_block_id_++;

  // Default HDFS placement: first replica on the writer's node (when
  // alive), the remaining replicas spread across the cluster. HDFS picks
  // followers randomly; a rotating cursor gives the same long-run balance
  // deterministically (every node receives an equal share of followers).
  alloc.datanodes.reserve(static_cast<size_t>(replication));
  const int local = client_node % num_datanodes_;
  if (IsDatanodeAlive(local)) alloc.datanodes.push_back(local);
  for (int i = 0; i < 2 * num_datanodes_ &&
                  static_cast<int>(alloc.datanodes.size()) < replication;
       ++i) {
    const int candidate = placement_cursor_;
    placement_cursor_ = (placement_cursor_ + 1) % num_datanodes_;
    if (!IsDatanodeAlive(candidate)) continue;
    if (std::find(alloc.datanodes.begin(), alloc.datanodes.end(), candidate) !=
        alloc.datanodes.end()) {
      continue;
    }
    alloc.datanodes.push_back(candidate);
  }
  if (static_cast<int>(alloc.datanodes.size()) < replication) {
    return Status::FailedPrecondition("not enough alive datanodes");
  }
  files_[file].push_back(alloc.block_id);
  ++directory_generation_;
  return alloc;
}

Status Namenode::RegisterReplica(uint64_t block_id, int datanode,
                                 const HailBlockReplicaInfo& info) {
  if (datanode < 0 || datanode >= num_datanodes_) {
    return Status::InvalidArgument("bad datanode id");
  }
  std::vector<int>& holders = dir_block_[block_id];
  if (std::find(holders.begin(), holders.end(), datanode) == holders.end()) {
    holders.push_back(datanode);
  }
  dir_rep_[{block_id, datanode}] = info;
  // A freshly registered replica on this node is legitimate: forget any
  // earlier revocation of the same (block, node) pair.
  auto rev = revoked_.find(datanode);
  if (rev != revoked_.end()) {
    rev->second.erase(block_id);
    if (rev->second.empty()) revoked_.erase(rev);
  }
  NoteBlockMutation(block_id);
  return Status::OK();
}

void Namenode::SetBlockLogicalBytes(uint64_t block_id, uint64_t logical_bytes) {
  block_logical_bytes_[block_id] = logical_bytes;
}

Result<std::vector<int>> Namenode::GetBlockDatanodes(uint64_t block_id) const {
  auto it = dir_block_.find(block_id);
  if (it == dir_block_.end()) {
    return Status::NotFound("unknown block " + std::to_string(block_id));
  }
  std::vector<int> alive;
  for (int dn : it->second) {
    if (IsDatanodeAlive(dn)) alive.push_back(dn);
  }
  return alive;
}

Result<std::vector<BlockLocation>> Namenode::GetFileBlocks(
    const std::string& file) const {
  // Exact file, or all part files under the directory prefix.
  std::vector<const std::vector<uint64_t>*> file_lists;
  auto it = files_.find(file);
  if (it != files_.end()) {
    file_lists.push_back(&it->second);
  } else {
    const std::string prefix = file + "/";
    // std::map iterates in lexicographic order, giving deterministic
    // part-file ordering.
    for (auto fit = files_.lower_bound(prefix);
         fit != files_.end() && fit->first.compare(0, prefix.size(), prefix) == 0;
         ++fit) {
      file_lists.push_back(&fit->second);
    }
    if (file_lists.empty()) {
      return Status::NotFound("no such file or directory: " + file);
    }
  }
  std::vector<BlockLocation> out;
  uint32_t file_id = 0;
  for (const std::vector<uint64_t>* blocks : file_lists) {
    for (uint64_t block_id : *blocks) {
      BlockLocation loc;
      loc.block_id = block_id;
      loc.file_id = file_id;
      HAIL_ASSIGN_OR_RETURN(loc.datanodes, GetBlockDatanodes(block_id));
      auto sz = block_logical_bytes_.find(block_id);
      loc.logical_bytes = sz == block_logical_bytes_.end() ? 0 : sz->second;
      out.push_back(std::move(loc));
    }
    ++file_id;
  }
  return out;
}

Result<HailBlockReplicaInfo> Namenode::GetReplicaInfo(uint64_t block_id,
                                                      int datanode) const {
  auto it = dir_rep_.find({block_id, datanode});
  if (it == dir_rep_.end()) {
    return Status::NotFound("no replica info for block " +
                            std::to_string(block_id) + " on dn " +
                            std::to_string(datanode));
  }
  return it->second;
}

std::vector<int> Namenode::GetHostsWithIndex(uint64_t block_id,
                                             int column) const {
  std::vector<int> hosts;
  auto it = dir_block_.find(block_id);
  if (it == dir_block_.end()) return hosts;
  for (int dn : it->second) {
    if (!IsDatanodeAlive(dn)) continue;
    auto rep = dir_rep_.find({block_id, dn});
    if (rep == dir_rep_.end()) continue;
    if (rep->second.has_index() && rep->second.sort_column == column) {
      hosts.push_back(dn);
    }
  }
  return hosts;
}

std::vector<int> Namenode::GetHostsWithUnclusteredIndex(uint64_t block_id,
                                                        int column) const {
  std::vector<int> hosts;
  auto it = dir_block_.find(block_id);
  if (it == dir_block_.end()) return hosts;
  for (int dn : it->second) {
    if (!IsDatanodeAlive(dn)) continue;
    auto rep = dir_rep_.find({block_id, dn});
    if (rep == dir_rep_.end()) continue;
    if (rep->second.unclustered_column == column) {
      hosts.push_back(dn);
    }
  }
  return hosts;
}

Result<std::vector<uint64_t>> Namenode::DeleteFile(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + file);
  }
  std::vector<uint64_t> blocks = std::move(it->second);
  files_.erase(it);
  for (uint64_t block_id : blocks) {
    auto holders = dir_block_.find(block_id);
    if (holders != dir_block_.end()) {
      for (int dn : holders->second) {
        dir_rep_.erase({block_id, dn});
      }
      dir_block_.erase(holders);
    }
    block_logical_bytes_.erase(block_id);
    block_stats_.erase(block_id);
    block_mutations_.erase(block_id);
  }
  ++directory_generation_;
  return blocks;
}

void Namenode::MarkDatanodeDead(int datanode) {
  if (std::find(dead_.begin(), dead_.end(), datanode) == dead_.end()) {
    dead_.push_back(datanode);
    ++directory_generation_;
  }
}

void Namenode::MarkDatanodeAlive(int datanode) {
  auto it = std::remove(dead_.begin(), dead_.end(), datanode);
  if (it != dead_.end()) {
    dead_.erase(it, dead_.end());
    ++directory_generation_;
  }
}

bool Namenode::IsDatanodeAlive(int datanode) const {
  return std::find(dead_.begin(), dead_.end(), datanode) == dead_.end();
}

std::vector<uint64_t> Namenode::BlocksOnDatanode(int datanode) const {
  // dir_block_ is an ordered map, so the result is in block-id order.
  std::vector<uint64_t> blocks;
  for (const auto& [block_id, holders] : dir_block_) {
    if (std::find(holders.begin(), holders.end(), datanode) != holders.end()) {
      blocks.push_back(block_id);
    }
  }
  return blocks;
}

void Namenode::RevokeReplica(uint64_t block_id, int datanode) {
  auto holders = dir_block_.find(block_id);
  if (holders != dir_block_.end()) {
    holders->second.erase(std::remove(holders->second.begin(),
                                      holders->second.end(), datanode),
                          holders->second.end());
  }
  dir_rep_.erase({block_id, datanode});
  revoked_[datanode].insert(block_id);
  NoteBlockMutation(block_id);
}

void Namenode::NoteBlockMutation(uint64_t block_id) {
  ++block_mutations_[block_id];
  ++directory_generation_;
}

void Namenode::RegisterBlockStats(uint64_t block_id, std::string stats) {
  block_stats_[block_id] = {block_mutations_[block_id], std::move(stats)};
  // Fresh stats change what the planner would decide: invalidate plans.
  ++directory_generation_;
}

Result<std::string_view> Namenode::GetBlockStats(uint64_t block_id) const {
  auto it = block_stats_.find(block_id);
  if (it == block_stats_.end()) {
    return Status::NotFound("no stats for block " + std::to_string(block_id));
  }
  auto mut = block_mutations_.find(block_id);
  const uint64_t current = mut == block_mutations_.end() ? 0 : mut->second;
  if (it->second.first != current) {
    return Status::NotFound("stale stats for block " +
                            std::to_string(block_id));
  }
  return std::string_view(it->second.second);
}

bool Namenode::BlockStatsFresh(uint64_t block_id) const {
  return GetBlockStats(block_id).ok();
}

Status Namenode::ReportCorruptReplica(uint64_t block_id, int datanode) {
  auto rep = dir_rep_.find({block_id, datanode});
  if (rep == dir_rep_.end()) {
    // Already reported (every task touching the bad replica reports it).
    return Status::OK();
  }
  UnderReplicatedEntry entry;
  entry.block_id = block_id;
  entry.lost_datanode = datanode;
  entry.lost_info = rep->second;
  entry.ownership_revoked = true;
  RevokeReplica(block_id, datanode);
  if (repair_pending_.insert({block_id, datanode}).second) {
    under_replicated_.push_back(std::move(entry));
  }
  return Status::OK();
}

void Namenode::EnqueueLostNodeReplicas(int datanode) {
  for (const auto& [block_id, holders] : dir_block_) {
    if (std::find(holders.begin(), holders.end(), datanode) == holders.end()) {
      continue;
    }
    auto rep = dir_rep_.find({block_id, datanode});
    if (rep == dir_rep_.end()) continue;
    if (!repair_pending_.insert({block_id, datanode}).second) continue;
    UnderReplicatedEntry entry;
    entry.block_id = block_id;
    entry.lost_datanode = datanode;
    entry.lost_info = rep->second;
    entry.ownership_revoked = false;
    under_replicated_.push_back(std::move(entry));
  }
}

std::vector<UnderReplicatedEntry> Namenode::TakeUnderReplicated() {
  std::vector<UnderReplicatedEntry> out(under_replicated_.begin(),
                                        under_replicated_.end());
  under_replicated_.clear();
  return out;
}

void Namenode::RequeueUnderReplicated(const UnderReplicatedEntry& entry) {
  // The in-repair marker is still set; just put the work back.
  under_replicated_.push_back(entry);
}

Status Namenode::CompleteRepair(const UnderReplicatedEntry& entry, int target,
                                const HailBlockReplicaInfo& info) {
  HAIL_RETURN_NOT_OK(RegisterReplica(entry.block_id, target, info));
  if (!entry.ownership_revoked &&
      !IsDatanodeAlive(entry.lost_datanode) &&
      dir_rep_.count({entry.block_id, entry.lost_datanode}) > 0) {
    // The dead node's copy has been superseded; make sure a revive
    // deletes it instead of serving it.
    RevokeReplica(entry.block_id, entry.lost_datanode);
  }
  repair_pending_.erase({entry.block_id, entry.lost_datanode});
  return Status::OK();
}

void Namenode::AbandonRepair(const UnderReplicatedEntry& entry) {
  repair_pending_.erase({entry.block_id, entry.lost_datanode});
}

Status Namenode::DropReplica(uint64_t block_id, int datanode,
                             int min_remaining) {
  if (dir_rep_.count({block_id, datanode}) == 0) {
    return Status::NotFound("no replica of block " + std::to_string(block_id) +
                            " on datanode " + std::to_string(datanode));
  }
  if (repair_pending_.count({block_id, datanode}) > 0) {
    return Status::FailedPrecondition("replica is queued for repair");
  }
  auto holders = dir_block_.find(block_id);
  int alive_remaining = 0;
  if (holders != dir_block_.end()) {
    for (int dn : holders->second) {
      if (dn != datanode && IsDatanodeAlive(dn)) ++alive_remaining;
    }
  }
  if (alive_remaining < min_remaining) {
    return Status::FailedPrecondition(
        "dropping the replica would leave " +
        std::to_string(alive_remaining) + " alive copies (< " +
        std::to_string(min_remaining) + ")");
  }
  RevokeReplica(block_id, datanode);
  return Status::OK();
}

std::vector<uint64_t> Namenode::TakeRevoked(int datanode) {
  auto it = revoked_.find(datanode);
  if (it == revoked_.end()) return {};
  std::vector<uint64_t> blocks(it->second.begin(), it->second.end());
  revoked_.erase(it);
  return blocks;
}

}  // namespace hdfs
}  // namespace hail
