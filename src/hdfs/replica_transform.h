/// \file replica_transform.h
/// \brief Pluggable per-replica layout policy for the upload pipeline.
///
/// The paper's three upload paths differ only in what each datanode makes
/// of the block it received: stock HDFS stores the bytes as-is (every
/// replica identical), Hadoop++ stores one converted trojan block on every
/// replica, and HAIL gives each replica its own sort order and clustered
/// index (§3.2). A ReplicaTransformer captures exactly that policy, so the
/// packet/ACK/chain-timing transport in hdfs/upload_pipeline.cc exists
/// once and the engines are thin callers:
///
///   text upload      -> IdentityTransformer          (stream to disk)
///   HAIL upload      -> hail::HailReplicaTransformer (hail/hail_block.h)
///   Hadoop++ convert -> hadooppp::TrojanReplicaTransformer
///                       (hadooppp/trojan_block.h, distributed through
///                        StoreTransformedReplicas — its cost is billed at
///                        MapReduce phase level, not through the chain)

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "sim/cost_model.h"
#include "util/result.h"

namespace hail {
namespace hdfs {

/// Paper-scale size of a replica's checksum side-car (blk_*.meta): 4 bytes
/// of CRC32C per chunk, plus the trailing partial chunk. The single home
/// of the `(bytes / chunk + 1) * 4` accounting so callers cannot drift.
constexpr uint64_t ChecksumMetaBytes(uint64_t data_bytes,
                                     uint64_t chunk_bytes) {
  return (data_bytes / chunk_bytes + 1) * 4;
}

/// Paper-scale bytes of a serialised block's header plus sparse offset
/// side-cars. The real serialised block carries offsets at scaled-down
/// density which must not be multiplied back up (DESIGN.md §2); at paper
/// scale the header and sparse lists are a few KB per 64 MB block.
inline constexpr uint64_t kLogicalBlockOverhead = 8 * 1024;

/// \brief What the pipeline knows about the datanode asked to build a
/// replica.
struct ReplicaWorkContext {
  /// The building datanode's cost model; null when the caller bills the
  /// transform outside the pipeline (Hadoop++ phase-level billing).
  const sim::CostModel* cost = nullptr;
  /// True for the chain tail, which also verified every incoming packet.
  bool is_tail = false;
};

/// \brief One finished replica: physical bytes plus accounting.
struct ReplicaBlock {
  /// Physical replica bytes to store on the datanode.
  std::string bytes;
  /// Per-chunk CRC32Cs of \p bytes (each replica recomputes its own —
  /// replicas may differ physically, §3.2).
  std::vector<uint32_t> chunk_crcs;
  /// Dir_rep record for the namenode.
  HailBlockReplicaInfo info;
  /// Datanode CPU seconds (sort + index + checksum recomputation) to book
  /// on the upload worker pool.
  double cpu_seconds = 0.0;
  /// Paper-scale bytes of the stored data file (block + embedded index).
  uint64_t logical_bytes = 0;
};

/// \brief Per-block replica layout policy.
///
/// One transformer instance handles one block: the pipeline calls
/// BeginBlock once with the reassembled bytes, then BuildReplica once per
/// pipeline target. Implementations decode shared state in BeginBlock
/// exactly once and derive every replica from it.
class ReplicaTransformer {
 public:
  virtual ~ReplicaTransformer() = default;

  /// True when replicas are byte-identical to the transferred block and
  /// datanodes stream packets straight to disk as they arrive (stock
  /// HDFS). False when datanodes reassemble the block in memory and build
  /// transformed replicas before flushing (HAIL).
  virtual bool identity() const { return false; }

  /// Called once per block with the (reassembled) block bytes.
  virtual Status BeginBlock(std::string_view block_bytes) = 0;

  /// Produces replica \p replica_index (position in the pipeline chain).
  virtual Result<ReplicaBlock> BuildReplica(size_t replica_index,
                                            const ReplicaWorkContext& ctx) = 0;

  /// Serialized planner stats sidecar of the block handed to BeginBlock
  /// (planner::BlockStats bytes), or empty when the policy does not build
  /// stats. Stats describe the logical block — identical across replicas —
  /// so the pipeline registers them once per block with the namenode.
  virtual std::string_view stats_bytes() const { return {}; }
};

/// \brief Stock-HDFS policy: every replica is the transferred bytes.
class IdentityTransformer : public ReplicaTransformer {
 public:
  bool identity() const override { return true; }
  Status BeginBlock(std::string_view block_bytes) override;
  Result<ReplicaBlock> BuildReplica(size_t replica_index,
                                    const ReplicaWorkContext& ctx) override;

 private:
  uint64_t block_bytes_ = 0;
};

/// \brief Distributes transformer-built replicas without chain billing.
///
/// Used by ingestion paths whose functional output is replicated but whose
/// cost is modelled at a coarser level (the Hadoop++ conversion MapReduce
/// job): stores and registers one BuildReplica result per allocated target
/// and records \p logical_bytes with the namenode. The caller must already
/// have called transformer->BeginBlock() for this block — it typically
/// needs the conversion result to compute \p logical_bytes. Returns the
/// total stored replica bytes.
Result<uint64_t> StoreTransformedReplicas(Namenode* namenode,
                                          const std::vector<Datanode*>& datanodes,
                                          const BlockAllocation& alloc,
                                          uint64_t logical_bytes,
                                          ReplicaTransformer* transformer);

}  // namespace hdfs
}  // namespace hail
