#include "hdfs/dfs_client.h"

#include <algorithm>

namespace hail {
namespace hdfs {

MiniDfs::MiniDfs(sim::SimCluster* cluster, DfsConfig config)
    : cluster_(cluster),
      config_(config),
      namenode_(cluster->num_nodes()),
      block_cache_(/*max_entries_per_shard=*/4096, &metrics_),
      pipeline_(cluster, &namenode_, {}, config) {
  datanodes_.reserve(static_cast<size_t>(cluster->num_nodes()));
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    datanodes_.push_back(std::make_unique<Datanode>(i, &cluster->node(i)));
    datanodes_.back()->AttachCache(&block_cache_);
  }
  pipeline_ = UploadPipeline(cluster, &namenode_, datanode_ptrs(), config);
}

std::vector<Datanode*> MiniDfs::datanode_ptrs() {
  std::vector<Datanode*> ptrs;
  ptrs.reserve(datanodes_.size());
  for (auto& dn : datanodes_) ptrs.push_back(dn.get());
  return ptrs;
}

void MiniDfs::KillNode(int id, sim::SimTime when) {
  cluster_->KillNode(id, when);
  namenode_.MarkDatanodeDead(id);
  block_cache_.InvalidateDatanode(id);
}

void MiniDfs::ReviveNode(int id) {
  cluster_->node(id).set_alive(true);
  // Stale copies first: if a replica was re-replicated elsewhere or
  // reported corrupt while this node was down, its local files are
  // deleted before the node serves anything.
  for (uint64_t block_id : namenode_.TakeRevoked(id)) {
    Datanode& dn = datanode(id);
    if (dn.HasBlock(block_id)) {
      dn.DeleteBlock(block_id);  // bumps generation + invalidates cache
    }
  }
  namenode_.MarkDatanodeAlive(id);
  block_cache_.InvalidateDatanode(id);
}

Status MiniDfs::ReportBadReplica(uint64_t block_id, int datanode_id) {
  HAIL_RETURN_NOT_OK(namenode_.ReportCorruptReplica(block_id, datanode_id));
  Datanode& dn = datanode(datanode_id);
  if (dn.HasBlock(block_id)) {
    HAIL_RETURN_NOT_OK(dn.DeleteBlock(block_id));
  }
  return Status::OK();
}

Status MiniDfs::InjectCorruption(int datanode_id, uint64_t block_id) {
  return datanode(datanode_id).CorruptReplica(block_id);
}

void MiniDfs::ResetForSession() {
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    cluster_->node(i).ResetResources();
    if (!cluster_->node(i).alive()) {
      ReviveNode(i);
    }
  }
}

namespace {

/// Per-client upload cursor used by both single and parallel uploads.
struct ClientCursor {
  int client_node;
  std::string dfs_path;
  std::string_view text;
  size_t pos = 0;
  sim::SimTime read_ready;   // when the client's disk can start next read
  sim::SimTime completed = 0.0;
  uint32_t blocks = 0;
  uint64_t real_bytes = 0;
  uint64_t logical_bytes = 0;
  bool done() const { return pos >= text.size(); }
};

/// Uploads the next block of one cursor; returns false when exhausted.
Result<bool> UploadNextBlock(MiniDfs* dfs, ClientCursor* cur) {
  if (cur->done()) return false;
  const DfsConfig& cfg = dfs->config();
  const uint64_t take =
      std::min<uint64_t>(cfg.block_size, cur->text.size() - cur->pos);
  std::string_view block_bytes = cur->text.substr(cur->pos, take);
  cur->pos += take;
  const uint64_t logical_bytes = static_cast<uint64_t>(
      static_cast<double>(take) * cfg.scale_factor);

  // The client streams the source file from its local source disk (the
  // nodes have several spindles; ingestion reads do not contend with
  // replica flushes).
  sim::SimNode& client = dfs->cluster().node(cur->client_node);
  const sim::Interval read = client.src_disk().Schedule(
      cur->read_ready, client.cost().DiskTransfer(logical_bytes));
  cur->read_ready = read.end;

  HAIL_ASSIGN_OR_RETURN(
      BlockAllocation alloc,
      dfs->namenode().AllocateBlock(cur->dfs_path, cur->client_node,
                                    cfg.replication));
  HAIL_ASSIGN_OR_RETURN(
      BlockWriteResult result,
      dfs->pipeline().WriteBlock(cur->client_node, read.end, alloc.block_id,
                                 block_bytes, logical_bytes,
                                 alloc.datanodes));
  cur->completed = std::max(cur->completed, result.completed);
  cur->blocks += 1;
  cur->real_bytes += take;
  cur->logical_bytes += logical_bytes;
  return true;
}

UploadReport MakeReport(const std::vector<ClientCursor>& cursors,
                        sim::SimTime start_time) {
  UploadReport report;
  report.started = start_time;
  for (const ClientCursor& cur : cursors) {
    report.completed = std::max(report.completed, cur.completed);
    report.blocks += cur.blocks;
    report.real_bytes += cur.real_bytes;
    report.logical_bytes += cur.logical_bytes;
  }
  return report;
}

}  // namespace

Result<UploadReport> UploadTextFile(MiniDfs* dfs, int client_node,
                                    const std::string& dfs_path,
                                    std::string_view text,
                                    sim::SimTime start_time) {
  std::vector<ClientCursor> cursors{
      ClientCursor{client_node, dfs_path, text, 0, start_time, 0.0, 0, 0, 0}};
  while (!cursors[0].done()) {
    HAIL_ASSIGN_OR_RETURN(bool more, UploadNextBlock(dfs, &cursors[0]));
    if (!more) break;
  }
  return MakeReport(cursors, start_time);
}

Result<UploadReport> ParallelUploadText(
    MiniDfs* dfs, const std::vector<ParallelUploadSpec>& specs,
    sim::SimTime start_time) {
  std::vector<ClientCursor> cursors;
  cursors.reserve(specs.size());
  for (const ParallelUploadSpec& spec : specs) {
    cursors.push_back(ClientCursor{spec.client_node, spec.dfs_path, spec.text,
                                   0, start_time, 0.0, 0, 0, 0});
  }
  // Round-robin across clients so resource bookings stay roughly in time
  // order (all clients upload concurrently in the paper's experiments).
  bool any = true;
  while (any) {
    any = false;
    for (ClientCursor& cur : cursors) {
      if (cur.done()) continue;
      HAIL_ASSIGN_OR_RETURN(bool more, UploadNextBlock(dfs, &cur));
      any = any || more || !cur.done();
    }
  }
  return MakeReport(cursors, start_time);
}

}  // namespace hdfs
}  // namespace hail
