/// \file upload_pipeline.h
/// \brief The one block-write transport shared by every engine (§3.2).
///
/// Functional path: the client cuts a block into packets (512 B chunks,
/// per-chunk CRC32C), sends them to DN1, which forwards to DN2, which
/// forwards to DN3. Only the tail verifies chunk checksums; ACKs flow back
/// through the chain, each node appending its ID, and the client validates
/// order and chain membership. What each datanode *stores* is decided by
/// the block's ReplicaTransformer (hdfs/replica_transform.h):
///
///   - identity (stock HDFS): data and checksums are flushed to the two
///     replica files as packets arrive (streaming flush);
///   - transforming (HAIL): the block is reassembled in memory, each
///     datanode sorts/indexes its own replica and recomputes checksums
///     before flushing, and the block's final ACK is gated on the flush.
///
/// Timing: transfers are cut-through (a downstream hop starts one packet
/// behind the upstream hop, not after the whole block). Streaming flushes
/// overlap receive; transformed replicas flush after their sort/index CPU
/// work on the datanode's bounded upload worker pool.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hdfs/datanode.h"
#include "hdfs/dfs_config.h"
#include "hdfs/namenode.h"
#include "hdfs/replica_transform.h"
#include "sim/cluster.h"
#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief Outcome of writing one block through the pipeline.
struct BlockWriteResult {
  /// Simulated time the client received the block's final ACK.
  sim::SimTime completed = 0.0;
  /// Real bytes stored per replica (data file + meta file); only set for
  /// identity writes, where every replica is the same size.
  uint64_t replica_physical_bytes = 0;
  /// Real data-file bytes summed across all (possibly divergent) replicas.
  uint64_t replica_bytes_total = 0;
  /// Packets that traversed the pipeline.
  uint32_t packets = 0;
};

/// \brief Per-hop arrival times of a chain transfer (shared with HAIL).
struct ChainTiming {
  /// arrival_complete[i]: when target i has received the whole block.
  std::vector<sim::SimTime> arrival_complete;
};

/// Bills a cut-through transfer of \p logical_bytes from \p client through
/// the \p targets chain. Books client nic_send plus each hop's NIC pair.
ChainTiming BillChainTransfer(sim::SimCluster* cluster, int client,
                              sim::SimTime ready, uint64_t logical_bytes,
                              const std::vector<int>& targets);

/// \brief The unified block writer: packet transport + replica policy.
class UploadPipeline {
 public:
  UploadPipeline(sim::SimCluster* cluster, Namenode* namenode,
                 std::vector<Datanode*> datanodes, DfsConfig config)
      : cluster_(cluster),
        namenode_(namenode),
        datanodes_(std::move(datanodes)),
        config_(config) {}

  /// Writes one block through the packet/ACK chain; \p transformer
  /// decides each replica's physical layout (see replica_transform.h).
  /// \p ready is when the client has the block bytes in hand.
  /// \p logical_bytes is the paper-scale size used for cost accounting of
  /// the chain transfer.
  Result<BlockWriteResult> WriteBlock(int client, sim::SimTime ready,
                                      uint64_t block_id,
                                      std::string_view block_bytes,
                                      uint64_t logical_bytes,
                                      const std::vector<int>& targets,
                                      ReplicaTransformer* transformer);

  /// Raw (text) block convenience overload: identity replicas.
  Result<BlockWriteResult> WriteBlock(int client, sim::SimTime ready,
                                      uint64_t block_id,
                                      std::string_view block_bytes,
                                      uint64_t logical_bytes,
                                      const std::vector<int>& targets);

  const DfsConfig& config() const { return config_; }

 private:
  sim::SimCluster* cluster_;
  Namenode* namenode_;
  std::vector<Datanode*> datanodes_;
  DfsConfig config_;
};

}  // namespace hdfs
}  // namespace hail
