/// \file block_cache.h
/// \brief Per-cluster read cache memoising per-block-version work.
///
/// Every map task of every query used to redo the same per-block work:
/// Datanode::ReadBlockVerified re-computed CRC32C over the full block,
/// HailBlockView::Open re-parsed the layout, and the clustered index was
/// re-deserialised per task (the paper reads it "entirely into main
/// memory", §4.3 — there is no reason to decode it thousands of times per
/// job). This cache makes that work once per *block version*:
///
///   key   = (datanode, block_id) -> entry pinned to a generation
///   entry = { verified flag, decoded artifact (reader-specific) }
///
/// Generations are bumped by the owning datanode on every mutation of the
/// replica (stream append, one-shot store, delete), so a stale entry can
/// never be served; node kill/revive additionally invalidates all of a
/// datanode's entries (a revived node conceptually re-reports its blocks).
///
/// The cache is purely a *real-work* optimisation: simulated cost
/// accounting in the readers is untouched, so every simulated number is
/// bit-identical with the cache on, off, hot or cold.
///
/// Thread safety: the cache is sharded; each shard's mutex is held across
/// the miss path (verify/decode + insert), which both serialises duplicate
/// work and guarantees the exactly-once counters the tests rely on. The
/// counters live on the cluster MetricsRegistry ("cache.*") as sharded
/// obs::Counters — the parallel task engine hits this cache from many
/// pool threads at once, and the exactly-once protocol makes the merged
/// totals identical between serial and parallel execution.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/result.h"

namespace hail {
namespace hdfs {

/// \brief Base class for cached per-block decode artifacts.
///
/// Readers subclass this with whatever their layout decodes once per block
/// (HAIL: block view + PAX view + lazy clustered index; Hadoop++: trojan
/// view + row view + lazy trojan index) and downcast on retrieval. An
/// artifact may hold string_views into the datanode's stored bytes; entry
/// invalidation on every replica mutation keeps those views from being
/// served dangling.
struct BlockArtifact {
  virtual ~BlockArtifact() = default;
};

/// \brief Monotonic cache counters (test hooks + BENCH_query.json).
struct BlockCacheStats {
  uint64_t verify_hits = 0;
  uint64_t verify_misses = 0;
  /// Real bytes actually CRC-verified (misses only) — proves verification
  /// happens once per block version, not once per task.
  uint64_t bytes_verified = 0;
  uint64_t artifact_hits = 0;
  uint64_t artifact_misses = 0;
  /// Clustered/trojan index deserialisations actually performed.
  uint64_t index_decodes = 0;
  /// Entries dropped by explicit invalidation (mutation, kill, revive).
  uint64_t invalidated_entries = 0;
  /// Entries dropped by capacity eviction.
  uint64_t evicted_entries = 0;
};

/// \brief Bounded, sharded, generation-checked per-block cache.
class BlockCache {
 public:
  /// \p max_entries_per_shard bounds each of the kShards shards (FIFO
  /// eviction). The default comfortably holds the paper-scale corpus
  /// (3200 blocks x 3 replicas) while bounding worst-case memory.
  /// Counters register on \p registry as "cache.*"; when null, the cache
  /// owns a private registry (standalone unit tests).
  explicit BlockCache(size_t max_entries_per_shard = 4096,
                      obs::MetricsRegistry* registry = nullptr);

  /// Memoised checksum verification. On a hit for this exact generation,
  /// returns OK without invoking \p verify; on a miss, runs \p verify and
  /// caches success (failures are never cached). \p bytes is the real
  /// size being verified, accounted in bytes_verified on misses.
  Status VerifyOnce(int datanode, uint64_t block_id, uint64_t generation,
                    uint64_t bytes, const std::function<Status()>& verify);

  /// Memoised per-block decode. On a miss (or generation mismatch) runs
  /// \p make and caches the artifact; errors are returned, not cached.
  Result<std::shared_ptr<const BlockArtifact>> ArtifactOnce(
      int datanode, uint64_t block_id, uint64_t generation,
      const std::function<Result<std::shared_ptr<const BlockArtifact>>()>&
          make);

  /// Drops the entry for one replica (called on every replica mutation).
  void InvalidateBlock(int datanode, uint64_t block_id);

  /// Drops every entry of one datanode (node kill / revive).
  void InvalidateDatanode(int datanode);

  /// Drops everything.
  void Clear();

  /// Counter hook for readers' lazy index decodes (the artifact owns the
  /// decode; the cache owns the counter so tests have one place to look).
  void NoteIndexDecode() { index_decodes_->Inc(); }

  /// Snapshot of the monotonic counters.
  BlockCacheStats stats() const;

  /// Live entries across all shards (test hook).
  size_t entry_count() const;

  /// Live entries for one datanode (test hook: must be 0 after a kill —
  /// a dead node's replicas are never served from cache).
  size_t entry_count_for(int datanode) const;

 private:
  static constexpr size_t kShards = 16;

  struct Key {
    int datanode;
    uint64_t block_id;
    bool operator==(const Key& o) const {
      return datanode == o.datanode && block_id == o.block_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style scramble over the combined key.
      uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.datanode))
                    << 48) ^
                   k.block_id;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x * 0x94d049bb133111ebull);
    }
  };

  struct Entry {
    uint64_t generation = 0;
    bool verified = false;
    std::shared_ptr<const BlockArtifact> artifact;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
    std::deque<Key> fifo;  // insertion order for capacity eviction
  };

  Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key) % kShards];
  }

  /// Returns the live entry for \p key at \p generation, creating (or
  /// generation-resetting) it as needed. Shard mutex must be held.
  Entry& LiveEntry(Shard& shard, const Key& key, uint64_t generation);

  size_t max_entries_per_shard_;
  Shard shards_[kShards];

  // Registry-backed counters ("cache.*"); `stats()` is a snapshot view
  // over these — there are no per-field atomics anymore.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* verify_hits_;
  obs::Counter* verify_misses_;
  obs::Counter* bytes_verified_;
  obs::Counter* artifact_hits_;
  obs::Counter* artifact_misses_;
  obs::Counter* index_decodes_;
  obs::Counter* invalidated_entries_;
  obs::Counter* evicted_entries_;
};

}  // namespace hdfs
}  // namespace hail
