/// \file dfs_client.h
/// \brief The stock HDFS client: fixed-byte block cutting + upload loop.
///
/// "HDFS partitions the file into logical HDFS blocks using a constant
/// block size... This is in contrast to standard HDFS which splits a file
/// into HDFS blocks after a constant number of bytes" (§2.1/§3.1): rows
/// *can* straddle block boundaries; the text RecordReader compensates at
/// query time (first-partial-line skip / read-past-end), exactly like
/// Hadoop's TextInputFormat.

#pragma once

#include <string>
#include <vector>

#include "hdfs/upload_pipeline.h"

namespace hail {
namespace hdfs {

/// \brief Upload statistics for one file (and aggregates across clients).
struct UploadReport {
  sim::SimTime started = 0.0;
  sim::SimTime completed = 0.0;
  uint32_t blocks = 0;
  uint64_t real_bytes = 0;
  uint64_t logical_bytes = 0;
  double duration() const { return completed - started; }
};

/// \brief A distributed filesystem handle shared by clients and readers.
class MiniDfs {
 public:
  MiniDfs(sim::SimCluster* cluster, DfsConfig config);

  Namenode& namenode() { return namenode_; }
  const Namenode& namenode() const { return namenode_; }
  Datanode& datanode(int id) { return *datanodes_[static_cast<size_t>(id)]; }
  const Datanode& datanode(int id) const {
    return *datanodes_[static_cast<size_t>(id)];
  }
  int num_datanodes() const { return static_cast<int>(datanodes_.size()); }
  sim::SimCluster& cluster() { return *cluster_; }
  const sim::SimCluster& cluster() const { return *cluster_; }
  const DfsConfig& config() const { return config_; }
  UploadPipeline& pipeline() { return pipeline_; }

  /// Cluster-wide per-block-version read cache (internally synchronised;
  /// const because reading through the DFS is logically const).
  BlockCache& block_cache() const { return block_cache_; }

  /// Cluster-wide metrics registry (obs/metrics.h): the cache, the
  /// session engine, the adaptive loop and the repair path all register
  /// their counters here. Monotonic across sessions; tests that compare
  /// snapshots call Reset() at their own boundaries. Const for the same
  /// reason as the cache: observing the DFS is logically const.
  obs::MetricsRegistry& metrics() const { return metrics_; }

  std::vector<Datanode*> datanode_ptrs();

  /// Kills a node at the given simulated time: marks it dead in both the
  /// cluster (resources) and the namenode (locations), and drops the
  /// node's cached read state so nothing is ever served for a dead
  /// replica.
  void KillNode(int id, sim::SimTime when);

  /// Revives a node (queries run on a repaired cluster): marks it alive
  /// everywhere and — like a real re-registration — starts it with a cold
  /// cache. Replicas revoked while the node was dead (re-replicated
  /// elsewhere or reported corrupt) are deleted before the node rejoins,
  /// so a stale copy can never be read again.
  void ReviveNode(int id);

  /// A reader's CRC failure on (block, datanode): drops the replica from
  /// all namenode lookups, deletes the bad files from the node, and
  /// invalidates any cached state. Idempotent.
  Status ReportBadReplica(uint64_t block_id, int datanode);

  /// Fault injection: flips a byte of the replica of `block_id` stored on
  /// `datanode` (checksums untouched), so its next verified read returns
  /// Corruption.
  Status InjectCorruption(int datanode, uint64_t block_id);

  /// Session boundary (mapreduce/scheduler.h): clears every node's
  /// resource bookings and revives dead nodes, once per ClusterSession
  /// rather than per job — jobs inside a session share resource state and
  /// observe each other's faults. Stored blocks, Dir_rep registrations
  /// and still-valid cache entries survive (cross-session reuse is the
  /// block cache's whole point); revived nodes come back cold.
  void ResetForSession();

 private:
  sim::SimCluster* cluster_;
  DfsConfig config_;
  Namenode namenode_;
  mutable obs::MetricsRegistry metrics_;  // before block_cache_: it
                                          // registers counters here
  mutable BlockCache block_cache_;
  std::vector<std::unique_ptr<Datanode>> datanodes_;
  UploadPipeline pipeline_;
};

/// \brief Uploads a text file the stock-HDFS way from one client node.
///
/// Bills the client's source-disk read and drives the block pipeline;
/// blocks are cut after exactly `block_size` real bytes.
Result<UploadReport> UploadTextFile(MiniDfs* dfs, int client_node,
                                    const std::string& dfs_path,
                                    std::string_view text,
                                    sim::SimTime start_time = 0.0);

/// \brief Runs one UploadTextFile per (client, file) pair, modelling the
/// paper's parallel per-node ingestion. Returns the latest completion.
struct ParallelUploadSpec {
  int client_node;
  std::string dfs_path;
  std::string_view text;
};
Result<UploadReport> ParallelUploadText(MiniDfs* dfs,
                                        const std::vector<ParallelUploadSpec>& specs,
                                        sim::SimTime start_time = 0.0);

}  // namespace hdfs
}  // namespace hail
