/// \file access_planner.h
/// \brief Cost-based per-block access-path choice from block statistics.
///
/// For every block of a job's input the planner consults the namenode's
/// stats sidecar (planner/block_stats.h) and the replica directory, then
/// picks the cheapest sound path under the same seek/transfer/decode cost
/// constants the readers bill against:
///
///   - kSkipZoneMap when the filter is provably disjoint from the block's
///     min/max (and the block holds no bad records — those must reach the
///     mapper regardless of the filter);
///   - kClusteredIndex whenever a replica with the matching sorted index
///     is alive (a sparse-index range read never costs more than a full
///     pass in this billing model);
///   - kUnclusteredIndex when only the adaptive dense index exists and
///     the estimated selectivity clears the same threshold the runtime
///     heuristic uses — predicting (and avoiding) the reader's
///     "probe, then abandon" dead weight;
///   - kFullScan otherwise.
///
/// Missing or stale stats degrade to worst-case assumptions (never a
/// skip), so planning is always sound, merely less sharp.

#pragma once

#include <vector>

#include "hdfs/dfs_client.h"
#include "planner/access_path.h"
#include "query/predicate.h"
#include "schema/schema.h"

namespace hail {
namespace planner {

/// \brief Per-block decisions plus file-level prediction aggregates.
struct FilePlan {
  /// One decision per entry of the file's block list, in block order.
  std::vector<AccessDecision> decisions;
  /// Sum of the per-block cost estimates (zone-map skips contribute 0).
  double predicted_cost_seconds = 0.0;
  /// Blocks proven empty by their zone maps.
  uint64_t blocks_skipped = 0;
  /// Blocks whose decision was informed by fresh statistics.
  uint64_t blocks_with_fresh_stats = 0;
};

/// Plans every block of \p blocks for a query with \p annotation whose
/// preferred index column is \p index_column (-1 for none). Reads only
/// namenode metadata — the caller bills the per-block planning CPU
/// (CostConstants::planner_block_plan_us) into the split phase.
FilePlan PlanAccessPaths(const hdfs::MiniDfs& dfs, const Schema& schema,
                         const QueryAnnotation& annotation, int index_column,
                         const std::vector<hdfs::BlockLocation>& blocks);

}  // namespace planner
}  // namespace hail
