/// \file access_path.h
/// \brief Per-block access-path decisions produced by the planner.
///
/// The planner annotates every block of a job's input with one decision.
/// All decisions are *advisory* — readers keep their dynamic replica
/// failover, so a node death between planning and execution degrades the
/// path, never the answer — except kSkipZoneMap, which is *binding*: the
/// zone map proved no row of the block can qualify (and the block holds
/// no bad records), so the reader accounts the skip and reads nothing.

#pragma once

#include <cstdint>
#include <string_view>

namespace hail {
namespace planner {

/// \brief How one block should be accessed.
enum class AccessPath : uint8_t {
  kFullScan = 0,          // sequential pass over a plain replica
  kClusteredIndex = 1,    // sparse index on the sorted replica
  kUnclusteredIndex = 2,  // adaptive dense index, random accesses
  kSkipZoneMap = 3,       // predicate disjoint from block min/max: no read
};

inline std::string_view AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full_scan";
    case AccessPath::kClusteredIndex:
      return "clustered";
    case AccessPath::kUnclusteredIndex:
      return "unclustered";
    case AccessPath::kSkipZoneMap:
      return "zone_skip";
  }
  return "unknown";
}

/// \brief The planner's verdict for one block.
struct AccessDecision {
  AccessPath path = AccessPath::kFullScan;
  /// True when fresh block stats informed this decision. False means the
  /// planner fell back to worst-case assumptions (never a skip).
  bool stats_fresh = false;
  /// Estimated fraction of the block's records qualifying (all filter
  /// terms combined, independence assumed).
  double est_selectivity = 1.0;
  /// Predicted billed cost of reading the block on `path`, seconds.
  double est_cost_seconds = 0.0;
  /// Records in the block (from stats; 0 when stats were missing). Lets a
  /// skipping reader account rows_skipped without opening the block.
  uint32_t block_records = 0;
};

}  // namespace planner
}  // namespace hail
