#include "planner/access_planner.h"

#include <algorithm>

#include "index/clustered_index.h"
#include "planner/block_stats.h"

namespace hail {
namespace planner {

namespace {

/// Shared per-query inputs resolved once, not per block.
struct QueryShape {
  std::vector<int> proj;          // projected columns (all when empty spec)
  std::vector<int> accessed;      // filter ∪ projection
  std::vector<int> filter_cols;   // filter columns with a key range
  std::optional<KeyRange> index_range;  // range on the index column
};

QueryShape ResolveShape(const Schema& schema,
                        const QueryAnnotation& annotation, int index_column) {
  QueryShape shape;
  if (!annotation.projection.empty()) {
    shape.proj = annotation.projection;
  } else {
    for (int i = 0; i < schema.num_fields(); ++i) shape.proj.push_back(i);
  }
  shape.filter_cols = annotation.filter.ReferencedColumns();
  shape.accessed = shape.filter_cols;
  for (int c : shape.proj) {
    if (std::find(shape.accessed.begin(), shape.accessed.end(), c) ==
        shape.accessed.end()) {
      shape.accessed.push_back(c);
    }
  }
  if (index_column >= 0) {
    shape.index_range = annotation.filter.KeyRangeFor(index_column);
  }
  return shape;
}

/// Logical values-only bytes of one column, from its stats sidecar.
uint64_t ColumnLogicalBytes(const BlockStats& stats, int column,
                            double scale) {
  if (column < 0 || column >= static_cast<int>(stats.columns.size())) {
    return 0;
  }
  return static_cast<uint64_t>(
      static_cast<double>(stats.columns[static_cast<size_t>(column)]
                              .value_bytes) *
      scale);
}

/// Predicted billed cost of reading one block on \p path — the same
/// arithmetic the HAIL reader bills at execution time (hail_reader.cc),
/// fed from stats instead of the opened block. Estimates use node 0's
/// cost model: path choice only needs relative costs, and a fixed node
/// keeps plans independent of scheduling.
double EstimateBlockCost(const hdfs::MiniDfs& dfs, const Schema& schema,
                         const QueryShape& shape, int index_column,
                         AccessPath path, const BlockStats& stats,
                         double sel_index, double sel_combined) {
  const sim::CostModel& cm = dfs.cluster().node(0).cost();
  const sim::CostConstants& c = dfs.cluster().constants();
  const double scale = dfs.config().scale_factor;
  const uint64_t logical_records = static_cast<uint64_t>(
      static_cast<double>(stats.num_records) * scale);
  const uint64_t logical_qualifying = static_cast<uint64_t>(
      sel_combined * static_cast<double>(logical_records));

  uint64_t bytes = 0;
  double seeks = 0.0;
  uint64_t logical_range = 0;
  if (path == AccessPath::kUnclusteredIndex) {
    const FieldType key_type = schema.field(index_column).type;
    bytes += LogicalDenseIndexBytes(logical_records, key_type);
    seeks += 1.0;
    const uint64_t logical_candidates = static_cast<uint64_t>(
        sel_index * static_cast<double>(logical_records));
    const uint64_t logical_partitions =
        logical_records / c.index_partition_logical + 1;
    const uint64_t partitions_touched =
        std::min<uint64_t>(logical_candidates, logical_partitions);
    for (int colm : shape.accessed) {
      const uint64_t col_logical = ColumnLogicalBytes(stats, colm, scale);
      bytes += partitions_touched * (col_logical / logical_partitions);
      seeks += static_cast<double>(partitions_touched);
    }
    logical_range = logical_candidates;
  } else if (path == AccessPath::kClusteredIndex) {
    const FieldType key_type = schema.field(index_column).type;
    bytes += LogicalSparseIndexBytes(logical_records,
                                     c.index_partition_logical, key_type,
                                     /*pointer_bytes=*/4);
    seeks += 1.0;
    if (sel_index > 0.0) {
      for (int colm : shape.accessed) {
        const uint64_t col_logical = ColumnLogicalBytes(stats, colm, scale);
        bytes += static_cast<uint64_t>(sel_index *
                                       static_cast<double>(col_logical));
        seeks += 1.0;
      }
    }
    logical_range = static_cast<uint64_t>(
        sel_index * static_cast<double>(logical_records));
  } else {
    for (int colm = 0; colm < static_cast<int>(stats.columns.size());
         ++colm) {
      bytes += ColumnLogicalBytes(stats, colm, scale);
    }
    seeks += 1.0;
    logical_range = logical_records;
  }

  const double seek_s = c.block_open_ms / 1000.0 + seeks * cm.DiskSeek();
  const double transfer_s = cm.DiskTransfer(bytes);
  double cpu_s = cm.Crc(bytes) + cm.PredicateEval(logical_range) +
                 cm.Reconstruct(logical_qualifying,
                                static_cast<int>(shape.proj.size())) +
                 cm.MapCalls(logical_qualifying);
  if (path == AccessPath::kFullScan) {
    // Full scans decode every record, not just qualifying ones.
    cpu_s += cm.Reconstruct(logical_range,
                            static_cast<int>(stats.columns.size()));
  }
  return seek_s + transfer_s + cpu_s;
}

}  // namespace

FilePlan PlanAccessPaths(const hdfs::MiniDfs& dfs, const Schema& schema,
                         const QueryAnnotation& annotation, int index_column,
                         const std::vector<hdfs::BlockLocation>& blocks) {
  const hdfs::Namenode& nn = dfs.namenode();
  const sim::CostConstants& c = dfs.cluster().constants();
  const QueryShape shape = ResolveShape(schema, annotation, index_column);

  FilePlan plan;
  plan.decisions.resize(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const hdfs::BlockLocation& loc = blocks[i];
    AccessDecision& d = plan.decisions[i];

    std::optional<BlockStats> stats;
    Result<std::string_view> blob = nn.GetBlockStats(loc.block_id);
    if (blob.ok()) {
      Result<BlockStats> parsed = BlockStats::Deserialize(*blob);
      if (parsed.ok()) stats.emplace(std::move(*parsed));
    }

    const bool clustered_alive =
        index_column >= 0 && shape.index_range.has_value() &&
        !nn.GetHostsWithIndex(loc.block_id, index_column).empty();
    const bool unclustered_alive =
        index_column >= 0 && shape.index_range.has_value() &&
        !nn.GetHostsWithUnclusteredIndex(loc.block_id, index_column).empty();

    if (!stats.has_value()) {
      // Missing or stale sidecar: worst-case assumptions. Never a skip;
      // the cost estimate is a sequential pass over the block's logical
      // extent (what the reader bills when no index helps).
      d.stats_fresh = false;
      d.est_selectivity = 1.0;
      d.path = clustered_alive ? AccessPath::kClusteredIndex
                               : AccessPath::kFullScan;
      const sim::CostModel& cm = dfs.cluster().node(0).cost();
      d.est_cost_seconds = c.block_open_ms / 1000.0 + cm.DiskSeek() +
                           cm.DiskTransfer(loc.logical_bytes) +
                           cm.Crc(loc.logical_bytes);
      plan.predicted_cost_seconds += d.est_cost_seconds;
      continue;
    }

    d.stats_fresh = true;
    d.block_records = stats->num_records;
    ++plan.blocks_with_fresh_stats;

    // Combined qualifying selectivity: product over the filter columns'
    // range estimates (independence assumed). A provably disjoint column
    // makes the whole conjunction empty.
    bool disjoint = false;
    double sel_combined = 1.0;
    for (int colm : shape.filter_cols) {
      const std::optional<KeyRange> kr = annotation.filter.KeyRangeFor(colm);
      if (!kr.has_value()) continue;  // only !=-terms: no range to estimate
      if (stats->RangeDisjoint(colm, *kr)) disjoint = true;
      sel_combined *= stats->EstimateSelectivity(colm, *kr);
    }

    if (disjoint && stats->num_bad_records == 0) {
      // No row can qualify and no bad record forces the block open: the
      // block is never read. Billed only the per-block planning CPU.
      d.path = AccessPath::kSkipZoneMap;
      d.est_selectivity = 0.0;
      d.est_cost_seconds = 0.0;
      ++plan.blocks_skipped;
      continue;
    }

    const double sel_index =
        shape.index_range.has_value()
            ? stats->EstimateSelectivity(index_column, *shape.index_range)
            : 1.0;
    if (clustered_alive) {
      // A sparse-index range read is never costlier than the full pass in
      // this billing model, so keep the clustered replica when it exists.
      d.path = AccessPath::kClusteredIndex;
    } else if (unclustered_alive &&
               sel_index <= c.unclustered_max_selectivity) {
      d.path = AccessPath::kUnclusteredIndex;
    } else {
      // Either no index at all, or the dense index would be abandoned at
      // run time (predicted candidates above the threshold): plan the
      // scan outright so the reader does not pay the probe first.
      d.path = AccessPath::kFullScan;
    }
    d.est_selectivity = sel_combined;
    d.est_cost_seconds =
        EstimateBlockCost(dfs, schema, shape, index_column, d.path, *stats,
                          sel_index, sel_combined);
    plan.predicted_cost_seconds += d.est_cost_seconds;
  }
  return plan;
}

}  // namespace planner
}  // namespace hail
