#include "planner/block_stats.h"

#include <algorithm>

#include "util/io.h"

namespace hail {
namespace planner {

namespace {

void PutValue(ByteWriter* w, FieldType type, const Value& v) {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kDate:
      w->PutI32(v.as_int32());
      return;
    case FieldType::kInt64:
      w->PutI64(v.as_int64());
      return;
    case FieldType::kDouble:
      w->PutF64(v.as_double());
      return;
    case FieldType::kString:
      w->PutLengthPrefixed(v.as_string());
      return;
  }
}

Result<Value> GetValue(ByteReader* r, FieldType type) {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kDate: {
      HAIL_ASSIGN_OR_RETURN(int32_t v, r->GetI32());
      return Value(v);
    }
    case FieldType::kInt64: {
      HAIL_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value(v);
    }
    case FieldType::kDouble: {
      HAIL_ASSIGN_OR_RETURN(double v, r->GetF64());
      return Value(v);
    }
    case FieldType::kString: {
      HAIL_ASSIGN_OR_RETURN(std::string_view v, r->GetLengthPrefixed());
      return Value(std::string(v));
    }
  }
  return Status::Corruption("unknown stats value type");
}

/// Summarizes one sorted value vector into the column stats: zone map
/// endpoints, exact distinct count, and equi-depth bucket upper bounds.
template <typename T>
void Summarize(std::vector<T> sorted, uint32_t buckets, FieldType type,
               ColumnStats* out) {
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  out->valid = n > 0;
  out->num_values = n;
  if (n == 0) return;
  out->min_value = Value(sorted.front());
  out->max_value = Value(sorted.back());
  uint64_t distinct = 1;
  for (size_t i = 1; i < n; ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  out->distinct = distinct;
  out->bucket_bounds.reserve(buckets);
  for (uint32_t b = 0; b < buckets; ++b) {
    const size_t idx = ((static_cast<size_t>(b) + 1) * n) / buckets;
    out->bucket_bounds.push_back(Value(sorted[idx == 0 ? 0 : idx - 1]));
  }
  (void)type;
}

/// Fraction of values strictly below / at-or-below \p v according to the
/// equi-depth histogram: each bucket carries 1/k of the rows and is upper-
/// bounded by its stored bound, so counting bounds gives the CDF at bucket
/// granularity.
double FractionAtMost(const ColumnStats& s, const Value& v, bool inclusive) {
  if (s.bucket_bounds.empty()) return 1.0;
  size_t below = 0;
  for (const Value& bound : s.bucket_bounds) {
    const bool counted = inclusive ? !(v < bound) : bound < v;
    if (counted) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(s.bucket_bounds.size());
}

}  // namespace

BlockStats BlockStats::Build(const PaxBlock& block,
                             uint32_t histogram_buckets) {
  BlockStats stats;
  stats.num_records = block.num_records();
  stats.num_bad_records = static_cast<uint32_t>(block.bad_records().size());
  stats.columns.resize(static_cast<size_t>(block.num_columns()));
  for (int c = 0; c < block.num_columns(); ++c) {
    const ColumnVector& col = block.column(c);
    ColumnStats& out = stats.columns[static_cast<size_t>(c)];
    out.type = col.type();
    switch (col.type()) {
      case FieldType::kInt32:
      case FieldType::kDate:
        Summarize(col.i32(), histogram_buckets, col.type(), &out);
        out.value_bytes = col.i32().size() * 4;
        break;
      case FieldType::kInt64:
        Summarize(col.i64(), histogram_buckets, col.type(), &out);
        out.value_bytes = col.i64().size() * 8;
        break;
      case FieldType::kDouble:
        Summarize(col.f64(), histogram_buckets, col.type(), &out);
        out.value_bytes = col.f64().size() * 8;
        break;
      case FieldType::kString: {
        Summarize(col.str(), histogram_buckets, col.type(), &out);
        uint64_t bytes = 0;
        for (const std::string& s : col.str()) bytes += s.size();
        out.value_bytes = bytes;
        break;
      }
    }
  }
  return stats;
}

std::string BlockStats::Serialize() const {
  ByteWriter w;
  w.PutU32(kBlockStatsMagic);
  w.PutU8(kBlockStatsVersion);
  w.PutU32(num_records);
  w.PutU32(num_bad_records);
  w.PutU32(static_cast<uint32_t>(columns.size()));
  for (const ColumnStats& c : columns) {
    w.PutU8(static_cast<uint8_t>(c.type));
    w.PutU8(c.valid ? 1 : 0);
    if (!c.valid) continue;
    w.PutU64(c.num_values);
    w.PutU64(c.distinct);
    w.PutU64(c.value_bytes);
    PutValue(&w, c.type, c.min_value);
    PutValue(&w, c.type, c.max_value);
    w.PutU32(static_cast<uint32_t>(c.bucket_bounds.size()));
    for (const Value& b : c.bucket_bounds) PutValue(&w, c.type, b);
  }
  return w.Take();
}

Result<BlockStats> BlockStats::Deserialize(std::string_view data) {
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kBlockStatsMagic) {
    return Status::Corruption("bad block-stats magic");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kBlockStatsVersion) {
    return Status::Corruption("unsupported block-stats version " +
                              std::to_string(version));
  }
  BlockStats stats;
  HAIL_ASSIGN_OR_RETURN(stats.num_records, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(stats.num_bad_records, r.GetU32());
  HAIL_ASSIGN_OR_RETURN(uint32_t num_columns, r.GetU32());
  stats.columns.resize(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    ColumnStats& c = stats.columns[i];
    HAIL_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    c.type = static_cast<FieldType>(type);
    HAIL_ASSIGN_OR_RETURN(uint8_t valid, r.GetU8());
    c.valid = valid != 0;
    if (!c.valid) continue;
    HAIL_ASSIGN_OR_RETURN(c.num_values, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(c.distinct, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(c.value_bytes, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(c.min_value, GetValue(&r, c.type));
    HAIL_ASSIGN_OR_RETURN(c.max_value, GetValue(&r, c.type));
    HAIL_ASSIGN_OR_RETURN(uint32_t buckets, r.GetU32());
    c.bucket_bounds.reserve(buckets);
    for (uint32_t b = 0; b < buckets; ++b) {
      HAIL_ASSIGN_OR_RETURN(Value bound, GetValue(&r, c.type));
      c.bucket_bounds.push_back(std::move(bound));
    }
  }
  return stats;
}

bool BlockStats::RangeDisjoint(int column, const KeyRange& range) const {
  if (column < 0 || column >= static_cast<int>(columns.size())) return false;
  const ColumnStats& c = columns[static_cast<size_t>(column)];
  if (!c.valid) return false;
  // Disjoint iff the predicate asks for values entirely below the block's
  // minimum or entirely above its maximum (ranges are inclusive).
  if (range.hi && *range.hi < c.min_value) return true;
  if (range.lo && c.max_value < *range.lo) return true;
  return false;
}

double BlockStats::EstimateSelectivity(int column,
                                       const KeyRange& range) const {
  if (column < 0 || column >= static_cast<int>(columns.size())) return 1.0;
  const ColumnStats& c = columns[static_cast<size_t>(column)];
  if (!c.valid) return 1.0;
  if (RangeDisjoint(column, range)) return 0.0;
  // Equality: 1/distinct is sharper than a bucket-width estimate.
  if (range.lo && range.hi && *range.lo == *range.hi) {
    return 1.0 / static_cast<double>(c.distinct == 0 ? 1 : c.distinct);
  }
  const double hi =
      range.hi ? FractionAtMost(c, *range.hi, /*inclusive=*/true) : 1.0;
  const double lo =
      range.lo ? FractionAtMost(c, *range.lo, /*inclusive=*/false) : 0.0;
  double sel = hi - lo;
  // The range intersects the zone map, so at least one bucket may match;
  // never estimate below one row.
  const double floor =
      1.0 / static_cast<double>(c.num_values == 0 ? 1 : c.num_values);
  if (sel < floor) sel = floor;
  if (sel > 1.0) sel = 1.0;
  return sel;
}

}  // namespace planner
}  // namespace hail
