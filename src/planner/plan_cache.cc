#include "planner/plan_cache.h"

namespace hail {
namespace planner {

std::string PlanCache::KeyFor(const mapreduce::JobSpec& spec) {
  std::string key = spec.input_file;
  key += '\x1f';
  key += std::to_string(static_cast<int>(spec.system));
  key += spec.hail_splitting ? "S" : "s";
  key += spec.use_planner ? "P" : "p";
  key += '\x1f';
  if (spec.annotation.has_value()) {
    key += spec.annotation->filter.ToString(spec.schema);
    key += '\x1f';
    for (int c : spec.annotation->projection) {
      key += std::to_string(c);
      key += ',';
    }
  }
  return key;
}

const mapreduce::JobPlan* PlanCache::Lookup(const std::string& key,
                                            uint64_t generation) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.generation != generation) {
    // The directory changed since this plan was computed: replica moves,
    // repairs or stats arrivals may alter splits or decisions.
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.plan;
}

void PlanCache::Insert(const std::string& key, uint64_t generation,
                       mapreduce::JobPlan plan) {
  if (entries_.size() >= max_entries_ && entries_.count(key) == 0) {
    entries_.clear();
  }
  Entry& e = entries_[key];
  e.generation = generation;
  e.plan = std::move(plan);
}

}  // namespace planner
}  // namespace hail
