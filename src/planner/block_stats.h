/// \file block_stats.h
/// \brief Per-column, per-block statistics powering the access-path planner.
///
/// Built once per logical block at upload time (all replicas hold the same
/// rows, so one stats sidecar serves every replica) and registered in the
/// namenode next to the replica directory. Three summaries per column:
///
///   - zone map: min/max value — a predicate disjoint from it proves the
///     block holds no qualifying row, so the planner skips the block
///     without reading a byte (RDF-3X-style exact-statistics segments,
///     scaled down to one directory entry per block);
///   - distinct-count estimate — equality selectivity = 1/distinct;
///   - small equi-depth histogram — range selectivity from bucket counts.
///
/// The serialized form is a versioned sidecar ("HSTA" v1). Block bytes
/// (golden v1/v3 formats) are untouched: stats live only in namenode
/// metadata, mirroring how Dir_rep extends stock HDFS without changing
/// what datanodes store.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/clustered_index.h"
#include "layout/pax_block.h"
#include "schema/value.h"
#include "util/result.h"

namespace hail {
namespace planner {

/// Sidecar magic ("HSTA" little-endian) and current version.
inline constexpr uint32_t kBlockStatsMagic = 0x41545348;
inline constexpr uint8_t kBlockStatsVersion = 1;

/// Equi-depth bucket count. Small on purpose: the sidecar must stay a
/// metadata-sized object (the planner bills reading it as part of the
/// split phase, not as data I/O).
inline constexpr uint32_t kDefaultHistogramBuckets = 16;

/// \brief Statistics of one column over one block's records.
struct ColumnStats {
  FieldType type = FieldType::kInt32;
  /// False when the block holds no records (nothing to summarize).
  bool valid = false;
  uint64_t num_values = 0;
  uint64_t distinct = 0;  // exact at real scale; an estimate by contract
  /// Real payload bytes of the column's values (fixed width × count, or
  /// the sum of string lengths) — the planner's transfer-cost input.
  uint64_t value_bytes = 0;
  Value min_value;
  Value max_value;
  /// Upper bound of each equi-depth bucket (ascending, last == max).
  std::vector<Value> bucket_bounds;
};

/// \brief Statistics of every column of one block.
struct BlockStats {
  uint32_t num_records = 0;
  /// Rows in the block's bad-record section. A zone-map skip is only
  /// sound when this is zero: bad records reach the mapper regardless of
  /// the filter, so skipping a block that holds any would change output.
  uint32_t num_bad_records = 0;
  std::vector<ColumnStats> columns;

  /// Builds stats from decoded columns. Deterministic and independent of
  /// row order, so every replica of a block yields identical stats.
  static BlockStats Build(const PaxBlock& block,
                          uint32_t histogram_buckets = kDefaultHistogramBuckets);

  std::string Serialize() const;
  static Result<BlockStats> Deserialize(std::string_view data);

  /// Zone-map check: true when no value of \p column can satisfy the
  /// inclusive \p range — the block is skippable. Conservative: returns
  /// false when stats are missing for the column.
  bool RangeDisjoint(int column, const KeyRange& range) const;

  /// Estimated fraction of the block's records with the column value in
  /// \p range. 0 when provably disjoint; 1 when no stats restrict it.
  double EstimateSelectivity(int column, const KeyRange& range) const;
};

}  // namespace planner
}  // namespace hail
