/// \file plan_cache.h
/// \brief Session-scoped cache of computed job plans.
///
/// Recomputing splits + per-block access decisions for every submission
/// of the same query is pure waste in a steady-state session: the plan
/// only changes when the replica directory does. The cache keys on
/// everything that feeds ComputeJobPlan — input file, annotation,
/// system, splitting and planning flags — plus the namenode's
/// directory generation. Any directory mutation (replica registered or
/// revoked, node death/revive, file create/delete, stats arrival) bumps
/// the generation, so a stale plan can never be served: a generation
/// mismatch counts as an invalidation and the entry is replaced.
///
/// A cache hit skips both the plan computation and its billed planning
/// CPU (JobPlan::planner_seconds) — the admission path adds that cost
/// only on misses.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mapreduce/input_format.h"

namespace hail {
namespace planner {

/// \brief Lifetime counters (monotonic across sessions sharing the cache).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // generation-mismatch evictions
};

/// \brief Keyed store of JobPlans, invalidated by directory generation.
///
/// Single-threaded by design: plans are computed and cached inside the
/// session's deterministic admission loop (serial and parallel execution
/// drive it through the identical event sequence).
class PlanCache {
 public:
  /// Bounded size: when full, the next insert clears the cache (simple
  /// and deterministic; steady-state sessions hold far fewer plans).
  explicit PlanCache(size_t max_entries = 64) : max_entries_(max_entries) {}

  /// Builds the lookup key for a job spec (annotation rendered against
  /// the spec's schema; map function and output options excluded — they
  /// do not affect the plan).
  static std::string KeyFor(const mapreduce::JobSpec& spec);

  /// Returns the cached plan when present and computed at \p generation;
  /// nullptr on miss. A present-but-stale entry is dropped, counted as
  /// an invalidation, and reported as a miss.
  const mapreduce::JobPlan* Lookup(const std::string& key,
                                   uint64_t generation);

  /// Records a freshly computed plan for \p key at \p generation.
  void Insert(const std::string& key, uint64_t generation,
              mapreduce::JobPlan plan);

  const PlanCacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t generation = 0;
    mapreduce::JobPlan plan;
  };
  size_t max_entries_;
  std::map<std::string, Entry> entries_;
  PlanCacheStats stats_;
};

}  // namespace planner
}  // namespace hail
