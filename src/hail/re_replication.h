/// \file re_replication.h
/// \brief Background repair of lost replicas (HDFS self-healing, HAIL-aware).
///
/// When a node dies or a replica is reported corrupt, the namenode queues
/// an UnderReplicatedEntry remembering the *replica-specific* layout that
/// was lost (sort column, index kind — §3.3's Dir_rep record). Repair
/// jobs ride the scheduler's maintenance queue (strictly below foreground
/// work) and re-create that exact layout on a new node:
///
///  - when a surviving replica already has the wanted layout, the repair
///    is a plain byte copy (source read + network + checksum + write);
///  - otherwise a surviving PAX replica is re-sorted to the wanted column
///    through the same ArgSort/PermutedCopy/ClusteredIndex machinery the
///    upload pipeline uses, so the repaired cluster answers clustered
///    index scans exactly like the pre-fault one.
///
/// Execution mirrors adaptive/reorg.h: PrepareRepair at assignment
/// (read-only, computes bytes + simulated price), CommitRepair at the
/// completion event (StoreBlock on the target + namenode bookkeeping,
/// including revoking the dead node's stale copy).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/dfs_client.h"

namespace hail {

/// \brief A repair ready to commit, plus its simulated price.
struct PreparedRepair {
  std::string bytes;                 // re-created replica bytes
  std::vector<uint32_t> chunk_crcs;  // recomputed checksums
  hdfs::HailBlockReplicaInfo info;   // Dir_rep record to register
  /// Simulated seconds the repair occupies its maintenance slot
  /// (source read + network + transform CPU + checksum + target write).
  double seconds = 0.0;
  /// Surviving replica the repair read from.
  int source_datanode = -1;
};

/// True when the entry still describes missing data. A node-death loss
/// whose node revived with the replica intact, or a block that no longer
/// exists, needs no repair (the caller drops the entry via AbandonRepair).
bool RepairStillNeeded(const hdfs::MiniDfs& dfs,
                       const hdfs::UnderReplicatedEntry& entry);

/// Picks the node to re-create the replica on: the lost node itself when
/// it is alive and no longer owns the block (corruption repair restores
/// the original placement), else the lowest-id alive non-holder. Returns
/// -1 when no eligible node exists.
int PickRepairTarget(const hdfs::MiniDfs& dfs,
                     const hdfs::UnderReplicatedEntry& entry);

/// Computes the repair without mutating anything. Returns Unavailable
/// when no live source replica exists right now (retry later).
/// Deterministic for a given DFS state.
Result<PreparedRepair> PrepareRepair(const hdfs::MiniDfs& dfs,
                                     const hdfs::UnderReplicatedEntry& entry,
                                     int target);

/// Applies a prepared repair: StoreBlock on the target (generation bump +
/// cache invalidation) and namenode CompleteRepair (register + revoke the
/// superseded copy). Refuses when the target died since preparation.
Status CommitRepair(hdfs::MiniDfs* dfs,
                    const hdfs::UnderReplicatedEntry& entry, int target,
                    PreparedRepair prepared);

}  // namespace hail
