#include "hail/index_advisor.h"

#include <algorithm>

namespace hail {

std::vector<IndexRecommendation> ScoreColumns(
    const Schema& schema, const std::vector<WorkloadEntry>& workload) {
  std::vector<IndexRecommendation> scores(
      static_cast<size_t>(schema.num_fields()));
  for (int c = 0; c < schema.num_fields(); ++c) {
    scores[static_cast<size_t>(c)].column = c;
  }
  for (const WorkloadEntry& entry : workload) {
    bool primary = true;
    // Serviceable filter columns in term order: the first one is what the
    // HailRecordReader would actually use.
    std::vector<int> seen;
    for (const PredicateTerm& term : entry.annotation.filter.terms()) {
      if (!term.ToKeyRange().has_value()) continue;
      if (term.column < 0 || term.column >= schema.num_fields()) continue;
      if (std::find(seen.begin(), seen.end(), term.column) != seen.end()) {
        continue;
      }
      seen.push_back(term.column);
      scores[static_cast<size_t>(term.column)].benefit +=
          primary ? entry.weight : entry.weight * 0.5;
      primary = false;
    }
  }
  return scores;
}

std::vector<int> SuggestSortColumns(const Schema& schema,
                                    const std::vector<WorkloadEntry>& workload,
                                    int replication) {
  std::vector<IndexRecommendation> scores = ScoreColumns(schema, workload);
  // Deterministic tie-break: equal-benefit columns order by column id. The
  // adaptive loop re-plans after every query; without a total order it
  // could flap between equally-scored assignments and reorganize forever.
  std::sort(scores.begin(), scores.end(),
            [](const IndexRecommendation& a, const IndexRecommendation& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              return a.column < b.column;
            });
  std::vector<int> columns;
  for (const IndexRecommendation& rec : scores) {
    if (rec.benefit <= 0.0) break;
    if (static_cast<int>(columns.size()) >= replication) break;
    columns.push_back(rec.column);
  }
  return columns;
}

}  // namespace hail
