/// \file hail_client.h
/// \brief The HAIL upload pipeline (paper §3, Figure 1).
///
/// Differences from the stock HDFS client, all implemented here:
///  1. content-aware block cutting — rows never straddle blocks (§3.1);
///  2. rows are parsed against the user schema; non-conforming rows go to
///     the block's bad-record section;
///  3. blocks are converted to binary PAX *before* hitting the network;
///  4. datanodes do NOT flush packets on arrival: they reassemble the
///     block in memory, sort it by their replica's sort key, build a
///     clustered index, recompute all chunk checksums (each replica has
///     different bytes!), and only then flush data + checksums (§3.2);
///  5. the ACK semantics change from "received, validated and flushed" to
///     "received and validated", with the block's last ACK gated on flush;
///  6. every datanode registers its replica with the namenode's Dir_rep,
///     recording sort order and index (§3.3).

#pragma once

#include <string>
#include <vector>

#include "hail/hail_block.h"
#include "hdfs/dfs_client.h"
#include "schema/schema.h"

namespace hail {

/// \brief Per-upload configuration: what to index on each replica.
struct HailUploadConfig {
  Schema schema;
  /// sort_columns[i] is the attribute replica i is sorted/indexed by
  /// (-1 = keep arrival order, no index). Size must not exceed the
  /// replication factor; missing entries default to -1. "As manually
  /// specified by Bob in a configuration file or as computed by a
  /// physical design algorithm" (§2.2).
  std::vector<int> sort_columns;
  /// Build per-column block statistics (planner/block_stats.h) during the
  /// upload and register the sidecar with the namenode. Default off:
  /// uploads without cost-based planning are bit-identical to before.
  bool build_stats = false;
};

/// \brief Upload statistics (extends the HDFS report with conversion info).
struct HailUploadReport {
  sim::SimTime started = 0.0;
  sim::SimTime completed = 0.0;
  uint32_t blocks = 0;
  uint64_t text_real_bytes = 0;
  uint64_t pax_real_bytes = 0;       // serialised PAX payload (pre-index)
  uint64_t replica_real_bytes = 0;   // stored bytes across all replicas
  uint64_t bad_records = 0;
  /// Blocks whose text exceeded the configured block size because a
  /// single row was longer than the block (see CutRowAlignedBlocks).
  uint32_t oversized_blocks = 0;
  double duration() const { return completed - started; }
  /// Binary/text size ratio: < 1 when PAX conversion shrinks the data
  /// (Synthetic), ~1 when it does not (UserVisits).
  double binary_ratio() const {
    return text_real_bytes == 0
               ? 0.0
               : static_cast<double>(pax_real_bytes) /
                     static_cast<double>(text_real_bytes);
  }
};

/// \brief Uploads a text file the HAIL way from one client node.
Result<HailUploadReport> HailUploadTextFile(hdfs::MiniDfs* dfs,
                                            const HailUploadConfig& config,
                                            int client_node,
                                            const std::string& dfs_path,
                                            std::string_view text,
                                            sim::SimTime start_time = 0.0);

/// \brief One HailUploadTextFile per (client, file), run concurrently.
Result<HailUploadReport> HailParallelUpload(
    hdfs::MiniDfs* dfs, const HailUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time = 0.0);

/// \brief Content-aware block cutting: greedily packs whole rows into
/// blocks of at most \p block_size text bytes (§3.1: "we never split a
/// row between two blocks").
///
/// Defined behaviour for rows longer than \p block_size: the over-long
/// row is emitted as its **own oversized block** — it is never split and
/// never merged with neighbouring rows (the preceding block closes at the
/// previous row boundary; the following row starts a fresh block). Every
/// returned block therefore either fits in \p block_size or consists of
/// exactly one row; a missing trailing newline does not change the
/// cutting. Uploads surface the case via
/// HailUploadReport::oversized_blocks instead of silently absorbing it.
std::vector<std::string_view> CutRowAlignedBlocks(std::string_view text,
                                                  uint64_t block_size);

}  // namespace hail
