/// \file hail_block.h
/// \brief The physical HAIL block: Index Metadata + Index + PAX data.
///
/// Figure 1's datanodes form a "HAIL Block" out of each reassembled PAX
/// block: they sort it by the replica's sort key, build a sparse clustered
/// index, and prepend Index Metadata describing what they created. Each
/// replica of the same logical block therefore has different bytes (and
/// different checksums), but the same logical record multiset — which is
/// why failover is unaffected (§2.3).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hdfs/replica_transform.h"
#include "index/clustered_index.h"
#include "index/unclustered_index.h"
#include "layout/pax_block.h"
#include "util/result.h"

namespace hail {

inline constexpr uint32_t kHailBlockMagic = 0x4B4C4248;  // "HBLK"

/// \brief Builds the serialised HAIL block for one replica.
///
/// \param sorted_pax the block's records, already sorted by \p sort_column
///        (or in arrival order when \p sort_column is -1).
/// \param index clustered index over the sort column; null when unindexed.
/// \param sort_column attribute the data is sorted by; -1 for none.
std::string BuildHailBlock(const PaxBlock& sorted_pax,
                           const ClusteredIndex* index, int sort_column);

/// \brief Assembles a version-2 HAIL block from pre-serialised sections.
///
/// Version 2 extends version 1 with an optional *unclustered* index over a
/// second attribute, appended after the PAX payload. The adaptive
/// reorganizer uses this to splice a LIAH-style lazy index into an
/// existing replica without touching (or re-serialising) the sorted data
/// and clustered index: the caller passes the original index and PAX
/// sections verbatim. Pass an empty \p uc_bytes / \p uc_column = -1 for no
/// unclustered section.
std::string BuildHailBlockParts(int sort_column, std::string_view index_bytes,
                                std::string_view pax_bytes,
                                int uc_column, std::string_view uc_bytes);

/// \brief Everything the HAIL transformer needs besides the block bytes.
///
/// The logical_* sizes are the paper-scale quantities of the block being
/// written, computed client-side from the values-only payload (DESIGN.md
/// §2) and carried here so datanode-side billing uses the exact same
/// numbers.
struct HailTransformParams {
  /// sort_columns[i] is the attribute replica i is sorted/indexed by;
  /// missing entries (and -1) keep arrival order, unindexed.
  std::vector<int> sort_columns;
  /// Real chunk size for per-replica checksum recomputation.
  uint32_t chunk_bytes = 512;
  /// Values per index/varlen partition in the real (scaled-down) block.
  uint32_t varlen_partition_size = kDefaultVarlenPartition;
  /// Logical values per index partition (paper: 1024, §3.5).
  uint32_t index_partition_logical = 1024;
  uint64_t logical_pax_bytes = 0;
  uint64_t logical_fixed_bytes = 0;
  uint64_t logical_varlen_bytes = 0;
  uint64_t logical_records = 0;
  /// Build the per-column planner stats sidecar (planner/block_stats.h)
  /// from the decoded block and expose it via stats_bytes(). Off by
  /// default: upload costs and namenode metadata are unchanged unless the
  /// caller opts into cost-based planning.
  bool build_stats = false;
};

/// \brief The HAIL per-replica layout policy (steps 6-9 of Figure 1).
///
/// BeginBlock decodes the reassembled PAX block exactly once (asserted by
/// PaxBlock::deserialize_count() in tests); each BuildReplica derives its
/// replica by argsorting the shared key column and applying the
/// permutation to the shared columnar data — no per-replica re-decode, no
/// Value-boxed comparisons anywhere in the sort or index build.
class HailReplicaTransformer : public hdfs::ReplicaTransformer {
 public:
  explicit HailReplicaTransformer(HailTransformParams params)
      : params_(std::move(params)) {}

  Status BeginBlock(std::string_view reassembled) override;
  Result<hdfs::ReplicaBlock> BuildReplica(
      size_t replica_index, const hdfs::ReplicaWorkContext& ctx) override;
  std::string_view stats_bytes() const override { return stats_bytes_; }

 private:
  HailTransformParams params_;
  /// Shared arrival-order columnar data, decoded once per block.
  std::optional<PaxBlock> base_;
  /// Serialized planner::BlockStats when params_.build_stats is set.
  std::string stats_bytes_;
};

/// \brief Zero-copy reader for a serialised HAIL block (versions 1 and 2).
class HailBlockView {
 public:
  static Result<HailBlockView> Open(std::string_view data);

  bool has_index() const { return index_bytes_ > 0; }
  int sort_column() const { return sort_column_; }
  /// Bytes of the Index Metadata header (everything before the index).
  uint64_t header_bytes() const { return index_offset_; }
  uint64_t index_bytes() const { return index_bytes_; }
  uint64_t pax_bytes() const { return pax_bytes_; }
  uint64_t total_bytes() const { return data_.size(); }

  /// Unclustered-index section (version 2, installed by the adaptive
  /// reorganizer); absent in version-1 blocks.
  bool has_unclustered() const {
    return uc_column_ >= 0 && uc_bytes_ > 0;
  }
  int unclustered_column() const { return uc_column_; }
  uint64_t unclustered_bytes() const { return uc_bytes_; }

  /// Raw serialised sections (for splicing a rewrite without re-encoding).
  std::string_view index_section() const {
    return data_.substr(index_offset_, index_bytes_);
  }
  std::string_view pax_section() const {
    return data_.substr(pax_offset_, pax_bytes_);
  }

  /// Materialises the index ("we read the index entirely into main memory
  /// (typically a few KB)", §4.3).
  Result<ClusteredIndex> ReadIndex() const;

  /// Materialises the unclustered index; has_unclustered() must hold.
  Result<UnclusteredIndex> ReadUnclusteredIndex() const;

  /// Opens the embedded PAX block.
  Result<PaxBlockView> OpenPax() const;

 private:
  std::string_view data_;
  int sort_column_ = -1;
  uint64_t index_offset_ = 0;
  uint64_t index_bytes_ = 0;
  uint64_t pax_offset_ = 0;
  uint64_t pax_bytes_ = 0;
  int uc_column_ = -1;
  uint64_t uc_offset_ = 0;
  uint64_t uc_bytes_ = 0;
};

}  // namespace hail
