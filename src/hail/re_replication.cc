#include "hail/re_replication.h"

#include <algorithm>
#include <utility>

#include "hail/hail_block.h"
#include "hdfs/packet.h"
#include "index/clustered_index.h"
#include "layout/column_vector.h"
#include "obs/metrics.h"

namespace hail {

namespace {

bool SameLayout(const hdfs::HailBlockReplicaInfo& a,
                const hdfs::HailBlockReplicaInfo& b) {
  return a.layout == b.layout && a.sort_column == b.sort_column &&
         a.index_kind == b.index_kind &&
         a.unclustered_column == b.unclustered_column;
}

}  // namespace

bool RepairStillNeeded(const hdfs::MiniDfs& dfs,
                       const hdfs::UnderReplicatedEntry& entry) {
  if (!dfs.namenode().GetBlockDatanodes(entry.block_id).ok()) {
    return false;  // the file was deleted; nothing to restore
  }
  if (!entry.ownership_revoked &&
      dfs.namenode().IsDatanodeAlive(entry.lost_datanode) &&
      dfs.namenode().GetReplicaInfo(entry.block_id, entry.lost_datanode).ok()) {
    return false;  // the node revived with its replica intact
  }
  return true;
}

int PickRepairTarget(const hdfs::MiniDfs& dfs,
                     const hdfs::UnderReplicatedEntry& entry) {
  const hdfs::Namenode& nn = dfs.namenode();
  auto eligible = [&](int node) {
    return nn.IsDatanodeAlive(node) &&
           !nn.GetReplicaInfo(entry.block_id, node).ok();
  };
  // Restoring the original placement keeps post-repair locality identical
  // to pre-fault (the Fig. 8 recovery gate measures exactly this).
  if (eligible(entry.lost_datanode)) return entry.lost_datanode;
  for (int node = 0; node < dfs.num_datanodes(); ++node) {
    if (eligible(node)) return node;
  }
  return -1;
}

Result<PreparedRepair> PrepareRepair(const hdfs::MiniDfs& dfs,
                                     const hdfs::UnderReplicatedEntry& entry,
                                     int target) {
  if (target < 0 || target >= dfs.num_datanodes()) {
    return Status::InvalidArgument("repair has no target datanode");
  }
  const hdfs::Namenode& nn = dfs.namenode();
  HAIL_ASSIGN_OR_RETURN(std::vector<int> survivors,
                        nn.GetBlockDatanodes(entry.block_id));
  survivors.erase(std::remove(survivors.begin(), survivors.end(), target),
                  survivors.end());
  if (survivors.empty()) {
    return Status::Unavailable("no live source replica for block " +
                               std::to_string(entry.block_id));
  }

  const double scale = dfs.config().scale_factor;
  const sim::CostModel& target_cost = dfs.cluster().node(target).cost();
  const hdfs::HailBlockReplicaInfo& want = entry.lost_info;

  PreparedRepair out;

  // Preferred path: a surviving replica already has the wanted layout —
  // the repair is a byte copy and the registered Dir_rep record is the
  // source's (the bytes are its bytes).
  int copy_source = -1;
  for (int s : survivors) {
    auto info = nn.GetReplicaInfo(entry.block_id, s);
    if (info.ok() && SameLayout(*info, want)) {
      copy_source = s;
      out.info = *info;
      break;
    }
  }
  if (copy_source >= 0) {
    HAIL_ASSIGN_OR_RETURN(
        std::string_view raw,
        dfs.datanode(copy_source).ReadBlockRaw(entry.block_id));
    out.bytes = std::string(raw);
    out.source_datanode = copy_source;
    const uint64_t logical = static_cast<uint64_t>(
        static_cast<double>(out.bytes.size()) * scale);
    const sim::CostModel& src_cost = dfs.cluster().node(copy_source).cost();
    out.seconds = src_cost.DiskAccess(logical);
    if (copy_source != target) out.seconds += target_cost.NetTransfer(logical);
    out.seconds += target_cost.Crc(logical) + target_cost.DiskAccess(logical);
  } else if (want.layout == hdfs::ReplicaLayout::kPax) {
    // Transform path: re-sort any surviving PAX replica to the wanted
    // column, rebuilding the clustered index the way the upload-time
    // transformer does. A consumed unclustered index is not restored
    // (rowids would be stale); the adaptive observer re-installs it if
    // the column is still hot.
    int pax_source = -1;
    for (int s : survivors) {
      auto info = nn.GetReplicaInfo(entry.block_id, s);
      if (info.ok() && info->layout == hdfs::ReplicaLayout::kPax) {
        pax_source = s;
        break;
      }
    }
    if (pax_source < 0) {
      return Status::Unavailable("no PAX source replica for block " +
                                 std::to_string(entry.block_id));
    }
    HAIL_ASSIGN_OR_RETURN(std::string_view raw,
                          dfs.datanode(pax_source).ReadBlockRaw(entry.block_id));
    HAIL_ASSIGN_OR_RETURN(HailBlockView view, HailBlockView::Open(raw));
    HAIL_ASSIGN_OR_RETURN(PaxBlock base,
                          PaxBlock::Deserialize(view.pax_section()));
    out.source_datanode = pax_source;
    out.info = want;
    out.info.unclustered_column = -1;
    out.info.unclustered_index_bytes = 0;

    const sim::CostConstants& c = dfs.cluster().constants();
    const uint64_t logical_records = static_cast<uint64_t>(
        static_cast<double>(base.num_records()) * scale);
    const uint64_t logical_data = static_cast<uint64_t>(
        static_cast<double>(base.PayloadBytes()) * scale);
    double cpu = 0.0;
    uint64_t logical_index = 0;
    if (want.has_index()) {
      if (want.sort_column < 0 ||
          want.sort_column >= base.schema().num_fields()) {
        return Status::InvalidArgument("lost replica sort column outside schema");
      }
      const std::vector<uint32_t> perm =
          ArgSortColumn(base.column(want.sort_column));
      const PaxBlock sorted = base.PermutedCopy(perm);
      const ClusteredIndex index = ClusteredIndex::Build(
          sorted.column(want.sort_column),
          dfs.config().format.varlen_partition_size);
      out.bytes = BuildHailBlock(sorted, &index, want.sort_column);
      out.info.index_bytes = index.SerializedBytes();
      const FieldType key_type = base.schema().field(want.sort_column).type;
      cpu += target_cost.SortBlock(
          logical_records,
          static_cast<uint64_t>(
              static_cast<double>(base.FixedPayloadBytes()) * scale),
          static_cast<uint64_t>(
              static_cast<double>(base.VarlenPayloadBytes()) * scale),
          key_type == FieldType::kString);
      cpu += target_cost.IndexBuild(logical_records);
      logical_index = LogicalSparseIndexBytes(
          logical_records, c.index_partition_logical, key_type,
          /*pointer_bytes=*/4);
    } else {
      out.bytes = BuildHailBlock(base, nullptr, -1);
    }
    out.info.replica_bytes = out.bytes.size();
    const uint64_t logical_out = logical_data + logical_index;
    const sim::CostModel& src_cost = dfs.cluster().node(pax_source).cost();
    out.seconds = src_cost.DiskAccess(logical_data);
    if (pax_source != target) {
      out.seconds += target_cost.NetTransfer(logical_data);
    }
    out.seconds += cpu + target_cost.Crc(logical_out) +
                   target_cost.DiskAccess(logical_out);
  } else {
    // A non-PAX replica (text / binary rows) can only be cloned from a
    // same-layout survivor, and none is left.
    return Status::Unavailable("no same-layout source replica for block " +
                               std::to_string(entry.block_id));
  }

  out.info.replica_bytes = out.bytes.size();
  out.chunk_crcs = hdfs::ComputeChunkChecksums(
      out.bytes, static_cast<uint32_t>(dfs.config().chunk_bytes));
  obs::MetricsRegistry& metrics = dfs.metrics();
  metrics.counter("repair.prepares")->Inc();
  metrics.counter("repair.bytes_prepared")->Add(out.bytes.size());
  return out;
}

Status CommitRepair(hdfs::MiniDfs* dfs,
                    const hdfs::UnderReplicatedEntry& entry, int target,
                    PreparedRepair prepared) {
  if (!dfs->cluster().node(target).alive()) {
    return Status::FailedPrecondition("repair target died mid-repair");
  }
  dfs->datanode(target).StoreBlock(entry.block_id, std::move(prepared.bytes),
                                   prepared.chunk_crcs);
  HAIL_RETURN_NOT_OK(
      dfs->namenode().CompleteRepair(entry, target, prepared.info));
  dfs->metrics().counter("repair.commits")->Inc();
  return Status::OK();
}

}  // namespace hail
