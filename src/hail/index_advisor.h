/// \file index_advisor.h
/// \brief Which attributes to index? (paper §3.4, deferred to future work).
///
/// "But what if Bob's dataset contains more attributes than the number of
/// replicas?" The paper leaves the per-replica index-selection algorithm
/// as future work; this module provides the obvious workload-driven
/// greedy: score each attribute by the weight of the queries its clustered
/// index would serve, and assign the top-k attributes to the k replicas,
/// heaviest first. It deliberately respects HDFS's default replication
/// (one index per replica) — the property classic index advisors [9,4,6,1]
/// ignore.

#pragma once

#include <string>
#include <vector>

#include "query/predicate.h"
#include "schema/schema.h"

namespace hail {

/// \brief One workload entry: an annotated query plus its frequency.
struct WorkloadEntry {
  QueryAnnotation annotation;
  /// Relative frequency/importance (e.g. executions per day).
  double weight = 1.0;
};

/// \brief Advisor output for one attribute.
struct IndexRecommendation {
  int column = -1;
  /// Total workload weight served by a clustered index on this column.
  double benefit = 0.0;
};

/// Scores every attribute of \p schema against the workload. An entry
/// contributes its weight to the *first* index-serviceable filter column
/// of its annotation (the column HAIL's reader would use, see
/// QueryAnnotation::preferred_index_column), and half its weight to any
/// further serviceable filter columns (a secondary index still allows an
/// index scan when the primary is unavailable, e.g. after failures).
std::vector<IndexRecommendation> ScoreColumns(
    const Schema& schema, const std::vector<WorkloadEntry>& workload);

/// Picks the per-replica sort columns for a replication factor: the top
/// `replication` scored attributes with non-zero benefit, heaviest first
/// (replica 0 = client-local replica serves the hottest query).
/// Returns fewer than `replication` entries when the workload does not
/// reference enough attributes — remaining replicas stay unsorted.
/// Fully deterministic: equal-benefit ties break by ascending column id,
/// so the online adaptive loop cannot flap between equally-scored plans.
std::vector<int> SuggestSortColumns(const Schema& schema,
                                    const std::vector<WorkloadEntry>& workload,
                                    int replication);

}  // namespace hail
