#include "hail/hail_block.h"

#include "util/io.h"

namespace hail {

std::string BuildHailBlock(const PaxBlock& sorted_pax,
                           const ClusteredIndex* index, int sort_column) {
  ByteWriter w;
  w.PutU32(kHailBlockMagic);
  w.PutU8(1);  // version
  w.PutI32(index != nullptr ? sort_column : -1);
  const std::string index_bytes = index != nullptr ? index->Serialize() : "";
  // Index Metadata: where the index and the PAX payload live.
  const size_t layout_pos = w.size();
  w.PutU64(0);  // index offset
  w.PutU64(0);  // index bytes
  w.PutU64(0);  // pax offset
  const uint64_t index_offset = w.size();
  w.PutBytes(index_bytes);
  const uint64_t pax_offset = w.size();
  w.PutBytes(sorted_pax.Serialize());

  std::string out = w.Take();
  const uint64_t index_len = index_bytes.size();
  std::memcpy(out.data() + layout_pos, &index_offset, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 8, &index_len, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 16, &pax_offset, sizeof(uint64_t));
  return out;
}

Result<HailBlockView> HailBlockView::Open(std::string_view data) {
  HailBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kHailBlockMagic) {
    return Status::Corruption("not a HAIL block (bad magic)");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != 1) return Status::Corruption("unsupported HAIL block version");
  HAIL_ASSIGN_OR_RETURN(view.sort_column_, r.GetI32());
  HAIL_ASSIGN_OR_RETURN(view.index_offset_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.index_bytes_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.pax_offset_, r.GetU64());
  if (view.index_offset_ + view.index_bytes_ > data.size() ||
      view.pax_offset_ > data.size()) {
    return Status::Corruption("HAIL block sections out of bounds");
  }
  return view;
}

Result<ClusteredIndex> HailBlockView::ReadIndex() const {
  if (!has_index()) {
    return Status::FailedPrecondition("HAIL block has no index");
  }
  return ClusteredIndex::Deserialize(
      data_.substr(index_offset_, index_bytes_));
}

Result<PaxBlockView> HailBlockView::OpenPax() const {
  return PaxBlockView::Open(data_.substr(pax_offset_));
}

}  // namespace hail
