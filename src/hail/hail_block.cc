#include "hail/hail_block.h"

#include "hdfs/packet.h"
#include "planner/block_stats.h"
#include "util/io.h"

namespace hail {

Status HailReplicaTransformer::BeginBlock(std::string_view reassembled) {
  // The single decode this block will ever see: every replica below is a
  // permutation of these columns.
  HAIL_ASSIGN_OR_RETURN(PaxBlock base, PaxBlock::Deserialize(reassembled));
  base_.emplace(std::move(base));
  if (params_.build_stats) {
    // Built from the shared arrival-order columns: replicas are row
    // permutations of these, so one sidecar describes them all.
    stats_bytes_ = planner::BlockStats::Build(*base_).Serialize();
  } else {
    stats_bytes_.clear();
  }
  return Status::OK();
}

Result<hdfs::ReplicaBlock> HailReplicaTransformer::BuildReplica(
    size_t replica_index, const hdfs::ReplicaWorkContext& ctx) {
  if (!base_.has_value()) {
    return Status::FailedPrecondition("BuildReplica before BeginBlock");
  }
  if (ctx.cost == nullptr) {
    return Status::InvalidArgument(
        "HAIL replicas are billed through the pipeline; missing cost model");
  }
  const int sort_column =
      replica_index < params_.sort_columns.size()
          ? params_.sort_columns[replica_index]
          : -1;

  hdfs::ReplicaBlock out;
  out.info.layout = hdfs::ReplicaLayout::kPax;
  uint64_t logical_index_bytes = 0;
  if (sort_column >= 0 && base_->num_records() > 0) {
    // Extract the replica's sort keys once from the shared column and
    // permute all columns into this replica's order (raw typed argsort —
    // see ArgSortColumn — not Value comparisons).
    const std::vector<uint32_t> perm =
        ArgSortColumn(base_->column(sort_column));
    const PaxBlock sorted = base_->PermutedCopy(perm);
    const ClusteredIndex index = ClusteredIndex::Build(
        sorted.column(sort_column), params_.varlen_partition_size);
    out.bytes = BuildHailBlock(sorted, &index, sort_column);
    const bool string_key =
        base_->schema().field(sort_column).type == FieldType::kString;
    out.cpu_seconds +=
        ctx.cost->SortBlock(params_.logical_records,
                            params_.logical_fixed_bytes,
                            params_.logical_varlen_bytes, string_key);
    out.cpu_seconds += ctx.cost->IndexBuild(params_.logical_records);
    out.info.sort_column = sort_column;
    out.info.index_kind = "clustered";
    out.info.index_bytes = index.SerializedBytes();
    // The paper-scale index root: one entry per 1024 values (§3.5).
    logical_index_bytes = LogicalSparseIndexBytes(
        params_.logical_records, params_.index_partition_logical,
        base_->schema().field(sort_column).type, /*pointer_bytes=*/4);
  } else {
    out.bytes = BuildHailBlock(*base_, nullptr, -1);
  }

  if (replica_index == 0 && !stats_bytes_.empty()) {
    // The stats sidecar is built once per block; bill the summary pass on
    // the first replica's builder so scheduling rides the existing paths.
    out.cpu_seconds += ctx.cost->StatsBuild(
        params_.logical_records *
        static_cast<uint64_t>(base_->schema().num_fields()));
  }

  if (base_->options().enable_encoding) {
    // Format v3: every replica serialises (and re-encodes) its own
    // permutation of the columns — codes are never copied across a sort —
    // so each datanode pays the sampling + code-emission pass.
    out.cpu_seconds += ctx.cost->EncodeValues(
        params_.logical_records *
        static_cast<uint64_t>(base_->schema().num_fields()));
  }

  // Each datanode recomputes its own checksums: replicas differ
  // physically, so DN1's CRCs are useless to DN2 (§3.2).
  const uint64_t logical_replica_bytes =
      params_.logical_pax_bytes + logical_index_bytes;
  out.cpu_seconds += ctx.cost->Crc(logical_replica_bytes);
  if (ctx.is_tail) {
    // The tail also verified every incoming packet.
    out.cpu_seconds += ctx.cost->Crc(params_.logical_pax_bytes);
  }
  out.chunk_crcs = hdfs::ComputeChunkChecksums(out.bytes, params_.chunk_bytes);
  out.info.replica_bytes = out.bytes.size();
  out.logical_bytes = logical_replica_bytes;
  return out;
}

std::string BuildHailBlock(const PaxBlock& sorted_pax,
                           const ClusteredIndex* index, int sort_column) {
  ByteWriter w;
  w.PutU32(kHailBlockMagic);
  w.PutU8(1);  // version
  w.PutI32(index != nullptr ? sort_column : -1);
  const std::string index_bytes = index != nullptr ? index->Serialize() : "";
  // Index Metadata: where the index and the PAX payload live.
  const size_t layout_pos = w.size();
  w.PutU64(0);  // index offset
  w.PutU64(0);  // index bytes
  w.PutU64(0);  // pax offset
  const uint64_t index_offset = w.size();
  w.PutBytes(index_bytes);
  const uint64_t pax_offset = w.size();
  w.PutBytes(sorted_pax.Serialize());

  std::string out = w.Take();
  const uint64_t index_len = index_bytes.size();
  std::memcpy(out.data() + layout_pos, &index_offset, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 8, &index_len, sizeof(uint64_t));
  std::memcpy(out.data() + layout_pos + 16, &pax_offset, sizeof(uint64_t));
  return out;
}

std::string BuildHailBlockParts(int sort_column, std::string_view index_bytes,
                                std::string_view pax_bytes,
                                int uc_column, std::string_view uc_bytes) {
  ByteWriter w;
  w.PutU32(kHailBlockMagic);
  w.PutU8(2);  // version
  w.PutI32(index_bytes.empty() ? -1 : sort_column);
  // Each placeholder's position is captured at write time, so the
  // back-patch below cannot drift from the header layout.
  const auto placeholder_u64 = [&w]() {
    const size_t pos = w.size();
    w.PutU64(0);
    return pos;
  };
  const size_t index_offset_pos = placeholder_u64();
  const size_t index_bytes_pos = placeholder_u64();
  const size_t pax_offset_pos = placeholder_u64();
  const size_t pax_bytes_pos = placeholder_u64();
  w.PutI32(uc_bytes.empty() ? -1 : uc_column);
  const size_t uc_offset_pos = placeholder_u64();
  const size_t uc_bytes_pos = placeholder_u64();
  const uint64_t index_offset = w.size();
  w.PutBytes(index_bytes);
  const uint64_t pax_offset = w.size();
  w.PutBytes(pax_bytes);
  const uint64_t uc_offset = w.size();
  w.PutBytes(uc_bytes);

  std::string out = w.Take();
  const auto put_u64 = [&out](size_t pos, uint64_t v) {
    std::memcpy(out.data() + pos, &v, sizeof(uint64_t));
  };
  put_u64(index_offset_pos, index_offset);
  put_u64(index_bytes_pos, index_bytes.size());
  put_u64(pax_offset_pos, pax_offset);
  put_u64(pax_bytes_pos, pax_bytes.size());
  put_u64(uc_offset_pos, uc_offset);
  put_u64(uc_bytes_pos, uc_bytes.size());
  return out;
}

Result<HailBlockView> HailBlockView::Open(std::string_view data) {
  HailBlockView view;
  view.data_ = data;
  ByteReader r(data);
  HAIL_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kHailBlockMagic) {
    return Status::Corruption("not a HAIL block (bad magic)");
  }
  HAIL_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != 1 && version != 2) {
    return Status::Corruption("unsupported HAIL block version");
  }
  HAIL_ASSIGN_OR_RETURN(view.sort_column_, r.GetI32());
  HAIL_ASSIGN_OR_RETURN(view.index_offset_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.index_bytes_, r.GetU64());
  HAIL_ASSIGN_OR_RETURN(view.pax_offset_, r.GetU64());
  if (version == 2) {
    HAIL_ASSIGN_OR_RETURN(view.pax_bytes_, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(view.uc_column_, r.GetI32());
    HAIL_ASSIGN_OR_RETURN(view.uc_offset_, r.GetU64());
    HAIL_ASSIGN_OR_RETURN(view.uc_bytes_, r.GetU64());
  } else {
    // Version 1: the PAX payload runs to the end of the block.
    view.pax_bytes_ = data.size() >= view.pax_offset_
                          ? data.size() - view.pax_offset_
                          : 0;
  }
  if (view.index_offset_ + view.index_bytes_ > data.size() ||
      view.pax_offset_ + view.pax_bytes_ > data.size() ||
      view.uc_offset_ + view.uc_bytes_ > data.size()) {
    return Status::Corruption("HAIL block sections out of bounds");
  }
  return view;
}

Result<ClusteredIndex> HailBlockView::ReadIndex() const {
  if (!has_index()) {
    return Status::FailedPrecondition("HAIL block has no index");
  }
  return ClusteredIndex::Deserialize(
      data_.substr(index_offset_, index_bytes_));
}

Result<UnclusteredIndex> HailBlockView::ReadUnclusteredIndex() const {
  if (!has_unclustered()) {
    return Status::FailedPrecondition("HAIL block has no unclustered index");
  }
  return UnclusteredIndex::Deserialize(data_.substr(uc_offset_, uc_bytes_));
}

Result<PaxBlockView> HailBlockView::OpenPax() const {
  return PaxBlockView::Open(data_.substr(pax_offset_, pax_bytes_));
}

}  // namespace hail
