#include "hail/hail_client.h"

#include <algorithm>

#include "hdfs/replica_transform.h"
#include "hdfs/upload_pipeline.h"
#include "layout/pax_block.h"
#include "schema/row_parser.h"

namespace hail {

std::vector<std::string_view> CutRowAlignedBlocks(std::string_view text,
                                                  uint64_t block_size) {
  std::vector<std::string_view> blocks;
  size_t block_start = 0;
  size_t pos = 0;
  size_t last_row_end = 0;  // one past the newline of the last complete row
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    const size_t row_end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    if (row_end - block_start > block_size && last_row_end > block_start) {
      // Adding this row would overflow: close the block at the previous
      // row boundary ("we never split a row between two blocks", §3.1).
      blocks.push_back(text.substr(block_start, last_row_end - block_start));
      block_start = last_row_end;
    }
    last_row_end = row_end;
    pos = row_end;
  }
  if (block_start < text.size()) {
    blocks.push_back(text.substr(block_start));
  }
  return blocks;
}

namespace {

/// State for one client uploading one file (mirrors hdfs::ClientCursor but
/// with the HAIL conversion steps).
struct HailCursor {
  int client_node;
  std::string dfs_path;
  std::vector<std::string_view> blocks;
  size_t next_block = 0;
  sim::SimTime ready;  // client disk/CPU chain readiness
  sim::SimTime completed = 0.0;
  HailUploadReport stats;
  bool done() const { return next_block >= blocks.size(); }
};

Result<bool> UploadNextHailBlock(hdfs::MiniDfs* dfs,
                                 const HailUploadConfig& config,
                                 HailCursor* cur) {
  if (cur->done()) return false;
  const hdfs::DfsConfig& cfg = dfs->config();
  sim::SimCluster& cluster = dfs->cluster();
  std::string_view text_block = cur->blocks[cur->next_block++];

  const uint64_t logical_text_bytes = static_cast<uint64_t>(
      static_cast<double>(text_block.size()) * cfg.scale_factor);

  // ---- client side: read source, parse rows, build PAX (steps 1-2);
  // BuildPaxBlockFromText parses straight into typed columns ----
  sim::SimNode& client = cluster.node(cur->client_node);
  const sim::Interval read = client.src_disk().Schedule(
      cur->ready, client.cost().DiskTransfer(logical_text_bytes));

  PaxBlock pax = BuildPaxBlockFromText(config.schema, text_block, cfg.format);
  const std::string client_block = pax.Serialize();
  // Logical sizes come from the values-only payload: the real serialised
  // block carries offset side-cars at scaled-down density, which must not
  // be multiplied back up (DESIGN.md §2). With format-v3 encoding on, the
  // payload billed for transfer is the *stored* (compressed) extent of the
  // block just serialised, and the client pays an explicit per-value
  // encode term for the sampling + code-emission pass.
  uint64_t stored_payload = pax.PayloadBytes();
  double encode_cpu = 0.0;
  if (cfg.format.enable_encoding) {
    HAIL_ASSIGN_OR_RETURN(PaxBlockView encoded_view,
                          PaxBlockView::Open(client_block));
    stored_payload = encoded_view.stored_payload_bytes();
    encode_cpu = client.cost().EncodeValues(
        static_cast<uint64_t>(static_cast<double>(pax.num_records()) *
                              cfg.scale_factor) *
        static_cast<uint64_t>(config.schema.num_fields()));
  }
  const uint64_t logical_pax_bytes =
      static_cast<uint64_t>(static_cast<double>(stored_payload) *
                            cfg.scale_factor) +
      hdfs::kLogicalBlockOverhead;

  const sim::Interval parse = client.cpu().Schedule(
      read.end, client.cost().TextParse(logical_text_bytes) +
                    client.cost().PaxBuild(logical_pax_bytes) + encode_cpu);

  // ---- namenode: allocate block + targets (step 3) ----
  HAIL_ASSIGN_OR_RETURN(hdfs::BlockAllocation alloc,
                        dfs->namenode().AllocateBlock(
                            cur->dfs_path, cur->client_node, cfg.replication));

  // ---- steps 4-15 live in the shared transport: packets, ACKs, chain
  // timing, then one HailReplicaTransformer decode + per-replica
  // sort/index/flush on the datanodes ----
  HailTransformParams params;
  params.sort_columns = config.sort_columns;
  params.build_stats = config.build_stats;
  params.chunk_bytes = cfg.chunk_bytes;
  params.varlen_partition_size = cfg.format.varlen_partition_size;
  params.index_partition_logical = cluster.constants().index_partition_logical;
  params.logical_pax_bytes = logical_pax_bytes;
  params.logical_fixed_bytes = static_cast<uint64_t>(
      static_cast<double>(pax.FixedPayloadBytes()) * cfg.scale_factor);
  params.logical_varlen_bytes = static_cast<uint64_t>(
      static_cast<double>(pax.VarlenPayloadBytes()) * cfg.scale_factor);
  params.logical_records = static_cast<uint64_t>(
      static_cast<double>(pax.num_records()) * cfg.scale_factor);
  HailReplicaTransformer transformer(std::move(params));

  HAIL_ASSIGN_OR_RETURN(
      hdfs::BlockWriteResult result,
      dfs->pipeline().WriteBlock(cur->client_node, parse.end, alloc.block_id,
                                 client_block, logical_pax_bytes,
                                 alloc.datanodes, &transformer));

  // Client may start preparing the next block once its CPU freed up;
  // pipeline back-pressure is enforced by the resource queues.
  cur->ready = read.end;
  cur->completed = std::max(cur->completed, result.completed);
  cur->stats.blocks += 1;
  if (text_block.size() > cfg.block_size) {
    // A single row longer than the block size: CutRowAlignedBlocks
    // isolates it in its own oversized block (see hail_client.h).
    cur->stats.oversized_blocks += 1;
  }
  cur->stats.text_real_bytes += text_block.size();
  cur->stats.pax_real_bytes += client_block.size();
  cur->stats.replica_real_bytes += result.replica_bytes_total;
  cur->stats.bad_records += pax.bad_records().size();
  return true;
}

HailUploadReport MergeReports(const std::vector<HailCursor>& cursors,
                              sim::SimTime start_time) {
  HailUploadReport report;
  report.started = start_time;
  for (const HailCursor& cur : cursors) {
    report.completed = std::max(report.completed, cur.completed);
    report.blocks += cur.stats.blocks;
    report.text_real_bytes += cur.stats.text_real_bytes;
    report.pax_real_bytes += cur.stats.pax_real_bytes;
    report.replica_real_bytes += cur.stats.replica_real_bytes;
    report.bad_records += cur.stats.bad_records;
    report.oversized_blocks += cur.stats.oversized_blocks;
  }
  return report;
}

}  // namespace

Result<HailUploadReport> HailUploadTextFile(hdfs::MiniDfs* dfs,
                                            const HailUploadConfig& config,
                                            int client_node,
                                            const std::string& dfs_path,
                                            std::string_view text,
                                            sim::SimTime start_time) {
  if (static_cast<int>(config.sort_columns.size()) >
      dfs->config().replication) {
    return Status::InvalidArgument(
        "more sort columns than replicas: HAIL creates at most one index "
        "per replica");
  }
  std::vector<HailCursor> cursors(1);
  cursors[0].client_node = client_node;
  cursors[0].dfs_path = dfs_path;
  cursors[0].blocks = CutRowAlignedBlocks(text, dfs->config().block_size);
  cursors[0].ready = start_time;
  while (!cursors[0].done()) {
    HAIL_ASSIGN_OR_RETURN(bool more,
                          UploadNextHailBlock(dfs, config, &cursors[0]));
    if (!more) break;
  }
  return MergeReports(cursors, start_time);
}

Result<HailUploadReport> HailParallelUpload(
    hdfs::MiniDfs* dfs, const HailUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time) {
  if (static_cast<int>(config.sort_columns.size()) >
      dfs->config().replication) {
    return Status::InvalidArgument(
        "more sort columns than replicas: HAIL creates at most one index "
        "per replica");
  }
  std::vector<HailCursor> cursors;
  cursors.reserve(specs.size());
  for (const hdfs::ParallelUploadSpec& spec : specs) {
    HailCursor cur;
    cur.client_node = spec.client_node;
    cur.dfs_path = spec.dfs_path;
    cur.blocks = CutRowAlignedBlocks(spec.text, dfs->config().block_size);
    cur.ready = start_time;
    cursors.push_back(std::move(cur));
  }
  bool any = true;
  while (any) {
    any = false;
    for (HailCursor& cur : cursors) {
      if (cur.done()) continue;
      HAIL_ASSIGN_OR_RETURN(bool more, UploadNextHailBlock(dfs, config, &cur));
      any = any || more || !cur.done();
    }
  }
  return MergeReports(cursors, start_time);
}

}  // namespace hail
