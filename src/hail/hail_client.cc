#include "hail/hail_client.h"

#include <algorithm>

#include "hdfs/packet.h"
#include "hdfs/upload_pipeline.h"
#include "layout/pax_block.h"
#include "schema/row_parser.h"

namespace hail {

std::vector<std::string_view> CutRowAlignedBlocks(std::string_view text,
                                                  uint64_t block_size) {
  std::vector<std::string_view> blocks;
  size_t block_start = 0;
  size_t pos = 0;
  size_t last_row_end = 0;  // one past the newline of the last complete row
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    const size_t row_end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    if (row_end - block_start > block_size && last_row_end > block_start) {
      // Adding this row would overflow: close the block at the previous
      // row boundary ("we never split a row between two blocks", §3.1).
      blocks.push_back(text.substr(block_start, last_row_end - block_start));
      block_start = last_row_end;
    }
    last_row_end = row_end;
    pos = row_end;
  }
  if (block_start < text.size()) {
    blocks.push_back(text.substr(block_start));
  }
  return blocks;
}

namespace {

/// State for one client uploading one file (mirrors hdfs::ClientCursor but
/// with the HAIL conversion steps).
struct HailCursor {
  int client_node;
  std::string dfs_path;
  std::vector<std::string_view> blocks;
  size_t next_block = 0;
  sim::SimTime ready;  // client disk/CPU chain readiness
  sim::SimTime completed = 0.0;
  HailUploadReport stats;
  bool done() const { return next_block >= blocks.size(); }
};

Result<bool> UploadNextHailBlock(hdfs::MiniDfs* dfs,
                                 const HailUploadConfig& config,
                                 HailCursor* cur) {
  if (cur->done()) return false;
  const hdfs::DfsConfig& cfg = dfs->config();
  sim::SimCluster& cluster = dfs->cluster();
  std::string_view text_block = cur->blocks[cur->next_block++];

  const uint64_t logical_text_bytes = static_cast<uint64_t>(
      static_cast<double>(text_block.size()) * cfg.scale_factor);

  // ---- client side: read source, parse rows, build PAX (steps 1-2) ----
  sim::SimNode& client = cluster.node(cur->client_node);
  const sim::Interval read = client.src_disk().Schedule(
      cur->ready, client.cost().DiskTransfer(logical_text_bytes));

  PaxBlock pax = BuildPaxBlockFromText(config.schema, text_block, cfg.format);
  const std::string client_block = pax.Serialize();
  // Logical sizes come from the values-only payload: the real serialised
  // block carries offset side-cars at scaled-down density, which must not
  // be multiplied back up (DESIGN.md §2). At paper scale the sparse
  // offset lists and the header are a few KB per 64 MB block.
  constexpr uint64_t kLogicalBlockOverhead = 8 * 1024;
  const uint64_t logical_pax_bytes =
      static_cast<uint64_t>(static_cast<double>(pax.PayloadBytes()) *
                            cfg.scale_factor) +
      kLogicalBlockOverhead;
  const uint64_t logical_fixed_bytes = static_cast<uint64_t>(
      static_cast<double>(pax.FixedPayloadBytes()) * cfg.scale_factor);
  const uint64_t logical_varlen_bytes = static_cast<uint64_t>(
      static_cast<double>(pax.VarlenPayloadBytes()) * cfg.scale_factor);
  const uint64_t logical_records = static_cast<uint64_t>(
      static_cast<double>(pax.num_records()) * cfg.scale_factor);

  const sim::Interval parse = client.cpu().Schedule(
      read.end, client.cost().TextParse(logical_text_bytes) +
                    client.cost().PaxBuild(logical_pax_bytes));

  // ---- namenode: allocate block + targets (step 3) ----
  HAIL_ASSIGN_OR_RETURN(hdfs::BlockAllocation alloc,
                        dfs->namenode().AllocateBlock(
                            cur->dfs_path, cur->client_node, cfg.replication));

  // ---- functional packet pipeline (steps 4-8): cut into packets, send
  // through the chain, reassemble in memory at each datanode ----
  std::vector<hdfs::Packet> packets = hdfs::MakePackets(
      alloc.block_id, client_block, cfg.chunk_bytes, cfg.packet_bytes);
  const int tail = alloc.datanodes.back();

  // Tail verifies each packet's chunk checksums (step 9).
  for (const hdfs::Packet& p : packets) {
    if (!hdfs::VerifyPacket(p, cfg.chunk_bytes)) {
      return Status::Corruption("packet failed verification at DN" +
                                std::to_string(tail));
    }
  }
  // Reassemble the block from its packets (step 6) — every datanode does
  // this in memory; one reassembly suffices functionally since the bytes
  // are identical.
  std::string reassembled;
  reassembled.reserve(client_block.size());
  for (const hdfs::Packet& p : packets) reassembled.append(p.data);
  if (reassembled != client_block) {
    return Status::Corruption("block reassembly mismatch");
  }

  // ---- timing: chain transfer (cut-through) ----
  hdfs::ChainTiming chain = hdfs::BillChainTransfer(
      &cluster, cur->client_node, parse.end, logical_pax_bytes,
      alloc.datanodes);

  // ---- per-replica: sort, index, recompute checksums, flush (step 7) ----
  sim::SimTime block_done = 0.0;
  uint64_t replica_bytes_total = 0;
  for (size_t i = 0; i < alloc.datanodes.size(); ++i) {
    const int dn_id = alloc.datanodes[i];
    hdfs::Datanode& dn = dfs->datanode(dn_id);
    sim::SimNode& node = cluster.node(dn_id);

    const int sort_column =
        i < config.sort_columns.size() ? config.sort_columns[i] : -1;

    HAIL_ASSIGN_OR_RETURN(PaxBlock replica_pax,
                          PaxBlock::Deserialize(reassembled));
    double cpu_seconds = 0.0;
    std::string hail_bytes;
    uint64_t logical_index_bytes = 0;
    hdfs::HailBlockReplicaInfo info;
    info.layout = hdfs::ReplicaLayout::kPax;
    if (sort_column >= 0 && replica_pax.num_records() > 0) {
      replica_pax.SortByColumn(sort_column);
      const ClusteredIndex index =
          ClusteredIndex::Build(replica_pax.column(sort_column),
                                cfg.format.varlen_partition_size);
      hail_bytes = BuildHailBlock(replica_pax, &index, sort_column);
      const bool string_key =
          config.schema.field(sort_column).type == FieldType::kString;
      cpu_seconds += node.cost().SortBlock(logical_records,
                                           logical_fixed_bytes,
                                           logical_varlen_bytes, string_key);
      cpu_seconds += node.cost().IndexBuild(logical_records);
      info.sort_column = sort_column;
      info.index_kind = "clustered";
      info.index_bytes = index.SerializedBytes();
      // The paper-scale index root: one entry per 1024 values (§3.5).
      const uint64_t key_width =
          string_key ? 16 : FieldTypeWidth(config.schema.field(sort_column).type);
      logical_index_bytes =
          (logical_records / cluster.constants().index_partition_logical + 1) *
          (key_width + 4);
    } else {
      hail_bytes = BuildHailBlock(replica_pax, nullptr, -1);
    }

    // Each datanode recomputes its own checksums: replicas differ
    // physically, so DN1's CRCs are useless to DN2 (§3.2).
    const uint64_t logical_replica_bytes =
        logical_pax_bytes + logical_index_bytes;
    cpu_seconds += node.cost().Crc(logical_replica_bytes);
    if (dn_id == tail) {
      // The tail also verified every incoming packet.
      cpu_seconds += node.cost().Crc(logical_pax_bytes);
    }

    const std::vector<uint32_t> crcs =
        hdfs::ComputeChunkChecksums(hail_bytes, cfg.chunk_bytes);
    info.replica_bytes = hail_bytes.size();
    replica_bytes_total += hail_bytes.size();

    // Sorting/indexing/CRC runs on the datanode's bounded pool of
    // pipeline worker threads, in parallel across blocks (§3.5: "on each
    // data node several blocks may be indexed in parallel").
    const sim::Interval work =
        node.upload_cpu().Schedule(chain.arrival_complete[i], cpu_seconds);
    const uint64_t logical_meta =
        (logical_replica_bytes / cluster.constants().chunk_bytes + 1) * 4;
    const sim::Interval flush = node.disk().Schedule(
        work.end,
        node.cost().DiskAccess(logical_replica_bytes + logical_meta));

    dn.StoreBlock(alloc.block_id, std::move(hail_bytes), crcs);
    HAIL_RETURN_NOT_OK(
        dfs->namenode().RegisterReplica(alloc.block_id, dn_id, info));

    // The block's final ACK is forwarded only after the flush (steps
    // 10-15), so the client-visible completion waits for every replica.
    block_done = std::max(block_done, flush.end);
  }
  dfs->namenode().SetBlockLogicalBytes(alloc.block_id, logical_pax_bytes);

  // Client may start preparing the next block once its CPU freed up;
  // pipeline back-pressure is enforced by the resource queues.
  cur->ready = read.end;
  cur->completed = std::max(cur->completed, block_done);
  cur->stats.blocks += 1;
  cur->stats.text_real_bytes += text_block.size();
  cur->stats.pax_real_bytes += client_block.size();
  cur->stats.replica_real_bytes += replica_bytes_total;
  cur->stats.bad_records += pax.bad_records().size();
  return true;
}

HailUploadReport MergeReports(const std::vector<HailCursor>& cursors,
                              sim::SimTime start_time) {
  HailUploadReport report;
  report.started = start_time;
  for (const HailCursor& cur : cursors) {
    report.completed = std::max(report.completed, cur.completed);
    report.blocks += cur.stats.blocks;
    report.text_real_bytes += cur.stats.text_real_bytes;
    report.pax_real_bytes += cur.stats.pax_real_bytes;
    report.replica_real_bytes += cur.stats.replica_real_bytes;
    report.bad_records += cur.stats.bad_records;
  }
  return report;
}

}  // namespace

Result<HailUploadReport> HailUploadTextFile(hdfs::MiniDfs* dfs,
                                            const HailUploadConfig& config,
                                            int client_node,
                                            const std::string& dfs_path,
                                            std::string_view text,
                                            sim::SimTime start_time) {
  if (static_cast<int>(config.sort_columns.size()) >
      dfs->config().replication) {
    return Status::InvalidArgument(
        "more sort columns than replicas: HAIL creates at most one index "
        "per replica");
  }
  std::vector<HailCursor> cursors(1);
  cursors[0].client_node = client_node;
  cursors[0].dfs_path = dfs_path;
  cursors[0].blocks = CutRowAlignedBlocks(text, dfs->config().block_size);
  cursors[0].ready = start_time;
  while (!cursors[0].done()) {
    HAIL_ASSIGN_OR_RETURN(bool more,
                          UploadNextHailBlock(dfs, config, &cursors[0]));
    if (!more) break;
  }
  return MergeReports(cursors, start_time);
}

Result<HailUploadReport> HailParallelUpload(
    hdfs::MiniDfs* dfs, const HailUploadConfig& config,
    const std::vector<hdfs::ParallelUploadSpec>& specs,
    sim::SimTime start_time) {
  if (static_cast<int>(config.sort_columns.size()) >
      dfs->config().replication) {
    return Status::InvalidArgument(
        "more sort columns than replicas: HAIL creates at most one index "
        "per replica");
  }
  std::vector<HailCursor> cursors;
  cursors.reserve(specs.size());
  for (const hdfs::ParallelUploadSpec& spec : specs) {
    HailCursor cur;
    cur.client_node = spec.client_node;
    cur.dfs_path = spec.dfs_path;
    cur.blocks = CutRowAlignedBlocks(spec.text, dfs->config().block_size);
    cur.ready = start_time;
    cursors.push_back(std::move(cur));
  }
  bool any = true;
  while (any) {
    any = false;
    for (HailCursor& cur : cursors) {
      if (cur.done()) continue;
      HAIL_ASSIGN_OR_RETURN(bool more, UploadNextHailBlock(dfs, config, &cur));
      any = any || more || !cur.done();
    }
  }
  return MergeReports(cursors, start_time);
}

}  // namespace hail
