/// \file scientific_sweep.cpp
/// \brief Selectivity sweep on a scientific-style dataset (paper §6.2).
///
/// The Synthetic dataset (19 integer attributes, like SDSS-style numeric
/// tables) isolates how query selectivity and projection width drive
/// record-reader cost: HAIL's PAX layout reads only the touched columns,
/// so narrow projections stay cheap even at higher selectivities, while
/// row-at-a-time layouts pay for every attribute.
///
///   $ ./scientific_sweep

#include <cstdio>

#include "workload/testbed.h"

using namespace hail;

int main() {
  workload::TestbedConfig config;
  config.num_nodes = 8;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 48;
  workload::Testbed bed(config);
  bed.LoadSynthetic();
  auto up = bed.UploadHail("/science", {0, 1, 2});
  HAIL_CHECK_OK(up.status());
  bed.FreeSourceTexts();
  std::printf("Uploaded synthetic science table: %u blocks, binary/text "
              "ratio %.2f.\n\n", up->blocks, up->binary_ratio());

  const double selectivities[] = {0.001, 0.01, 0.05, 0.10, 0.25, 0.5};
  const int projections[] = {1, 9, 19};
  workload::SyntheticConfig gen;  // defaults match the generator

  std::printf("Average RecordReader time per map task [ms] (index scan on "
              "@1):\n");
  std::printf("%12s", "selectivity");
  for (int p : projections) std::printf("  proj=%-2d attrs", p);
  std::printf("\n");

  for (double sel : selectivities) {
    std::printf("%11.1f%%", sel * 100);
    for (int p : projections) {
      std::string proj;
      if (p < 19) {
        proj = "{";
        for (int a = 1; a <= p; ++a) {
          if (a > 1) proj += ",";
          proj += "@" + std::to_string(a);
        }
        proj += "}";
      }
      workload::QueryDef q;
      q.name = "sweep";
      q.filter = "@1 < " + std::to_string(
          workload::SyntheticBoundForSelectivity(gen, sel));
      q.projection = proj;
      auto r = bed.RunQuery(mapreduce::System::kHail, "/science", q,
                            /*hail_splitting=*/false);
      HAIL_CHECK_OK(r.status());
      std::printf("  %12.1f", r->avg_record_reader_seconds * 1000);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading the table: wider projections and higher selectivities\n"
      "cost more, but the narrow-projection column stays almost flat —\n"
      "PAX only drags the projected minipages from disk (§3.5, Fig. 7).\n");
  return 0;
}
