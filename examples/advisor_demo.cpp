/// \file advisor_demo.cpp
/// \brief The §3.4 question answered end-to-end: which attributes to index?
///
/// Feeds a weighted query workload to the index advisor, uploads with the
/// recommended per-replica sort columns, and verifies every workload query
/// is served by an index scan.
///
///   $ ./advisor_demo

#include <algorithm>
#include <cstdio>

#include "hail/index_advisor.h"
#include "workload/testbed.h"

using namespace hail;

int main() {
  const Schema schema = workload::UserVisitsSchema();

  // Bob's team's workload: daily revenue reports dominate, date scans are
  // common, IP hunts are rare but must stay fast, country breakdowns are
  // served by aggregation anyway (non-serviceable != predicate).
  struct Q {
    const char* description;
    const char* filter;
    double per_day;
  };
  const Q team_workload[] = {
      {"revenue report", "@4 between(1,10)", 40},
      {"date-range scans", "@3 between(2005-01-01,2006-01-01)", 25},
      {"suspicious IP hunts", "@1 = 172.101.11.46", 5},
      {"long sessions", "@9 >= 9000", 3},
      {"non-US traffic", "@6 != USA", 50},  // not index-serviceable
  };

  std::vector<WorkloadEntry> workload;
  std::printf("Workload:\n");
  for (const Q& q : team_workload) {
    WorkloadEntry e;
    e.annotation = *ParseAnnotation(schema, q.filter, "");
    e.weight = q.per_day;
    workload.push_back(std::move(e));
    std::printf("  %5.0fx/day  %-22s %s\n", q.per_day, q.description,
                q.filter);
  }

  const auto scores = ScoreColumns(schema, workload);
  std::printf("\nPer-attribute benefit:\n");
  for (const auto& rec : scores) {
    if (rec.benefit <= 0) continue;
    std::printf("  %-14s %6.1f\n", schema.field(rec.column).name.c_str(),
                rec.benefit);
  }

  const auto columns = SuggestSortColumns(schema, workload, 3);
  std::printf("\nRecommended per-replica indexes (replication 3):\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("  replica %zu -> clustered index on %s\n", i,
                schema.field(columns[i]).name.c_str());
  }

  // Upload with the recommendation and check every serviceable query
  // index-scans.
  workload::TestbedConfig config;
  config.num_nodes = 6;
  config.real_block_bytes = 16 * 1024;
  config.blocks_per_node = 10;
  workload::Testbed bed(config);
  bed.LoadUserVisits();
  HAIL_CHECK_OK(bed.UploadHail("/uv", columns).status());
  bed.FreeSourceTexts();

  std::printf("\nRunning the workload on the advised layout:\n");
  for (const Q& q : team_workload) {
    workload::QueryDef def{q.description, q.filter, "{@1}", 0};
    auto ann = ParseAnnotation(schema, q.filter, "");
    const bool serviceable =
        ann.ok() && ann->preferred_index_column() >= 0 &&
        std::find(columns.begin(), columns.end(),
                  ann->preferred_index_column()) != columns.end();
    auto r = bed.RunQuery(mapreduce::System::kHail, "/uv", def, true);
    HAIL_CHECK_OK(r.status());
    std::printf("  %-22s %6.1fs  %s\n", q.description,
                r->end_to_end_seconds,
                serviceable && r->fallback_scans == 0 ? "index scan"
                                                      : "full scan");
  }
  std::printf(
      "\nEverything the advisor could serve runs as an index scan; the "
      "!= query\nfalls back to scanning, exactly as §4.1 specifies.\n");
  return 0;
}
