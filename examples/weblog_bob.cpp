/// \file weblog_bob.cpp
/// \brief Bob's exploratory web-log session from the paper's introduction.
///
/// Bob strolls through his logs with a *sequence* of differently-filtered
/// queries — visitDate first, then a suspicious sourceIP, then adRevenue.
/// A single-index system only helps one of them; HAIL's three divergent
/// replicas cover all three. This example runs the session on stock
/// Hadoop and on HAIL side by side and prints the story's numbers.
///
///   $ ./weblog_bob

#include <cstdio>

#include "workload/testbed.h"

using namespace hail;
using workload::QueryDef;

namespace {

workload::TestbedConfig SessionConfig() {
  workload::TestbedConfig config;
  config.num_nodes = 10;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 64;  // a 4 GB/node log at paper block size
  return config;
}

}  // namespace

int main() {
  const std::vector<QueryDef> session = {
      {"all sourceIPs visiting in 1999",
       "@3 between(1999-01-01,2000-01-01)", "{@1}", 0},
      {"all requests from 172.101.11.46", "@1 = 172.101.11.46",
       "{@2,@3,@8}", 0},
      {"low-revenue visits (adRevenue 1..10)", "@4 between(1,10)",
       "{@8,@9,@4}", 0},
  };

  std::printf("Bob uploads his web log twice: once with stock Hadoop, once "
              "with HAIL.\n\n");

  double hadoop_upload = 0, hail_upload = 0;
  std::vector<double> hadoop_times, hail_times;
  std::vector<uint64_t> match_counts;

  {
    workload::Testbed bed(SessionConfig());
    bed.LoadUserVisits();
    auto up = bed.UploadHadoop("/weblog");
    HAIL_CHECK_OK(up.status());
    hadoop_upload = up->duration();
    bed.FreeSourceTexts();
    for (const QueryDef& q : session) {
      auto r = bed.RunQuery(mapreduce::System::kHadoop, "/weblog", q);
      HAIL_CHECK_OK(r.status());
      hadoop_times.push_back(r->end_to_end_seconds);
      match_counts.push_back(r->records_qualifying);
    }
  }
  {
    workload::Testbed bed(SessionConfig());
    bed.LoadUserVisits();
    auto up = bed.UploadHail("/weblog",
                             {workload::kVisitDate, workload::kSourceIP,
                              workload::kAdRevenue});
    HAIL_CHECK_OK(up.status());
    hail_upload = up->duration();
    bed.FreeSourceTexts();
    for (const QueryDef& q : session) {
      auto r = bed.RunQuery(mapreduce::System::kHail, "/weblog", q,
                            /*hail_splitting=*/true);
      HAIL_CHECK_OK(r.status());
      hail_times.push_back(r->end_to_end_seconds);
    }
  }

  std::printf("%-42s %10s %10s %9s\n", "", "Hadoop", "HAIL", "speedup");
  std::printf("%-42s %9.0fs %9.0fs %8.2fx\n", "upload (3 replicas)",
              hadoop_upload, hail_upload, hadoop_upload / hail_upload);
  double hadoop_total = hadoop_upload, hail_total = hail_upload;
  for (size_t i = 0; i < session.size(); ++i) {
    std::printf("%-42s %9.0fs %9.0fs %8.0fx   (%llu hits)\n",
                session[i].name.c_str(), hadoop_times[i], hail_times[i],
                hadoop_times[i] / hail_times[i],
                static_cast<unsigned long long>(match_counts[i]));
    hadoop_total += hadoop_times[i];
    hail_total += hail_times[i];
  }
  std::printf("%-42s %9.0fs %9.0fs %8.1fx\n", "whole session (upload + 3 "
              "queries)", hadoop_total, hail_total,
              hadoop_total / hail_total);
  std::printf(
      "\nEvery query found a replica with a matching clustered index —\n"
      "the win-win of §2.3: indexing cost hidden inside the upload, and\n"
      "each exploration step answered in seconds instead of a coffee "
      "break.\n");
  return 0;
}
