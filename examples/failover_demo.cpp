/// \file failover_demo.cpp
/// \brief Node failure mid-job: the §6.4.3 experiment as a demo.
///
/// Runs the same indexed query three ways — no failure, a node killed at
/// 50% progress with three divergent indexes, and with HAIL-1Idx (the
/// same index on every replica) — and shows that results are identical
/// while the slowdown stays around 10%, and that 1Idx keeps index scans
/// alive after the failure.
///
///   $ ./failover_demo

#include <algorithm>
#include <cstdio>

#include "workload/testbed.h"

using namespace hail;

namespace {

workload::TestbedConfig DemoConfig() {
  workload::TestbedConfig config;
  config.num_nodes = 10;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 64;
  return config;
}

}  // namespace

int main() {
  const workload::QueryDef query = workload::BobQueries()[0];
  mapreduce::RunOptions failure;
  failure.kill_node = 3;
  failure.kill_at_progress = 0.5;

  struct Row {
    const char* label;
    std::vector<int> sort_columns;
  };
  const Row rows[] = {
      {"HAIL (3 different indexes)",
       {workload::kVisitDate, workload::kSourceIP, workload::kAdRevenue}},
      {"HAIL-1Idx (visitDate on all replicas)",
       {workload::kVisitDate, workload::kVisitDate, workload::kVisitDate}},
  };

  std::printf("Query: %s  (filter %s)\n\n", query.name.c_str(),
              query.filter.c_str());
  std::printf("%-40s %9s %9s %9s %10s %9s\n", "configuration", "clean[s]",
              "fail[s]", "slowdown", "resched", "fallback");

  std::vector<std::string> reference_rows;
  for (const Row& row : rows) {
    workload::Testbed bed(DemoConfig());
    bed.LoadUserVisits();
    HAIL_CHECK_OK(bed.UploadHail("/uv", row.sort_columns).status());
    bed.FreeSourceTexts();

    auto clean = bed.RunQuery(mapreduce::System::kHail, "/uv", query, false,
                              {}, true);
    HAIL_CHECK_OK(clean.status());
    auto failed = bed.RunQuery(mapreduce::System::kHail, "/uv", query, false,
                               failure, true);
    HAIL_CHECK_OK(failed.status());

    // The answer must not change when a node dies.
    std::vector<std::string> a = clean->output_rows;
    std::vector<std::string> b = failed->output_rows;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      std::fprintf(stderr, "!!! results diverged under failure\n");
      return 1;
    }
    if (reference_rows.empty()) reference_rows = a;

    const double slowdown = (failed->end_to_end_seconds -
                             clean->end_to_end_seconds) /
                            clean->end_to_end_seconds * 100.0;
    std::printf("%-40s %9.1f %9.1f %8.1f%% %10u %9u\n", row.label,
                clean->end_to_end_seconds, failed->end_to_end_seconds,
                slowdown, failed->rescheduled_tasks, failed->fallback_scans);
  }
  std::printf(
      "\nBoth configurations return the exact same %zu rows with or "
      "without the failure.\nWith divergent indexes some rescheduled tasks "
      "lose their matching replica and fall back\nto scanning; HAIL-1Idx "
      "keeps index scans available everywhere (paper Fig. 8).\n",
      reference_rows.size());
  return 0;
}
