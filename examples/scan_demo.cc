/// \file scan_demo.cc
/// \brief Minimal end-to-end tour of the HAIL read path: text upload ->
/// PAX block -> @HailQuery annotation -> vectorized scan -> tuples.
///
///   ./scan_demo
///
/// Mirrors Bob's workflow from the paper (§4.1): a filter over attribute
/// positions, evaluated by the compiled column kernels, reconstructing
/// only the qualifying rows.

#include <cstdio>
#include <string>

#include "layout/pax_block.h"
#include "query/predicate.h"
#include "query/vectorized.h"
#include "schema/row_parser.h"

int main() {
  using namespace hail;

  const Schema schema = Schema({{"sourceIP", FieldType::kString},
                                {"visitDate", FieldType::kDate},
                                {"adRevenue", FieldType::kDouble}});
  const std::string text =
      "172.101.11.46,1999-03-01,11.50\n"
      "10.0.0.7,1998-12-24,3.25\n"
      "172.101.11.46,1999-07-15,99.00\n"
      "not-an-ip-row\n"
      "192.168.4.2,2000-02-02,42.75\n"
      "172.101.11.46,2001-05-05,0.10\n";

  // Upload-side conversion (Figure 1 step 2): parse rows against the
  // schema; rows that do not match land in the bad-record section.
  PaxBlock block = BuildPaxBlockFromText(schema, text);
  const std::string bytes = block.Serialize();
  auto view = PaxBlockView::Open(bytes);
  if (!view.ok()) {
    std::fprintf(stderr, "open: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("block: %u records, %u bad records, %llu bytes\n",
              view->num_records(), view->num_bad_records(),
              static_cast<unsigned long long>(view->total_bytes()));

  // Bob's annotation: sourceIP needle + a date range (paper §4.1).
  auto ann = ParseAnnotation(
      schema, "@1 = 172.101.11.46 and @2 between(1999-01-01,2000-01-01)", "");
  if (!ann.ok()) {
    std::fprintf(stderr, "annotation: %s\n", ann.status().ToString().c_str());
    return 1;
  }
  std::printf("filter: %s\n", ann->filter.ToString(schema).c_str());

  // Vectorized scan: compile once, filter column-at-a-time, reconstruct
  // qualifying rows only.
  auto compiled = CompiledPredicate::Compile(ann->filter, schema);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  SelectionVector sel;
  auto st = compiled->FilterBlock(*view, RowRange{0, view->num_records()},
                                  &sel);
  if (!st.ok()) {
    std::fprintf(stderr, "filter: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu qualifying row(s):\n", sel.size());
  RowParser parser(schema);
  for (uint32_t r : sel.rows()) {
    auto row = view->GetRow(r);
    if (!row.ok()) return 1;
    std::printf("  row %u: %s\n", r, parser.Render(*row).c_str());
  }

  auto bad = view->OpenBadRecords();
  if (!bad.ok()) return 1;
  while (!bad->Done()) {
    auto raw = bad->Next();
    if (!raw.ok()) return 1;
    std::printf("bad record: %s\n", std::string(*raw).c_str());
  }
  return 0;
}
