/// \file replication_tuning.cpp
/// \brief "How many indexes can I afford?" — the Fig. 4(c) story as a tool.
///
/// Sweeps the replication factor (= number of distinct clustered indexes
/// HAIL creates) and reports upload time and disk footprint against the
/// stock-Hadoop 3-replica baseline, so an operator can pick a replication
/// factor from their disk budget ("choosing the replication factor mainly
/// depends on the available disk space", §6.3.2).
///
///   $ ./replication_tuning

#include <cstdio>

#include "util/string_util.h"
#include "workload/testbed.h"

using namespace hail;

namespace {

uint64_t StoredBytes(workload::Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.cluster().num_nodes(); ++i) {
    total += bed.dfs().datanode(i).store().total_bytes();
  }
  return total;
}

workload::TestbedConfig TuningConfig(int replication) {
  workload::TestbedConfig config;
  config.num_nodes = 10;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 64;
  config.replication = replication;
  return config;
}

}  // namespace

int main() {
  double hadoop_time;
  uint64_t hadoop_bytes;
  {
    workload::Testbed bed(TuningConfig(3));
    bed.LoadSynthetic();
    auto up = bed.UploadHadoop("/data");
    HAIL_CHECK_OK(up.status());
    hadoop_time = up->duration();
    hadoop_bytes = StoredBytes(bed);
  }
  std::printf("Baseline: Hadoop, 3 replicas, no indexes: %.0fs upload, %s "
              "on disk.\n\n", hadoop_time, FormatBytes(hadoop_bytes).c_str());
  std::printf("%12s %12s %14s %12s %12s\n", "replicas", "indexes",
              "upload [s]", "vs Hadoop", "disk vs H.");

  for (int replication : {3, 5, 6, 7, 10}) {
    workload::Testbed bed(TuningConfig(replication));
    bed.LoadSynthetic();
    std::vector<int> columns;
    for (int c = 0; c < replication; ++c) columns.push_back(c);
    auto up = bed.UploadHail("/data", columns);
    HAIL_CHECK_OK(up.status());
    const uint64_t bytes = StoredBytes(bed);
    std::printf("%12d %12d %14.0f %11.2fx %11.2fx\n", replication,
                replication, up->duration(), up->duration() / hadoop_time,
                static_cast<double>(bytes) /
                    static_cast<double>(hadoop_bytes));
  }
  std::printf(
      "\nThe sweet spot from the paper (§6.3.2): around six indexed\n"
      "replicas HAIL still roughly matches Hadoop's 3-replica upload time\n"
      "and stays close to its disk budget, because binary PAX replicas\n"
      "are much smaller than the original text.\n");
  return 0;
}
