/// \file quickstart.cpp
/// \brief Five-minute tour of the HAIL library.
///
/// Builds a small simulated cluster, uploads a CSV file the HAIL way
/// (per-replica sort orders + clustered indexes created during upload),
/// and runs one annotated MapReduce job that is served by an index scan.
///
///   $ ./quickstart

#include <cstdio>

#include "util/string_util.h"
#include "workload/testbed.h"

using namespace hail;

int main() {
  // 1. A 4-node simulated cluster. Real bytes are scaled 1:256 to logical
  //    (paper-scale) bytes: each 16 KB real block models a 4 MB HDFS block.
  workload::TestbedConfig config;
  config.num_nodes = 4;
  config.real_block_bytes = 16 * 1024;
  config.logical_block_bytes = 4 * 1024 * 1024;
  config.blocks_per_node = 8;
  workload::Testbed bed(config);

  // 2. Generate a web log (the paper's UserVisits schema) and upload it
  //    with HAIL: replica 0 sorted+indexed by visitDate, replica 1 by
  //    sourceIP, replica 2 by adRevenue.
  bed.LoadUserVisits();
  auto upload = bed.UploadHail(
      "/logs", {workload::kVisitDate, workload::kSourceIP,
                workload::kAdRevenue});
  if (!upload.ok()) {
    std::fprintf(stderr, "upload failed: %s\n",
                 upload.status().ToString().c_str());
    return 1;
  }
  std::printf("Uploaded %u blocks (%s of text) in %.1f simulated seconds;\n"
              "every block now has three differently-indexed replicas.\n\n",
              upload->blocks,
              FormatBytes(upload->text_real_bytes).c_str(),
              upload->duration());

  // 3. Bob's query (§4.1):
  //      SELECT sourceIP FROM UserVisits
  //      WHERE visitDate BETWEEN '1999-01-01' AND '2000-01-01'
  //    In HAIL, the job is annotated instead of hand-filtering:
  mapreduce::JobSpec job;
  job.name = "quickstart";
  job.input_file = "/logs";
  job.schema = bed.schema();
  job.system = mapreduce::System::kHail;
  job.hail_splitting = true;
  job.collect_output = true;
  auto annotation = ParseAnnotation(
      bed.schema(), "@3 between(1999-01-01,2000-01-01)", "{@1}");
  HAIL_CHECK_OK(annotation.status());
  job.annotation = *annotation;
  // The map function sees only the projected attribute, exactly like the
  // paper's `void map(Text k, HailRecord v) { output(v.getInt(1), null); }`.
  job.map = [](const mapreduce::HailRecord& record,
               mapreduce::MapOutput* out) {
    if (record.bad()) return;
    out->Emit(record.GetString(1));  // @1 = sourceIP
  };

  mapreduce::JobRunner runner(&bed.dfs());
  auto result = runner.Run(job);
  HAIL_CHECK_OK(result.status());

  std::printf("Query ran as %u map tasks in %.1f simulated seconds.\n",
              result->map_tasks, result->end_to_end_seconds);
  std::printf("Scanned %llu records via the visitDate index, %llu matched.\n",
              static_cast<unsigned long long>(result->records_seen),
              static_cast<unsigned long long>(result->records_qualifying));
  std::printf("First qualifying sourceIPs:\n");
  for (size_t i = 0; i < result->output_rows.size() && i < 5; ++i) {
    std::printf("  %s\n", result->output_rows[i].c_str());
  }
  return 0;
}
