/// \file bench_fig9_splitting.cc
/// \brief Reproduces Figure 9: the HailSplitting policy (§6.5).
///
/// Same data and queries as Figures 6/7, but with HailSplitting enabled
/// for HAIL: index-scan jobs get #nodes x #slots splits instead of one
/// per block, collapsing thousands of map tasks to ~20 and with them the
/// scheduling overhead. 9(a) Bob queries, 9(b) Synthetic queries, 9(c)
/// total workload runtimes — the paper's headline 68x/39x.

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::JobResult;
using mapreduce::System;
using workload::Testbed;

struct Fig9Results {
  // Bob workload.
  JobResult bob_hadoop[5], bob_hpp[5], bob_hail[5];
  // Synthetic workload.
  JobResult syn_hadoop[6], syn_hpp[6], syn_hail[6];
};

const Fig9Results& Run() {
  static const Fig9Results results = [] {
    Fig9Results out;
    const auto bob = workload::BobQueries();
    const auto syn = workload::SyntheticQueries();
    // --- UserVisits ---
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHadoop("/uv").status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < bob.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoop, "/uv", bob[i]);
        HAIL_CHECK_OK(r.status());
        out.bob_hadoop[i] = *r;
      }
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHadoopPP("/uv", workload::kSourceIP).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < bob.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoopPP, "/uv", bob[i]);
        HAIL_CHECK_OK(r.status());
        out.bob_hpp[i] = *r;
      }
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHail("/uv", BobSortColumns()).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < bob.size(); ++i) {
        auto r = bed.RunQuery(System::kHail, "/uv", bob[i],
                              /*hail_splitting=*/true);
        HAIL_CHECK_OK(r.status());
        out.bob_hail[i] = *r;
      }
    }
    // --- Synthetic ---
    {
      Testbed bed(PaperSyntheticConfig());
      bed.LoadSynthetic();
      HAIL_CHECK_OK(bed.UploadHadoop("/syn").status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < syn.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoop, "/syn", syn[i]);
        HAIL_CHECK_OK(r.status());
        out.syn_hadoop[i] = *r;
      }
    }
    {
      Testbed bed(PaperSyntheticConfig());
      bed.LoadSynthetic();
      HAIL_CHECK_OK(bed.UploadHadoopPP("/syn", 0).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < syn.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoopPP, "/syn", syn[i]);
        HAIL_CHECK_OK(r.status());
        out.syn_hpp[i] = *r;
      }
    }
    {
      Testbed bed(PaperSyntheticConfig());
      bed.LoadSynthetic();
      HAIL_CHECK_OK(bed.UploadHail("/syn", {0, 1, 2}).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < syn.size(); ++i) {
        auto r = bed.RunQuery(System::kHail, "/syn", syn[i],
                              /*hail_splitting=*/true);
        HAIL_CHECK_OK(r.status());
        out.syn_hail[i] = *r;
      }
    }
    return out;
  }();
  return results;
}

void BM_Fig9a_HAIL(benchmark::State& state) {
  const JobResult& r = Run().bob_hail[state.range(0)];
  ReportSimSeconds(state, r.end_to_end_seconds);
  state.counters["map_tasks"] = r.map_tasks;
}
void BM_Fig9b_HAIL(benchmark::State& state) {
  const JobResult& r = Run().syn_hail[state.range(0)];
  ReportSimSeconds(state, r.end_to_end_seconds);
  state.counters["map_tasks"] = r.map_tasks;
}
void BM_Fig9c_Bob_Total_Hadoop(benchmark::State& state) {
  double total = 0;
  for (const auto& r : Run().bob_hadoop) total += r.end_to_end_seconds;
  ReportSimSeconds(state, total);
}
void BM_Fig9c_Bob_Total_HAIL(benchmark::State& state) {
  double total = 0;
  for (const auto& r : Run().bob_hail) total += r.end_to_end_seconds;
  ReportSimSeconds(state, total);
}
void BM_Fig9c_Syn_Total_Hadoop(benchmark::State& state) {
  double total = 0;
  for (const auto& r : Run().syn_hadoop) total += r.end_to_end_seconds;
  ReportSimSeconds(state, total);
}
void BM_Fig9c_Syn_Total_HAIL(benchmark::State& state) {
  double total = 0;
  for (const auto& r : Run().syn_hail) total += r.end_to_end_seconds;
  ReportSimSeconds(state, total);
}

BENCHMARK(BM_Fig9a_HAIL)->DenseRange(0, 4)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig9b_HAIL)->DenseRange(0, 5)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig9c_Bob_Total_Hadoop)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig9c_Bob_Total_HAIL)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig9c_Syn_Total_Hadoop)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig9c_Syn_Total_HAIL)->Iterations(1)->UseManualTime();

double Total(const JobResult* rs, int n) {
  double total = 0;
  for (int i = 0; i < n; ++i) total += rs[i].end_to_end_seconds;
  return total;
}

void PrintTables() {
  const Fig9Results& r = Run();
  {
    PaperTable t("Figure 9(a): Bob queries with HailSplitting", "s");
    const char* names[] = {"Bob-Q1", "Bob-Q2", "Bob-Q3", "Bob-Q4", "Bob-Q5"};
    const double paper_hail[] = {16, 15, 15, 22, 65};
    const double paper_hadoop[] = {1094, 1006, 942, 1099, 1099};
    for (int i = 0; i < 5; ++i) {
      t.Add(std::string(names[i]) + " Hadoop", paper_hadoop[i],
            r.bob_hadoop[i].end_to_end_seconds);
      t.Add(std::string(names[i]) + " HAIL(split)", paper_hail[i],
            r.bob_hail[i].end_to_end_seconds);
    }
    t.Print();
    double best = 0;
    for (int i = 0; i < 5; ++i) {
      best = std::max(best, r.bob_hadoop[i].end_to_end_seconds /
                                r.bob_hail[i].end_to_end_seconds);
    }
    std::printf("  Max speedup vs Hadoop: paper up to 68x, measured %.0fx; "
                "map tasks collapsed %u -> %u (paper 3200 -> 20)\n",
                best, r.bob_hadoop[0].map_tasks, r.bob_hail[0].map_tasks);
  }
  {
    PaperTable t("Figure 9(b): Synthetic queries with HailSplitting", "s");
    const char* names[] = {"Syn-Q1a", "Syn-Q1b", "Syn-Q1c",
                           "Syn-Q2a", "Syn-Q2b", "Syn-Q2c"};
    const double paper_hail[] = {127, 63, 28, 57, 23, 17};
    for (int i = 0; i < 6; ++i) {
      t.Add(std::string(names[i]) + " HAIL(split)", paper_hail[i],
            r.syn_hail[i].end_to_end_seconds);
    }
    t.Print();
  }
  {
    PaperTable t("Figure 9(c): total workload runtimes", "s");
    t.Add("Bob workload Hadoop", 5240, Total(r.bob_hadoop, 5));
    t.Add("Bob workload Hadoop++", 4804, Total(r.bob_hpp, 5));
    t.Add("Bob workload HAIL", 133, Total(r.bob_hail, 5));
    t.Add("Synthetic workload Hadoop", 2918, Total(r.syn_hadoop, 6));
    t.Add("Synthetic workload Hadoop++", 2655, Total(r.syn_hpp, 6));
    t.Add("Synthetic workload HAIL", 315, Total(r.syn_hail, 6));
    t.Print();
    std::printf(
        "  Bob total speedup vs Hadoop: paper 39x, measured %.0fx; vs "
        "Hadoop++: paper 36x, measured %.0fx\n",
        Total(r.bob_hadoop, 5) / Total(r.bob_hail, 5),
        Total(r.bob_hpp, 5) / Total(r.bob_hail, 5));
    std::printf(
        "  Synthetic total speedup vs Hadoop: paper 9x, measured %.0fx\n",
        Total(r.syn_hadoop, 6) / Total(r.syn_hail, 6));
  }
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
