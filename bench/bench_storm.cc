/// \file bench_storm.cc
/// \brief Overload hardening under a 1000-query skewed-tenant storm.
///
/// One storm, run twice on identical submissions (mapreduce/scheduler.h):
///
///   OFF — the unhardened baseline: FIFO slots, no SLOs, no admission
///         control, no preemption, no adaptation. A flood of expensive
///         full scans head-of-line blocks the short tenant for the whole
///         backlog.
///   ON  — the hardened bundle: weighted fair sharing + per-queue latency
///         SLOs (EDF escalation past deadline), preemption with a
///         catch-up timeout, bounded admission on the heavy queue
///         (deterministic Status::Overloaded shedding), and the adaptive
///         manager running online with aggressive replication under a
///         storage budget, riding the maintenance queue.
///
/// The storm itself: 940 short indexed queries (one every 10 s), a flood
/// of 45 expensive full scans in the first 90 s, and 15 more sustained
/// full scans spread across the session — 1000 queries total, submitted
/// in arrival order so FIFO means genuine arrival order.
///
/// Gates (nonzero exit on regression):
///   1. short-tenant p99 latency improves by at least 2x with hardening;
///   2. the in-budget short queue has ZERO SLO violations when hardened;
///   3. some heavy jobs are genuinely shed, and the hardened session is
///      bit-identical (%.17g dump) between serial and parallel execution
///      — shedding decisions included;
///   4. maintenance_while_foreground_pending stays 0 while aggressive
///      replication runs (replication never starves the foreground);
///   5. the replication budget is actually exercised: replicas_added > 0.
///
/// Usage: bench_storm [BENCH_storm.json]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/adaptive_manager.h"
#include "mapreduce/scheduler.h"
#include "obs/metrics.h"
#include "util/macros.h"
#include "workload/testbed.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::ClusterSession;
using mapreduce::ExecutionMode;
using mapreduce::QueueUsage;
using mapreduce::SchedulerPolicy;
using mapreduce::SessionOptions;
using mapreduce::System;
using workload::QueryDef;
using workload::Testbed;
using workload::TestbedConfig;

// Storm shape: 940 + 45 + 15 = 1000 queries.
constexpr int kShortJobs = 940;
constexpr double kShortSpacingS = 10.0;
constexpr int kFloodJobs = 45;
constexpr double kFloodSpacingS = 2.0;
constexpr int kSustainedJobs = 15;
constexpr double kSustainedStartS = 300.0;
constexpr double kSustainedSpacingS = 600.0;

// Hardened-session knobs.
constexpr double kShortSloS = 90.0;
constexpr double kPreemptionCatchupS = 20.0;
constexpr size_t kHeavyMaxBacklog = 2;
constexpr double kHeavyShedWaitS = 240.0;

/// 4 nodes, 4 blocks/node at 256 MB logical — full-scan tasks run ~10x
/// longer than indexed ones, so the flood genuinely saturates all 8 map
/// slots while each short query stays a two-wave job.
TestbedConfig StormConfig() {
  TestbedConfig config;
  config.num_nodes = 4;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 4;
  config.logical_block_bytes = 256ull * 1024 * 1024;
  config.seed = 42;
  return config;
}

mapreduce::JobSpec QueryJob(const Testbed& bed, const QueryDef& query) {
  auto spec = workload::MakeQueryJob(bed.schema(), "/uv", System::kHail, query,
                                     /*hail_splitting=*/false,
                                     /*collect_output=*/false);
  HAIL_CHECK_OK(spec.status());
  return *spec;
}

// Shared %.17g bit-identity dump (workload/testbed.h) — same field list
// as the determinism tests, so the gate cannot silently weaken.
using workload::DumpSession;

/// Submits the 1000-query storm in arrival order (stable by arrival time,
/// shorts before heavies at equal instants), so FIFO in the OFF run means
/// genuine arrival order rather than Submit-call order.
void SubmitStorm(const Testbed& bed, ClusterSession* session) {
  const auto bob = workload::BobQueries();
  // No replica anywhere is sorted on adRevenue at upload time, so every
  // storm scan starts as a fallback full scan — the expensive tenant.
  const QueryDef storm_scan{"Storm-Scan", "@4 between(1,10)", "{@1,@4}",
                            1.7e-2};
  struct Arrival {
    double time;
    int order;  // tie-break: generation order
    bool heavy;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(kShortJobs + kFloodJobs + kSustainedJobs);
  int order = 0;
  for (int i = 0; i < kShortJobs; ++i) {
    arrivals.push_back({kShortSpacingS * i, order++, false});
  }
  for (int i = 0; i < kFloodJobs; ++i) {
    arrivals.push_back({kFloodSpacingS * i, order++, true});
  }
  for (int i = 0; i < kSustainedJobs; ++i) {
    arrivals.push_back(
        {kSustainedStartS + kSustainedSpacingS * i, order++, true});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.order < b.order;
            });
  for (const Arrival& a : arrivals) {
    session->Submit(QueryJob(bed, a.heavy ? storm_scan : bob[0]),
                    a.heavy ? "heavy" : "short", a.time);
  }
}

struct StormNumbers {
  double short_p50 = 0.0;
  double short_p95 = 0.0;
  double short_p99 = 0.0;
  uint64_t short_violations = 0;
  uint64_t short_completed = 0;
  uint64_t heavy_completed = 0;
  uint64_t heavy_shed = 0;
  uint32_t preemptions = 0;
  double preempted_slot_seconds = 0.0;
  uint32_t replicas_added = 0;
  uint32_t replicas_evicted = 0;
  uint64_t maintenance_violations = 0;
  uint32_t maintenance_completed = 0;
  double session_seconds = 0.0;
  std::string dump;  // %.17g bit-identity dump
};

StormNumbers RunStorm(bool hardened, ExecutionMode mode) {
  Testbed bed(StormConfig());
  bed.LoadUserVisits();
  HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate}).status());
  bed.FreeSourceTexts();

  // Aggressive replication: once the storm makes adRevenue hot, add extra
  // replicas of its blocks beyond the replication factor, under a 4-block
  // storage budget. Only wired into the hardened session.
  adaptive::AdaptiveConfig acfg;
  acfg.planner.regret_threshold = 0.01;
  acfg.planner.escalate_after_rounds = 1;
  acfg.planner.aggressive_replication = true;
  acfg.planner.replication_budget_bytes =
      4 * StormConfig().real_block_bytes;
  adaptive::AdaptiveManager manager(&bed.dfs(), bed.schema(), "/uv", acfg);

  SessionOptions opt;
  opt.execution = mode;
  if (hardened) {
    opt.policy = SchedulerPolicy::kFair;
    opt.queue_weights = {{"short", 6.0}, {"heavy", 2.0}};
    opt.queue_slo_s = {{"short", kShortSloS}};
    opt.queue_admission["heavy"].max_backlog_jobs = kHeavyMaxBacklog;
    opt.queue_admission["heavy"].shed_wait_s = kHeavyShedWaitS;
    opt.preemption = true;
    opt.preemption_catchup_s = kPreemptionCatchupS;
    opt.adaptive = &manager;
    opt.online_adaptation = true;
  }
  ClusterSession session(&bed.dfs(), opt);
  SubmitStorm(bed, &session);
  auto sr = session.Run();
  HAIL_CHECK_OK(sr.status());
  for (const auto& job : sr->jobs) {
    // Shed jobs surface as Status::Overloaded; anything else must be ok.
    if (!job.ok() && !job.status().IsOverloaded()) {
      HAIL_CHECK_OK(job.status());
    }
  }

  StormNumbers out;
  for (const QueueUsage& q : sr->queues) {
    if (q.queue == "short") {
      out.short_p50 = q.latency_p50_s;
      out.short_p95 = q.latency_p95_s;
      out.short_p99 = q.latency_p99_s;
      out.short_violations = q.slo_violations;
      out.short_completed = q.jobs_completed;
    } else if (q.queue == "heavy") {
      out.heavy_completed = q.jobs_completed;
      out.heavy_shed = q.jobs_shed;
    }
  }
  out.preemptions = sr->preemptions;
  out.preempted_slot_seconds = sr->preempted_slot_seconds;
  out.replicas_added = sr->replicas_added;
  out.replicas_evicted = sr->replicas_evicted;
  out.maintenance_violations = sr->maintenance_while_foreground_pending;
  out.maintenance_completed = sr->maintenance_completed;
  out.session_seconds = sr->session_seconds;
  out.dump = DumpSession(*sr);
  return out;
}

int Main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_storm.json";
  constexpr double kP99ImprovementFloor = 2.0;

  std::printf("1000-query skewed-tenant storm: %d short + %d flood + %d "
              "sustained heavy\n\n",
              kShortJobs, kFloodJobs, kSustainedJobs);

  const StormNumbers off = RunStorm(/*hardened=*/false, ExecutionMode::kSerial);
  const StormNumbers on = RunStorm(/*hardened=*/true, ExecutionMode::kSerial);
  const StormNumbers on_par =
      RunStorm(/*hardened=*/true, ExecutionMode::kParallel);
  const bool deterministic = on.dump == on_par.dump;

  const double improvement =
      on.short_p99 > 0.0 ? off.short_p99 / on.short_p99 : 0.0;

  std::printf("short tenant latency (s):  off p50 %.1f p95 %.1f p99 %.1f\n",
              off.short_p50, off.short_p95, off.short_p99);
  std::printf("                           on  p50 %.1f p95 %.1f p99 %.1f "
              "(p99 %.1fx better, floor %.1fx)\n",
              on.short_p50, on.short_p95, on.short_p99, improvement,
              kP99ImprovementFloor);
  std::printf("short SLO (%.0f s): %llu violations hardened "
              "(%llu jobs completed)\n",
              kShortSloS,
              static_cast<unsigned long long>(on.short_violations),
              static_cast<unsigned long long>(on.short_completed));
  std::printf("heavy queue: %llu completed + %llu shed hardened "
              "(off: %llu completed, %llu shed)\n",
              static_cast<unsigned long long>(on.heavy_completed),
              static_cast<unsigned long long>(on.heavy_shed),
              static_cast<unsigned long long>(off.heavy_completed),
              static_cast<unsigned long long>(off.heavy_shed));
  std::printf("preemption: %u tasks preempted, %.1f slot-seconds billed\n",
              on.preemptions, on.preempted_slot_seconds);
  std::printf("aggressive replication: %u replicas added, %u evicted, "
              "%u maintenance tasks drained, %llu priority violations\n",
              on.replicas_added, on.replicas_evicted,
              on.maintenance_completed,
              static_cast<unsigned long long>(on.maintenance_violations));
  std::printf("hardened session serial == parallel (sheds included): %s\n",
              deterministic ? "yes" : "NO");
  if (!deterministic) {
    std::printf("--- serial ---\n%s\n--- parallel ---\n%s\n", on.dump.c_str(),
                on_par.dump.c_str());
  }
  std::printf("session makespan: off %.0f s, on %.0f s\n", off.session_seconds,
              on.session_seconds);

  const bool p99_ok = improvement >= kP99ImprovementFloor;
  const bool slo_ok = on.short_violations == 0 && on.short_completed > 0;
  const bool shed_ok = on.heavy_shed > 0 && deterministic;
  const bool maint_ok =
      on.maintenance_violations == 0 && on.replicas_added > 0;

  // The report is a metrics registry serialized by the shared snapshot
  // writer (obs/metrics.h) — counters for integral/boolean facts, gauges
  // for seconds/ratios — so BENCH_*.json keys cannot drift from the
  // metric names and every bench emits the same JSON shape.
  obs::MetricsRegistry report;
  report.counter("storm_queries")
      ->Add(kShortJobs + kFloodJobs + kSustainedJobs);
  report.gauge("short_p50_off_seconds")->Set(off.short_p50);
  report.gauge("short_p95_off_seconds")->Set(off.short_p95);
  report.gauge("short_p99_off_seconds")->Set(off.short_p99);
  report.gauge("short_p50_on_seconds")->Set(on.short_p50);
  report.gauge("short_p95_on_seconds")->Set(on.short_p95);
  report.gauge("short_p99_on_seconds")->Set(on.short_p99);
  report.gauge("short_p99_improvement")->Set(improvement);
  report.gauge("short_p99_improvement_floor")->Set(kP99ImprovementFloor);
  report.gauge("short_slo_seconds")->Set(kShortSloS);
  report.counter("short_slo_violations_on")->Add(on.short_violations);
  report.counter("heavy_completed_on")->Add(on.heavy_completed);
  report.counter("heavy_shed_on")->Add(on.heavy_shed);
  report.counter("preemptions_on")->Add(on.preemptions);
  report.gauge("preempted_slot_seconds_on")->Set(on.preempted_slot_seconds);
  report.counter("replicas_added_on")->Add(on.replicas_added);
  report.counter("replicas_evicted_on")->Add(on.replicas_evicted);
  report.counter("maintenance_completed_on")->Add(on.maintenance_completed);
  report.counter("maintenance_priority_violations_on")
      ->Add(on.maintenance_violations);
  report.gauge("session_seconds_off")->Set(off.session_seconds);
  report.gauge("session_seconds_on")->Set(on.session_seconds);
  report.counter("serial_equals_parallel")->Add(deterministic ? 1 : 0);
  if (obs::WriteTextFile(json_path, report.TakeSnapshot().ToJson())) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }

  if (!p99_ok) {
    std::fprintf(stderr,
                 "FAIL: hardened short-tenant p99 improvement %.2fx below "
                 "%.2fx floor\n",
                 improvement, kP99ImprovementFloor);
  }
  if (!slo_ok) {
    std::fprintf(stderr,
                 "FAIL: in-budget short queue violated its SLO under "
                 "hardening\n");
  }
  if (!shed_ok) {
    std::fprintf(stderr,
                 "FAIL: shedding absent or not deterministic across "
                 "serial/parallel\n");
  }
  if (!maint_ok) {
    std::fprintf(stderr,
                 "FAIL: aggressive replication gate (added=%u, priority "
                 "violations=%llu)\n",
                 on.replicas_added,
                 static_cast<unsigned long long>(on.maintenance_violations));
  }
  return p99_ok && slo_ok && shed_ok && maint_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) { return hail::bench::Main(argc, argv); }
