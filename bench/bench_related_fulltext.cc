/// \file bench_related_fulltext.cc
/// \brief Reproduces the §5 micro-comparison with full-text indexing [15].
///
/// "We observed that [15] required 2,088 seconds to only create a
/// full-text index on 20 GB, while HAIL takes 1,600 seconds to both
/// upload and index 200 GB." The full-text indexer is modelled from its
/// published cost structure: tokenise every string attribute, build
/// per-term posting lists (an extra MapReduce pass with a full shuffle),
/// and write the inverted index — an order of magnitude more CPU and I/O
/// per input byte than HAIL's sort-based piggybacking.

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using workload::Testbed;

struct FullTextResults {
  double hail_200gb = 0;       // upload + 3 clustered indexes, 200 GB
  double fulltext_20gb = 0;    // index-only on 20 GB
};

/// Cost model of the Twitter full-text indexer (Lucene-style): one
/// tokenisation+posting pass over the text plus a shuffle and inverted-
/// index write of about the input size.
double FullTextIndexSeconds(double gigabytes, const sim::CostModel& cost,
                            int nodes, int cores) {
  const uint64_t bytes =
      static_cast<uint64_t>(gigabytes * 1024 * 1024 * 1024) /
      static_cast<uint64_t>(nodes);
  // Tokenising and posting-list construction: ~90 ms/MB per core
  // (measured Lucene-era throughput ~11 MB/s/core).
  const double tokenize_ms_per_mb = 90.0;
  const double cpu_s = static_cast<double>(bytes) / (1024.0 * 1024.0) *
                       tokenize_ms_per_mb / 1000.0 / cores;
  // Read input once, spill postings once, shuffle, write merged index
  // (~1.0x input) with replication 3.
  const double disk_s = cost.DiskTransfer(bytes) * (1.0 + 1.0 + 3.0);
  const double net_s = cost.NetTransfer(bytes) * 2.0;
  return std::max({cpu_s, disk_s, net_s}) + 12.0;  // + job overheads
}

const FullTextResults& Run() {
  static const FullTextResults results = [] {
    FullTextResults out;
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      auto r = bed.UploadHail("/uv", BobSortColumns());
      HAIL_CHECK_OK(r.status());
      out.hail_200gb = r->duration();
    }
    {
      sim::CostModel cost(sim::NodeProfile::Physical(),
                          sim::CostConstants{});
      out.fulltext_20gb = FullTextIndexSeconds(20.0, cost, 10, 4);
    }
    return out;
  }();
  return results;
}

void BM_HAIL_UploadIndex_200GB(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail_200gb);
}
void BM_FullText_IndexOnly_20GB(benchmark::State& state) {
  ReportSimSeconds(state, Run().fulltext_20gb);
}

BENCHMARK(BM_HAIL_UploadIndex_200GB)->Iterations(1)->UseManualTime();
BENCHMARK(BM_FullText_IndexOnly_20GB)->Iterations(1)->UseManualTime();

void PrintTables() {
  const FullTextResults& r = Run();
  PaperTable t("§5 micro-benchmark: full-text indexing [15] vs HAIL", "s");
  t.Add("full-text index only, 20 GB", 2088, r.fulltext_20gb);
  t.Add("HAIL upload + 3 indexes, 200 GB", 1600, r.hail_200gb);
  t.Print();
  std::printf(
      "  Per-GB indexing cost ratio (full-text / HAIL): measured %.0fx\n",
      (r.fulltext_20gb / 20.0) / (r.hail_200gb / 200.0));
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
