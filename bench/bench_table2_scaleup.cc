/// \file bench_table2_scaleup.cc
/// \brief Reproduces Table 2: upload times when scaling up node hardware.
///
/// Four node types (EC2 m1.large / m1.xlarge / cc1.4xlarge, plus the
/// physical cluster), 10 nodes each, Hadoop vs HAIL with 3 indexes.
/// The paper's shape: on UserVisits HAIL is CPU-bound, so its System
/// Speedup (HAIL vs Hadoop) improves with better CPUs (0.54 -> 0.87); on
/// Synthetic the binary conversion shrinks the data enough that HAIL wins
/// everywhere, again improving with CPU (1.15 -> 1.58).

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

struct NodeTypeRow {
  const char* label;
  sim::NodeProfile profile;
  double paper_hadoop_uv, paper_hail_uv;
  double paper_hadoop_syn, paper_hail_syn;
};

const NodeTypeRow kRows[] = {
    {"EC2 m1.large", sim::NodeProfile::EC2Large(), 1844, 3418, 1176, 1023},
    {"EC2 m1.xlarge", sim::NodeProfile::EC2XLarge(), 1296, 2039, 788, 640},
    {"EC2 cc1.4xlarge", sim::NodeProfile::EC2ClusterQuad(), 1284, 1742, 827,
     600},
    {"physical", sim::NodeProfile::Physical(), 1398, 1600, 1132, 717},
};

struct ScaleUpResults {
  double hadoop_uv[4], hail_uv[4];
  double hadoop_syn[4], hail_syn[4];
};

const ScaleUpResults& Run() {
  static const ScaleUpResults results = [] {
    ScaleUpResults out{};
    for (size_t i = 0; i < std::size(kRows); ++i) {
      for (int synthetic = 0; synthetic < 2; ++synthetic) {
        TestbedConfig config =
            synthetic ? PaperSyntheticConfig() : PaperUserVisitsConfig();
        config.profile = kRows[i].profile;
        {
          Testbed bed(config);
          synthetic ? bed.LoadSynthetic() : bed.LoadUserVisits();
          auto r = bed.UploadHadoop("/data");
          HAIL_CHECK_OK(r.status());
          (synthetic ? out.hadoop_syn : out.hadoop_uv)[i] = r->duration();
        }
        {
          Testbed bed(config);
          synthetic ? bed.LoadSynthetic() : bed.LoadUserVisits();
          auto r = bed.UploadHail(
              "/data", synthetic ? std::vector<int>{0, 1, 2}
                                 : BobSortColumns());
          HAIL_CHECK_OK(r.status());
          (synthetic ? out.hail_syn : out.hail_uv)[i] = r->duration();
        }
      }
    }
    return out;
  }();
  return results;
}

void BM_Table2a_Hadoop(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop_uv[state.range(0)]);
}
void BM_Table2a_HAIL(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail_uv[state.range(0)]);
}
void BM_Table2b_Hadoop(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop_syn[state.range(0)]);
}
void BM_Table2b_HAIL(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail_syn[state.range(0)]);
}

BENCHMARK(BM_Table2a_Hadoop)->DenseRange(0, 3)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Table2a_HAIL)->DenseRange(0, 3)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Table2b_Hadoop)->DenseRange(0, 3)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Table2b_HAIL)->DenseRange(0, 3)->Iterations(1)->UseManualTime();

void PrintTables() {
  const ScaleUpResults& r = Run();
  {
    PaperTable t("Table 2(a): UserVisits upload when scaling up", "s");
    for (size_t i = 0; i < std::size(kRows); ++i) {
      t.Add(std::string(kRows[i].label) + " Hadoop", kRows[i].paper_hadoop_uv,
            r.hadoop_uv[i]);
      t.Add(std::string(kRows[i].label) + " HAIL", kRows[i].paper_hail_uv,
            r.hail_uv[i]);
    }
    t.Print();
    std::printf("  System speedup (Hadoop/HAIL), paper vs measured:\n");
    const double paper_speedup[] = {0.54, 0.64, 0.74, 0.87};
    for (size_t i = 0; i < std::size(kRows); ++i) {
      std::printf("    %-16s paper %.2f  measured %.2f\n", kRows[i].label,
                  paper_speedup[i], r.hadoop_uv[i] / r.hail_uv[i]);
    }
  }
  {
    PaperTable t("Table 2(b): Synthetic upload when scaling up", "s");
    for (size_t i = 0; i < std::size(kRows); ++i) {
      t.Add(std::string(kRows[i].label) + " Hadoop",
            kRows[i].paper_hadoop_syn, r.hadoop_syn[i]);
      t.Add(std::string(kRows[i].label) + " HAIL", kRows[i].paper_hail_syn,
            r.hail_syn[i]);
    }
    t.Print();
    std::printf("  System speedup (Hadoop/HAIL), paper vs measured:\n");
    const double paper_speedup[] = {1.15, 1.23, 1.38, 1.58};
    for (size_t i = 0; i < std::size(kRows); ++i) {
      std::printf("    %-16s paper %.2f  measured %.2f\n", kRows[i].label,
                  paper_speedup[i], r.hadoop_syn[i] / r.hail_syn[i]);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
