/// \file bench_scheduler.cc
/// \brief Shared-cluster scheduling under a mixed tenant mix: uploads,
/// query streams and adaptive maintenance contending for the same map
/// slots on one simulated clock (mapreduce/scheduler.h).
///
/// Three measurements, all gated (nonzero exit on regression):
///   1. fair share — two query queues with 3:1 weights saturate the
///      cluster; the heavy queue's share of contended slot-seconds must
///      match its entitlement within tolerance, and under FIFO the light
///      tenant's first job must wait for the whole heavy backlog while
///      fair sharing serves it concurrently;
///   2. maintenance priority — the same staggered query stream with the
///      adaptive manager's replica rewrites queued vs without: strictly
///      low-priority background work must never be assigned while
///      foreground is pending (the recorded invariant counter stays 0)
///      and must not inflate foreground latency beyond tolerance;
///   3. determinism — one mixed session (upload + queries + maintenance,
///      fair policy) executed serially and in parallel must dump
///      bit-identical simulated results (%.17g).
///
/// The JSON report (BENCH_sched.json) carries every number so scheduling
/// behaviour is a build artifact.
///
/// Usage: bench_scheduler [BENCH_sched.json]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/adaptive_manager.h"
#include "mapreduce/scheduler.h"
#include "util/macros.h"
#include "workload/testbed.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::ClusterSession;
using mapreduce::ExecutionMode;
using mapreduce::JobResult;
using mapreduce::QueueUsage;
using mapreduce::SchedulerPolicy;
using mapreduce::SessionOptions;
using mapreduce::SessionResult;
using mapreduce::System;
using mapreduce::UploadJobSpec;
using workload::QueryDef;
using workload::Testbed;
using workload::TestbedConfig;

/// Small paper-scale cluster: 4 nodes, 1 GB/node of UserVisits at the
/// paper's 64 MB logical blocks (scale 1/2048) — big enough that several
/// tenants genuinely queue for slots, small enough for a CI smoke.
TestbedConfig SchedConfig() {
  TestbedConfig config;
  config.num_nodes = 4;
  config.real_block_bytes = 32 * 1024;
  config.blocks_per_node = 16;
  config.seed = 42;
  return config;
}

mapreduce::JobSpec QueryJob(const Testbed& bed, const std::string& path,
                            const QueryDef& query) {
  auto spec = workload::MakeQueryJob(bed.schema(), path, System::kHail, query,
                                     /*hail_splitting=*/false,
                                     /*collect_output=*/false);
  HAIL_CHECK_OK(spec.status());
  return *spec;
}

// Shared %.17g bit-identity dump (workload/testbed.h) — same field list
// as the determinism tests, so this gate cannot silently weaken.
using workload::DumpSession;

// ---------------------------------------------------------------------------
// 1. fair share vs entitlement (+ FIFO head-of-line baseline)
// ---------------------------------------------------------------------------

struct FairnessNumbers {
  double heavy_share = 0.0;       // contended slot-second share
  double entitlement = 0.0;       // weight share
  double fifo_light_first = 0.0;  // light tenant's first-job latency, FIFO
  double fair_light_first = 0.0;  // ... under weighted fair sharing
};

FairnessNumbers RunFairness(SchedulerPolicy policy, FairnessNumbers base) {
  Testbed bed(SchedConfig());
  bed.LoadUserVisits();
  HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate}).status());
  bed.FreeSourceTexts();
  const auto bob = workload::BobQueries();
  // Heavy tenant: a backlog of expensive full scans (duration has no index
  // anywhere). Light tenant: short indexed queries submitted at the same
  // instant — the classic short-job-behind-long-backlog case FIFO
  // head-of-line blocks and weighted fair sharing serves concurrently.
  const QueryDef long_scan{"Long-Q", "@9 = 4242", "{@1,@9}", 1e-4};

  SessionOptions opt;
  opt.policy = policy;
  opt.queue_weights = {{"heavy", 3.0}, {"light", 1.0}};
  ClusterSession session(&bed.dfs(), opt);
  int light_first = -1;
  for (int i = 0; i < 3; ++i) {
    session.Submit(QueryJob(bed, "/uv", long_scan), "heavy");
  }
  for (int i = 0; i < 3; ++i) {
    const int id = session.Submit(QueryJob(bed, "/uv", bob[0]), "light");
    if (light_first < 0) light_first = id;
  }
  auto sr = session.Run();
  HAIL_CHECK_OK(sr.status());
  for (const auto& job : sr->jobs) HAIL_CHECK_OK(job.status());

  double heavy_css = 0.0;
  double total_css = 0.0;
  for (const QueueUsage& q : sr->queues) {
    total_css += q.contended_slot_seconds;
    if (q.queue == "heavy") heavy_css += q.contended_slot_seconds;
  }
  if (policy == SchedulerPolicy::kFair) {
    base.heavy_share = total_css > 0.0 ? heavy_css / total_css : 0.0;
    base.entitlement = 3.0 / 4.0;
    base.fair_light_first =
        sr->jobs[static_cast<size_t>(light_first)]->end_to_end_seconds;
  } else {
    base.fifo_light_first =
        sr->jobs[static_cast<size_t>(light_first)]->end_to_end_seconds;
  }
  return base;
}

// ---------------------------------------------------------------------------
// 2. foreground latency with maintenance on vs off
// ---------------------------------------------------------------------------

struct MaintenanceNumbers {
  double fg_latency_off = 0.0;  // mean foreground e2e, no maintenance
  double fg_latency_on = 0.0;   // ... with the rewrite backlog draining
  uint64_t maintenance_completed = 0;
  uint64_t violations = 0;  // assignments while foreground pending
};

MaintenanceNumbers RunMaintenanceLatency() {
  MaintenanceNumbers out;
  const QueryDef shifted{"Shift-Q", "@9 = 4242", "{@1,@9}", 1e-4};
  for (int with_maintenance = 0; with_maintenance <= 1; ++with_maintenance) {
    Testbed bed(SchedConfig());
    bed.LoadUserVisits();
    HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate}).status());
    bed.FreeSourceTexts();

    adaptive::AdaptiveConfig acfg;
    acfg.planner.regret_threshold = 0.2;
    acfg.planner.escalate_after_rounds = 1;
    adaptive::AdaptiveManager manager(&bed.dfs(), bed.schema(), "/uv", acfg);
    if (with_maintenance == 1) {
      // Seed the rewrite backlog: one observed full-scan round makes the
      // planner enqueue per-block maintenance.
      mapreduce::RunOptions ropt;
      ropt.adaptive = &manager;
      mapreduce::JobRunner runner(&bed.dfs());
      HAIL_CHECK_OK(runner.Run(QueryJob(bed, "/uv", shifted), ropt).status());
    }

    SessionOptions opt;
    if (with_maintenance == 1) opt.adaptive = &manager;
    ClusterSession session(&bed.dfs(), opt);
    // Staggered stream: gaps between submissions are exactly the windows
    // where strictly-low-priority maintenance may grab slots.
    const auto bob = workload::BobQueries();
    session.Submit(QueryJob(bed, "/uv", bob[0]), "default", 0.0);
    session.Submit(QueryJob(bed, "/uv", bob[3]), "default", 120.0);
    session.Submit(QueryJob(bed, "/uv", bob[0]), "default", 240.0);
    auto sr = session.Run();
    HAIL_CHECK_OK(sr.status());
    double sum = 0.0;
    for (const auto& job : sr->jobs) {
      HAIL_CHECK_OK(job.status());
      sum += job->end_to_end_seconds;
    }
    const double mean = sum / static_cast<double>(sr->jobs.size());
    if (with_maintenance == 1) {
      out.fg_latency_on = mean;
      out.maintenance_completed = sr->maintenance_completed;
      out.violations = sr->maintenance_while_foreground_pending;
    } else {
      out.fg_latency_off = mean;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// 3. serial == parallel over a mixed upload+query+maintenance session
// ---------------------------------------------------------------------------

std::string RunMixedSession(ExecutionMode mode) {
  Testbed bed(SchedConfig());
  bed.LoadUserVisits();
  HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate}).status());

  adaptive::AdaptiveConfig acfg;
  acfg.planner.regret_threshold = 0.2;
  acfg.planner.escalate_after_rounds = 1;
  adaptive::AdaptiveManager manager(&bed.dfs(), bed.schema(), "/uv", acfg);
  const QueryDef shifted{"Shift-Q", "@9 = 4242", "{@1,@9}", 1e-4};
  {
    mapreduce::RunOptions ropt;
    ropt.execution = mode;
    ropt.adaptive = &manager;
    mapreduce::JobRunner runner(&bed.dfs());
    HAIL_CHECK_OK(runner.Run(QueryJob(bed, "/uv", shifted), ropt).status());
  }

  UploadJobSpec up;
  up.name = "ingest:/u2";
  up.system = System::kHail;
  up.hail.schema = bed.schema();
  up.hail.sort_columns = {workload::kVisitDate};
  for (int i = 0; i < 2; ++i) {
    workload::UserVisitsConfig uv;
    uv.rows = 2000;
    uv.seed = 777 + static_cast<uint64_t>(i);
    uv.scale_factor = bed.scale_factor();
    UploadJobSpec::File f;
    f.client_node = i;
    char part[32];
    std::snprintf(part, sizeof(part), "/part-%05d", i);
    f.dfs_path = std::string("/u2") + part;
    f.text = workload::GenerateUserVisitsText(uv);
    up.files.push_back(std::move(f));
  }

  SessionOptions opt;
  opt.policy = SchedulerPolicy::kFair;
  opt.queue_weights = {{"queries", 2.0}, {"ingest", 1.0}};
  opt.execution = mode;
  opt.adaptive = &manager;
  ClusterSession session(&bed.dfs(), opt);
  const auto bob = workload::BobQueries();
  session.Submit(QueryJob(bed, "/uv", bob[0]), "queries");
  const int up_id = session.SubmitUpload(std::move(up), "ingest");
  session.Submit(QueryJob(bed, "/uv", shifted), "queries", 60.0);
  session.Submit(QueryJob(bed, "/u2", bob[0]), "queries", 0.0, up_id);
  auto sr = session.Run();
  HAIL_CHECK_OK(sr.status());
  return DumpSession(*sr);
}

int Main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sched.json";
  constexpr double kShareTolerance = 0.10;
  constexpr double kLatencyInflationTolerance = 0.25;

  FairnessNumbers fair;
  fair = RunFairness(SchedulerPolicy::kFair, fair);
  fair = RunFairness(SchedulerPolicy::kFifo, fair);

  MaintenanceNumbers maint = RunMaintenanceLatency();

  const std::string serial = RunMixedSession(ExecutionMode::kSerial);
  const std::string parallel = RunMixedSession(ExecutionMode::kParallel);
  const bool deterministic = serial == parallel;

  const double share_error = std::abs(fair.heavy_share - fair.entitlement);
  const double inflation =
      maint.fg_latency_off > 0.0
          ? maint.fg_latency_on / maint.fg_latency_off - 1.0
          : 0.0;

  std::printf("shared-cluster scheduler (FIFO + fair) on one clock\n\n");
  std::printf("fair share: heavy queue %.3f of contended slot-seconds "
              "(entitlement %.2f, error %.3f, tolerance %.2f)\n",
              fair.heavy_share, fair.entitlement, share_error,
              kShareTolerance);
  std::printf("light tenant first-job latency: FIFO %.1f s -> fair %.1f s "
              "(%.1fx better)\n",
              fair.fifo_light_first, fair.fair_light_first,
              fair.fair_light_first > 0.0
                  ? fair.fifo_light_first / fair.fair_light_first
                  : 0.0);
  std::printf("maintenance: foreground mean latency %.1f s (off) -> %.1f s "
              "(on, %+.1f%%), %llu rewrites drained, %llu priority "
              "violations\n",
              maint.fg_latency_off, maint.fg_latency_on, inflation * 100.0,
              static_cast<unsigned long long>(maint.maintenance_completed),
              static_cast<unsigned long long>(maint.violations));
  std::printf("mixed upload+query+maintenance session serial == parallel: "
              "%s\n",
              deterministic ? "yes" : "NO");
  if (!deterministic) {
    std::printf("--- serial ---\n%s\n--- parallel ---\n%s\n", serial.c_str(),
                parallel.c_str());
  }

  const bool share_ok = share_error <= kShareTolerance;
  const bool fifo_contrast_ok = fair.fair_light_first < fair.fifo_light_first;
  const bool maint_ok = maint.violations == 0 &&
                        maint.maintenance_completed > 0 &&
                        inflation <= kLatencyInflationTolerance;

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"fair_heavy_share\": %.4f,\n"
        "  \"fair_entitlement\": %.4f,\n"
        "  \"fair_share_error\": %.4f,\n"
        "  \"fair_share_tolerance\": %.4f,\n"
        "  \"fifo_light_first_job_seconds\": %.3f,\n"
        "  \"fair_light_first_job_seconds\": %.3f,\n"
        "  \"fg_latency_maintenance_off_seconds\": %.3f,\n"
        "  \"fg_latency_maintenance_on_seconds\": %.3f,\n"
        "  \"fg_latency_inflation\": %.4f,\n"
        "  \"maintenance_completed\": %llu,\n"
        "  \"maintenance_priority_violations\": %llu,\n"
        "  \"serial_equals_parallel\": %s\n"
        "}\n",
        fair.heavy_share, fair.entitlement, share_error, kShareTolerance,
        fair.fifo_light_first, fair.fair_light_first, maint.fg_latency_off,
        maint.fg_latency_on, inflation,
        static_cast<unsigned long long>(maint.maintenance_completed),
        static_cast<unsigned long long>(maint.violations),
        deterministic ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }

  if (!share_ok) {
    std::fprintf(stderr, "FAIL: fair share deviates from entitlement\n");
  }
  if (!fifo_contrast_ok) {
    std::fprintf(stderr, "FAIL: fair sharing did not beat FIFO head-of-line\n");
  }
  if (!maint_ok) {
    std::fprintf(stderr, "FAIL: maintenance priority/latency gate\n");
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: serial != parallel\n");
  }
  return share_ok && fifo_contrast_ok && maint_ok && deterministic ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) { return hail::bench::Main(argc, argv); }
