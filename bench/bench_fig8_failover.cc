/// \file bench_fig8_failover.cc
/// \brief Reproduces Figure 8: fault-tolerance slowdown under node failure.
///
/// Protocol (§6.4.3): expiry interval 30 s; kill one node at 50% job
/// progress; slowdown = (Tf - Tb)/Tb * 100. Three systems: Hadoop,
/// HAIL (three different indexes: rescheduled tasks may lose their
/// matching-index replica and fall back to scanning), and HAIL-1Idx
/// (same index on all replicas: rescheduled tasks still index-scan).
/// All kills are injected through the deterministic FaultPlan schedule
/// (sim/fault_plan.h), the same path the fault matrix and recovery
/// tests drive.
///
/// On top of the paper protocol, a self-healing run (kill + revive with
/// re-replication enabled) is gated: once the under-replicated backlog
/// has drained, a clean re-run of the query must cost within 10% of the
/// pre-fault baseline and keep zero fallback scans — the repaired
/// replicas carry the clustered index, not just the bytes. Nonzero exit
/// on violation.

#include "bench_common.h"
#include "sim/fault_plan.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::RunOptions;
using mapreduce::System;
using workload::Testbed;

/// The Fig. 8 kill as a FaultPlan: node 4 dies at 50% of job 0's task
/// completions. `revive_after < 0` keeps it dead (the paper protocol).
sim::FaultPlan KillPlan(double revive_after) {
  sim::FaultPlan plan;
  sim::FaultPlan::Kill kill;
  kill.node = 4;
  kill.at_progress = 0.5;
  kill.progress_job = 0;
  kill.revive_after = revive_after;
  plan.kills.push_back(kill);
  return plan;
}

struct FailoverCell {
  double base = 0;
  double failed = 0;
  uint32_t fallback_scans = 0;
  uint32_t rescheduled = 0;
  double slowdown() const { return (failed - base) / base * 100.0; }
};

struct RecoveryCell {
  double base = 0;       // pre-fault query
  double failed = 0;     // query during which the node dies (healing on)
  double recovered = 0;  // clean re-run after repairs drained
  uint32_t recovered_fallback_scans = 0;
  uint32_t base_index_tasks = 0;
  uint32_t recovered_index_tasks = 0;
  double recovery_overhead() const { return (recovered - base) / base; }
};

struct Fig8Results {
  FailoverCell hadoop, hail, hail_1idx;
  RecoveryCell recovery;
};

const Fig8Results& Run() {
  static const Fig8Results results = [] {
    Fig8Results out;
    const workload::QueryDef q = workload::BobQueries()[0];
    RunOptions failure;
    failure.fault_plan = KillPlan(/*revive_after=*/-1.0);
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHadoop("/uv").status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHadoop, "/uv", q);
      auto failed = bed.RunQuery(System::kHadoop, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hadoop = {base->end_to_end_seconds, failed->end_to_end_seconds,
                    failed->fallback_scans, failed->rescheduled_tasks};
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHail("/uv", BobSortColumns()).status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHail, "/uv", q);
      auto failed = bed.RunQuery(System::kHail, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hail = {base->end_to_end_seconds, failed->end_to_end_seconds,
                  failed->fallback_scans, failed->rescheduled_tasks};
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      // HAIL-1Idx: the same index (visitDate) on all three replicas.
      HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate,
                                           workload::kVisitDate,
                                           workload::kVisitDate})
                        .status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHail, "/uv", q);
      auto failed = bed.RunQuery(System::kHail, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hail_1idx = {base->end_to_end_seconds, failed->end_to_end_seconds,
                       failed->fallback_scans, failed->rescheduled_tasks};
    }
    {
      // Self-healing: the node dies mid-query and revives a minute
      // later; background re-replication rebuilds the lost replicas
      // (with their sort order) while the revived node's stale copies
      // are discarded. The run returns only after the backlog drains.
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHail("/uv", BobSortColumns()).status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHail, "/uv", q);
      HAIL_CHECK_OK(base.status());
      RunOptions healing;
      healing.fault_plan = KillPlan(/*revive_after=*/60.0);
      healing.self_heal = true;
      auto failed = bed.RunQuery(System::kHail, "/uv", q, false, healing);
      HAIL_CHECK_OK(failed.status());
      auto recovered = bed.RunQuery(System::kHail, "/uv", q);
      HAIL_CHECK_OK(recovered.status());
      out.recovery.base = base->end_to_end_seconds;
      out.recovery.failed = failed->end_to_end_seconds;
      out.recovery.recovered = recovered->end_to_end_seconds;
      out.recovery.recovered_fallback_scans = recovered->fallback_scans;
      out.recovery.base_index_tasks = base->index_scan_tasks;
      out.recovery.recovered_index_tasks = recovered->index_scan_tasks;
    }
    return out;
  }();
  return results;
}

void BM_Fig8_Hadoop_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop.failed);
  state.counters["slowdown_pct"] = Run().hadoop.slowdown();
}
void BM_Fig8_HAIL_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail.failed);
  state.counters["slowdown_pct"] = Run().hail.slowdown();
}
void BM_Fig8_HAIL1Idx_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail_1idx.failed);
  state.counters["slowdown_pct"] = Run().hail_1idx.slowdown();
}
void BM_Fig8_HAIL_PostRecovery(benchmark::State& state) {
  ReportSimSeconds(state, Run().recovery.recovered);
  state.counters["overhead_pct"] = Run().recovery.recovery_overhead() * 100.0;
}

BENCHMARK(BM_Fig8_Hadoop_Failed)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig8_HAIL_Failed)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig8_HAIL1Idx_Failed)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig8_HAIL_PostRecovery)->Iterations(1)->UseManualTime();

constexpr double kRecoveryOverheadTolerance = 0.10;

bool PrintTables() {
  const Fig8Results& r = Run();
  PaperTable t("Figure 8: fault tolerance (kill 1 node at 50% progress)",
               "s");
  t.Add("Hadoop baseline", 1099, r.hadoop.base);
  t.Add("Hadoop with failure", 1099 * 1.103, r.hadoop.failed);
  t.Add("HAIL baseline", 598, r.hail.base);
  t.Add("HAIL with failure", 598 * 1.105, r.hail.failed);
  t.Add("HAIL-1Idx baseline", 598, r.hail_1idx.base);
  t.Add("HAIL-1Idx with failure", 598 * 1.055, r.hail_1idx.failed);
  t.Print();
  std::printf("  Slowdowns, paper vs measured:\n");
  std::printf("    Hadoop     paper 10.3%%  measured %5.1f%%  (rescheduled "
              "%u tasks)\n",
              r.hadoop.slowdown(), r.hadoop.rescheduled);
  std::printf("    HAIL       paper 10.5%%  measured %5.1f%%  (fallback "
              "scans %u)\n",
              r.hail.slowdown(), r.hail.fallback_scans);
  std::printf("    HAIL-1Idx  paper  5.5%%  measured %5.1f%%  (fallback "
              "scans %u — every replica keeps the index)\n",
              r.hail_1idx.slowdown(), r.hail_1idx.fallback_scans);

  const RecoveryCell& rec = r.recovery;
  const bool cost_ok = rec.recovery_overhead() <= kRecoveryOverheadTolerance;
  const bool index_ok = rec.recovered_fallback_scans == 0 &&
                        rec.recovered_index_tasks == rec.base_index_tasks;
  std::printf("\n  Self-healing (kill at 50%%, revive after 60 s, "
              "re-replication on):\n");
  std::printf("    pre-fault %.1f s -> during failure %.1f s -> "
              "post-recovery %.1f s (%+.1f%%, tolerance %.0f%%)\n",
              rec.base, rec.failed, rec.recovered,
              rec.recovery_overhead() * 100.0,
              kRecoveryOverheadTolerance * 100.0);
  std::printf("    post-recovery index scans %u/%u, fallback scans %u\n",
              rec.recovered_index_tasks, rec.base_index_tasks,
              rec.recovered_fallback_scans);
  if (!cost_ok) {
    std::fprintf(stderr, "FAIL: post-recovery query cost not within %.0f%% "
                         "of pre-fault baseline\n",
                 kRecoveryOverheadTolerance * 100.0);
  }
  if (!index_ok) {
    std::fprintf(stderr, "FAIL: repaired replicas lost their clustered "
                         "index (fallback scans after recovery)\n");
  }
  return cost_ok && index_ok;
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return hail::bench::PrintTables() ? 0 : 1;
}
