/// \file bench_fig8_failover.cc
/// \brief Reproduces Figure 8: fault-tolerance slowdown under node failure.
///
/// Protocol (§6.4.3): expiry interval 30 s; kill one node at 50% job
/// progress; slowdown = (Tf - Tb)/Tb * 100. Three systems: Hadoop,
/// HAIL (three different indexes: rescheduled tasks may lose their
/// matching-index replica and fall back to scanning), and HAIL-1Idx
/// (same index on all replicas: rescheduled tasks still index-scan).

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::RunOptions;
using mapreduce::System;
using workload::Testbed;

struct FailoverCell {
  double base = 0;
  double failed = 0;
  uint32_t fallback_scans = 0;
  uint32_t rescheduled = 0;
  double slowdown() const { return (failed - base) / base * 100.0; }
};

struct Fig8Results {
  FailoverCell hadoop, hail, hail_1idx;
};

const Fig8Results& Run() {
  static const Fig8Results results = [] {
    Fig8Results out;
    const workload::QueryDef q = workload::BobQueries()[0];
    RunOptions failure;
    failure.kill_node = 4;
    failure.kill_at_progress = 0.5;
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHadoop("/uv").status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHadoop, "/uv", q);
      auto failed = bed.RunQuery(System::kHadoop, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hadoop = {base->end_to_end_seconds, failed->end_to_end_seconds,
                    failed->fallback_scans, failed->rescheduled_tasks};
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHail("/uv", BobSortColumns()).status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHail, "/uv", q);
      auto failed = bed.RunQuery(System::kHail, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hail = {base->end_to_end_seconds, failed->end_to_end_seconds,
                  failed->fallback_scans, failed->rescheduled_tasks};
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      // HAIL-1Idx: the same index (visitDate) on all three replicas.
      HAIL_CHECK_OK(bed.UploadHail("/uv", {workload::kVisitDate,
                                           workload::kVisitDate,
                                           workload::kVisitDate})
                        .status());
      bed.FreeSourceTexts();
      auto base = bed.RunQuery(System::kHail, "/uv", q);
      auto failed = bed.RunQuery(System::kHail, "/uv", q, false, failure);
      HAIL_CHECK_OK(base.status());
      HAIL_CHECK_OK(failed.status());
      out.hail_1idx = {base->end_to_end_seconds, failed->end_to_end_seconds,
                       failed->fallback_scans, failed->rescheduled_tasks};
    }
    return out;
  }();
  return results;
}

void BM_Fig8_Hadoop_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop.failed);
  state.counters["slowdown_pct"] = Run().hadoop.slowdown();
}
void BM_Fig8_HAIL_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail.failed);
  state.counters["slowdown_pct"] = Run().hail.slowdown();
}
void BM_Fig8_HAIL1Idx_Failed(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail_1idx.failed);
  state.counters["slowdown_pct"] = Run().hail_1idx.slowdown();
}

BENCHMARK(BM_Fig8_Hadoop_Failed)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig8_HAIL_Failed)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig8_HAIL1Idx_Failed)->Iterations(1)->UseManualTime();

void PrintTables() {
  const Fig8Results& r = Run();
  PaperTable t("Figure 8: fault tolerance (kill 1 node at 50% progress)",
               "s");
  t.Add("Hadoop baseline", 1099, r.hadoop.base);
  t.Add("Hadoop with failure", 1099 * 1.103, r.hadoop.failed);
  t.Add("HAIL baseline", 598, r.hail.base);
  t.Add("HAIL with failure", 598 * 1.105, r.hail.failed);
  t.Add("HAIL-1Idx baseline", 598, r.hail_1idx.base);
  t.Add("HAIL-1Idx with failure", 598 * 1.055, r.hail_1idx.failed);
  t.Print();
  std::printf("  Slowdowns, paper vs measured:\n");
  std::printf("    Hadoop     paper 10.3%%  measured %5.1f%%  (rescheduled "
              "%u tasks)\n",
              r.hadoop.slowdown(), r.hadoop.rescheduled);
  std::printf("    HAIL       paper 10.5%%  measured %5.1f%%  (fallback "
              "scans %u)\n",
              r.hail.slowdown(), r.hail.fallback_scans);
  std::printf("    HAIL-1Idx  paper  5.5%%  measured %5.1f%%  (fallback "
              "scans %u — every replica keeps the index)\n",
              r.hail_1idx.slowdown(), r.hail_1idx.fallback_scans);
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
