/// \file bench_index_micro.cc
/// \brief Real (wall-clock) micro-benchmarks of the library's hot paths,
/// plus the §3.5 design ablations.
///
/// Unlike the figure benches, these measure the actual C++ implementation:
/// CRC32C throughput, block sorting, clustered index build/lookup, PAX
/// tuple reconstruction. The ablations quantify the paper's §3.5 design
/// arguments: clustered vs unclustered index I/O, single-level vs
/// two-level directory crossover (~5 GB blocks), and index size ratios
/// (HAIL ~2 KB vs trojan ~304 KB per 64 MB block).

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "index/bitmap_index.h"
#include "index/clustered_index.h"
#include "index/trojan_index.h"
#include "index/unclustered_index.h"
#include "layout/pax_block.h"
#include "sim/cost_model.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "workload/uservisits.h"

namespace hail {
namespace {

void BM_Crc32c(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  Random rng(1);
  std::string data = rng.NextString(bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(64 << 10)->Arg(1 << 20);

PaxBlock MakeUvBlock(uint64_t rows) {
  workload::UserVisitsConfig cfg;
  cfg.rows = rows;
  return BuildPaxBlockFromText(workload::UserVisitsSchema(),
                               workload::GenerateUserVisitsText(cfg),
                               BlockFormatOptions{64});
}

void BM_SortBlockByColumn(benchmark::State& state) {
  const PaxBlock base = MakeUvBlock(static_cast<uint64_t>(state.range(0)));
  const std::string bytes = base.Serialize();
  for (auto _ : state) {
    PaxBlock block = *PaxBlock::Deserialize(bytes);
    block.SortByColumn(workload::kVisitDate);
    benchmark::DoNotOptimize(block.num_records());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortBlockByColumn)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ClusteredIndexBuild(benchmark::State& state) {
  PaxBlock block = MakeUvBlock(static_cast<uint64_t>(state.range(0)));
  block.SortByColumn(workload::kVisitDate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClusteredIndex::Build(block.column(workload::kVisitDate), 1024));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusteredIndexBuild)->Arg(10000)->Arg(100000);

void BM_ClusteredIndexLookup(benchmark::State& state) {
  PaxBlock block = MakeUvBlock(50000);
  block.SortByColumn(workload::kVisitDate);
  const ClusteredIndex index =
      ClusteredIndex::Build(block.column(workload::kVisitDate), 1024);
  Random rng(2);
  const int32_t base_day = *ParseDateToDays("1990-01-01");
  for (auto _ : state) {
    const int32_t lo = base_day + static_cast<int32_t>(rng.Uniform(5000));
    benchmark::DoNotOptimize(index.Lookup(
        KeyRange::Between(Value(lo), Value(lo + 366))));
  }
}
BENCHMARK(BM_ClusteredIndexLookup);

void BM_PaxTupleReconstruction(benchmark::State& state) {
  PaxBlock block = MakeUvBlock(20000);
  block.SortByColumn(workload::kVisitDate);
  const std::string bytes = block.Serialize();
  PaxBlockView view = *PaxBlockView::Open(bytes);
  Random rng(3);
  for (auto _ : state) {
    const uint32_t row = static_cast<uint32_t>(rng.Uniform(20000));
    benchmark::DoNotOptimize(view.GetRow(row));
  }
}
BENCHMARK(BM_PaxTupleReconstruction);

void BM_UnclusteredIndexLookup(benchmark::State& state) {
  PaxBlock block = MakeUvBlock(50000);  // unsorted
  const UnclusteredIndex index =
      UnclusteredIndex::Build(block.column(workload::kVisitDate));
  Random rng(4);
  const int32_t base_day = *ParseDateToDays("1990-01-01");
  for (auto _ : state) {
    const int32_t lo = base_day + static_cast<int32_t>(rng.Uniform(5000));
    benchmark::DoNotOptimize(index.Lookup(
        KeyRange::Between(Value(lo), Value(lo + 30))));
  }
}
BENCHMARK(BM_UnclusteredIndexLookup);

/// §3.5 ablation: simulated access cost of clustered vs unclustered index
/// at varying selectivity. The unclustered index pays one random I/O per
/// qualifying record; the clustered one scans the qualifying partitions.
void BM_Ablation_ClusteredVsUnclusteredIO(benchmark::State& state) {
  const double selectivity = static_cast<double>(state.range(0)) / 10000.0;
  sim::CostModel cost(sim::NodeProfile::Physical(), sim::CostConstants{});
  const uint64_t block_bytes = 64ull << 20;
  const uint64_t records = 433000;
  const uint64_t qualifying =
      static_cast<uint64_t>(records * selectivity);
  // Clustered: index root + qualifying partition scan.
  const double clustered =
      cost.DiskSeek() + cost.DiskTransfer(2048) +
      cost.DiskSeek() +
      cost.DiskTransfer(static_cast<uint64_t>(block_bytes * selectivity));
  // Unclustered: dense index read + one seek+page per qualifying record
  // (capped at a full scan).
  const double unclustered = std::min(
      cost.DiskSeek() + cost.DiskTransfer(records * 8) +
          static_cast<double>(qualifying) *
              (cost.DiskSeek() + cost.DiskTransfer(4096)),
      cost.DiskSeek() + cost.DiskTransfer(block_bytes));
  for (auto _ : state) {
    state.SetIterationTime(clustered);
  }
  state.counters["clustered_s"] = clustered;
  state.counters["unclustered_s"] = unclustered;
  state.counters["unclustered_over_clustered"] = unclustered / clustered;
}
BENCHMARK(BM_Ablation_ClusteredVsUnclusteredIO)
    ->Arg(1)      // 0.01%
    ->Arg(10)     // 0.1%
    ->Arg(100)    // 1%
    ->Arg(2000)   // 20% (Bob-Q5 territory)
    ->Iterations(1)
    ->UseManualTime();

/// §3.5 ablation: single-level vs two-level directory. The paper computes
/// that a second level only pays off beyond ~5 GB blocks (root > 500 KB).
void BM_Ablation_MultiLevelCrossover(benchmark::State& state) {
  const uint64_t block_mb = static_cast<uint64_t>(state.range(0));
  sim::CostModel cost(sim::NodeProfile::Physical(), sim::CostConstants{});
  const uint64_t rows = block_mb * 1024 * 1024 / 40;  // 40 B rows, 10 attrs
  const uint64_t root_bytes = rows / 1024 * 4;
  // Single level: seek + read the whole root.
  const double single = cost.DiskSeek() + cost.DiskTransfer(root_bytes);
  // Two levels: two seeks + two page reads (root page + directory page).
  const double multi = 2 * (cost.DiskSeek() + cost.DiskTransfer(4096));
  for (auto _ : state) {
    state.SetIterationTime(single);
  }
  state.counters["single_level_s"] = single;
  state.counters["two_level_s"] = multi;
  state.counters["two_level_wins"] = multi < single ? 1 : 0;
}
BENCHMARK(BM_Ablation_MultiLevelCrossover)
    ->Arg(64)     // default block: single level wins
    ->Arg(1024)   // 1 GB: single level still wins
    ->Arg(5120)   // ~5 GB: crossover (paper §3.5)
    ->Arg(16384)  // 16 GB: two levels win
    ->Iterations(1)
    ->UseManualTime();

/// Typed bitmap-index keying: build + lookup never render values to text.
/// The micro-assert cross-checks every typed lookup against a naive column
/// scan (abort on mismatch), so the bench doubles as a correctness gate.
void BM_BitmapIndexTypedLookup(benchmark::State& state) {
  // Low-cardinality int32 domain (countryCode-style): 40 distinct values
  // over 200k rows.
  const uint32_t kRows = 200000;
  ColumnVector col(FieldType::kInt32);
  Random rng(7);
  for (uint32_t i = 0; i < kRows; ++i) {
    col.AppendInt32(static_cast<int32_t>(rng.Uniform(40)));
  }
  const BitmapIndex index = BitmapIndex::Build(col);

  // Micro-assert: typed lookups == naive scan, for every domain value.
  for (int32_t v = 0; v < 40; ++v) {
    std::vector<uint32_t> naive;
    for (uint32_t r = 0; r < kRows; ++r) {
      if (col.i32()[r] == v) naive.push_back(r);
    }
    if (index.Lookup(Value(v)) != naive ||
        index.Count(Value(v)) != naive.size()) {
      std::fprintf(stderr, "bitmap typed lookup diverged for key %d\n", v);
      std::abort();
    }
  }

  uint64_t rows_out = 0;
  int32_t key = 0;
  for (auto _ : state) {
    rows_out += index.Lookup(Value(key)).size();
    key = (key + 1) % 40;
  }
  benchmark::DoNotOptimize(rows_out);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["cardinality"] = static_cast<double>(index.cardinality());
  state.counters["serialized_bytes"] =
      static_cast<double>(index.SerializedBytes());
}
BENCHMARK(BM_BitmapIndexTypedLookup);

void BM_BitmapIndexBuild(benchmark::State& state) {
  const uint32_t rows = static_cast<uint32_t>(state.range(0));
  ColumnVector col(FieldType::kInt32);
  Random rng(8);
  for (uint32_t i = 0; i < rows; ++i) {
    col.AppendInt32(static_cast<int32_t>(rng.Uniform(40)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapIndex::Build(col));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_BitmapIndexBuild)->Arg(10000)->Arg(200000);

/// Index size comparison (§6.4.2): HAIL ~2 KB vs trojan ~304 KB per block.
void BM_Ablation_IndexSizes(benchmark::State& state) {
  PaxBlock block = MakeUvBlock(100000);
  block.SortByColumn(workload::kVisitDate);
  const ClusteredIndex clustered =
      ClusteredIndex::Build(block.column(workload::kVisitDate), 1024);
  std::vector<uint64_t> offsets(100000);
  for (size_t i = 0; i < offsets.size(); ++i) offsets[i] = i * 150;
  const TrojanIndex trojan = TrojanIndex::Build(
      block.column(workload::kVisitDate), offsets, 100000ull * 150, 8);
  const UnclusteredIndex unclustered =
      UnclusteredIndex::Build(block.column(workload::kVisitDate));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustered.SerializedBytes());
  }
  state.counters["clustered_bytes"] =
      static_cast<double>(clustered.SerializedBytes());
  state.counters["trojan_bytes"] =
      static_cast<double>(trojan.SerializedBytes());
  state.counters["unclustered_bytes"] =
      static_cast<double>(unclustered.SerializedBytes());
  state.counters["trojan_over_clustered"] =
      static_cast<double>(trojan.SerializedBytes()) /
      static_cast<double>(clustered.SerializedBytes());
}
BENCHMARK(BM_Ablation_IndexSizes);

}  // namespace
}  // namespace hail

BENCHMARK_MAIN();
