/// \file bench_common.h
/// \brief Shared scaffolding for the paper-reproduction benchmarks.
///
/// Every bench binary reproduces one table or figure of the paper's §6.
/// Experiments run in the simulated cluster; each google-benchmark entry
/// reports the *simulated* seconds as manual time, so the numbers printed
/// by the benchmark harness are directly comparable to the paper's. After
/// the harness finishes, each binary prints a side-by-side
/// paper-vs-measured table via PaperTable.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "workload/testbed.h"

namespace hail {
namespace bench {

/// Paper-scale testbed: the 10-node physical cluster with 20 GB/node of
/// UserVisits (320 logical blocks of 64 MB) at real scale 1/2048.
inline workload::TestbedConfig PaperUserVisitsConfig() {
  workload::TestbedConfig config;
  config.num_nodes = 10;
  config.real_block_bytes = 32 * 1024;  // scale 2048 -> 64 MB logical
  config.blocks_per_node = 320;         // 20 GB/node
  config.seed = 42;
  return config;
}

/// Synthetic dataset: 13 GB/node (203 logical blocks of 64 MB).
inline workload::TestbedConfig PaperSyntheticConfig() {
  workload::TestbedConfig config = PaperUserVisitsConfig();
  config.blocks_per_node = 203;  // 13 GB/node
  return config;
}

/// HAIL's per-replica index attributes for Bob's workload (§6.4.1).
inline std::vector<int> BobSortColumns() {
  return {workload::kVisitDate, workload::kSourceIP, workload::kAdRevenue};
}

/// \brief Collects (label, paper value, measured value) rows and prints an
/// aligned comparison table with measured/paper ratios.
class PaperTable {
 public:
  PaperTable(std::string title, std::string unit)
      : title_(std::move(title)), unit_(std::move(unit)) {}

  void Add(const std::string& label, double paper, double measured) {
    rows_.push_back(Row{label, paper, measured});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%-34s %14s %14s %9s\n", "configuration",
                ("paper [" + unit_ + "]").c_str(),
                ("measured [" + unit_ + "]").c_str(), "ratio");
    for (const Row& row : rows_) {
      if (row.paper > 0) {
        std::printf("%-34s %14.1f %14.1f %8.2fx\n", row.label.c_str(),
                    row.paper, row.measured, row.measured / row.paper);
      } else {
        std::printf("%-34s %14s %14.1f %9s\n", row.label.c_str(), "-",
                    row.measured, "-");
      }
    }
  }

 private:
  struct Row {
    std::string label;
    double paper;
    double measured;
  };
  std::string title_;
  std::string unit_;
  std::vector<Row> rows_;
};

/// Reports a simulated duration as the benchmark's manual time.
inline void ReportSimSeconds(benchmark::State& state, double seconds) {
  for (auto _ : state) {
    state.SetIterationTime(seconds);
  }
  state.counters["sim_seconds"] = seconds;
}

}  // namespace bench
}  // namespace hail
