/// \file bench_fig4c_replication.cc
/// \brief Reproduces Figure 4(c): upload time vs replication factor.
///
/// Synthetic dataset; HAIL creates as many different clustered indexes as
/// replicas. The paper's headline: HAIL stores six indexed replicas in
/// less than the time Hadoop needs for three plain ones, and the disk
/// footprint of six binary replicas is barely above three text ones
/// (420 GB vs 390 GB).

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

constexpr int kReplicationFactors[] = {3, 5, 6, 7, 10};

struct Fig4cResults {
  double hadoop3 = 0;            // Hadoop baseline at replication 3
  uint64_t hadoop3_bytes = 0;
  double hail[5] = {0};          // HAIL at each replication factor
  uint64_t hail_bytes[5] = {0};
};

uint64_t StoredBytes(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.cluster().num_nodes(); ++i) {
    total += bed.dfs().datanode(i).store().total_bytes();
  }
  return total;
}

const Fig4cResults& Run() {
  static const Fig4cResults results = [] {
    Fig4cResults out;
    {
      Testbed bed(PaperSyntheticConfig());
      bed.LoadSynthetic();
      auto r = bed.UploadHadoop("/syn");
      HAIL_CHECK_OK(r.status());
      out.hadoop3 = r->duration();
      out.hadoop3_bytes = StoredBytes(bed);
    }
    for (size_t i = 0; i < std::size(kReplicationFactors); ++i) {
      TestbedConfig config = PaperSyntheticConfig();
      config.replication = kReplicationFactors[i];
      Testbed bed(config);
      bed.LoadSynthetic();
      std::vector<int> columns;
      for (int c = 0; c < kReplicationFactors[i]; ++c) columns.push_back(c);
      auto r = bed.UploadHail("/syn", columns);
      HAIL_CHECK_OK(r.status());
      out.hail[i] = r->duration();
      out.hail_bytes[i] = StoredBytes(bed);
    }
    return out;
  }();
  return results;
}

void BM_Fig4c_Hadoop3(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop3);
}
void BM_Fig4c_HAIL(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail[state.range(0)]);
  state.counters["replication"] =
      kReplicationFactors[static_cast<size_t>(state.range(0))];
}

BENCHMARK(BM_Fig4c_Hadoop3)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig4c_HAIL)->DenseRange(0, 4)->Iterations(1)->UseManualTime();

void PrintTables() {
  const Fig4cResults& r = Run();
  PaperTable t("Figure 4(c): Synthetic upload vs replication factor", "s");
  constexpr double kPaperHail[] = {717, 956, 1089, 1254, 1700};
  t.Add("Hadoop (3 replicas, no index)", 1132, r.hadoop3);
  for (size_t i = 0; i < std::size(kReplicationFactors); ++i) {
    t.Add("HAIL (" + std::to_string(kReplicationFactors[i]) +
              " replicas = indexes)",
          kPaperHail[i], r.hail[i]);
  }
  t.Print();
  std::printf(
      "  HAIL with 6 indexed replicas vs Hadoop with 3 plain: paper 0.96x, "
      "measured %.2fx (HAIL %s)\n",
      r.hail[2] / r.hadoop3, r.hail[2] < r.hadoop3 ? "wins" : "loses");
  std::printf(
      "  Disk: 6 HAIL replicas / 3 Hadoop replicas: paper 420/390 = 1.08x, "
      "measured %.2fx\n",
      static_cast<double>(r.hail_bytes[2]) /
          static_cast<double>(r.hadoop3_bytes));
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
