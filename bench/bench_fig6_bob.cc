/// \file bench_fig6_bob.cc
/// \brief Reproduces Figure 6: Bob's query workload (HailSplitting OFF).
///
/// 6(a) end-to-end job runtimes, 6(b) average RecordReader times, 6(c)
/// framework overhead T_overhead = T_end-to-end - T_ideal. Hadoop scans
/// text; Hadoop++ has one trojan index on sourceIP (helps Q2/Q3 only);
/// HAIL has clustered indexes on visitDate, sourceIP and adRevenue — one
/// per replica — so every query finds a suitable index.

#include "bench_common.h"

namespace hail {
namespace bench {
namespace {

using mapreduce::JobResult;
using mapreduce::System;
using workload::Testbed;

struct Fig6Results {
  JobResult hadoop[5], hpp[5], hail[5];
};

const Fig6Results& Run() {
  static const Fig6Results results = [] {
    Fig6Results out;
    const auto queries = workload::BobQueries();
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHadoop("/uv").status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoop, "/uv", queries[i]);
        HAIL_CHECK_OK(r.status());
        out.hadoop[i] = *r;
      }
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      // "Hadoop++ creates one clustered index on sourceIP for all three
      // replicas, as two very selective queries will benefit" (§6.4.1).
      HAIL_CHECK_OK(bed.UploadHadoopPP("/uv", workload::kSourceIP).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = bed.RunQuery(System::kHadoopPP, "/uv", queries[i]);
        HAIL_CHECK_OK(r.status());
        out.hpp[i] = *r;
      }
    }
    {
      Testbed bed(PaperUserVisitsConfig());
      bed.LoadUserVisits();
      HAIL_CHECK_OK(bed.UploadHail("/uv", BobSortColumns()).status());
      bed.FreeSourceTexts();
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = bed.RunQuery(System::kHail, "/uv", queries[i],
                              /*hail_splitting=*/false);
        HAIL_CHECK_OK(r.status());
        out.hail[i] = *r;
      }
    }
    return out;
  }();
  return results;
}

void BM_Fig6a_Hadoop(benchmark::State& state) {
  ReportSimSeconds(state, Run().hadoop[state.range(0)].end_to_end_seconds);
}
void BM_Fig6a_HadoopPP(benchmark::State& state) {
  ReportSimSeconds(state, Run().hpp[state.range(0)].end_to_end_seconds);
}
void BM_Fig6a_HAIL(benchmark::State& state) {
  ReportSimSeconds(state, Run().hail[state.range(0)].end_to_end_seconds);
}
void BM_Fig6b_Hadoop_RR(benchmark::State& state) {
  ReportSimSeconds(state,
                   Run().hadoop[state.range(0)].avg_record_reader_seconds);
}
void BM_Fig6b_HadoopPP_RR(benchmark::State& state) {
  ReportSimSeconds(state, Run().hpp[state.range(0)].avg_record_reader_seconds);
}
void BM_Fig6b_HAIL_RR(benchmark::State& state) {
  ReportSimSeconds(state,
                   Run().hail[state.range(0)].avg_record_reader_seconds);
}

BENCHMARK(BM_Fig6a_Hadoop)->DenseRange(0, 4)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig6a_HadoopPP)->DenseRange(0, 4)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig6a_HAIL)->DenseRange(0, 4)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig6b_Hadoop_RR)->DenseRange(0, 4)->Iterations(1)->UseManualTime();
BENCHMARK(BM_Fig6b_HadoopPP_RR)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_Fig6b_HAIL_RR)->DenseRange(0, 4)->Iterations(1)->UseManualTime();

void PrintTables() {
  const Fig6Results& r = Run();
  const char* names[] = {"Bob-Q1", "Bob-Q2", "Bob-Q3", "Bob-Q4", "Bob-Q5"};
  const double paper_6a_hadoop[] = {1094, 1006, 942, 1099, 1099};
  const double paper_6a_hpp[] = {1160, 705, 651, 1143, 1145};
  const double paper_6a_hail[] = {601, 598, 598, 598, 602};
  const double paper_6b_hadoop[] = {2156, 2112, 2470, 2442, 2776};
  const double paper_6b_hpp[] = {3358, 573, 527, 2864, 2917};
  const double paper_6b_hail[] = {60, 333, 83, 60, 683};
  {
    PaperTable t("Figure 6(a): end-to-end job runtimes (no HailSplitting)",
                 "s");
    for (int i = 0; i < 5; ++i) {
      t.Add(std::string(names[i]) + " Hadoop", paper_6a_hadoop[i],
            r.hadoop[i].end_to_end_seconds);
      t.Add(std::string(names[i]) + " Hadoop++", paper_6a_hpp[i],
            r.hpp[i].end_to_end_seconds);
      t.Add(std::string(names[i]) + " HAIL", paper_6a_hail[i],
            r.hail[i].end_to_end_seconds);
    }
    t.Print();
  }
  {
    PaperTable t("Figure 6(b): average RecordReader time per map task",
                 "ms");
    for (int i = 0; i < 5; ++i) {
      t.Add(std::string(names[i]) + " Hadoop", paper_6b_hadoop[i],
            r.hadoop[i].avg_record_reader_seconds * 1000);
      t.Add(std::string(names[i]) + " Hadoop++", paper_6b_hpp[i],
            r.hpp[i].avg_record_reader_seconds * 1000);
      t.Add(std::string(names[i]) + " HAIL", paper_6b_hail[i],
            r.hail[i].avg_record_reader_seconds * 1000);
    }
    t.Print();
    double best = 0;
    for (int i = 0; i < 5; ++i) {
      best = std::max(best, r.hadoop[i].avg_record_reader_seconds /
                                r.hail[i].avg_record_reader_seconds);
    }
    std::printf("  Max RR speedup HAIL vs Hadoop: paper up to 46x, measured "
                "%.0fx\n", best);
  }
  {
    PaperTable t(
        "Figure 6(c): framework overhead = end-to-end - ideal (Hadoop "
        "dominates regardless of query)",
        "s");
    for (int i = 0; i < 5; ++i) {
      t.Add(std::string(names[i]) + " Hadoop overhead", -1,
            r.hadoop[i].overhead_seconds);
      t.Add(std::string(names[i]) + " HAIL overhead", -1,
            r.hail[i].overhead_seconds);
    }
    t.Print();
    std::printf(
        "  Overhead share of Hadoop Bob-Q1 runtime: measured %.0f%% (the "
        "paper's point: scheduling, not I/O, dominates)\n",
        100.0 * r.hadoop[0].overhead_seconds /
            r.hadoop[0].end_to_end_seconds);
    std::printf(
        "  Overhead share of HAIL Bob-Q1 runtime: measured %.0f%% -> "
        "motivates HailSplitting (Fig 9)\n",
        100.0 * r.hail[0].overhead_seconds / r.hail[0].end_to_end_seconds);
  }
}

}  // namespace
}  // namespace bench
}  // namespace hail

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hail::bench::PrintTables();
  return 0;
}
